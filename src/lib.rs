//! # rtgcn — umbrella crate
//!
//! Re-exports the full public API of the RT-GCN reproduction workspace so
//! downstream users can depend on a single crate:
//!
//! - [`tensor`] — dense tensors + reverse-mode autodiff + optimisers
//! - [`graph`] — multi-relational graph substrate and adjacency strategies
//! - [`market`] — synthetic market data, features, relations, datasets
//! - [`core`] — the RT-GCN model (paper's contribution)
//! - [`baselines`] — every comparator model from the paper's evaluation
//! - [`eval`] — backtesting, MRR/IRR metrics, Wilcoxon significance tests
//! - [`telemetry`] — tracing, metrics, gauge series and training health
//! - [`serve`] — durable checkpoints, hot-swap model registry, HTTP scoring

pub use rtgcn_baselines as baselines;
pub use rtgcn_core as core;
pub use rtgcn_eval as eval;
pub use rtgcn_graph as graph;
pub use rtgcn_market as market;
pub use rtgcn_serve as serve;
pub use rtgcn_telemetry as telemetry;
pub use rtgcn_tensor as tensor;
