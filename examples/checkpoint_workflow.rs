//! Train-once / deploy-later workflow on the durable checkpoint format:
//! fit RT-GCN, capture a versioned `.rtgckpt` container (params + config +
//! dataset descriptor), reload it from disk, rebuild the model through the
//! serving layer, and verify the reload reproduces the trained model's
//! ranking bit-for-bit — the exact path `rtgcn-serve` boots from.
//!
//! ```sh
//! cargo run --release --example checkpoint_workflow
//! ```

use rtgcn::core::{Checkpoint, DataSpec, RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::top_k_indices;
use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn::serve::servable::{build_model, checkpoint_rtgcn};

fn main() {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 24;
    spec.train_days = 150;
    spec.test_days = 20;
    let data = DataSpec { spec, seed: 3, relation_kind: RelationKind::Both };
    let ds = StockDataset::generate(data.spec.clone(), data.seed);
    let relations = ds.relations(data.relation_kind);
    let cfg = RtGcnConfig { epochs: 3, ..RtGcnConfig::with_strategy(Strategy::Weighted) };

    // Nightly job: train, then capture everything needed to serve — the
    // parameters, the config JSON, and the dataset descriptor.
    let mut trainer = RtGcn::new(cfg, &relations, 3);
    println!("training ({} parameters)...", trainer.num_params());
    let fit = trainer.fit(&ds);
    println!("trained in {:.1}s, final loss {:.5}", fit.train_secs, fit.final_loss);
    let ckpt = checkpoint_rtgcn(&trainer, &data).expect("capture checkpoint");
    let path = std::env::temp_dir().join("rtgcn_quickstart.rtgckpt");
    ckpt.save(&path).expect("save checkpoint");
    println!("checkpoint written to {} (version {})", path.display(), ckpt.content_id());

    // Daily job: reload the container and let the serving layer rebuild
    // the model from the embedded config — no hand-matched constructor
    // arguments, and the load is checksummed + byte-exact.
    let loaded = Checkpoint::load(&path).expect("load checkpoint");
    assert_eq!(loaded, ckpt, "disk round trip must be lossless");
    assert_eq!(loaded.content_id(), ckpt.content_id());
    let mut scorer = build_model(&loaded, &ds, None).expect("rebuild model from checkpoint");

    let day = ds.test_end_days()[0];
    let fresh = trainer.scores_for_day(&ds, day);
    let reloaded = scorer.model.scores_for_day(&ds, day);
    assert_eq!(fresh, reloaded, "checkpoint must reproduce the trained model exactly");

    let picks = top_k_indices(&reloaded, 5);
    println!("\nreloaded model's top-5 for day {day}: {picks:?}");
    println!("scores identical to the in-memory trained model: ✓");
    std::fs::remove_file(&path).ok();
}
