//! Train-once / deploy-later workflow: fit RT-GCN, checkpoint the trained
//! parameters to disk, reload them into a freshly built model, and verify
//! the reloaded model reproduces the exact same ranking — the pattern a
//! production stock-selection job would use (retrain nightly, score daily).
//!
//! ```sh
//! cargo run --release --example checkpoint_workflow
//! ```

use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::top_k_indices;
use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

fn main() {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 24;
    spec.train_days = 150;
    spec.test_days = 20;
    let ds = StockDataset::generate(spec, 3);
    let relations = ds.relations(RelationKind::Both);
    let cfg = RtGcnConfig { epochs: 3, ..RtGcnConfig::with_strategy(Strategy::Weighted) };

    // Nightly job: train and checkpoint.
    let mut trainer = RtGcn::new(cfg.clone(), &relations, 3);
    println!("training ({} parameters)...", trainer.num_params());
    let fit = trainer.fit(&ds);
    println!("trained in {:.1}s, final loss {:.5}", fit.train_secs, fit.final_loss);
    let ckpt = std::env::temp_dir().join("rtgcn_quickstart.rtgp");
    trainer.save(&ckpt).expect("save checkpoint");
    println!("checkpoint written to {}", ckpt.display());

    // Daily job: rebuild the model (same config + relations), load weights,
    // score today's window.
    let mut scorer = RtGcn::new(cfg, &relations, 999); // different init seed
    scorer.load(&ckpt).expect("load checkpoint");
    let day = ds.test_end_days()[0];
    let fresh = trainer.scores_for_day(&ds, day);
    let loaded = scorer.scores_for_day(&ds, day);
    assert_eq!(fresh, loaded, "checkpoint must reproduce the trained model exactly");

    let picks = top_k_indices(&loaded, 5);
    println!("\nreloaded model's top-5 for day {day}: {picks:?}");
    println!("scores identical to the in-memory trained model: ✓");
    std::fs::remove_file(&ckpt).ok();
}
