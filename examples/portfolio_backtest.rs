//! A realistic backtest report: train RT-GCN (T) through the COVID-like
//! crash at the train/test boundary, then walk the test period day by day
//! printing the cumulative IRR-5 curve against the market index — the
//! workflow of an investor using the library for daily stock selection
//! (paper Figure 6's scenario).
//!
//! ```sh
//! cargo run --release --example portfolio_backtest
//! ```

use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::{backtest, top_k_indices};
use rtgcn::market::{index_cumulative_returns, Market, RelationKind, Scale, StockDataset, UniverseSpec};

fn main() {
    let mut spec = UniverseSpec::of(Market::Nyse, Scale::Small);
    spec.stocks = 60;
    spec.train_days = 250;
    spec.test_days = 60;
    println!(
        "NYSE-like universe, {} stocks; crash regime starts at the first test day",
        spec.stocks
    );
    let ds = StockDataset::generate(spec, 11);

    let cfg = RtGcnConfig { epochs: 4, ..RtGcnConfig::with_strategy(Strategy::TimeSensitive) };
    let mut model = RtGcn::new(cfg, &ds.relations(RelationKind::Both), 11);
    println!("training RT-GCN (T)...");
    let fit = model.fit(&ds);
    println!("done in {:.1}s\n", fit.train_secs);

    let days = ds.test_end_days();
    let index = index_cumulative_returns(&ds, &days);
    let outcome = backtest(&mut model, &ds, &[5], 11);
    let curve = &outcome.daily_cumulative[&5];

    println!("day  IRR-5    {:>8}  daily picks", ds.spec.market.index_name());
    for (d, &day) in days.iter().enumerate() {
        if d % 5 != 0 && d + 1 != days.len() {
            continue; // print every 5th day plus the last
        }
        let scores = model.scores_for_day(&ds, day);
        let picks = top_k_indices(&scores, 5);
        println!(
            "{d:>3}  {:+.3}   {:+.3}    {:?}",
            curve[d], index[d], picks
        );
    }
    println!(
        "\nfinal: IRR-5 = {:+.3} vs {} = {:+.3}  ({})",
        curve.last().unwrap(),
        ds.spec.market.index_name(),
        index.last().unwrap(),
        if *curve.last().unwrap() > *index.last().unwrap() as f64 {
            "model beats the market index — the paper's usefulness criterion"
        } else {
            "model trails the index on this run"
        }
    );
}
