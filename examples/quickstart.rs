//! Quickstart: generate a small synthetic market, train RT-GCN with the
//! time-sensitive strategy, and print today's top-5 picks with their
//! realised next-day returns.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::{backtest, top_k_indices};
use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

fn main() {
    // 1. A CSI-like universe, shrunk for a fast demo.
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 40;
    spec.train_days = 200;
    spec.test_days = 40;
    println!("generating {} stocks x {} days...", spec.stocks, spec.total_days());
    let ds = StockDataset::generate(spec, 42);

    // 2. Train RT-GCN (T) — paper defaults: T = 16, 4 features, α = 0.1.
    let cfg = RtGcnConfig { epochs: 4, ..RtGcnConfig::with_strategy(Strategy::TimeSensitive) };
    let mut model = RtGcn::new(cfg, &ds.relations(RelationKind::Both), 42);
    println!("training RT-GCN (T) with {} parameters...", model.num_params());
    let report = model.fit(&ds);
    println!(
        "trained {} epochs in {:.1}s (final loss {:.5})",
        report.epoch_losses.len(),
        report.train_secs,
        report.final_loss
    );

    // 3. Rank stocks on the first test day; buy top-5 at close, sell next
    //    close (the paper's trading protocol).
    let day = ds.test_end_days()[0];
    let scores = model.scores_for_day(&ds, day);
    let picks = top_k_indices(&scores, 5);
    println!("\ntop-5 picks for day {day}:");
    for &i in &picks {
        println!(
            "  stock {:>3}: score {:+.4} -> realised next-day return {:+.3}%",
            i,
            scores[i],
            100.0 * ds.realized_return(day, i)
        );
    }

    // 4. Full test-period backtest.
    let outcome = backtest(&mut model, &ds, &[1, 5, 10], 42);
    println!("\ntest-period performance over {} days:", ds.spec.test_days);
    println!("  MRR    = {:.3}", outcome.mrr.unwrap());
    for (k, irr) in &outcome.irr {
        println!("  IRR-{k:<2} = {irr:+.3}");
    }
}
