//! Relation-family ablation (paper Table VI in miniature): train RT-GCN (T)
//! with wiki-only, industry-only and combined relations on the same market
//! and compare revenue — quantifying how much each relation source is worth.
//!
//! ```sh
//! cargo run --release --example relation_ablation
//! ```

use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::{backtest, fmt_opt, Table};
use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

fn main() {
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 60;
    spec.train_days = 250;
    spec.test_days = 50;
    let ds = StockDataset::generate(spec, 5);

    let mut table = Table::new(["Relations", "Pairs", "Types", "MRR", "IRR-1", "IRR-5"]);
    for (kind, label) in [
        (RelationKind::Wiki, "wiki only"),
        (RelationKind::Industry, "industry only"),
        (RelationKind::Both, "wiki + industry"),
    ] {
        let relations = ds.relations(kind);
        println!(
            "training with {label}: {} related pairs, {} types...",
            relations.num_related_pairs(),
            relations.num_types()
        );
        let cfg = RtGcnConfig { epochs: 4, ..RtGcnConfig::with_strategy(Strategy::TimeSensitive) };
        let mut model = RtGcn::new(cfg, &relations, 5);
        model.fit(&ds);
        let out = backtest(&mut model, &ds, &[1, 5], 5);
        table.add_row([
            label.to_string(),
            relations.num_related_pairs().to_string(),
            relations.num_types().to_string(),
            fmt_opt(out.mrr, 3),
            fmt_opt(out.irr.get(&1).copied(), 2),
            fmt_opt(out.irr.get(&5).copied(), 2),
        ]);
    }
    println!("\n{}", table.render());
    println!("paper's observation: industry relations (denser, ~5% of pairs) usually beat");
    println!("the sparse wiki relations (~0.3%), and combining the two does best.");
}
