//! Compare the three relation-aware strategies (paper Section IV-B) on one
//! market: uniform (Eq. 3), weighted (Eq. 4) and time-sensitive (Eq. 5),
//! plus the relation-blind Rank_LSTM as reference — a miniature of the
//! paper's core claim that relation-aware propagation, and especially its
//! time-sensitive form, earns higher investment revenue.
//!
//! ```sh
//! cargo run --release --example strategy_comparison
//! ```

use rtgcn::baselines::{LstmRanker, SeqConfig};
use rtgcn::core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn::eval::{backtest, fmt_opt, Table};
use rtgcn::market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};

fn main() {
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 60;
    spec.train_days = 250;
    spec.test_days = 50;
    println!("generating NASDAQ-like universe: {} stocks...", spec.stocks);
    let ds = StockDataset::generate(spec, 7);
    let relations = ds.relations(RelationKind::Both);
    println!(
        "relations: {} pairs over {} types ({:.1}% ratio)\n",
        relations.num_related_pairs(),
        relations.num_types(),
        100.0 * relations.relation_ratio()
    );

    let mut table = Table::new(["Model", "MRR", "IRR-1", "IRR-5", "IRR-10", "train s"]);

    // Relation-blind reference.
    let mut rank_lstm = LstmRanker::ranking(SeqConfig { epochs: 4, ..Default::default() }, 7);
    let fit = rank_lstm.fit(&ds);
    let out = backtest(&mut rank_lstm, &ds, &[1, 5, 10], 7);
    table.add_row([
        out.name.clone(),
        fmt_opt(out.mrr, 3),
        fmt_opt(out.irr.get(&1).copied(), 2),
        fmt_opt(out.irr.get(&5).copied(), 2),
        fmt_opt(out.irr.get(&10).copied(), 2),
        format!("{:.1}", fit.train_secs),
    ]);

    for strategy in Strategy::ALL {
        println!("training {} ...", strategy.label());
        let cfg = RtGcnConfig { epochs: 4, ..RtGcnConfig::with_strategy(strategy) };
        let mut model = RtGcn::new(cfg, &relations, 7);
        let fit = model.fit(&ds);
        let out = backtest(&mut model, &ds, &[1, 5, 10], 7);
        table.add_row([
            out.name.clone(),
            fmt_opt(out.mrr, 3),
            fmt_opt(out.irr.get(&1).copied(), 2),
            fmt_opt(out.irr.get(&5).copied(), 2),
            fmt_opt(out.irr.get(&10).copied(), 2),
            format!("{:.1}", fit.train_secs),
        ]);
    }

    println!("\n{}", table.render());
    println!("expected shape (paper Table IV): U < W < T on most metrics,");
    println!("and all three above the relation-blind Rank_LSTM.");
}
