//! # rtgcn-stream
//!
//! The streaming day-advance pipeline (DESIGN.md §14): roll a trained
//! ranker forward one trading day at a time without ever re-running the
//! batch pipeline.
//!
//! Each [`StreamEngine::advance`] call:
//!
//! 1. applies any relation mutations ([`DayEvent`] edge adds/drops) and,
//!    when the graph actually changed, rebuilds the per-plane dot cache and
//!    asks the model to absorb the new tensor
//!    ([`StockRanker::refresh_relations`]);
//! 2. appends one simulated day to the dataset (bit-identical to batch
//!    generation — see [`StockDataset::generate_through`]);
//! 3. updates the rolling moving-average state in O(1) per (stock, window)
//!    ([`FeatureStream::push_day`]) and refreshes exactly one time plane of
//!    the time-sensitive adjacency ([`TimePlaneCache::push_day`]);
//! 4. settles yesterday's prediction against the newly observable return
//!    (lagged next-day MRR / top-k return, the walk-forward protocol);
//! 5. re-scores the newest window through
//!    [`StockRanker::score_window_streamed`], handing the model the cached
//!    `(T, E_rel)` correlation factor so the time-sensitive strategy skips
//!    re-dotting `T − 1` already-seen planes;
//! 6. consults the [`RefitPolicy`] (day-count schedule or MRR drift) and
//!    retrains on the extended history when it fires.
//!
//! ## Parity contract
//!
//! Every piece of incremental state is a pure function of the day sequence:
//! [`StreamEngine::verify_parity`] rebuilds the dataset, feature stream,
//! and plane cache from scratch — replaying the recorded [`DayEvent`]s at
//! the days they originally landed — and demands **bitwise** equality,
//! including a fresh re-score through the same streamed path. "Close
//! enough" is not accepted: a single ulp of drift compounds over a long
//! walk.

use parking_lot::Mutex;
use rtgcn_core::{RefitPolicy, RefitReason, StockRanker};
use rtgcn_eval::metrics::{daily_topk_return, reciprocal_rank};
use rtgcn_graph::TimePlaneCache;
use rtgcn_market::{DayEvent, FeatureStream, RelationKind, StockDataset, WARMUP_DAYS};
use rtgcn_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The model slot the engine scores and refits through. `Arc`-shared so a
/// serving registry can expose the same instance behind `/score` while the
/// engine rolls it forward.
pub type SharedModel = Arc<Mutex<Box<dyn StockRanker + Send>>>;

/// Static streaming configuration. `t_steps`/`n_features`/`relation_kind`
/// must match what the model was trained with — the engine assembles
/// windows and correlation factors for exactly this shape.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub relation_kind: RelationKind,
    /// Portfolio size for the walk-forward top-k return.
    pub top_k: usize,
    pub refit: RefitPolicy,
}

impl StreamConfig {
    pub fn new(t_steps: usize, n_features: usize, relation_kind: RelationKind) -> Self {
        StreamConfig { t_steps, n_features, relation_kind, top_k: 5, refit: RefitPolicy::disabled() }
    }
}

/// What one advanced day produced — the walk-forward evaluation record the
/// smoke harness folds into `results/BENCH_stream.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DayOutcome {
    /// Index of the newly generated day.
    pub day: usize,
    /// Day whose prediction was settled (always `day − 1` after the first
    /// advance; `None` only if the engine had nothing outstanding).
    pub eval_day: Option<usize>,
    /// Lagged next-day MRR of the settled prediction.
    pub mrr: Option<f64>,
    /// Realised top-k portfolio return of the settled prediction.
    pub day_return: Option<f64>,
    /// Running sum of daily returns (the walk-forward IRR so far).
    pub cum_irr: f64,
    /// Whether a [`DayEvent`] changed the relation graph this day.
    pub relations_changed: bool,
    /// Which trigger refit the model, if any.
    pub refit: Option<RefitReason>,
    /// Wall-clock nanoseconds spent scoring the new day.
    pub score_ns: u64,
}

/// The day-advance orchestrator. Owns a dataset it rolls forward plus the
/// incremental feature/plane state, and drives a shared ranker.
pub struct StreamEngine {
    cfg: StreamConfig,
    ds: StockDataset,
    /// Seed the dataset was generated with (for the parity rebuild).
    seed: u64,
    /// Days of history present at construction (the parity rebuild
    /// truncates here before replaying).
    start_days: usize,
    /// Relation mutations by the day they took effect on.
    events: Vec<(usize, DayEvent)>,
    features: FeatureStream,
    planes: TimePlaneCache,
    model: SharedModel,
    /// Scores awaiting next-day settlement: `(end_day, scores)`.
    last_scores: Option<(usize, Vec<f32>)>,
    /// Lagged MRRs observed since the last (re)fit, newest last.
    mrr_history: Vec<f32>,
    /// Mean MRR over the first `drift_window` post-fit days (NaN until
    /// enough history exists) — the drift check's reference quality.
    baseline_mrr: f32,
    days_since_fit: usize,
    cum_irr: f64,
    outcomes: Vec<DayOutcome>,
}

impl StreamEngine {
    /// Wrap a dataset and an already-trained shared model. The engine
    /// immediately scores the newest generated day so the first
    /// [`Self::advance`] has a prediction to settle.
    ///
    /// For [`Self::verify_parity`] to hold, `ds` must be a pristine
    /// [`StockDataset::generate`]/[`StockDataset::generate_through`] product
    /// (no pre-construction mutations — the rebuild replays only events the
    /// engine itself witnessed).
    pub fn new(ds: StockDataset, model: SharedModel, cfg: StreamConfig) -> Self {
        let n = ds.n_stocks();
        let last_day = ds.days_generated().checked_sub(1).expect("empty dataset");
        assert!(
            last_day + 1 >= WARMUP_DAYS + cfg.t_steps,
            "dataset too short to score a {}-step window after warm-up",
            cfg.t_steps
        );
        let features = FeatureStream::from_prices(&ds.sim.prices);
        let edges = ds.relations(cfg.relation_kind).directed_edges();
        let raw = raw_history(&features, &ds.sim.prices, cfg.n_features);
        let planes = TimePlaneCache::from_history(n, cfg.n_features, edges, &raw);
        let seed = ds.sim.config.seed;
        let start_days = ds.days_generated();
        let mut engine = StreamEngine {
            cfg,
            ds,
            seed,
            start_days,
            events: Vec::new(),
            features,
            planes,
            model,
            last_scores: None,
            mrr_history: Vec::new(),
            baseline_mrr: f32::NAN,
            days_since_fit: 0,
            cum_irr: 0.0,
            outcomes: Vec::new(),
        };
        let (scores, _) = engine.score_day(last_day);
        engine.last_scores = Some((last_day, scores));
        engine
    }

    /// Shared handle to the model the engine drives.
    pub fn model(&self) -> SharedModel {
        Arc::clone(&self.model)
    }

    pub fn dataset(&self) -> &StockDataset {
        &self.ds
    }

    /// Index of the newest generated day.
    pub fn current_day(&self) -> usize {
        self.ds.days_generated() - 1
    }

    /// The outstanding prediction: `(end_day, scores)` for the newest day.
    pub fn latest_scores(&self) -> (usize, &[f32]) {
        let (d, s) = self.last_scores.as_ref().expect("engine always holds a prediction");
        (*d, s)
    }

    /// Walk-forward records of every advanced day, oldest first.
    pub fn outcomes(&self) -> &[DayOutcome] {
        &self.outcomes
    }

    /// Advance one trading day. See the module docs for the exact sequence.
    pub fn advance(&mut self, event: Option<DayEvent>) -> DayOutcome {
        let relations_changed = match &event {
            Some(ev) => {
                let changed = self.ds.apply_event(ev);
                if changed {
                    self.rebuild_relation_state();
                }
                changed
            }
            None => false,
        };
        let day = self.ds.append_day(None);
        if let Some(ev) = event {
            self.events.push((day, ev));
        }
        self.features.push_day(&self.ds.sim.prices);
        let row = raw_row(&self.features, &self.ds.sim.prices, day, self.cfg.n_features);
        self.planes.push_day(&row);

        // Settle yesterday's prediction: its next-day return just became
        // observable.
        let (eval_day, mrr, day_return) = match self.last_scores.take() {
            Some((prev_day, scores)) => {
                let n = self.ds.n_stocks();
                let truth: Vec<f32> =
                    (0..n).map(|i| self.ds.realized_return(prev_day, i)).collect();
                let mrr = reciprocal_rank(&scores, &truth);
                let ret = daily_topk_return(&scores, &truth, self.cfg.top_k);
                self.cum_irr += ret;
                self.mrr_history.push(mrr as f32);
                let w = self.cfg.refit.drift_window;
                if w > 0 && self.baseline_mrr.is_nan() && self.mrr_history.len() >= w {
                    self.baseline_mrr = self.mrr_history[..w].iter().sum::<f32>() / w as f32;
                }
                rtgcn_telemetry::gauge("stream.mrr", prev_day as u64, mrr);
                rtgcn_telemetry::gauge("stream.day_return", prev_day as u64, ret);
                rtgcn_telemetry::gauge("stream.cum_irr", prev_day as u64, self.cum_irr);
                (Some(prev_day), Some(mrr), Some(ret))
            }
            None => (None, None, None),
        };

        let (scores, score_ns) = self.score_day(day);
        self.last_scores = Some((day, scores));

        self.days_since_fit += 1;
        let refit =
            self.cfg.refit.should_refit(self.days_since_fit, &self.mrr_history, self.baseline_mrr);
        if let Some(reason) = refit {
            self.refit(reason);
            // Re-score with the refreshed parameters so the outstanding
            // prediction reflects the model that will be held overnight.
            let (scores, _) = self.score_day(day);
            self.last_scores = Some((day, scores));
        }

        let outcome = DayOutcome {
            day,
            eval_day,
            mrr,
            day_return,
            cum_irr: self.cum_irr,
            relations_changed,
            refit,
            score_ns,
        };
        self.outcomes.push(outcome.clone());
        outcome
    }

    /// Score the window ending at `day` through the streamed path, handing
    /// the model the cached correlation factor. Falls back to the dataset
    /// scoring path for models that cannot score raw windows.
    fn score_day(&mut self, day: usize) -> (Vec<f32>, u64) {
        let x = self.features.window(&self.ds.sim.prices, day, self.cfg.t_steps, self.cfg.n_features);
        let corr = self.corr_for(day);
        let t0 = Instant::now();
        let scores = {
            let mut m = self.model.lock();
            m.score_window_streamed(&x, Some(&corr))
                .unwrap_or_else(|| m.scores_for_day(&self.ds, day))
        };
        let ns = t0.elapsed().as_nanos() as u64;
        rtgcn_telemetry::record_ns("stream.score_ns", ns);
        assert_eq!(scores.len(), self.ds.n_stocks(), "model returned a wrong-sized ranking");
        (scores, ns)
    }

    /// Assemble the `(T, E_rel)` correlation factor for the window ending
    /// at `day` from the plane cache, with this window's anchors.
    fn corr_for(&self, day: usize) -> Tensor {
        let n = self.ds.n_stocks();
        let data = self.ds.sim.prices.data();
        // Same per-stock anchor (and clamp) `window_features` divides by.
        let anchors: Vec<f32> = (0..n).map(|i| data[day * n + i].max(1e-6)).collect();
        let scale = (self.cfg.n_features as f32).sqrt();
        self.planes.corr_window(day, self.cfg.t_steps, &anchors, scale)
    }

    /// After a relation mutation: swap the plane cache onto the new edge
    /// set (rebuilding every cached plane's dots) and hand the model the
    /// new tensor. A model that cannot absorb it keeps scoring through its
    /// own exact path — the dimension guard on the correlation override
    /// makes the stale fast path unusable rather than silently wrong.
    fn rebuild_relation_state(&mut self) {
        let relations = self.ds.relations(self.cfg.relation_kind);
        self.planes.set_edges(relations.directed_edges());
        if !self.model.lock().refresh_relations(&relations) {
            rtgcn_telemetry::warn(
                "stream.refresh_relations",
                "model could not absorb the mutated relation tensor; \
                 it keeps scoring against the stale graph until the next refit",
            );
        }
    }

    /// Retrain on all history generated so far: the training split is
    /// extended so its last window's next-day target is the newest day.
    fn refit(&mut self, reason: RefitReason) {
        let _span = rtgcn_telemetry::span("stream.refit");
        refit_counter().inc(1);
        let day = self.current_day();
        let mut train_ds = self.ds.clone();
        // Last usable train end-day is WARMUP_DAYS + train_days − 2; choose
        // train_days so that lands on `day − 1` (target = `day`, observable).
        train_ds.spec.train_days = (day + 1).saturating_sub(WARMUP_DAYS);
        let report = self.model.lock().fit(&train_ds);
        rtgcn_telemetry::gauge("stream.refit_loss", day as u64, report.final_loss as f64);
        rtgcn_telemetry::warn(
            "stream.refit",
            &format!(
                "day {day}: walk-forward refit ({reason:?}) over {} train days, final loss {:.4}",
                train_ds.spec.train_days, report.final_loss
            ),
        );
        self.days_since_fit = 0;
        self.mrr_history.clear();
        self.baseline_mrr = f32::NAN;
    }

    /// From-scratch rebuild of the dataset: regenerate the truncated
    /// history, then replay every recorded day with its original event.
    pub fn rebuild_dataset(&self) -> StockDataset {
        let mut fresh = StockDataset::generate_through(self.ds.spec.clone(), self.seed, self.start_days);
        for d in self.start_days..self.ds.days_generated() {
            let ev = self.events.iter().find(|(day, _)| *day == d).map(|(_, e)| e);
            fresh.append_day(ev);
        }
        fresh
    }

    /// Prove the streamed state bit-identical to a from-scratch rebuild:
    /// prices/returns, rolling feature state, per-plane dots, and a fresh
    /// re-score of the outstanding prediction. `Err` carries the first
    /// divergence found.
    pub fn verify_parity(&self) -> Result<(), String> {
        let fresh = self.rebuild_dataset();
        if fresh.sim.prices != self.ds.sim.prices {
            return Err("prices diverge from the batch rebuild".into());
        }
        if fresh.sim.returns != self.ds.sim.returns {
            return Err("returns diverge from the batch rebuild".into());
        }
        let relations = fresh.relations(self.cfg.relation_kind);
        if relations.directed_edges() != self.planes.edges() {
            return Err("relation edge set diverges from the batch rebuild".into());
        }

        let n = self.ds.n_stocks();
        let days = self.ds.days_generated();
        let ff = FeatureStream::from_prices(&fresh.sim.prices);
        for day in 0..days {
            for stock in 0..n {
                for k in 0..3 {
                    let (a, b) = (self.features.raw_ma(day, stock, k), ff.raw_ma(day, stock, k));
                    if a.to_bits() != b.to_bits() {
                        return Err(format!(
                            "raw MA diverges at day {day} stock {stock} window {k}: {a} vs {b}"
                        ));
                    }
                }
            }
        }

        let raw = raw_history(&ff, &fresh.sim.prices, self.cfg.n_features);
        let fp = TimePlaneCache::from_history(
            n,
            self.cfg.n_features,
            relations.directed_edges(),
            &raw,
        );
        // Unit anchors / unit scale expose the raw per-edge dots verbatim
        // (division by 1.0 is exact), over every generated plane at once.
        let ones = vec![1.0f32; n];
        let (a, b) =
            (self.planes.corr_window(days - 1, days, &ones, 1.0), fp.corr_window(days - 1, days, &ones, 1.0));
        let (ab, bb): (Vec<u32>, Vec<u32>) = (
            a.data().iter().map(|v| v.to_bits()).collect(),
            b.data().iter().map(|v| v.to_bits()).collect(),
        );
        if ab != bb {
            return Err("per-plane dots diverge from the batch rebuild".into());
        }

        // The outstanding prediction must reproduce exactly when the window
        // and correlation factor are reassembled from the rebuilt state.
        let (day, held) = self.latest_scores();
        let x = ff.window(&fresh.sim.prices, day, self.cfg.t_steps, self.cfg.n_features);
        let data = fresh.sim.prices.data();
        let anchors: Vec<f32> = (0..n).map(|i| data[day * n + i].max(1e-6)).collect();
        let corr = fp.corr_window(day, self.cfg.t_steps, &anchors, (self.cfg.n_features as f32).sqrt());
        let rescored = {
            let mut m = self.model.lock();
            m.score_window_streamed(&x, Some(&corr))
                .unwrap_or_else(|| m.scores_for_day(&fresh, day))
        };
        if rescored.len() != held.len()
            || rescored.iter().zip(held).any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err(format!("re-scored day {day} diverges from the held prediction"));
        }
        Ok(())
    }
}

/// One day's raw (pre-anchor) feature row, `n × d` row-major:
/// `[close, 5-day MA, 10-day MA, 20-day MA][..d]` per stock.
fn raw_row(features: &FeatureStream, prices: &Tensor, day: usize, n_features: usize) -> Vec<f32> {
    let n = features.n_stocks();
    let data = prices.data();
    let mut row = vec![0.0f32; n * n_features];
    for i in 0..n {
        row[i * n_features] = data[day * n + i];
        for f in 0..n_features - 1 {
            row[i * n_features + 1 + f] = features.raw_ma(day, i, f);
        }
    }
    row
}

/// Full raw feature history `(days, n, d)` for seeding a plane cache.
fn raw_history(features: &FeatureStream, prices: &Tensor, n_features: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(features.days() * features.n_stocks() * n_features);
    for day in 0..features.days() {
        out.extend_from_slice(&raw_row(features, prices, day, n_features));
    }
    out
}

fn refit_counter() -> &'static rtgcn_telemetry::Counter {
    static C: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| rtgcn_telemetry::counter("stream.refits"))
}

/// Box and share a ranker for the engine.
pub fn share_model(model: impl StockRanker + Send + 'static) -> SharedModel {
    Arc::new(Mutex::new(Box::new(model)))
}
