//! Streaming smoke harness (`run_experiments.sh --stream-smoke`): train a
//! tiny RT-GCN on a wiki-bearing universe truncated right before the crash
//! shock, then walk it forward day by day through the streaming engine —
//! incremental features, per-plane adjacency refresh, one edge add and one
//! edge drop mid-walk, scheduled walk-forward refits — verifying bitwise
//! parity against a from-scratch rebuild after the walk.
//!
//! The lagged walk-forward MRR / top-k return series land in the
//! `stream.mrr` / `stream.cum_irr` gauges and the `stream.score_ns`
//! histogram, which `rtgcn-report --harness stream_smoke` folds into
//! `results/BENCH_stream.json`.

rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{begin_model_scope, harness_error, HarnessArgs};
use rtgcn_core::{RefitPolicy, RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_market::{DayEvent, Market, RelationKind, Scale, StockDataset, UniverseSpec, WikiEdge};
use rtgcn_stream::{share_model, StreamConfig, StreamEngine};

const HARNESS: &str = "stream_smoke";
const T_STEPS: usize = 8;
const N_FEATURES: usize = 2;
/// Days to walk forward (the smoke-scale "test period").
const WALK_DAYS: usize = 12;
/// Walk steps at which the relation graph mutates.
const ADD_STEP: usize = 3;
const DROP_STEP: usize = 7;

/// A wiki-bearing universe small enough for the default gate. CSI has no
/// wiki types (Table III), so edge add events would be rejected there —
/// the walk runs on a shrunken NASDAQ.
fn smoke_spec() -> UniverseSpec {
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 14;
    spec.train_days = 60;
    spec.test_days = WALK_DAYS;
    spec.sectors = 3;
    spec
}

fn add_event(ds: &StockDataset) -> DayEvent {
    let n = ds.n_stocks();
    for i in 0..n {
        for j in (i + 1)..n {
            if !ds.wiki.relations.related(i, j) {
                return DayEvent {
                    add: vec![WikiEdge {
                        leader: i,
                        follower: j,
                        types: vec![0],
                        strength: 0.4,
                        period: 10,
                        phase: 0,
                        duty: 1.0,
                    }],
                    drop: vec![],
                };
            }
        }
    }
    harness_error(HARNESS, &"no unrelated pair to add an edge between");
}

fn drop_event(ds: &StockDataset) -> DayEvent {
    match ds.wiki.relations.pairs().next() {
        Some((i, j, _)) => DayEvent { add: vec![], drop: vec![(i, j)] },
        None => harness_error(HARNESS, &"no wiki pair to drop"),
    }
}

fn main() {
    // Must be set before HarnessArgs::init (which starts the server);
    // single-threaded at this point. An explicit RTGCN_MONITOR wins.
    if std::env::var("RTGCN_MONITOR").map(|v| v.trim().is_empty()).unwrap_or(true) {
        std::env::set_var("RTGCN_MONITOR", "127.0.0.1:0");
    }
    let (args, _telemetry) = HarnessArgs::init(HARNESS);
    begin_model_scope("stream");

    let spec = smoke_spec();
    let seed = args.base_seed;
    let shock = spec.test_start();
    // Truncate right before the shock: the first streamed day IS the crash
    // day, so the walk straddles the regime switch.
    let ds = StockDataset::generate_through(spec.clone(), seed, shock);
    let relations = ds.relations(RelationKind::Both);
    let cfg = RtGcnConfig {
        t_steps: T_STEPS,
        n_features: N_FEATURES,
        rel_filters: 8,
        temporal_filters: 8,
        epochs: args.epochs,
        strategy: Strategy::TimeSensitive,
        dropout: 0.0,
        ..Default::default()
    };
    let mut model = RtGcn::new(cfg, &relations, seed);
    let report = model.fit(&ds);
    if report.health == rtgcn_telemetry::health::HealthVerdict::Diverged {
        harness_error(HARNESS, &format!("training diverged: {:?}", report.epoch_health));
    }
    println!(
        "[{HARNESS}] trained RT-GCN (T) on {} stocks x {} train days in {:.1}s (final loss {:.4})",
        spec.stocks, spec.train_days, report.train_secs, report.final_loss
    );

    let mut scfg = StreamConfig::new(T_STEPS, N_FEATURES, RelationKind::Both);
    scfg.top_k = 3;
    scfg.refit = RefitPolicy::every(5);
    let mut engine = StreamEngine::new(ds, share_model(model), scfg);
    if let Err(e) = engine.verify_parity() {
        harness_error(HARNESS, &format!("pre-walk parity: {e}"));
    }

    let (mut mutations, mut refits) = (0usize, 0usize);
    for step in 0..WALK_DAYS {
        let event = match step {
            ADD_STEP => Some(add_event(engine.dataset())),
            DROP_STEP => Some(drop_event(engine.dataset())),
            _ => None,
        };
        let out = engine.advance(event);
        mutations += out.relations_changed as usize;
        refits += out.refit.is_some() as usize;
        println!(
            "[{HARNESS}] day {}: mrr {} cum_irr {:+.4}{}{}",
            out.day,
            out.mrr.map(|m| format!("{m:.3}")).unwrap_or_else(|| "-".into()),
            out.cum_irr,
            if out.relations_changed { " [graph mutated]" } else { "" },
            out.refit.map(|r| format!(" [refit: {r:?}]")).unwrap_or_default(),
        );
    }
    if let Err(e) = engine.verify_parity() {
        harness_error(HARNESS, &format!("post-walk parity: {e}"));
    }
    if mutations != 2 {
        harness_error(HARNESS, &format!("expected 1 add + 1 drop to mutate the graph, saw {mutations}"));
    }
    if refits == 0 {
        harness_error(HARNESS, &"the 5-day refit cadence never fired over the walk");
    }

    let settled: Vec<_> = engine.outcomes().iter().filter(|o| o.mrr.is_some()).collect();
    if settled.len() != WALK_DAYS {
        harness_error(HARNESS, &format!("expected {WALK_DAYS} settled days, got {}", settled.len()));
    }
    let mean_mrr =
        settled.iter().map(|o| o.mrr.unwrap()).sum::<f64>() / settled.len() as f64;
    let final_irr = settled.last().map(|o| o.cum_irr).unwrap_or(0.0);
    if !(mean_mrr.is_finite() && mean_mrr > 0.0 && final_irr.is_finite()) {
        harness_error(HARNESS, &format!("degenerate walk-forward metrics: mrr {mean_mrr}, irr {final_irr}"));
    }
    println!(
        "[{HARNESS}] walk-forward: {} days (shock at {shock}), mean MRR {mean_mrr:.4}, \
         cumulative IRR {final_irr:+.4}, {refits} refits, {mutations} graph mutations",
        settled.len(),
    );
    println!("[{HARNESS}] streaming parity verified: bit-identical to batch rebuild at day {}",
        engine.current_day());
}
