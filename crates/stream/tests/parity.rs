//! The streaming parity suite (ISSUE acceptance gate): a K-day walk with
//! relation mutations mid-stream, crossing the crash shock at
//! `test_start()`, must stay **bit-identical** to a from-scratch batch
//! rebuild at every day — dataset, rolling features, per-plane dots, and
//! the held prediction itself.

use rtgcn_core::{FitReport, RefitPolicy, RefitReason, RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_market::{
    DayEvent, Market, RelationKind, Scale, StockDataset, UniverseSpec, WikiEdge,
};
use rtgcn_stream::{share_model, StreamConfig, StreamEngine};

const T_STEPS: usize = 8;
const N_FEATURES: usize = 2;

fn tiny_spec() -> UniverseSpec {
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 12;
    spec.train_days = 50;
    spec.test_days = 10;
    spec.sectors = 3;
    spec
}

fn trained_engine(seed: u64, refit: RefitPolicy) -> StreamEngine {
    let spec = tiny_spec();
    // Truncate right before the shock day: the first advance generates
    // `test_start()` itself, so the walk straddles the crash regime switch.
    let ds = StockDataset::generate_through(spec.clone(), seed, spec.test_start());
    let relations = ds.relations(RelationKind::Both);
    let cfg = RtGcnConfig {
        t_steps: T_STEPS,
        n_features: N_FEATURES,
        rel_filters: 8,
        temporal_filters: 8,
        epochs: 1,
        strategy: Strategy::TimeSensitive,
        dropout: 0.0,
        ..Default::default()
    };
    let mut model = RtGcn::new(cfg, &relations, seed);
    model.fit(&ds);
    let mut scfg = StreamConfig::new(T_STEPS, N_FEATURES, RelationKind::Both);
    scfg.top_k = 3;
    scfg.refit = refit;
    StreamEngine::new(ds, share_model(model), scfg)
}

/// An add event for some currently-unrelated pair.
fn add_event(ds: &StockDataset) -> DayEvent {
    let n = ds.n_stocks();
    for i in 0..n {
        for j in (i + 1)..n {
            if !ds.wiki.relations.related(i, j) {
                return DayEvent {
                    add: vec![WikiEdge {
                        leader: i,
                        follower: j,
                        types: vec![0],
                        strength: 0.4,
                        period: 10,
                        phase: 0,
                        duty: 1.0,
                    }],
                    drop: vec![],
                };
            }
        }
    }
    panic!("universe is a complete graph?");
}

/// A drop event for some currently-related pair.
fn drop_event(ds: &StockDataset) -> DayEvent {
    let (i, j, _) = ds.wiki.relations.pairs().next().expect("no wiki pairs to drop");
    DayEvent { add: vec![], drop: vec![(i, j)] }
}

#[test]
fn streamed_walk_with_mutations_is_bit_identical_to_rebuild() {
    let mut engine = trained_engine(11, RefitPolicy::disabled());
    let shock = engine.dataset().spec.test_start();
    assert_eq!(engine.current_day(), shock - 1, "walk must start just before the shock");
    engine.verify_parity().expect("pre-walk parity");
    let mut mutated_days = 0;
    for step in 0..8 {
        let event = match step {
            2 => Some(add_event(engine.dataset())),
            5 => Some(drop_event(engine.dataset())),
            _ => None,
        };
        let out = engine.advance(event);
        mutated_days += out.relations_changed as usize;
        // Bitwise parity against a from-scratch rebuild at EVERY day, not
        // just at the end — the ISSUE's acceptance bar.
        engine.verify_parity().unwrap_or_else(|e| panic!("day {}: {e}", out.day));
        assert_eq!(out.day, shock + step, "days must advance one at a time");
        assert!(out.mrr.is_some(), "every advance settles the previous prediction");
    }
    assert_eq!(mutated_days, 2, "one add and one drop must have changed the graph");
    assert!(engine.current_day() >= shock + 7, "walk crossed the crash shock");
    let (_, scores) = engine.latest_scores();
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn streamed_scores_match_batch_scoring_to_tolerance() {
    // Cross-path check: the cached-plane fast path against the model's own
    // batch path over `window_features`. Different op order, so float
    // tolerance — the bitwise contract lives in verify_parity.
    let mut engine = trained_engine(17, RefitPolicy::disabled());
    for _ in 0..3 {
        engine.advance(None);
    }
    let (day, streamed) = engine.latest_scores();
    let streamed = streamed.to_vec();
    let model = engine.model();
    // `scores_for_day` would demand the not-yet-generated next-day target,
    // so the batch path scores the `window_features` window directly.
    let x = rtgcn_market::window_features(&engine.dataset().sim.prices, day, T_STEPS, N_FEATURES);
    let batch = model.lock().score_window(&x).expect("RT-GCN scores raw windows");
    assert_eq!(streamed.len(), batch.len());
    for (s, b) in streamed.iter().zip(&batch) {
        assert!(
            (s - b).abs() <= 1e-3 * b.abs().max(1.0),
            "streamed {s} vs batch {b} at day {day}"
        );
    }
}

#[test]
fn schedule_refit_fires_on_cadence_and_resets() {
    let mut engine = trained_engine(23, RefitPolicy::every(3));
    let mut refit_days = Vec::new();
    for _ in 0..7 {
        let out = engine.advance(None);
        if let Some(reason) = out.refit {
            assert_eq!(reason, RefitReason::Schedule);
            refit_days.push(out.day);
        }
        let (_, scores) = engine.latest_scores();
        assert!(scores.iter().all(|s| s.is_finite()), "post-refit scores must stay finite");
    }
    let shock = engine.dataset().spec.test_start();
    assert_eq!(refit_days, vec![shock + 2, shock + 5], "every third advanced day");
    engine.verify_parity().expect("refits must not disturb data-side parity");
}

/// A model that cannot score raw windows: the engine must fall back to the
/// dataset scoring path and keep full parity.
struct IndexRanker;

impl StockRanker for IndexRanker {
    fn name(&self) -> String {
        "index".into()
    }
    fn fit(&mut self, _ds: &StockDataset) -> FitReport {
        FitReport::default()
    }
    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        // Yesterday's return as today's score: deterministic, data-derived.
        (0..ds.n_stocks()).map(|i| ds.realized_return(end_day - 1, i)).collect()
    }
}

#[test]
fn window_less_models_fall_back_and_keep_parity() {
    let spec = tiny_spec();
    let ds = StockDataset::generate_through(spec.clone(), 31, spec.test_start());
    let mut cfg = StreamConfig::new(T_STEPS, N_FEATURES, RelationKind::Both);
    cfg.top_k = 3;
    let mut engine = StreamEngine::new(ds, share_model(IndexRanker), cfg);
    for step in 0..4 {
        let event = (step == 1).then(|| add_event(engine.dataset()));
        engine.advance(event);
        engine.verify_parity().expect("fallback path must preserve parity");
    }
    let (day, scores) = engine.latest_scores();
    assert_eq!(day, spec.test_start() + 3);
    assert!(scores.iter().any(|&s| s != 0.0), "fallback scores must be real data");
}
