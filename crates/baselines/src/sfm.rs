//! SFM — State Frequency Memory recurrent network (Zhang, Aggarwal & Qi,
//! KDD 2017 [1]), a regression baseline that decomposes the cell state into
//! `K` frequency components.
//!
//! Recurrence (real/imaginary parts kept separately):
//!
//! ```text
//! f_t   = f_state ⊗ f_freq                         (joint forgetting, (H,K))
//! ReS_t = f_t ∘ ReS_{t−1} + (i_t ∘ c̃_t) ⊗ cos(ω t)
//! ImS_t = f_t ∘ ImS_{t−1} + (i_t ∘ c̃_t) ⊗ sin(ω t)
//! A_t   = √(ReS² + ImS²)                           (amplitude, (H,K))
//! c_t   = tanh(A_t · W_a + b_a)                    (combine frequencies)
//! h_t   = o_t ∘ tanh(c_t)
//! ```
//!
//! with frequencies `ω_k = 2πk/K` and LSTM-style gates. Trained with MSE on
//! the next-day return ratio (Table IV lists SFM under REG).

use crate::recurrent::split_window;
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_market::StockDataset;
use rtgcn_tensor::{clip_grad_norm, init, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor, Var};
use std::time::Instant;

/// SFM configuration.
#[derive(Clone, Debug)]
pub struct SfmConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    /// Number of frequency components K.
    pub freqs: usize,
    pub epochs: usize,
    pub lr: f32,
}

impl Default for SfmConfig {
    fn default() -> Self {
        SfmConfig { t_steps: 16, n_features: 4, hidden: 24, freqs: 4, epochs: 6, lr: 1e-3 }
    }
}

struct GateParams {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
}

/// The SFM recurrent regressor.
pub struct Sfm {
    pub cfg: SfmConfig,
    store: ParamStore,
    f_state: GateParams,
    f_freq: GateParams,
    i_gate: GateParams,
    o_gate: GateParams,
    c_gate: GateParams,
    w_amp: ParamId,
    b_amp: ParamId,
    w_out: ParamId,
    b_out: ParamId,
}

impl Sfm {
    pub fn new(cfg: SfmConfig, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let mut store = ParamStore::new();
        let gate = |name: &str, out: usize, store: &mut ParamStore, rng: &mut _| GateParams {
            wx: store.add(format!("{name}.wx"), init::xavier([cfg.n_features, out], rng)),
            wh: store.add(format!("{name}.wh"), init::xavier([cfg.hidden, out], rng)),
            b: store.add(format!("{name}.b"), Tensor::zeros([out])),
        };
        let f_state = gate("f_state", cfg.hidden, &mut store, &mut rng);
        let f_freq = gate("f_freq", cfg.freqs, &mut store, &mut rng);
        let i_gate = gate("i", cfg.hidden, &mut store, &mut rng);
        let o_gate = gate("o", cfg.hidden, &mut store, &mut rng);
        let c_gate = gate("c", cfg.hidden, &mut store, &mut rng);
        let w_amp = store.add("amp.w", init::xavier([cfg.hidden * cfg.freqs, cfg.hidden], &mut rng));
        let b_amp = store.add("amp.b", Tensor::zeros([cfg.hidden]));
        let w_out = store.add("out.w", init::xavier([cfg.hidden, 1], &mut rng));
        let b_out = store.add("out.b", Tensor::zeros([1]));
        Sfm { cfg, store, f_state, f_freq, i_gate, o_gate, c_gate, w_amp, b_amp, w_out, b_out }
    }

    fn gate(&self, tape: &mut Tape, g: &GateParams, x: Var, h: Var) -> Var {
        let wx = self.store.bind(tape, g.wx);
        let wh = self.store.bind(tape, g.wh);
        let b = self.store.bind(tape, g.b);
        let xp = tape.linear(x, wx, b);
        let hp = tape.matmul(h, wh);
        let pre = tape.add(xp, hp);
        tape.sigmoid(pre)
    }

    /// Forward over a window; returns predicted return ratios `(N)`.
    fn forward(&self, tape: &mut Tape, x: &Tensor) -> Var {
        let n = x.dims()[1];
        let (hdim, k) = (self.cfg.hidden, self.cfg.freqs);
        let xs = split_window(tape, x);
        let mut h = tape.constant(Tensor::zeros([n, hdim]));
        let mut re_s = tape.constant(Tensor::zeros([n, hdim, k]));
        let mut im_s = tape.constant(Tensor::zeros([n, hdim, k]));
        for (t, &x_t) in xs.iter().enumerate() {
            let fs = self.gate(tape, &self.f_state, x_t, h); // (N, H)
            let ff = self.gate(tape, &self.f_freq, x_t, h); // (N, K)
            let ig = self.gate(tape, &self.i_gate, x_t, h); // (N, H)
            let og = self.gate(tape, &self.o_gate, x_t, h); // (N, H)
            let wx = self.store.bind(tape, self.c_gate.wx);
            let wh = self.store.bind(tape, self.c_gate.wh);
            let b = self.store.bind(tape, self.c_gate.b);
            let cx = tape.linear(x_t, wx, b);
            let ch = tape.matmul(h, wh);
            let c_pre = tape.add(cx, ch);
            let c_tilde = tape.tanh(c_pre); // (N, H)
            // Joint forget gate f_state ⊗ f_freq → (N, H, K).
            let fs3 = tape.reshape(fs, [n, hdim, 1]);
            let ff3 = tape.reshape(ff, [n, 1, k]);
            let f_joint = tape.mul(fs3, ff3);
            // Input contribution (i ∘ c̃) ⊗ [cos ωt | sin ωt].
            let inp = tape.mul(ig, c_tilde); // (N, H)
            let inp3 = tape.reshape(inp, [n, hdim, 1]);
            let step = (t + 1) as f32;
            let cos_row: Vec<f32> = (0..k)
                .map(|kk| (2.0 * std::f32::consts::PI * kk as f32 / k as f32 * step).cos())
                .collect();
            let sin_row: Vec<f32> = (0..k)
                .map(|kk| (2.0 * std::f32::consts::PI * kk as f32 / k as f32 * step).sin())
                .collect();
            let cos_c = tape.constant(Tensor::new([1, 1, k], cos_row));
            let sin_c = tape.constant(Tensor::new([1, 1, k], sin_row));
            let add_re = tape.mul(inp3, cos_c);
            let add_im = tape.mul(inp3, sin_c);
            let keep_re = tape.mul(f_joint, re_s);
            let keep_im = tape.mul(f_joint, im_s);
            re_s = tape.add(keep_re, add_re);
            im_s = tape.add(keep_im, add_im);
            // Amplitude and frequency combination.
            let re2 = tape.square(re_s);
            let im2 = tape.square(im_s);
            let sum = tape.add(re2, im2);
            let eps = tape.add_scalar(sum, 1e-8);
            let amp = tape.sqrt(eps); // (N, H, K)
            let amp_flat = tape.reshape(amp, [n, hdim * k]);
            let wa = self.store.bind(tape, self.w_amp);
            let ba = self.store.bind(tape, self.b_amp);
            let c_pre2 = tape.linear(amp_flat, wa, ba);
            let c_t = tape.tanh(c_pre2); // (N, H)
            let c_act = tape.tanh(c_t);
            h = tape.mul(og, c_act);
        }
        let w = self.store.bind(tape, self.w_out);
        let b = self.store.bind(tape, self.b_out);
        let out = tape.linear(h, w, b);
        tape.reshape(out, [n])
    }
}

impl StockRanker for Sfm {
    fn name(&self) -> String {
        "SFM".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, 1e-4);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        for _ in 0..self.cfg.epochs {
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let mut tape = Tape::new();
                let pred = self.forward(&mut tape, &s.x);
                let loss = tape.mse(pred, &s.y);
                acc += tape.value(loss).item() as f64;
                tape.backward(loss);
                self.store.absorb_grads(&tape);
                clip_grad_norm(&mut self.store, 5.0);
                opt.step(&mut self.store);
            }
            epoch_losses.push((acc / days.len().max(1) as f64) as f32);
        }
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, &s.x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 6;
        spec.train_days = 45;
        spec.test_days = 8;
        StockDataset::generate(spec, 7)
    }

    fn tiny_cfg() -> SfmConfig {
        SfmConfig { t_steps: 8, n_features: 2, hidden: 6, freqs: 3, epochs: 2, lr: 2e-3 }
    }

    #[test]
    fn fit_and_score_finite() {
        let ds = tiny_ds();
        let mut m = Sfm::new(tiny_cfg(), 1);
        let rep = m.fit(&ds);
        assert!(rep.final_loss.is_finite());
        let scores = m.scores_for_day(&ds, ds.test_end_days()[0]);
        assert_eq!(scores.len(), 6);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn frequency_state_is_three_dimensional() {
        // A forward pass must not panic on shape mismatches across
        // (N, H, K) broadcasting — this exercises the whole recurrence.
        let ds = tiny_ds();
        let m = Sfm::new(tiny_cfg(), 2);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let pred = m.forward(&mut tape, &s.x);
        assert_eq!(tape.value(pred).dims(), &[6]);
        m.store.clear_bindings();
    }

    #[test]
    fn loss_decreases() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.epochs = 4;
        let mut m = Sfm::new(cfg, 3);
        let rep = m.fit(&ds);
        assert!(
            rep.epoch_losses.last().unwrap() <= rep.epoch_losses.first().unwrap(),
            "{:?}",
            rep.epoch_losses
        );
    }

    #[test]
    fn gradients_reach_frequency_gates() {
        let ds = tiny_ds();
        let mut m = Sfm::new(tiny_cfg(), 4);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let pred = m.forward(&mut tape, &s.x);
        let loss = tape.mse(pred, &s.y);
        tape.backward(loss);
        m.store.absorb_grads(&tape);
        let id = m.store.id("f_freq.wx").unwrap();
        assert!(m.store.grad(id).norm() > 0.0, "frequency forget gate must receive gradient");
    }
}
