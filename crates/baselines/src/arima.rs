//! ARIMA trend-classification baseline (Wang & Leu [14]).
//!
//! Per stock, an ARIMA(p, 1, q) model is fitted on log closing prices by
//! conditional least squares using the Hannan–Rissanen two-stage procedure:
//! (1) a long autoregression estimates innovations; (2) OLS on lagged
//! differences and lagged innovations gives the AR and MA coefficients. The
//! next-day forecast is thresholded into up / neutral / down — the paper's
//! classification baselines cannot rank, so the evaluator draws random
//! top-N among predicted-up stocks (Section V-C.1).

use rtgcn_core::{FitReport, StockRanker};
use rtgcn_eval::CLASS_UP;
use rtgcn_market::StockDataset;
use std::time::Instant;

/// ARIMA configuration.
#[derive(Clone, Debug)]
pub struct ArimaConfig {
    /// AR order p.
    pub p: usize,
    /// MA order q.
    pub q: usize,
    /// Long-AR order for stage 1 of Hannan–Rissanen.
    pub long_ar: usize,
    /// Classification threshold on the forecast daily return.
    pub threshold: f64,
}

impl Default for ArimaConfig {
    fn default() -> Self {
        ArimaConfig { p: 3, q: 1, long_ar: 8, threshold: 0.001 }
    }
}

/// Fitted per-stock coefficients: intercept, AR terms, MA terms, and the
/// trailing innovations needed for forecasting.
#[derive(Clone, Debug, Default)]
struct StockModel {
    intercept: f64,
    ar: Vec<f64>,
    ma: Vec<f64>,
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for (near-)singular systems.
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for (row, arow) in a.iter().enumerate() {
        assert_eq!(arow.len(), n, "row {row} has wrong width");
    }
    assert_eq!(a.len(), n, "matrix must be square");
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            // lint:allow(float-literal-equality) exact-zero skip is a pure elimination shortcut
            if factor == 0.0 {
                continue;
            }
            // `k` reads row `col` while mutating row `row`; an iterator form
            // would need split_at_mut gymnastics for no clarity gain.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// OLS fit `y ≈ X β` via normal equations with a tiny ridge for stability.
fn ols(x_rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = x_rows.first()?.len();
    let mut xtx = vec![vec![0.0; n]; n];
    let mut xty = vec![0.0; n];
    for (row, &yv) in x_rows.iter().zip(y) {
        for i in 0..n {
            for j in 0..n {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * yv;
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-8;
    }
    solve_linear(xtx, xty)
}

/// Fit AR(p)+MA(q) on a differenced series via Hannan–Rissanen. Returns the
/// model and the full innovation series (aligned with `diffs`).
fn fit_hannan_rissanen(diffs: &[f64], cfg: &ArimaConfig) -> (StockModel, Vec<f64>) {
    let n = diffs.len();
    let fallback = || {
        let mean = diffs.iter().sum::<f64>() / n.max(1) as f64;
        (StockModel { intercept: mean, ar: vec![0.0; cfg.p], ma: vec![0.0; cfg.q] }, vec![0.0; n])
    };
    if n <= cfg.long_ar + cfg.p + cfg.q + 4 {
        return fallback();
    }
    // Stage 1: long AR for innovations.
    let m = cfg.long_ar;
    let mut rows = Vec::with_capacity(n - m);
    let mut ys = Vec::with_capacity(n - m);
    for t in m..n {
        let mut row = vec![1.0];
        row.extend((1..=m).map(|k| diffs[t - k]));
        rows.push(row);
        ys.push(diffs[t]);
    }
    let Some(beta) = ols(&rows, &ys) else { return fallback() };
    let mut innov = vec![0.0; n];
    for t in m..n {
        let mut pred = beta[0];
        for k in 1..=m {
            pred += beta[k] * diffs[t - k];
        }
        innov[t] = diffs[t] - pred;
    }
    // Stage 2: OLS on p lagged diffs + q lagged innovations.
    let start = m.max(cfg.p).max(cfg.q);
    let mut rows2 = Vec::with_capacity(n - start);
    let mut ys2 = Vec::with_capacity(n - start);
    for t in start..n {
        let mut row = vec![1.0];
        row.extend((1..=cfg.p).map(|k| diffs[t - k]));
        row.extend((1..=cfg.q).map(|k| innov[t - k]));
        rows2.push(row);
        ys2.push(diffs[t]);
    }
    let Some(beta2) = ols(&rows2, &ys2) else { return fallback() };
    let model = StockModel {
        intercept: beta2[0],
        ar: beta2[1..=cfg.p].to_vec(),
        ma: beta2[cfg.p + 1..=cfg.p + cfg.q].to_vec(),
    };
    (model, innov)
}

/// The ARIMA classification baseline.
pub struct Arima {
    pub cfg: ArimaConfig,
    models: Vec<StockModel>,
}

impl Arima {
    pub fn new(cfg: ArimaConfig) -> Self {
        Arima { cfg, models: Vec::new() }
    }

    /// Log-price differences of stock `i` over days `..=end` (inclusive).
    fn diffs_up_to(ds: &StockDataset, i: usize, end: usize) -> Vec<f64> {
        (1..=end)
            .map(|d| (ds.sim.price(d, i) as f64).ln() - (ds.sim.price(d - 1, i) as f64).ln())
            .collect()
    }

    /// One-step forecast of the next diff from trailing data and innovations
    /// recomputed with the fitted model.
    fn forecast(&self, model: &StockModel, diffs: &[f64]) -> f64 {
        let n = diffs.len();
        let p = model.ar.len();
        let q = model.ma.len();
        if n < p.max(q) + 1 {
            return model.intercept;
        }
        // Recompute recent innovations with the fitted (not long-AR) model.
        let lookback = (p.max(q) + q + 4).min(n);
        let base = n - lookback;
        let mut innov = vec![0.0; lookback];
        for t in 0..lookback {
            let abs_t = base + t;
            let mut pred = model.intercept;
            for (k, &phi) in model.ar.iter().enumerate() {
                if abs_t > k {
                    pred += phi * diffs[abs_t - 1 - k];
                }
            }
            for (k, &theta) in model.ma.iter().enumerate() {
                if t > k {
                    pred += theta * innov[t - 1 - k];
                }
            }
            innov[t] = diffs[abs_t] - pred;
        }
        let mut f = model.intercept;
        for (k, &phi) in model.ar.iter().enumerate() {
            f += phi * diffs[n - 1 - k];
        }
        for (k, &theta) in model.ma.iter().enumerate() {
            f += theta * innov[lookback - 1 - k];
        }
        f
    }
}

impl StockRanker for Arima {
    fn name(&self) -> String {
        "ARIMA".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let t0 = Instant::now();
        let train_end = ds.spec.test_start() - 1;
        self.models = (0..ds.n_stocks())
            .map(|i| {
                let diffs = Self::diffs_up_to(ds, i, train_end);
                fit_hannan_rissanen(&diffs, &self.cfg).0
            })
            .collect();
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: f32::NAN,
            epoch_losses: Vec::new(),
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        assert!(!self.models.is_empty(), "fit() must run before scoring");
        (0..ds.n_stocks())
            .map(|i| {
                let diffs = Self::diffs_up_to(ds, i, end_day);
                let f = self.forecast(&self.models[i], &diffs);
                if f > self.cfg.threshold {
                    CLASS_UP
                } else if f < -self.cfg.threshold {
                    0.0
                } else {
                    1.0
                }
            })
            .collect()
    }

    fn can_rank(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    #[test]
    fn linear_solver_known_system() {
        // 2x + y = 5; x − y = 1 → x = 2, y = 1.
        let x = solve_linear(vec![vec![2.0, 1.0], vec![1.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_rejected() {
        assert!(solve_linear(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ar_recovers_coefficients_of_synthetic_ar2() {
        // Simulate AR(2): x_t = 0.5 x_{t−1} − 0.3 x_{t−2} + ε.
        let mut x = vec![0.0f64; 2000];
        let mut state = 12345u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.1
        };
        for t in 2..2000 {
            x[t] = 0.5 * x[t - 1] - 0.3 * x[t - 2] + noise();
        }
        let cfg = ArimaConfig { p: 2, q: 0, long_ar: 6, threshold: 0.001 };
        let (model, _) = fit_hannan_rissanen(&x, &cfg);
        assert!((model.ar[0] - 0.5).abs() < 0.08, "φ1 = {}", model.ar[0]);
        assert!((model.ar[1] + 0.3).abs() < 0.08, "φ2 = {}", model.ar[1]);
    }

    #[test]
    fn classifies_with_three_labels() {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 80;
        spec.test_days = 10;
        let ds = StockDataset::generate(spec, 4);
        let mut m = Arima::new(ArimaConfig::default());
        m.fit(&ds);
        assert!(!m.can_rank());
        let day = ds.test_end_days()[0];
        let scores = m.scores_for_day(&ds, day);
        assert_eq!(scores.len(), 8);
        assert!(scores.iter().all(|&s| s == 0.0 || s == 1.0 || s == 2.0));
    }

    #[test]
    fn short_series_falls_back_to_mean() {
        let cfg = ArimaConfig::default();
        let (model, _) = fit_hannan_rissanen(&[0.01, 0.02, 0.03], &cfg);
        assert!((model.intercept - 0.02).abs() < 1e-12);
        assert!(model.ar.iter().all(|&a| a == 0.0));
    }
}
