//! RSR — Relational Stock Ranking (Feng et al., TOIS 2019 [9]), the paper's
//! strongest baseline family. Two-step architecture: an LSTM encodes each
//! stock's window into a sequential embedding, then a *temporal graph
//! convolution* revises embeddings through the relation graph, and a fully
//! connected head produces the ranking score (trained with the same
//! regression + pairwise-ranking objective).
//!
//! Two relation-strength variants, as in the original:
//! - **RSR_I (implicit)**: strength `g_ij = e_iᵀ e_j` from embedding
//!   similarity alone;
//! - **RSR_E (explicit)**: similarity is modulated by a learned function of
//!   the relation vector, `g_ij = (e_iᵀ e_j) · (𝒜_ijᵀ w + b)`.
//!
//! Both are normalised by destination degree before propagation.

use crate::lstm_rankers::BASELINE_L2;
use crate::recurrent::{optimise_step, split_window, LstmCell};
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_graph::RelationTensor;
use rtgcn_market::{RelationKind, StockDataset};
use rtgcn_telemetry::health::{HealthConfig, HealthMonitor};
use rtgcn_tensor::{init, Adam, CsrEdges, ParamId, ParamStore, Tape, Tensor, Var};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which relation-strength function RSR uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RsrVariant {
    Implicit,
    Explicit,
}

/// RSR configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RsrConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub alpha: f32,
    pub variant: RsrVariant,
    /// Relation family used to build the graph.
    pub relation_kind: RelationKind,
    /// Stop the fit loop early once the health monitor reports divergence.
    pub abort_on_divergence: bool,
}

impl Default for RsrConfig {
    fn default() -> Self {
        RsrConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 32,
            epochs: 6,
            lr: 1e-3,
            alpha: 0.1,
            variant: RsrVariant::Explicit,
            relation_kind: RelationKind::Both,
            abort_on_divergence: false,
        }
    }
}

/// The RSR model. Built lazily on first `fit` because the relation graph
/// comes from the dataset.
pub struct Rsr {
    pub cfg: RsrConfig,
    seed: u64,
    store: ParamStore,
    cell: Option<LstmCell>,
    w_rel: Option<ParamId>,
    b_rel: Option<ParamId>,
    w_out: Option<ParamId>,
    b_out: Option<ParamId>,
    csr: Option<CsrEdges>,
    multi_hot: Option<Tensor>,
    inv_deg_dst: Option<Tensor>,
}

impl Rsr {
    pub fn new(cfg: RsrConfig, seed: u64) -> Self {
        Rsr {
            cfg,
            seed,
            store: ParamStore::new(),
            cell: None,
            w_rel: None,
            b_rel: None,
            w_out: None,
            b_out: None,
            csr: None,
            multi_hot: None,
            inv_deg_dst: None,
        }
    }

    fn ensure_built(&mut self, relations: &RelationTensor) {
        if self.cell.is_some() {
            return;
        }
        let mut rng = init::rng(self.seed);
        let cfg = &self.cfg;
        self.cell =
            Some(LstmCell::new(&mut self.store, "lstm", cfg.n_features, cfg.hidden, &mut rng));
        let k = relations.num_types().max(1);
        self.w_rel = Some(self.store.add("rel.w", init::normal([k, 1], 0.1, &mut rng)));
        self.b_rel = Some(self.store.add("rel.b", Tensor::from_vec(vec![1.0])));
        self.w_out = Some(self.store.add("out.w", init::xavier([2 * cfg.hidden, 1], &mut rng)));
        self.b_out = Some(self.store.add("out.b", Tensor::zeros([1])));
        let n = relations.num_stocks();
        let pairs = relations.directed_edges();
        let mut deg = vec![0.0f32; n];
        for &[_, d] in &pairs {
            deg[d] += 1.0;
        }
        let inv: Vec<f32> =
            pairs.iter().map(|&[_, d]| 1.0 / deg[d].max(1.0)).collect();
        self.inv_deg_dst = Some(Tensor::from_vec(inv));
        let hot = if relations.num_types() == 0 {
            Tensor::zeros([pairs.len(), 1])
        } else {
            Tensor::new([pairs.len(), relations.num_types()], relations.edge_multi_hot_flat())
        };
        self.multi_hot = Some(hot);
        self.csr = Some(CsrEdges::from_pairs(n, pairs));
    }

    /// Forward to ranking scores `(N)`.
    fn forward(&self, tape: &mut Tape, x: &Tensor) -> Var {
        let n = x.dims()[1];
        let cell = self.cell.as_ref().expect("fit() builds the model first");
        let csr = self.csr.as_ref().unwrap();
        let edges = &csr.edges;
        let temporal = rtgcn_telemetry::span("temporal");
        let xs = split_window(tape, x);
        let hs = cell.encode(tape, &self.store, &xs, n);
        let e = *hs.last().expect("non-empty window"); // (N, H)
        drop(temporal);
        let _relational = rtgcn_telemetry::span("relational");
        // Relation strength per edge.
        let sim = tape.edge_dot(edges, e, 1.0); // e_iᵀe_j
        let strength = match self.cfg.variant {
            RsrVariant::Implicit => sim,
            RsrVariant::Explicit => {
                let hot = tape.constant(self.multi_hot.clone().unwrap());
                let w = self.store.bind(tape, self.w_rel.unwrap());
                let b = self.store.bind(tape, self.b_rel.unwrap());
                let imp = tape.linear(hot, w, b);
                let imp = tape.reshape(imp, [edges.len()]);
                tape.mul(sim, imp)
            }
        };
        let inv_deg = tape.constant(self.inv_deg_dst.clone().unwrap());
        let weights = tape.mul(strength, inv_deg);
        let revised = tape.spmm_csr(csr, weights, e); // (N, H)
        let revised = tape.leaky_relu(revised);
        drop(_relational);
        // Concat [e ; revised] along features.
        let e_t = tape.transpose2(e);
        let r_t = tape.transpose2(revised);
        let cat = tape.concat0(&[e_t, r_t]);
        let feats = tape.transpose2(cat); // (N, 2H)
        let w = self.store.bind(tape, self.w_out.unwrap());
        let b = self.store.bind(tape, self.b_out.unwrap());
        let out = tape.linear(feats, w, b);
        tape.reshape(out, [n])
    }
}

impl StockRanker for Rsr {
    fn name(&self) -> String {
        match self.cfg.variant {
            RsrVariant::Implicit => "RSR_I".into(),
            RsrVariant::Explicit => "RSR_E".into(),
        }
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let relations = ds.relations(self.cfg.relation_kind);
        self.ensure_built(&relations);
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, BASELINE_L2);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        let mut epoch_secs = Vec::new();
        let mut monitor = HealthMonitor::new(
            &self.name(),
            HealthConfig { abort_on_divergence: self.cfg.abort_on_divergence, ..HealthConfig::default() },
        );
        let _fit = rtgcn_telemetry::span("fit");
        for _ in 0..self.cfg.epochs {
            let _epoch = rtgcn_telemetry::span("epoch");
            let e0 = Instant::now();
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let mut tape = Tape::new();
                let pred = self.forward(&mut tape, &s.x);
                let (loss, mse, rank) =
                    tape.combined_rank_loss_parts(pred, &s.y, self.cfg.alpha);
                let (lv, gnorm) = optimise_step(&mut tape, loss, &mut self.store, &mut opt, 5.0);
                acc += lv as f64;
                monitor.observe_step(lv, mse, rank, gnorm);
            }
            epoch_losses.push(if days.is_empty() { f32::NAN } else { (acc / days.len() as f64) as f32 });
            epoch_secs.push(e0.elapsed().as_secs_f64());
            monitor.end_epoch(self.store.value_norm(), BASELINE_L2);
            if monitor.should_abort() {
                break;
            }
        }
        let (health, epoch_health) = monitor.finish();
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            epoch_secs,
            health,
            epoch_health,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let relations = ds.relations(self.cfg.relation_kind);
        self.ensure_built(&relations);
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, &s.x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        out
    }

    fn prepare(&mut self, ds: &StockDataset) {
        let relations = ds.relations(self.cfg.relation_kind);
        self.ensure_built(&relations);
    }

    fn score_window(&mut self, x: &Tensor) -> Option<Vec<f32>> {
        self.cell.as_ref()?;
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        Some(out)
    }

    fn param_store(&self) -> Option<&ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut ParamStore> {
        Some(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 50;
        spec.test_days = 8;
        StockDataset::generate(spec, 6)
    }

    fn tiny_cfg(variant: RsrVariant) -> RsrConfig {
        RsrConfig {
            t_steps: 8,
            n_features: 2,
            hidden: 8,
            epochs: 2,
            variant,
            ..Default::default()
        }
    }

    #[test]
    fn both_variants_fit_and_score() {
        let ds = tiny_ds();
        for variant in [RsrVariant::Implicit, RsrVariant::Explicit] {
            let mut m = Rsr::new(tiny_cfg(variant), 1);
            let rep = m.fit(&ds);
            assert!(rep.final_loss.is_finite(), "{variant:?}");
            let scores = m.scores_for_day(&ds, ds.test_end_days()[0]);
            assert_eq!(scores.len(), 8);
            assert!(scores.iter().all(|s| s.is_finite()), "{variant:?}");
        }
    }

    #[test]
    fn names() {
        assert_eq!(Rsr::new(tiny_cfg(RsrVariant::Implicit), 1).name(), "RSR_I");
        assert_eq!(Rsr::new(tiny_cfg(RsrVariant::Explicit), 1).name(), "RSR_E");
    }

    #[test]
    fn explicit_uses_relation_parameters() {
        let ds = tiny_ds();
        let mut m = Rsr::new(tiny_cfg(RsrVariant::Explicit), 2);
        let relations = ds.relations(RelationKind::Both);
        m.ensure_built(&relations);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let pred = m.forward(&mut tape, &s.x);
        let loss = tape.combined_rank_loss(pred, &s.y, 0.1);
        tape.backward(loss);
        m.store.absorb_grads(&tape);
        let id = m.store.id("rel.w").unwrap();
        assert!(m.store.grad(id).norm() > 0.0, "explicit variant must train rel.w");
    }

    #[test]
    fn revision_depends_on_relations() {
        // Same prices and weights, different relation graphs (wiki vs
        // industry — NASDAQ has both) must give different scores.
        let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
        spec.stocks = 30;
        spec.train_days = 40;
        spec.test_days = 8;
        let ds = StockDataset::generate(spec, 6);
        let mut a = Rsr::new(
            RsrConfig { relation_kind: RelationKind::Wiki, ..tiny_cfg(RsrVariant::Implicit) },
            9,
        );
        let mut b = Rsr::new(
            RsrConfig { relation_kind: RelationKind::Industry, ..tiny_cfg(RsrVariant::Implicit) },
            9,
        );
        let day = ds.test_end_days()[0];
        let sa = a.scores_for_day(&ds, day);
        let sb = b.scores_for_day(&ds, day);
        // Identical LSTM weights (same seed), different graphs → generally
        // different revisions. (Equality would mean relations are ignored.)
        assert_ne!(sa, sb);
    }
}
