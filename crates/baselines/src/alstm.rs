//! A-LSTM — attentive LSTM with adversarial training (Feng et al.,
//! IJCAI 2019 [41]), a *classification* baseline: it predicts
//! up / neutral / down and cannot rank (Table IV prints `-` for its MRR).
//!
//! Architecture: shared LSTM over each stock's window → temporal attention
//! over hidden states → latent `e = [h_T ; Σ_t α_t h_t]` → 3-class softmax.
//! Adversarial training perturbs the latent along the loss gradient
//! (`e_adv = e + ε·g/‖g‖`, FGSM-style) and adds the classification loss on
//! the perturbed latent. Simplification vs the original: the adversarial
//! pass back-propagates into the classification head only (the perturbed
//! latent is re-inserted as a fresh leaf), which preserves the
//! regularisation effect on the decision boundary.

use crate::recurrent::{split_window, LstmCell};
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_eval::CLASS_UP;
use rtgcn_market::StockDataset;
use rtgcn_tensor::{clip_grad_norm, init, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor, Var};
use std::time::Instant;

/// A-LSTM configuration.
#[derive(Clone, Debug)]
pub struct ALstmConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    pub attn_dim: usize,
    pub epochs: usize,
    pub lr: f32,
    /// FGSM perturbation radius ε.
    pub epsilon: f32,
    /// Weight of the adversarial loss term.
    pub beta: f32,
    /// Return-ratio threshold separating up / neutral / down.
    pub class_threshold: f32,
}

impl Default for ALstmConfig {
    fn default() -> Self {
        ALstmConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 32,
            attn_dim: 16,
            epochs: 6,
            lr: 1e-3,
            epsilon: 0.05,
            beta: 0.5,
            class_threshold: 0.002,
        }
    }
}

/// The adversarial attentive LSTM classifier.
pub struct ALstm {
    pub cfg: ALstmConfig,
    store: ParamStore,
    cell: LstmCell,
    w_attn: ParamId,
    b_attn: ParamId,
    v_attn: ParamId,
    w_cls: ParamId,
    b_cls: ParamId,
}

impl ALstm {
    pub fn new(cfg: ALstmConfig, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", cfg.n_features, cfg.hidden, &mut rng);
        let w_attn = store.add("attn.w", init::xavier([cfg.hidden, cfg.attn_dim], &mut rng));
        let b_attn = store.add("attn.b", Tensor::zeros([cfg.attn_dim]));
        let v_attn = store.add("attn.v", init::xavier([cfg.attn_dim, 1], &mut rng));
        let w_cls = store.add("cls.w", init::xavier([2 * cfg.hidden, 3], &mut rng));
        let b_cls = store.add("cls.b", Tensor::zeros([3]));
        ALstm { cfg, store, cell, w_attn, b_attn, v_attn, w_cls, b_cls }
    }

    /// Encode a window into the latent `(N, 2H)`.
    fn latent(&self, tape: &mut Tape, x: &Tensor) -> Var {
        let n = x.dims()[1];
        let xs = split_window(tape, x);
        let hs = self.cell.encode(tape, &self.store, &xs, n);
        // Attention scores per step: s_t = vᵀ tanh(W h_t + b) → (N, 1).
        let wa = self.store.bind(tape, self.w_attn);
        let ba = self.store.bind(tape, self.b_attn);
        let va = self.store.bind(tape, self.v_attn);
        let scores: Vec<Var> = hs
            .iter()
            .map(|&h| {
                let u = tape.linear(h, wa, ba);
                let u = tape.tanh(u);
                let s = tape.matmul(u, va); // (N,1)
                tape.reshape(s, [n])
            })
            .collect();
        let st = tape.stack0(&scores); // (T, N)
        let stt = tape.transpose2(st); // (N, T)
        let alpha = tape.softmax(stt); // softmax over time
        let alpha_t = tape.transpose2(alpha); // (T, N)
        // Weighted sum of hidden states.
        let mut acc: Option<Var> = None;
        for (t, &h) in hs.iter().enumerate() {
            let a_row = tape.slice_rows(alpha_t, t, t + 1); // (1, N)
            let a_col = tape.reshape(a_row, [n, 1]);
            let term = tape.mul(h, a_col); // broadcast over H
            acc = Some(match acc {
                Some(prev) => tape.add(prev, term),
                None => term,
            });
        }
        let context = acc.expect("window must be non-empty");
        let last = *hs.last().expect("window must be non-empty");
        // Latent = [h_T ; context] — concat along features via transpose +
        // concat0 (axis-0 concat of transposed matrices).
        let last_t = tape.transpose2(last); // (H, N)
        let ctx_t = tape.transpose2(context); // (H, N)
        let cat = tape.concat0(&[last_t, ctx_t]); // (2H, N)
        tape.transpose2(cat) // (N, 2H)
    }

    fn logits_from_latent(&self, tape: &mut Tape, e: Var) -> Var {
        let w = self.store.bind(tape, self.w_cls);
        let b = self.store.bind(tape, self.b_cls);
        tape.linear(e, w, b)
    }

    fn labels(&self, y: &Tensor) -> Vec<usize> {
        y.data()
            .iter()
            .map(|&r| {
                if r > self.cfg.class_threshold {
                    2
                } else if r < -self.cfg.class_threshold {
                    0
                } else {
                    1
                }
            })
            .collect()
    }
}

impl StockRanker for ALstm {
    fn name(&self) -> String {
        "A-LSTM".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, 1e-4);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        for _ in 0..self.cfg.epochs {
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let labels = self.labels(&s.y);
                // Clean pass.
                let mut tape = Tape::new();
                let e = self.latent(&mut tape, &s.x);
                let logits = self.logits_from_latent(&mut tape, e);
                let loss = tape.cross_entropy(logits, &labels);
                acc += tape.value(loss).item() as f64;
                tape.backward(loss);
                let e_grad = tape.grad(e).cloned();
                let e_val = tape.value(e).clone();
                self.store.absorb_grads(&tape);
                // Adversarial pass on the perturbed latent.
                if let Some(g) = e_grad {
                    let norm = g.norm().max(1e-8);
                    let scale = self.cfg.epsilon / norm;
                    let mut adv = e_val;
                    for (a, &gv) in adv.data_mut().iter_mut().zip(g.data()) {
                        *a += scale * gv;
                    }
                    let mut tape2 = Tape::new();
                    let e_adv = tape2.constant(adv);
                    let logits2 = self.logits_from_latent(&mut tape2, e_adv);
                    let loss2 = tape2.cross_entropy(logits2, &labels);
                    let weighted = tape2.scale(loss2, self.cfg.beta);
                    tape2.backward(weighted);
                    self.store.absorb_grads(&tape2);
                }
                clip_grad_norm(&mut self.store, 5.0);
                opt.step(&mut self.store);
            }
            epoch_losses.push((acc / days.len().max(1) as f64) as f32);
        }
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let e = self.latent(&mut tape, &s.x);
        let logits = self.logits_from_latent(&mut tape, e);
        let lv = tape.value(logits);
        let n = lv.dims()[0];
        let out = (0..n)
            .map(|i| {
                let row = &lv.data()[i * 3..(i + 1) * 3];
                let cls = (0..3).max_by(|&a, &b| row[a].total_cmp(&row[b])).unwrap();
                match cls {
                    2 => CLASS_UP,
                    1 => 1.0,
                    _ => 0.0,
                }
            })
            .collect();
        self.store.clear_bindings();
        out
    }

    fn can_rank(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 50;
        spec.test_days = 8;
        StockDataset::generate(spec, 5)
    }

    fn tiny_cfg() -> ALstmConfig {
        ALstmConfig {
            t_steps: 8,
            n_features: 2,
            hidden: 8,
            attn_dim: 4,
            epochs: 2,
            ..Default::default()
        }
    }

    #[test]
    fn fit_and_classify() {
        let ds = tiny_ds();
        let mut m = ALstm::new(tiny_cfg(), 1);
        let rep = m.fit(&ds);
        assert!(rep.final_loss.is_finite());
        let day = ds.test_end_days()[0];
        let scores = m.scores_for_day(&ds, day);
        assert_eq!(scores.len(), 8);
        assert!(scores.iter().all(|&s| s == 0.0 || s == 1.0 || s == 2.0));
        assert!(!m.can_rank());
    }

    #[test]
    fn labels_thresholded() {
        let m = ALstm::new(tiny_cfg(), 1);
        let y = Tensor::from_vec(vec![0.05, -0.05, 0.0001]);
        assert_eq!(m.labels(&y), vec![2, 0, 1]);
    }

    #[test]
    fn latent_has_double_hidden_width() {
        let ds = tiny_ds();
        let m = ALstm::new(tiny_cfg(), 2);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let e = m.latent(&mut tape, &s.x);
        assert_eq!(tape.value(e).dims(), &[8, 16]);
        m.store.clear_bindings();
    }

    #[test]
    fn adversarial_training_reduces_loss() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.epochs = 4;
        let mut m = ALstm::new(cfg, 3);
        let rep = m.fit(&ds);
        assert!(
            rep.epoch_losses.last().unwrap() <= rep.epoch_losses.first().unwrap(),
            "{:?}",
            rep.epoch_losses
        );
    }
}
