//! DQN — deep Q-learning trading baseline (Carta et al. [18]).
//!
//! A Q-network maps each stock's flattened feature window to action values
//! for {buy, hold}. Daily trading gives one-step episodes: the reward of
//! *buy* is the realised next-day return ratio (×100 for gradient scale),
//! *hold* pays zero. Transitions collected ε-greedily fill an experience
//! replay buffer; minibatches regress `Q(s, a)` onto observed rewards
//! (one-step terminal episodes make the bootstrap/target-network term
//! vanish — a faithful reduction of the original ensemble for the paper's
//! daily buy-sell protocol). The ranking score is the action-value gap
//! `Q(buy) − Q(hold)` (Table IV lists DQN under RL with an MRR, so it ranks).

use crate::mlp::Mlp;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_market::StockDataset;
use rtgcn_tensor::{clip_grad_norm, init, Adam, Optimizer, ParamStore, Tape, Tensor};
use std::time::Instant;

/// DQN configuration.
#[derive(Clone, Debug)]
pub struct DqnConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    /// Training epochs over the day stream.
    pub epochs: usize,
    pub lr: f32,
    /// Replay capacity and minibatch size.
    pub replay: usize,
    pub batch: usize,
    /// ε-greedy schedule: start, end, decay per day.
    pub eps_start: f32,
    pub eps_end: f32,
    pub eps_decay: f32,
    /// Reward scale (returns are ~1e−2; ×100 keeps Q targets O(1)).
    pub reward_scale: f32,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 64,
            epochs: 3,
            lr: 1e-3,
            replay: 20_000,
            batch: 64,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay: 0.98,
            reward_scale: 100.0,
        }
    }
}

struct Transition {
    state: Vec<f32>,
    action: usize, // 0 = hold, 1 = buy
    reward: f32,
}

/// The DQN agent.
pub struct Dqn {
    pub cfg: DqnConfig,
    store: ParamStore,
    qnet: Mlp,
    replay: Vec<Transition>,
    rng: StdRng,
}

impl Dqn {
    pub fn new(cfg: DqnConfig, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let mut store = ParamStore::new();
        let in_dim = cfg.t_steps * cfg.n_features;
        let qnet = Mlp::new(&mut store, "q", &[in_dim, cfg.hidden, cfg.hidden / 2, 2], &mut rng);
        Dqn { cfg, store, qnet, replay: Vec::new(), rng }
    }

    /// Per-stock state: the stock's flattened `(T, D)` slice of the window.
    fn states(&self, x: &Tensor) -> Vec<Vec<f32>> {
        let (t, n, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        (0..n)
            .map(|i| {
                let mut s = Vec::with_capacity(t * d);
                for step in 0..t {
                    let base = (step * n + i) * d;
                    s.extend_from_slice(&x.data()[base..base + d]);
                }
                s
            })
            .collect()
    }

    /// Q-values `(B, 2)` for a batch of states.
    fn q_values(&self, tape: &mut Tape, states: &[Vec<f32>]) -> rtgcn_tensor::Var {
        let b = states.len();
        let dim = self.cfg.t_steps * self.cfg.n_features;
        let mut data = Vec::with_capacity(b * dim);
        for s in states {
            data.extend_from_slice(s);
        }
        let x = tape.constant(Tensor::new([b, dim], data));
        self.qnet.forward(tape, &self.store, x)
    }

    fn learn_minibatch(&mut self, opt: &mut Adam) -> f32 {
        if self.replay.len() < self.cfg.batch {
            return 0.0;
        }
        let idx: Vec<usize> = {
            let mut all: Vec<usize> = (0..self.replay.len()).collect();
            all.shuffle(&mut self.rng);
            all.truncate(self.cfg.batch);
            all
        };
        let states: Vec<Vec<f32>> = idx.iter().map(|&i| self.replay[i].state.clone()).collect();
        let mut tape = Tape::new();
        let q = self.q_values(&mut tape, &states); // (B, 2)
        // Regress the taken action's Q on the observed terminal reward via a
        // masked MSE: target equals prediction on the untaken action.
        let qv = tape.value(q).clone();
        let mut target = qv.clone();
        for (row, &i) in idx.iter().enumerate() {
            let t = &self.replay[i];
            *target.at_mut(&[row, t.action]) = t.reward;
        }
        let loss = tape.mse(q, &target);
        let out = tape.value(loss).item();
        tape.backward(loss);
        self.store.absorb_grads(&tape);
        clip_grad_norm(&mut self.store, 5.0);
        opt.step(&mut self.store);
        out
    }
}

impl StockRanker for Dqn {
    fn name(&self) -> String {
        "DQN".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, 1e-5);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut eps = self.cfg.eps_start;
        let mut epoch_losses = Vec::new();
        for _ in 0..self.cfg.epochs {
            let mut acc = 0.0f64;
            let mut batches = 0usize;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let states = self.states(&s.x);
                // ε-greedy action per stock (greedy needs current Q values).
                let greedy: Vec<usize> = {
                    let mut tape = Tape::new();
                    let q = self.q_values(&mut tape, &states);
                    let qv = tape.value(q);
                    self.store.clear_bindings();
                    (0..states.len())
                        .map(|i| if qv.at(&[i, 1]) > qv.at(&[i, 0]) { 1 } else { 0 })
                        .collect()
                };
                for (i, state) in states.into_iter().enumerate() {
                    let action = if self.rng.gen::<f32>() < eps {
                        self.rng.gen_range(0..2)
                    } else {
                        greedy[i]
                    };
                    let reward = if action == 1 {
                        ds.realized_return(day, i) * self.cfg.reward_scale
                    } else {
                        0.0
                    };
                    if self.replay.len() >= self.cfg.replay {
                        let evict = self.rng.gen_range(0..self.replay.len());
                        self.replay.swap_remove(evict);
                    }
                    self.replay.push(Transition { state, action, reward });
                }
                acc += self.learn_minibatch(&mut opt) as f64;
                batches += 1;
                eps = (eps * self.cfg.eps_decay).max(self.cfg.eps_end);
            }
            epoch_losses.push((acc / batches.max(1) as f64) as f32);
        }
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let states = self.states(&s.x);
        let mut tape = Tape::new();
        let q = self.q_values(&mut tape, &states);
        let qv = tape.value(q);
        let out = (0..states.len()).map(|i| qv.at(&[i, 1]) - qv.at(&[i, 0])).collect();
        self.store.clear_bindings();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 6;
        spec.train_days = 50;
        spec.test_days = 8;
        StockDataset::generate(spec, 9)
    }

    fn tiny_cfg() -> DqnConfig {
        DqnConfig {
            t_steps: 8,
            n_features: 2,
            hidden: 16,
            epochs: 2,
            batch: 16,
            ..Default::default()
        }
    }

    #[test]
    fn fit_fills_replay_and_scores() {
        let ds = tiny_ds();
        let mut m = Dqn::new(tiny_cfg(), 1);
        let rep = m.fit(&ds);
        assert!(!m.replay.is_empty());
        assert!(rep.train_secs > 0.0);
        let scores = m.scores_for_day(&ds, ds.test_end_days()[0]);
        assert_eq!(scores.len(), 6);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert!(m.can_rank(), "RL methods rank via Q-value gap (Table IV has their MRR)");
    }

    #[test]
    fn states_are_per_stock_slices() {
        let m = Dqn::new(tiny_cfg(), 2);
        // x[(t,i,f)] = 100t + 10i + f for easy checking.
        let mut x = Tensor::zeros([8, 6, 2]);
        for t in 0..8 {
            for i in 0..6 {
                for f in 0..2 {
                    *x.at_mut(&[t, i, f]) = (100 * t + 10 * i + f) as f32;
                }
            }
        }
        let states = m.states(&x);
        assert_eq!(states.len(), 6);
        assert_eq!(states[2][0], 20.0, "stock 2, step 0, feature 0");
        assert_eq!(states[2][3], 121.0, "stock 2, step 1, feature 1");
        assert_eq!(states[2].len(), 16);
    }

    #[test]
    fn replay_capacity_bounded() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.replay = 30;
        let mut m = Dqn::new(cfg, 3);
        m.fit(&ds);
        assert!(m.replay.len() <= 30);
    }
}
