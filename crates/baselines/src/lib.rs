//! # rtgcn-baselines
//!
//! Every comparator model in the RT-GCN paper's evaluation (Tables IV–V),
//! reimplemented from the original papers on the shared `rtgcn-tensor`
//! engine and driven through the `rtgcn-core::StockRanker` interface:
//!
//! | Module | Model | Category |
//! |---|---|---|
//! | [`arima`] | ARIMA(p,1,q), Hannan–Rissanen CSS fit | CLF |
//! | [`alstm`] | Adversarial attentive LSTM | CLF |
//! | [`sfm`] | State Frequency Memory RNN | REG |
//! | [`lstm_rankers`] | LSTM (regression) and Rank_LSTM | REG / RAN |
//! | [`dqn`] | Deep Q-learning trader | RL |
//! | [`irdpg`] | Imitative recurrent DPG | RL |
//! | [`rsr`] | Relational Stock Ranking (implicit/explicit) | RAN |
//! | [`gat`] | RT-GAT (graph-attention ablation of RT-GCN) | RAN |
//! | [`sthan`] | Spatiotemporal hypergraph attention (STHAN-SR) | RAN |
//!
//! [`zoo`] provides a uniform factory over the whole roster.

pub mod alstm;
pub mod arima;
pub mod dqn;
pub mod gat;
pub mod irdpg;
pub mod lstm_rankers;
pub mod mlp;
pub mod recurrent;
pub mod rsr;
pub mod sfm;
pub mod sthan;
pub mod zoo;

pub use alstm::{ALstm, ALstmConfig};
pub use arima::{Arima, ArimaConfig};
pub use dqn::{Dqn, DqnConfig};
pub use gat::{RtGat, RtGatConfig};
pub use irdpg::{Irdpg, IrdpgConfig};
pub use lstm_rankers::{LstmRanker, SeqConfig};
pub use rsr::{Rsr, RsrConfig, RsrVariant};
pub use sfm::{Sfm, SfmConfig};
pub use sthan::{Sthan, SthanConfig};
pub use zoo::{build, CommonConfig, ModelKind};
