//! Recurrent cells (LSTM, GRU) on the autodiff tape — the temporal encoders
//! behind the LSTM/Rank_LSTM/A-LSTM/RSR/iRDPG baselines. Stocks are the
//! batch dimension, so one shared cell encodes every stock's window in
//! parallel, exactly as the reference implementations do.

use rand::rngs::StdRng;
use rtgcn_tensor::{clip_grad_norm, init, Optimizer, ParamId, ParamStore, Tape, Tensor, Var};

/// One gate's affine parameters: `x·W_x + h·W_h + b`.
struct Gate {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
}

impl Gate {
    fn new(store: &mut ParamStore, name: &str, in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Gate {
            wx: store.add(format!("{name}.wx"), init::xavier([in_dim, hidden], rng)),
            wh: store.add(format!("{name}.wh"), init::xavier([hidden, hidden], rng)),
            b: store.add(format!("{name}.b"), Tensor::zeros([hidden])),
        }
    }

    /// `x: (B, D)`, `h: (B, H)` → `(B, H)` pre-activation.
    fn apply(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let wx = store.bind(tape, self.wx);
        let wh = store.bind(tape, self.wh);
        let b = store.bind(tape, self.b);
        let xp = tape.linear(x, wx, b);
        let hp = tape.matmul(h, wh);
        tape.add(xp, hp)
    }
}

/// A standard LSTM cell (forget/input/output gates + candidate).
pub struct LstmCell {
    f: Gate,
    i: Gate,
    o: Gate,
    g: Gate,
    pub hidden: usize,
    pub in_dim: usize,
}

impl LstmCell {
    pub fn new(store: &mut ParamStore, prefix: &str, in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        LstmCell {
            f: Gate::new(store, &format!("{prefix}.f"), in_dim, hidden, rng),
            i: Gate::new(store, &format!("{prefix}.i"), in_dim, hidden, rng),
            o: Gate::new(store, &format!("{prefix}.o"), in_dim, hidden, rng),
            g: Gate::new(store, &format!("{prefix}.g"), in_dim, hidden, rng),
            hidden,
            in_dim,
        }
    }

    /// One step: returns `(h', c')`.
    pub fn step(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var) {
        let f_pre = self.f.apply(tape, store, x, h);
        let f = tape.sigmoid(f_pre);
        let i_pre = self.i.apply(tape, store, x, h);
        let i = tape.sigmoid(i_pre);
        let o_pre = self.o.apply(tape, store, x, h);
        let o = tape.sigmoid(o_pre);
        let g_pre = self.g.apply(tape, store, x, h);
        let g = tape.tanh(g_pre);
        let keep = tape.mul(f, c);
        let add = tape.mul(i, g);
        let c_new = tape.add(keep, add);
        let c_act = tape.tanh(c_new);
        let h_new = tape.mul(o, c_act);
        (h_new, c_new)
    }

    /// Encode a sequence of `(B, D)` step inputs; returns all hidden states.
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, xs: &[Var], batch: usize) -> Vec<Var> {
        let mut h = tape.constant(Tensor::zeros([batch, self.hidden]));
        let mut c = tape.constant(Tensor::zeros([batch, self.hidden]));
        let mut hs = Vec::with_capacity(xs.len());
        for &x in xs {
            let (h2, c2) = self.step(tape, store, x, h, c);
            h = h2;
            c = c2;
            hs.push(h);
        }
        hs
    }
}

/// A standard GRU cell (update/reset gates + candidate).
pub struct GruCell {
    z: Gate,
    r: Gate,
    n: Gate,
    pub hidden: usize,
    pub in_dim: usize,
}

impl GruCell {
    pub fn new(store: &mut ParamStore, prefix: &str, in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        GruCell {
            z: Gate::new(store, &format!("{prefix}.z"), in_dim, hidden, rng),
            r: Gate::new(store, &format!("{prefix}.r"), in_dim, hidden, rng),
            n: Gate::new(store, &format!("{prefix}.n"), in_dim, hidden, rng),
            hidden,
            in_dim,
        }
    }

    /// One step: returns `h'`.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let z_pre = self.z.apply(tape, store, x, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = self.r.apply(tape, store, x, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let n_pre = self.n.apply(tape, store, x, rh);
        let n = tape.tanh(n_pre);
        // h' = (1−z)·n + z·h
        let one = tape.constant(Tensor::scalar(1.0));
        let inv_z = tape.sub(one, z);
        let new_part = tape.mul(inv_z, n);
        let keep_part = tape.mul(z, h);
        tape.add(new_part, keep_part)
    }

    /// Encode a sequence; returns the final hidden state.
    pub fn encode_last(&self, tape: &mut Tape, store: &ParamStore, xs: &[Var], batch: usize) -> Var {
        let mut h = tape.constant(Tensor::zeros([batch, self.hidden]));
        for &x in xs {
            h = self.step(tape, store, x, h);
        }
        h
    }
}

/// Split an `(T, N, D)` window tensor into per-step `(N, D)` vars — shared
/// helper for every sequence baseline.
pub fn split_window(tape: &mut Tape, x: &Tensor) -> Vec<Var> {
    assert_eq!(x.rank(), 3, "window must be (T, N, D)");
    let (t, n, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let xv = tape.constant(x.clone());
    (0..t)
        .map(|s| {
            let plane = tape.slice_rows(xv, s, s + 1);
            tape.reshape(plane, [n, d])
        })
        .collect()
}

/// Shared tail of every baseline optimisation step: read the loss value,
/// backprop, absorb grads into the store, clip, apply the optimiser.
/// Returns `(loss, pre-clip grad L2 norm)` — the two numbers the
/// training-health monitor consumes.
pub fn optimise_step(
    tape: &mut Tape,
    loss: Var,
    store: &mut ParamStore,
    opt: &mut dyn Optimizer,
    max_norm: f32,
) -> (f32, f32) {
    let loss_val = tape.value(loss).item();
    {
        let _t = rtgcn_telemetry::span("backward");
        tape.backward(loss);
        store.absorb_grads(tape);
    }
    let _t = rtgcn_telemetry::span("optim");
    let grad_norm = clip_grad_norm(store, max_norm);
    opt.step(store);
    (loss_val, grad_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_tensor::Adam;

    #[test]
    fn lstm_shapes_and_bounded_state() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(1);
        let cell = LstmCell::new(&mut store, "lstm", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<Var> =
            (0..4).map(|_| tape.constant(init::normal([2, 3], 1.0, &mut rng))).collect();
        let hs = cell.encode(&mut tape, &store, &xs, 2);
        assert_eq!(hs.len(), 4);
        for h in &hs {
            assert_eq!(tape.value(*h).dims(), &[2, 5]);
            assert!(tape.value(*h).data().iter().all(|&v| v.abs() <= 1.0), "h = o·tanh(c) bounded");
        }
    }

    #[test]
    fn gru_shapes() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(2);
        let cell = GruCell::new(&mut store, "gru", 2, 4, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<Var> =
            (0..3).map(|_| tape.constant(init::normal([5, 2], 1.0, &mut rng))).collect();
        let h = cell.encode_last(&mut tape, &store, &xs, 5);
        assert_eq!(tape.value(h).dims(), &[5, 4]);
        assert!(tape.value(h).data().iter().all(|&v| v.abs() <= 1.0));
    }

    /// An LSTM should be able to learn to output the last input (memorise).
    #[test]
    fn lstm_learns_simple_mapping() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(3);
        let cell = LstmCell::new(&mut store, "lstm", 1, 6, &mut rng);
        let w_out = store.add("out.w", init::xavier([6, 1], &mut rng));
        let b_out = store.add("out.b", Tensor::zeros([1]));
        let mut opt = Adam::new(0.02, 0.0);
        // Target: y = last element of the sequence.
        let seqs: Vec<(Vec<f32>, f32)> = (0..8)
            .map(|i| {
                let v: Vec<f32> = (0..4).map(|j| ((i * 7 + j * 3) % 5) as f32 / 5.0).collect();
                let last = v[3];
                (v, last)
            })
            .collect();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _epoch in 0..150 {
            let mut total = 0.0;
            for (seq, target) in &seqs {
                let mut tape = Tape::new();
                let xs: Vec<Var> = seq
                    .iter()
                    .map(|&v| tape.constant(Tensor::new([1, 1], vec![v])))
                    .collect();
                let hs = cell.encode(&mut tape, &store, &xs, 1);
                let w = store.bind(&mut tape, w_out);
                let b = store.bind(&mut tape, b_out);
                let pred = tape.linear(*hs.last().unwrap(), w, b);
                let loss = tape.mse(pred, &Tensor::new([1, 1], vec![*target]));
                total += tape.value(loss).item();
                tape.backward(loss);
                store.absorb_grads(&tape);
                opt.step(&mut store);
            }
            if first_loss.is_none() {
                first_loss = Some(total);
            }
            last_loss = total;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.2,
            "LSTM failed to learn: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn gru_gradients_reach_all_params() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(4);
        let cell = GruCell::new(&mut store, "gru", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<Var> =
            (0..3).map(|_| tape.constant(init::normal([2, 2], 1.0, &mut rng))).collect();
        let h = cell.encode_last(&mut tape, &store, &xs, 2);
        let sq = tape.square(h);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        store.absorb_grads(&tape);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }

    #[test]
    fn split_window_layout() {
        let mut tape = Tape::new();
        let x = Tensor::new([2, 3, 2], (0..12).map(|v| v as f32).collect());
        let xs = split_window(&mut tape, &x);
        assert_eq!(xs.len(), 2);
        assert_eq!(tape.value(xs[0]).dims(), &[3, 2]);
        assert_eq!(tape.value(xs[1]).data()[0], 6.0, "second plane starts at element 6");
    }
}
