//! iRDPG — imitative recurrent deterministic policy gradient (Liu et al.,
//! AAAI 2020 [19]).
//!
//! A GRU encodes each stock's window into a state; a deterministic actor
//! maps the state to a position `a ∈ [−1, 1]`; a critic estimates
//! `Q(s, a)`. Training interleaves:
//!
//! 1. **Imitation (behaviour cloning)** toward the demonstration policy
//!    `a* = sign(next-day return)` — the "prophetic expert" used to
//!    bootstrap the agent, annealed over epochs;
//! 2. **Critic regression** of `Q(s, a)` onto the realised one-step reward
//!    `r = a · return` (daily round-trip episodes are terminal, as in the
//!    paper's daily buy-sell protocol);
//! 3. **Deterministic policy gradient**: the actor ascends `Q(s, π(s))`
//!    with the critic parameters frozen for that pass.
//!
//! Ranking score = actor output.

use crate::mlp::Mlp;
use crate::recurrent::{split_window, GruCell};
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_market::StockDataset;
use rtgcn_tensor::{
    clip_grad_norm, init, Adam, Optimizer, ParamId, ParamStore, Tape, Tensor, Var,
};
use std::time::Instant;

/// iRDPG configuration.
#[derive(Clone, Debug)]
pub struct IrdpgConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    /// Initial behaviour-cloning weight, annealed to 0 linearly over epochs.
    pub bc_weight: f32,
    /// Reward scale (see DQN).
    pub reward_scale: f32,
}

impl Default for IrdpgConfig {
    fn default() -> Self {
        IrdpgConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 32,
            epochs: 3,
            lr: 1e-3,
            bc_weight: 1.0,
            reward_scale: 100.0,
        }
    }
}

/// The iRDPG agent. Actor and critic parameters live in separate stores so
/// the DPG pass can freeze the critic cleanly.
pub struct Irdpg {
    pub cfg: IrdpgConfig,
    actor_store: ParamStore,
    critic_store: ParamStore,
    encoder: GruCell,
    actor_w: ParamId,
    actor_b: ParamId,
    critic: Mlp,
}

impl Irdpg {
    pub fn new(cfg: IrdpgConfig, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let mut actor_store = ParamStore::new();
        let mut critic_store = ParamStore::new();
        let encoder = GruCell::new(&mut actor_store, "gru", cfg.n_features, cfg.hidden, &mut rng);
        let actor_w = actor_store.add("actor.w", init::xavier([cfg.hidden, 1], &mut rng));
        let actor_b = actor_store.add("actor.b", Tensor::zeros([1]));
        let critic = Mlp::new(&mut critic_store, "critic", &[cfg.hidden + 1, cfg.hidden, 1], &mut rng);
        Irdpg { cfg, actor_store, critic_store, encoder, actor_w, actor_b, critic }
    }

    /// Encode states `(N, H)` and actor actions `(N, 1)` in one tape.
    fn encode_and_act(&self, tape: &mut Tape, x: &Tensor) -> (Var, Var) {
        let n = x.dims()[1];
        let xs = split_window(tape, x);
        let state = self.encoder.encode_last(tape, &self.actor_store, &xs, n);
        let w = self.actor_store.bind(tape, self.actor_w);
        let b = self.actor_store.bind(tape, self.actor_b);
        let pre = tape.linear(state, w, b);
        let action = tape.tanh(pre); // (N, 1)
        (state, action)
    }

    /// Critic forward `Q([s ; a])`, optionally with frozen parameters.
    fn critic_q(&self, tape: &mut Tape, state: Var, action: Var, frozen: bool) -> Var {
        // Concat along features via the transpose trick.
        let st = tape.transpose2(state);
        let at = tape.transpose2(action);
        let cat = tape.concat0(&[st, at]);
        let sa = tape.transpose2(cat); // (N, H+1)
        if frozen {
            // Re-insert critic weights as constants so no gradient reaches them.
            let mut h = sa;
            let dims = &self.critic.dims;
            let last = dims.len() - 2;
            for i in 0..dims.len() - 1 {
                let w = tape
                    .constant(self.critic_store.value(self.critic_store.id(&format!("critic.l{i}.w")).unwrap()).clone());
                let b = tape
                    .constant(self.critic_store.value(self.critic_store.id(&format!("critic.l{i}.b")).unwrap()).clone());
                h = tape.linear(h, w, b);
                if i != last {
                    h = tape.relu(h);
                }
            }
            h
        } else {
            self.critic.forward(tape, &self.critic_store, sa)
        }
    }
}

impl StockRanker for Irdpg {
    fn name(&self) -> String {
        "iRDPG".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let t0 = Instant::now();
        let mut actor_opt = Adam::new(self.cfg.lr, 1e-5);
        let mut critic_opt = Adam::new(self.cfg.lr, 1e-5);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        for epoch in 0..self.cfg.epochs {
            let anneal = 1.0 - epoch as f32 / self.cfg.epochs.max(1) as f32;
            let bc_w = self.cfg.bc_weight * anneal;
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let n = ds.n_stocks();
                // Pass 1: actor BC + DPG (critic frozen).
                let mut tape = Tape::new();
                let (state, action) = self.encode_and_act(&mut tape, &s.x);
                let demo = Tensor::new(
                    [n, 1],
                    s.y.data().iter().map(|&r| if r > 0.0 { 1.0 } else { -1.0 }).collect(),
                );
                let bc = tape.mse(action, &demo);
                let bc_scaled = tape.scale(bc, bc_w);
                let q = self.critic_q(&mut tape, state, action, true);
                let q_mean = tape.mean_all(q);
                let neg_q = tape.scale(q_mean, -0.1);
                let actor_loss = tape.add(bc_scaled, neg_q);
                acc += tape.value(actor_loss).item() as f64;
                tape.backward(actor_loss);
                self.actor_store.absorb_grads(&tape);
                clip_grad_norm(&mut self.actor_store, 5.0);
                actor_opt.step(&mut self.actor_store);
                self.critic_store.clear_bindings();
                // Pass 2: critic TD regression with the taken actions.
                let mut tape2 = Tape::new();
                let (state2, action2) = self.encode_and_act(&mut tape2, &s.x);
                let a_val = tape2.value(action2).clone();
                let rewards = Tensor::new(
                    [n, 1],
                    s.y.data()
                        .iter()
                        .zip(a_val.data())
                        .map(|(&r, &a)| a * r * self.cfg.reward_scale)
                        .collect(),
                );
                let q2 = self.critic_q(&mut tape2, state2, action2, false);
                let critic_loss = tape2.mse(q2, &rewards);
                tape2.backward(critic_loss);
                self.critic_store.absorb_grads(&tape2);
                self.actor_store.clear_bindings();
                clip_grad_norm(&mut self.critic_store, 5.0);
                critic_opt.step(&mut self.critic_store);
            }
            epoch_losses.push((acc / days.len().max(1) as f64) as f32);
        }
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let (_, action) = self.encode_and_act(&mut tape, &s.x);
        let out = tape.value(action).data().to_vec();
        self.actor_store.clear_bindings();
        self.critic_store.clear_bindings();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 6;
        spec.train_days = 45;
        spec.test_days = 8;
        StockDataset::generate(spec, 10)
    }

    fn tiny_cfg() -> IrdpgConfig {
        IrdpgConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 2, ..Default::default() }
    }

    #[test]
    fn fit_and_score_bounded_actions() {
        let ds = tiny_ds();
        let mut m = Irdpg::new(tiny_cfg(), 1);
        let rep = m.fit(&ds);
        assert!(rep.final_loss.is_finite());
        let scores = m.scores_for_day(&ds, ds.test_end_days()[0]);
        assert_eq!(scores.len(), 6);
        assert!(scores.iter().all(|&a| (-1.0..=1.0).contains(&a)), "tanh actions");
    }

    #[test]
    fn frozen_critic_pass_leaves_critic_grads_zero() {
        let ds = tiny_ds();
        let mut m = Irdpg::new(tiny_cfg(), 2);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let (state, action) = m.encode_and_act(&mut tape, &s.x);
        let q = m.critic_q(&mut tape, state, action, true);
        let loss = tape.mean_all(q);
        tape.backward(loss);
        m.critic_store.absorb_grads(&tape);
        m.actor_store.absorb_grads(&tape);
        assert_eq!(m.critic_store.grad_norm(), 0.0, "frozen pass must not train the critic");
        assert!(m.actor_store.grad_norm() > 0.0, "actor must receive DPG gradient");
        m.actor_store.zero_grads();
    }

    #[test]
    fn behaviour_cloning_pulls_actions_toward_demo_sign() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.epochs = 3;
        cfg.bc_weight = 2.0;
        let mut m = Irdpg::new(cfg, 3);
        m.fit(&ds);
        // After BC-heavy training, actions should correlate positively with
        // the demonstration sign on training data.
        let day = ds.train_end_days(8)[30];
        let scores = m.scores_for_day(&ds, day);
        let mut agree = 0;
        for (i, &a) in scores.iter().enumerate() {
            let demo = if ds.realized_return(day, i) > 0.0 { 1.0 } else { -1.0 };
            if (a > 0.0) == (demo > 0.0) {
                agree += 1;
            }
        }
        assert!(agree >= 3, "expected some sign agreement, got {agree}/6");
    }
}
