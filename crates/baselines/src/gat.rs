//! RT-GAT — the paper's graph-attention ablation of RT-GCN (Table IV):
//! identical relation-temporal architecture, but the relational graph
//! convolution is replaced by a GAT layer (Veličković et al. [31]). Edges
//! connect any pair with at least one relation; attention weights come from
//! node features only, *ignoring the multi-hot relation vectors* — exactly
//! the deficiency the paper attributes to RT-GAT's weaker results.

use rtgcn_core::layers::TemporalConvBlock;
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_graph::RelationTensor;
use rtgcn_market::{RelationKind, StockDataset};
use rtgcn_tensor::{
    clip_grad_norm, init, Adam, ConvSpec, CsrEdges, Optimizer, ParamId, ParamStore, Tape, Tensor,
    Var,
};
use std::time::Instant;

/// RT-GAT configuration (mirrors `RtGcnConfig` where applicable).
#[derive(Clone, Debug)]
pub struct RtGatConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub filters: usize,
    pub temporal_filters: usize,
    pub kernel: usize,
    pub stride: usize,
    pub epochs: usize,
    pub lr: f32,
    pub alpha: f32,
    pub dropout: f32,
    pub relation_kind: RelationKind,
}

impl Default for RtGatConfig {
    fn default() -> Self {
        RtGatConfig {
            t_steps: 16,
            n_features: 4,
            filters: 32,
            temporal_filters: 32,
            kernel: 3,
            stride: 2,
            epochs: 6,
            lr: 1e-3,
            alpha: 0.1,
            dropout: 0.1,
            relation_kind: RelationKind::Both,
        }
    }
}

/// The RT-GAT model (built lazily from the dataset's relation graph).
pub struct RtGat {
    pub cfg: RtGatConfig,
    seed: u64,
    store: ParamStore,
    csr: Option<CsrEdges>,
    w_feat: Option<ParamId>,
    w_self: Option<ParamId>,
    a_src: Option<ParamId>,
    a_dst: Option<ParamId>,
    tcn: Option<TemporalConvBlock>,
    fc_w: Option<ParamId>,
    fc_b: Option<ParamId>,
    rng: rand::rngs::StdRng,
}

impl RtGat {
    pub fn new(cfg: RtGatConfig, seed: u64) -> Self {
        RtGat {
            cfg,
            seed,
            store: ParamStore::new(),
            csr: None,
            w_feat: None,
            w_self: None,
            a_src: None,
            a_dst: None,
            tcn: None,
            fc_w: None,
            fc_b: None,
            rng: init::rng(seed ^ 0xd20),
        }
    }

    fn ensure_built(&mut self, relations: &RelationTensor) {
        if self.csr.is_some() {
            return;
        }
        let mut rng = init::rng(self.seed);
        let cfg = &self.cfg;
        let n = relations.num_stocks();
        // GAT connects any related pair plus self-loops.
        let mut pairs = relations.directed_edges();
        for i in 0..n {
            pairs.push([i, i]);
        }
        self.csr = Some(CsrEdges::from_pairs(n, pairs));
        self.w_feat =
            Some(self.store.add("gat.w", init::xavier([cfg.n_features, cfg.filters], &mut rng)));
        self.w_self =
            Some(self.store.add("gat.w_self", init::xavier([cfg.n_features, cfg.filters], &mut rng)));
        self.a_src = Some(self.store.add("gat.a_src", init::xavier([cfg.filters, 1], &mut rng)));
        self.a_dst = Some(self.store.add("gat.a_dst", init::xavier([cfg.filters, 1], &mut rng)));
        self.tcn = Some(TemporalConvBlock::new(
            &mut self.store,
            "tcn",
            cfg.filters,
            cfg.temporal_filters,
            ConvSpec::new(cfg.kernel, cfg.stride, 1),
            cfg.dropout,
            &mut rng,
        ));
        self.fc_w = Some(self.store.add("fc.w", init::xavier([cfg.temporal_filters, 1], &mut rng)));
        self.fc_b = Some(self.store.add("fc.b", Tensor::zeros([1])));
    }

    /// The GAT layer fused across all time planes: `(T, N, D)` → `(T, N, F)`
    /// via two `(T·N, D)` matmuls, batched gathers/softmax for the attention
    /// logits, and one batched propagation through the CSR layout.
    fn gat_all(&self, tape: &mut Tape, x3: Var, t: usize, n: usize) -> Var {
        let csr = self.csr.clone().unwrap();
        let edges = &csr.edges;
        let f = self.cfg.filters;
        let d = tape.value(x3).dims()[2];
        let x2 = tape.reshape(x3, [t * n, d]);
        let w = self.store.bind(tape, self.w_feat.unwrap());
        let h2 = tape.matmul(x2, w); // (T·N, F)
        let a_src = self.store.bind(tape, self.a_src.unwrap());
        let a_dst = self.store.bind(tape, self.a_dst.unwrap());
        let s_src = tape.matmul(h2, a_src); // (T·N, 1)
        let s_dst = tape.matmul(h2, a_dst);
        let s_src = tape.reshape(s_src, [t, n]);
        let s_dst = tape.reshape(s_dst, [t, n]);
        let per_src = tape.gather_src_batched(edges, s_src); // (T, E)
        let per_dst = tape.gather_dst_batched(edges, s_dst);
        let logits_pre = tape.add(per_src, per_dst);
        let logits = tape.leaky_relu(logits_pre);
        let attn = tape.segment_softmax_batched(edges, logits); // (T, E)
        let h3 = tape.reshape(h2, [t, n, f]);
        let agg = tape.spmm_batched(&csr, attn, h3); // (T, N, F)
        // Root-node term (same ST-GCN partitioning rationale as RT-GCN's
        // relational conv — see rtgcn_core::layers::RelationalConv).
        let w_self = self.store.bind(tape, self.w_self.unwrap());
        let own2 = tape.matmul(x2, w_self);
        let own = tape.reshape(own2, [t, n, f]);
        let z = tape.add(own, agg);
        tape.relu(z)
    }

    fn forward(&mut self, tape: &mut Tape, x: &Tensor, training: bool) -> Var {
        let (t, n) = (x.dims()[0], x.dims()[1]);
        let x3 = tape.constant(x.clone());
        let relational = rtgcn_telemetry::span("relational");
        let stacked = self.gat_all(tape, x3, t, n); // (T, N, F)
        drop(relational);
        let nct = tape.permute3(stacked, [1, 2, 0]); // (N, F, T)
        let temporal = rtgcn_telemetry::span("temporal");
        let tcn = self.tcn.as_ref().unwrap();
        let out = tcn.forward(tape, &self.store, nct, training, &mut self.rng);
        let pooled3 = tape.permute3(out, [2, 0, 1]); // (T', N, H)
        let pooled = tape.mean_axis(pooled3, 0); // (N, H)
        drop(temporal);
        let w = self.store.bind(tape, self.fc_w.unwrap());
        let b = self.store.bind(tape, self.fc_b.unwrap());
        let scores = tape.linear(pooled, w, b);
        tape.reshape(scores, [n])
    }
}

impl StockRanker for RtGat {
    fn name(&self) -> String {
        "RT-GAT".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let relations = ds.relations(self.cfg.relation_kind);
        self.ensure_built(&relations);
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, 1e-4);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        let _fit = rtgcn_telemetry::span("fit");
        for _ in 0..self.cfg.epochs {
            let _epoch = rtgcn_telemetry::span("epoch");
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let mut tape = Tape::new();
                let pred = self.forward(&mut tape, &s.x, true);
                let loss = tape.combined_rank_loss(pred, &s.y, self.cfg.alpha);
                acc += tape.value(loss).item() as f64;
                {
                    let _t = rtgcn_telemetry::span("backward");
                    tape.backward(loss);
                    self.store.absorb_grads(&tape);
                }
                let _t = rtgcn_telemetry::span("optim");
                clip_grad_norm(&mut self.store, 5.0);
                opt.step(&mut self.store);
            }
            epoch_losses.push((acc / days.len().max(1) as f64) as f32);
        }
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let relations = ds.relations(self.cfg.relation_kind);
        self.ensure_built(&relations);
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, &s.x, false);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recurrent::split_window;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 50;
        spec.test_days = 8;
        StockDataset::generate(spec, 8)
    }

    fn tiny_cfg() -> RtGatConfig {
        RtGatConfig {
            t_steps: 8,
            n_features: 2,
            filters: 8,
            temporal_filters: 8,
            epochs: 2,
            dropout: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn fit_and_score() {
        let ds = tiny_ds();
        let mut m = RtGat::new(tiny_cfg(), 1);
        let rep = m.fit(&ds);
        assert!(rep.final_loss.is_finite());
        let scores = m.scores_for_day(&ds, ds.test_end_days()[0]);
        assert_eq!(scores.len(), 8);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn attention_normalises_per_destination() {
        let ds = tiny_ds();
        let mut m = RtGat::new(tiny_cfg(), 2);
        let relations = ds.relations(RelationKind::Both);
        m.ensure_built(&relations);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let xs = split_window(&mut tape, &s.x);
        // Recompute attention weights by hand for plane 0, with the serial
        // (edge-list) ops — the batched path must normalise identically.
        let edges = m.csr.clone().unwrap().edges;
        let w = m.store.bind(&mut tape, m.w_feat.unwrap());
        let h = tape.matmul(xs[0], w);
        let a_src = m.store.bind(&mut tape, m.a_src.unwrap());
        let a_dst = m.store.bind(&mut tape, m.a_dst.unwrap());
        let ss = tape.matmul(h, a_src);
        let sd = tape.matmul(h, a_dst);
        let ss = tape.reshape(ss, [8]);
        let sd = tape.reshape(sd, [8]);
        let ps = tape.gather_src(&edges, ss);
        let pd = tape.gather_dst(&edges, sd);
        let pre = tape.add(ps, pd);
        let logits = tape.leaky_relu(pre);
        let attn = tape.segment_softmax(&edges, logits);
        let av = tape.value(attn);
        let mut sums = vec![0.0f32; 8];
        for (e, p) in edges.pairs.iter().enumerate() {
            sums[p[1]] += av.data()[e];
        }
        for (i, s) in sums.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-4, "attention at node {i} sums to {s}");
        }
        m.store.clear_bindings();
    }

    #[test]
    fn training_improves_loss() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.epochs = 4;
        let mut m = RtGat::new(cfg, 3);
        let rep = m.fit(&ds);
        assert!(
            rep.epoch_losses.last().unwrap() <= rep.epoch_losses.first().unwrap(),
            "{:?}",
            rep.epoch_losses
        );
    }
}
