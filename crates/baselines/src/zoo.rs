//! The model zoo: one constructor per Table IV/V comparator, so harnesses
//! can iterate over the whole baseline roster with shared hyperparameters
//! ("all the methods use the same features ... with the same window size T",
//! paper Section V-B.2).

use crate::alstm::{ALstm, ALstmConfig};
use crate::arima::{Arima, ArimaConfig};
use crate::dqn::{Dqn, DqnConfig};
use crate::gat::{RtGat, RtGatConfig};
use crate::irdpg::{Irdpg, IrdpgConfig};
use crate::lstm_rankers::{LstmRanker, SeqConfig};
use crate::rsr::{Rsr, RsrConfig, RsrVariant};
use crate::sfm::{Sfm, SfmConfig};
use crate::sthan::{Sthan, SthanConfig};
use rtgcn_core::StockRanker;
use rtgcn_market::RelationKind;

/// Every baseline model in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    Arima,
    ALstm,
    Sfm,
    Lstm,
    Dqn,
    Irdpg,
    RankLstm,
    RsrI,
    RsrE,
    RtGat,
    Sthan,
}

impl ModelKind {
    /// The Table IV roster in paper order (STHAN-SR appears in Table V).
    pub const TABLE4: [ModelKind; 10] = [
        ModelKind::Arima,
        ModelKind::ALstm,
        ModelKind::Sfm,
        ModelKind::Lstm,
        ModelKind::Dqn,
        ModelKind::Irdpg,
        ModelKind::RankLstm,
        ModelKind::RsrI,
        ModelKind::RsrE,
        ModelKind::RtGat,
    ];

    /// Paper category label (CLF / REG / RL / RAN).
    pub fn category(&self) -> &'static str {
        match self {
            ModelKind::Arima | ModelKind::ALstm => "CLF",
            ModelKind::Sfm | ModelKind::Lstm => "REG",
            ModelKind::Dqn | ModelKind::Irdpg => "RL",
            _ => "RAN",
        }
    }
}

/// Hyperparameters shared by all models in a harness run.
#[derive(Clone, Debug)]
pub struct CommonConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub alpha: f32,
    pub relation_kind: RelationKind,
    /// Stop monitored fit loops early on a `Diverged` health verdict.
    pub abort_on_divergence: bool,
}

impl Default for CommonConfig {
    fn default() -> Self {
        CommonConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 32,
            epochs: 6,
            lr: 1e-3,
            alpha: 0.1,
            relation_kind: RelationKind::Both,
            abort_on_divergence: false,
        }
    }
}

/// Build a baseline model with shared hyperparameters.
pub fn build(kind: ModelKind, common: &CommonConfig, seed: u64) -> Box<dyn StockRanker> {
    let seq = SeqConfig {
        t_steps: common.t_steps,
        n_features: common.n_features,
        hidden: common.hidden,
        epochs: common.epochs,
        lr: common.lr,
        alpha: common.alpha,
        abort_on_divergence: common.abort_on_divergence,
    };
    match kind {
        ModelKind::Arima => Box::new(Arima::new(ArimaConfig::default())),
        ModelKind::ALstm => Box::new(ALstm::new(
            ALstmConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden,
                epochs: common.epochs,
                lr: common.lr,
                ..Default::default()
            },
            seed,
        )),
        ModelKind::Sfm => Box::new(Sfm::new(
            SfmConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden.min(24),
                epochs: common.epochs,
                lr: common.lr,
                ..Default::default()
            },
            seed,
        )),
        ModelKind::Lstm => Box::new(LstmRanker::regression(seq, seed)),
        ModelKind::Dqn => Box::new(Dqn::new(
            DqnConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden * 2,
                epochs: common.epochs.min(3),
                lr: common.lr,
                ..Default::default()
            },
            seed,
        )),
        ModelKind::Irdpg => Box::new(Irdpg::new(
            IrdpgConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden,
                epochs: common.epochs.min(3),
                lr: common.lr,
                ..Default::default()
            },
            seed,
        )),
        ModelKind::RankLstm => Box::new(LstmRanker::ranking(seq, seed)),
        ModelKind::RsrI => Box::new(Rsr::new(
            RsrConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden,
                epochs: common.epochs,
                lr: common.lr,
                alpha: common.alpha,
                variant: RsrVariant::Implicit,
                relation_kind: common.relation_kind,
                abort_on_divergence: common.abort_on_divergence,
            },
            seed,
        )),
        ModelKind::RsrE => Box::new(Rsr::new(
            RsrConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden,
                epochs: common.epochs,
                lr: common.lr,
                alpha: common.alpha,
                variant: RsrVariant::Explicit,
                relation_kind: common.relation_kind,
                abort_on_divergence: common.abort_on_divergence,
            },
            seed,
        )),
        ModelKind::RtGat => Box::new(RtGat::new(
            RtGatConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                filters: common.hidden,
                temporal_filters: common.hidden,
                epochs: common.epochs,
                lr: common.lr,
                alpha: common.alpha,
                relation_kind: common.relation_kind,
                ..Default::default()
            },
            seed,
        )),
        ModelKind::Sthan => Box::new(Sthan::new(
            SthanConfig {
                t_steps: common.t_steps,
                n_features: common.n_features,
                hidden: common.hidden,
                epochs: common.epochs,
                lr: common.lr,
                alpha: common.alpha,
                relation_kind: common.relation_kind,
                abort_on_divergence: common.abort_on_divergence,
            },
            seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_table_iv() {
        assert_eq!(ModelKind::Arima.category(), "CLF");
        assert_eq!(ModelKind::Sfm.category(), "REG");
        assert_eq!(ModelKind::Dqn.category(), "RL");
        assert_eq!(ModelKind::RsrE.category(), "RAN");
        assert_eq!(ModelKind::Sthan.category(), "RAN");
    }

    #[test]
    fn zoo_builds_every_model_with_expected_names() {
        let common = CommonConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 1, ..Default::default() };
        let expected = [
            (ModelKind::Arima, "ARIMA"),
            (ModelKind::ALstm, "A-LSTM"),
            (ModelKind::Sfm, "SFM"),
            (ModelKind::Lstm, "LSTM"),
            (ModelKind::Dqn, "DQN"),
            (ModelKind::Irdpg, "iRDPG"),
            (ModelKind::RankLstm, "Rank_LSTM"),
            (ModelKind::RsrI, "RSR_I"),
            (ModelKind::RsrE, "RSR_E"),
            (ModelKind::RtGat, "RT-GAT"),
            (ModelKind::Sthan, "STHAN-SR"),
        ];
        for (kind, name) in expected {
            let m = build(kind, &common, 1);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn only_classification_models_cannot_rank() {
        let common = CommonConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 1, ..Default::default() };
        for kind in ModelKind::TABLE4 {
            let m = build(kind, &common, 1);
            let expect_rank = kind.category() != "CLF";
            assert_eq!(m.can_rank(), expect_rank, "{kind:?}");
        }
    }
}
