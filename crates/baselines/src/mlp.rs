//! Small multi-layer perceptron used by the RL baselines (DQN Q-network,
//! iRDPG critic) and RSR's prediction heads.

use rand::rngs::StdRng;
use rtgcn_tensor::{init, ParamId, ParamStore, Tape, Tensor, Var};

/// A ReLU MLP with a linear output layer.
pub struct Mlp {
    layers: Vec<(ParamId, ParamId)>,
    pub dims: Vec<usize>,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`.
    pub fn new(store: &mut ParamStore, prefix: &str, dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let wid = store.add(format!("{prefix}.l{i}.w"), init::xavier([w[0], w[1]], rng));
                let bid = store.add(format!("{prefix}.l{i}.b"), Tensor::zeros([w[1]]));
                (wid, bid)
            })
            .collect();
        Mlp { layers, dims: dims.to_vec() }
    }

    /// `x: (B, in)` → `(B, out)`; ReLU between layers, linear at the end.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, &(w, b)) in self.layers.iter().enumerate() {
            let wv = store.bind(tape, w);
            let bv = store.bind(tape, b);
            h = tape.linear(h, wv, bv);
            if i != last {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_tensor::{Adam, Optimizer};

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(1);
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 2], &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(init::normal([3, 4], 1.0, &mut rng));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).dims(), &[3, 2]);
    }

    #[test]
    fn learns_xor_like_function() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(2);
        let mlp = Mlp::new(&mut store, "m", &[2, 16, 1], &mut rng);
        let mut opt = Adam::new(0.02, 0.0);
        let xs = Tensor::new([4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Tensor::new([4, 1], vec![0., 1., 1., 0.]);
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let pred = mlp.forward(&mut tape, &store, x);
            let loss = tape.mse(pred, &ys);
            last = tape.value(loss).item();
            tape.backward(loss);
            store.absorb_grads(&tape);
            opt.step(&mut store);
        }
        assert!(last < 0.05, "XOR loss stuck at {last}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(3);
        let _ = Mlp::new(&mut store, "m", &[4], &mut rng);
    }
}
