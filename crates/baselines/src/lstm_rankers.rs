//! The LSTM regression baseline (Bao et al. [16]) and its learning-to-rank
//! variant Rank_LSTM (Feng et al. [9]): a shared LSTM encodes each stock's
//! window (stocks = batch), the final hidden state is mapped to a scalar.
//! LSTM trains with pure MSE on the next-day return ratio; Rank_LSTM adds
//! the pairwise ranking hinge (Eq. 8) — the paper's canonical evidence that
//! ranking losses beat regression for investment revenue.

use crate::recurrent::{optimise_step, split_window, LstmCell};
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_market::StockDataset;
use rtgcn_telemetry::health::{HealthConfig, HealthMonitor};
use rtgcn_tensor::{init, Adam, ParamId, ParamStore, Tape, Tensor};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// L2 weight-decay λ shared by every baseline optimiser (`Adam::new(lr, λ)`).
pub(crate) const BASELINE_L2: f32 = 1e-4;

/// Shared hyperparameters for the sequence baselines.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeqConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    /// Ranking-loss weight (used only when ranking is enabled).
    pub alpha: f32,
    /// Stop the fit loop early once the health monitor reports divergence.
    pub abort_on_divergence: bool,
}

impl Default for SeqConfig {
    fn default() -> Self {
        SeqConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 32,
            epochs: 6,
            lr: 1e-3,
            alpha: 0.1,
            abort_on_divergence: false,
        }
    }
}

/// LSTM / Rank_LSTM baseline.
pub struct LstmRanker {
    pub cfg: SeqConfig,
    store: ParamStore,
    cell: LstmCell,
    w_out: ParamId,
    b_out: ParamId,
    /// `false` → plain regression (LSTM [16]); `true` → Rank_LSTM [9].
    ranking: bool,
}

impl LstmRanker {
    pub fn regression(cfg: SeqConfig, seed: u64) -> Self {
        Self::build(cfg, seed, false)
    }

    pub fn ranking(cfg: SeqConfig, seed: u64) -> Self {
        Self::build(cfg, seed, true)
    }

    fn build(cfg: SeqConfig, seed: u64, ranking: bool) -> Self {
        let mut rng = init::rng(seed);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", cfg.n_features, cfg.hidden, &mut rng);
        let w_out = store.add("out.w", init::xavier([cfg.hidden, 1], &mut rng));
        let b_out = store.add("out.b", Tensor::zeros([1]));
        LstmRanker { cfg, store, cell, w_out, b_out, ranking }
    }

    fn forward(&self, tape: &mut Tape, x: &Tensor) -> rtgcn_tensor::Var {
        let n = x.dims()[1];
        let temporal = rtgcn_telemetry::span("temporal");
        let xs = split_window(tape, x);
        let hs = self.cell.encode(tape, &self.store, &xs, n);
        drop(temporal);
        let w = self.store.bind(tape, self.w_out);
        let b = self.store.bind(tape, self.b_out);
        let out = tape.linear(*hs.last().expect("empty window"), w, b);
        tape.reshape(out, [n])
    }
}

impl StockRanker for LstmRanker {
    fn name(&self) -> String {
        if self.ranking { "Rank_LSTM".into() } else { "LSTM".into() }
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, BASELINE_L2);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        let mut epoch_secs = Vec::new();
        let mut monitor = HealthMonitor::new(
            &self.name(),
            HealthConfig { abort_on_divergence: self.cfg.abort_on_divergence, ..HealthConfig::default() },
        );
        let _fit = rtgcn_telemetry::span("fit");
        for _ in 0..self.cfg.epochs {
            let _epoch = rtgcn_telemetry::span("epoch");
            let e0 = Instant::now();
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let mut tape = Tape::new();
                let pred = self.forward(&mut tape, &s.x);
                let (loss, mse, rank) = if self.ranking {
                    tape.combined_rank_loss_parts(pred, &s.y, self.cfg.alpha)
                } else {
                    let loss = tape.mse(pred, &s.y);
                    let mse = tape.value(loss).item();
                    (loss, mse, 0.0)
                };
                let (lv, gnorm) = optimise_step(&mut tape, loss, &mut self.store, &mut opt, 5.0);
                acc += lv as f64;
                monitor.observe_step(lv, mse, rank, gnorm);
            }
            epoch_losses.push(if days.is_empty() { f32::NAN } else { (acc / days.len() as f64) as f32 });
            epoch_secs.push(e0.elapsed().as_secs_f64());
            monitor.end_epoch(self.store.value_norm(), BASELINE_L2);
            if monitor.should_abort() {
                break;
            }
        }
        let (health, epoch_health) = monitor.finish();
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            epoch_secs,
            health,
            epoch_health,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, &s.x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        out
    }

    fn score_window(&mut self, x: &Tensor) -> Option<Vec<f32>> {
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        Some(out)
    }

    fn param_store(&self) -> Option<&ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut ParamStore> {
        Some(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 50;
        spec.test_days = 10;
        StockDataset::generate(spec, 3)
    }

    fn tiny_cfg() -> SeqConfig {
        SeqConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 2, ..Default::default() }
    }

    #[test]
    fn both_variants_fit_and_score() {
        let ds = tiny_ds();
        for ranking in [false, true] {
            let mut m = if ranking {
                LstmRanker::ranking(tiny_cfg(), 1)
            } else {
                LstmRanker::regression(tiny_cfg(), 1)
            };
            let rep = m.fit(&ds);
            assert!(rep.final_loss.is_finite());
            let day = ds.test_end_days()[0];
            let scores = m.scores_for_day(&ds, day);
            assert_eq!(scores.len(), 8);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn names() {
        assert_eq!(LstmRanker::regression(tiny_cfg(), 1).name(), "LSTM");
        assert_eq!(LstmRanker::ranking(tiny_cfg(), 1).name(), "Rank_LSTM");
    }

    #[test]
    fn training_loss_decreases() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.epochs = 4;
        let mut m = LstmRanker::ranking(cfg, 5);
        let rep = m.fit(&ds);
        assert!(
            rep.epoch_losses.last().unwrap() <= rep.epoch_losses.first().unwrap(),
            "{:?}",
            rep.epoch_losses
        );
    }
}
