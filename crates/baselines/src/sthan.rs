//! STHAN-SR — spatiotemporal hypergraph attention network for stock ranking
//! (Sawhney et al., AAAI 2021 [10]), the Table V comparator.
//!
//! Faithful-at-moderate-simplification reimplementation:
//!
//! - **Hypergraph**: one hyperedge per industry group plus one per wiki
//!   relation pair; spatial propagation uses the HGNN operator
//!   `D_v^{-1/2} H W D_e^{-1} Hᵀ D_v^{-1/2}` (materialised by
//!   `rtgcn_graph::Hypergraph::propagation_edges`).
//! - **Hawkes temporal attention**: per-step embeddings are pooled with
//!   attention whose logits add a learnable exponential-decay excitation
//!   `ε·exp(−δ·(T−t))` — recent days excite the representation more, with
//!   learned intensity (the Hawkes kernel of [12]).
//!
//! Simplification vs the original (documented per DESIGN.md §6): hyperedge
//! attention is replaced by the fixed spectral operator; the temporal
//! Hawkes attention and the learning-to-rank objective are as published.

use crate::lstm_rankers::BASELINE_L2;
use crate::recurrent::{optimise_step, split_window};
use rtgcn_core::{FitReport, StockRanker};
use rtgcn_graph::Hypergraph;
use rtgcn_market::{RelationKind, StockDataset};
use rtgcn_telemetry::health::{HealthConfig, HealthMonitor};
use rtgcn_tensor::{init, Adam, CsrEdges, ParamId, ParamStore, Tape, Tensor, Var};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// STHAN-SR configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SthanConfig {
    pub t_steps: usize,
    pub n_features: usize,
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub alpha: f32,
    pub relation_kind: RelationKind,
    /// Stop the fit loop early once the health monitor reports divergence.
    pub abort_on_divergence: bool,
}

impl Default for SthanConfig {
    fn default() -> Self {
        SthanConfig {
            t_steps: 16,
            n_features: 4,
            hidden: 32,
            epochs: 6,
            lr: 1e-3,
            alpha: 0.1,
            relation_kind: RelationKind::Both,
            abort_on_divergence: false,
        }
    }
}

/// The STHAN-SR model.
pub struct Sthan {
    pub cfg: SthanConfig,
    seed: u64,
    store: ParamStore,
    built: bool,
    w_emb: Option<ParamId>,
    b_emb: Option<ParamId>,
    v_attn: Option<ParamId>,
    hawkes_eps: Option<ParamId>,
    hawkes_delta: Option<ParamId>,
    w_hg: Option<ParamId>,
    w_out: Option<ParamId>,
    b_out: Option<ParamId>,
    hg_csr: Option<CsrEdges>,
    hg_weights: Option<Tensor>,
}

impl Sthan {
    pub fn new(cfg: SthanConfig, seed: u64) -> Self {
        Sthan {
            cfg,
            seed,
            store: ParamStore::new(),
            built: false,
            w_emb: None,
            b_emb: None,
            v_attn: None,
            hawkes_eps: None,
            hawkes_delta: None,
            w_hg: None,
            w_out: None,
            b_out: None,
            hg_csr: None,
            hg_weights: None,
        }
    }

    fn ensure_built(&mut self, ds: &StockDataset) {
        if self.built {
            return;
        }
        let mut rng = init::rng(self.seed);
        let cfg = &self.cfg;
        let n = ds.n_stocks();
        // Build the hypergraph: industry groups + wiki pairs.
        let mut hg = Hypergraph::new(n);
        if matches!(cfg.relation_kind, RelationKind::Industry | RelationKind::Both) {
            let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (stock, &g) in ds.industry.industry_of.iter().enumerate() {
                groups.entry(g).or_default().push(stock);
            }
            for members in groups.into_values() {
                if members.len() >= 2 {
                    hg.add_hyperedge(members);
                }
            }
        }
        if matches!(cfg.relation_kind, RelationKind::Wiki | RelationKind::Both) {
            for e in &ds.wiki.edges {
                hg.add_hyperedge(vec![e.leader, e.follower]);
            }
        }
        let (edges, weights) = hg.propagation_edges();
        self.hg_csr = Some(CsrEdges::new(edges));
        self.hg_weights = Some(Tensor::from_vec(weights));
        self.w_emb = Some(self.store.add("emb.w", init::xavier([cfg.n_features, cfg.hidden], &mut rng)));
        self.b_emb = Some(self.store.add("emb.b", Tensor::zeros([cfg.hidden])));
        self.v_attn = Some(self.store.add("attn.v", init::xavier([cfg.hidden, 1], &mut rng)));
        self.hawkes_eps = Some(self.store.add("hawkes.eps", Tensor::from_vec(vec![0.5])));
        self.hawkes_delta = Some(self.store.add("hawkes.delta", Tensor::from_vec(vec![0.3])));
        self.w_hg = Some(self.store.add("hg.w", init::xavier([cfg.hidden, cfg.hidden], &mut rng)));
        self.w_out = Some(self.store.add("out.w", init::xavier([2 * cfg.hidden, 1], &mut rng)));
        self.b_out = Some(self.store.add("out.b", Tensor::zeros([1])));
        self.built = true;
    }

    fn forward(&self, tape: &mut Tape, x: &Tensor) -> Var {
        let n = x.dims()[1];
        let t_len = x.dims()[0];
        let temporal = rtgcn_telemetry::span("temporal");
        let xs = split_window(tape, x);
        let w_emb = self.store.bind(tape, self.w_emb.unwrap());
        let b_emb = self.store.bind(tape, self.b_emb.unwrap());
        // Per-step embeddings.
        let es: Vec<Var> = xs
            .iter()
            .map(|&x_t| {
                let e = tape.linear(x_t, w_emb, b_emb);
                tape.tanh(e)
            })
            .collect();
        // Hawkes attention over time: logit_t = e_t·v + ε·exp(−δ(T−1−t)).
        let v = self.store.bind(tape, self.v_attn.unwrap());
        let eps = self.store.bind(tape, self.hawkes_eps.unwrap());
        let delta = self.store.bind(tape, self.hawkes_delta.unwrap());
        let scores: Vec<Var> = es
            .iter()
            .enumerate()
            .map(|(t, &e)| {
                let s = tape.matmul(e, v); // (N, 1)
                let s = tape.reshape(s, [n]);
                let lag = (t_len - 1 - t) as f32;
                let neg_lag = tape.scale(delta, -lag); // (1)
                let decay = tape.exp(neg_lag);
                let excite = tape.mul(eps, decay); // (1), broadcasts over N
                tape.add(s, excite)
            })
            .collect();
        let st = tape.stack0(&scores); // (T, N)
        let stt = tape.transpose2(st); // (N, T)
        let lam = tape.softmax(stt);
        let lam_t = tape.transpose2(lam); // (T, N)
        let mut pooled: Option<Var> = None;
        for (t, &e) in es.iter().enumerate() {
            let row = tape.slice_rows(lam_t, t, t + 1);
            let col = tape.reshape(row, [n, 1]);
            let term = tape.mul(e, col);
            pooled = Some(match pooled {
                Some(p) => tape.add(p, term),
                None => term,
            });
        }
        let z = pooled.expect("non-empty window"); // (N, H)
        drop(temporal);
        // Spatial hypergraph propagation.
        let relational = rtgcn_telemetry::span("relational");
        let hw = tape.constant(self.hg_weights.clone().unwrap());
        let prop = tape.spmm_csr(self.hg_csr.as_ref().unwrap(), hw, z);
        let w_hg = self.store.bind(tape, self.w_hg.unwrap());
        let prop = tape.matmul(prop, w_hg);
        let zp = tape.relu(prop); // (N, H)
        drop(relational);
        // Score head on [z ; z'].
        let z_t = tape.transpose2(z);
        let zp_t = tape.transpose2(zp);
        let cat = tape.concat0(&[z_t, zp_t]);
        let feats = tape.transpose2(cat);
        let w = self.store.bind(tape, self.w_out.unwrap());
        let b = self.store.bind(tape, self.b_out.unwrap());
        let out = tape.linear(feats, w, b);
        tape.reshape(out, [n])
    }
}

impl StockRanker for Sthan {
    fn name(&self) -> String {
        "STHAN-SR".into()
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        self.ensure_built(ds);
        let t0 = Instant::now();
        let mut opt = Adam::new(self.cfg.lr, BASELINE_L2);
        let days = ds.train_end_days(self.cfg.t_steps);
        let mut epoch_losses = Vec::new();
        let mut epoch_secs = Vec::new();
        let mut monitor = HealthMonitor::new(
            &self.name(),
            HealthConfig { abort_on_divergence: self.cfg.abort_on_divergence, ..HealthConfig::default() },
        );
        let _fit = rtgcn_telemetry::span("fit");
        for _ in 0..self.cfg.epochs {
            let _epoch = rtgcn_telemetry::span("epoch");
            let e0 = Instant::now();
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.cfg.t_steps, self.cfg.n_features);
                let mut tape = Tape::new();
                let pred = self.forward(&mut tape, &s.x);
                let (loss, mse, rank) =
                    tape.combined_rank_loss_parts(pred, &s.y, self.cfg.alpha);
                let (lv, gnorm) = optimise_step(&mut tape, loss, &mut self.store, &mut opt, 5.0);
                acc += lv as f64;
                monitor.observe_step(lv, mse, rank, gnorm);
            }
            epoch_losses.push(if days.is_empty() { f32::NAN } else { (acc / days.len() as f64) as f32 });
            epoch_secs.push(e0.elapsed().as_secs_f64());
            monitor.end_epoch(self.store.value_norm(), BASELINE_L2);
            if monitor.should_abort() {
                break;
            }
        }
        let (health, epoch_health) = monitor.finish();
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            epoch_secs,
            health,
            epoch_health,
            ..FitReport::default()
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        self.ensure_built(ds);
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, &s.x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        out
    }

    fn prepare(&mut self, ds: &StockDataset) {
        self.ensure_built(ds);
    }

    fn score_window(&mut self, x: &Tensor) -> Option<Vec<f32>> {
        if !self.built {
            return None;
        }
        let mut tape = Tape::new();
        let pred = self.forward(&mut tape, x);
        let out = tape.value(pred).data().to_vec();
        self.store.clear_bindings();
        Some(out)
    }

    fn param_store(&self) -> Option<&ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut ParamStore> {
        Some(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
        spec.stocks = 10;
        spec.train_days = 50;
        spec.test_days = 8;
        StockDataset::generate(spec, 11)
    }

    fn tiny_cfg() -> SthanConfig {
        SthanConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 2, ..Default::default() }
    }

    #[test]
    fn fit_and_score() {
        let ds = tiny_ds();
        let mut m = Sthan::new(tiny_cfg(), 1);
        let rep = m.fit(&ds);
        assert!(rep.final_loss.is_finite());
        let scores = m.scores_for_day(&ds, ds.test_end_days()[0]);
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn hawkes_parameters_receive_gradient() {
        let ds = tiny_ds();
        let mut m = Sthan::new(tiny_cfg(), 2);
        m.ensure_built(&ds);
        let s = ds.sample(40, 8, 2);
        let mut tape = Tape::new();
        let pred = m.forward(&mut tape, &s.x);
        let loss = tape.combined_rank_loss(pred, &s.y, 0.1);
        tape.backward(loss);
        m.store.absorb_grads(&tape);
        for name in ["hawkes.eps", "hawkes.delta"] {
            let id = m.store.id(name).unwrap();
            assert!(m.store.grad(id).norm() > 0.0, "no gradient at {name}");
        }
    }

    #[test]
    fn hypergraph_built_from_industries_and_wiki() {
        let ds = tiny_ds();
        let mut m = Sthan::new(tiny_cfg(), 3);
        m.ensure_built(&ds);
        assert!(m.hg_csr.as_ref().unwrap().len() > ds.n_stocks(), "more than self-loops");
    }

    #[test]
    fn training_improves() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg();
        cfg.epochs = 4;
        let mut m = Sthan::new(cfg, 4);
        let rep = m.fit(&ds);
        assert!(
            rep.epoch_losses.last().unwrap() <= rep.epoch_losses.first().unwrap(),
            "{:?}",
            rep.epoch_losses
        );
    }
}
