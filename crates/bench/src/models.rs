//! Unified model specification across RT-GCN variants, ablations and every
//! baseline, so harnesses can declare a roster and iterate.

use rtgcn_baselines::{build as build_baseline, CommonConfig, ModelKind};
use rtgcn_core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_market::{RelationKind, StockDataset};

/// Any model in the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Spec {
    Baseline(ModelKind),
    Gcn(Strategy),
    /// Table VII ablations of RT-GCN (U).
    RConv,
    TConv,
    /// Fault-injection probe whose `fit` panics — exercises the runner's
    /// per-job isolation in tests. Never part of a real roster.
    #[doc(hidden)]
    PanicProbe,
    /// Fault-injection probe whose `fit` sleeps past any sane per-job
    /// timeout — exercises the runner's timeout/abandon path in tests.
    #[doc(hidden)]
    SlowProbe,
}

impl Spec {
    /// The full Table IV roster: 10 baselines + the three RT-GCN strategies.
    pub fn table4_roster() -> Vec<Spec> {
        let mut v: Vec<Spec> = ModelKind::TABLE4.iter().copied().map(Spec::Baseline).collect();
        v.extend(Strategy::ALL.iter().copied().map(Spec::Gcn));
        v
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Spec::Baseline(k) => {
                // Names come from the model itself; build a throwaway.
                let common =
                    CommonConfig { t_steps: 5, n_features: 1, hidden: 4, epochs: 1, ..Default::default() };
                build_baseline(*k, &common, 0).name()
            }
            Spec::Gcn(s) => s.label().to_string(),
            Spec::RConv => "R-Conv".into(),
            Spec::TConv => "T-Conv".into(),
            Spec::PanicProbe => "PanicProbe".into(),
            Spec::SlowProbe => "SlowProbe".into(),
        }
    }

    /// Category (CLF/REG/RL/RAN/Ours; TEST for fault probes).
    pub fn category(&self) -> &'static str {
        match self {
            Spec::Baseline(k) => k.category(),
            Spec::PanicProbe | Spec::SlowProbe => "TEST",
            _ => "Ours",
        }
    }

    /// Build the model for one seeded run. Graph models take their relation
    /// edges from `ds` filtered by `relation_kind`.
    pub fn build(
        &self,
        ds: &StockDataset,
        common: &CommonConfig,
        relation_kind: RelationKind,
        seed: u64,
    ) -> Box<dyn StockRanker> {
        match self {
            Spec::Baseline(k) => {
                let common = CommonConfig { relation_kind, ..common.clone() };
                build_baseline(*k, &common, seed)
            }
            Spec::Gcn(strategy) => {
                let cfg = gcn_config(common, *strategy, true, true);
                Box::new(RtGcn::new(cfg, &ds.relations(relation_kind), seed))
            }
            Spec::RConv => {
                let cfg = gcn_config(common, Strategy::Uniform, true, false);
                Box::new(RtGcn::new(cfg, &ds.relations(relation_kind), seed))
            }
            Spec::TConv => {
                let cfg = gcn_config(common, Strategy::Uniform, false, true);
                Box::new(RtGcn::new(cfg, &ds.relations(relation_kind), seed))
            }
            Spec::PanicProbe => Box::new(FaultProbe { panic_on_fit: true }),
            Spec::SlowProbe => Box::new(FaultProbe { panic_on_fit: false }),
        }
    }
}

/// How long [`Spec::SlowProbe`] sleeps in `fit` — long enough that any
/// sub-second test timeout fires first, short enough that the abandoned
/// attempt threads drain before a test binary exits.
pub const SLOW_PROBE_FIT_SECS: f64 = 2.0;

struct FaultProbe {
    panic_on_fit: bool,
}

impl StockRanker for FaultProbe {
    fn name(&self) -> String {
        if self.panic_on_fit { "PanicProbe" } else { "SlowProbe" }.into()
    }

    fn fit(&mut self, _ds: &StockDataset) -> rtgcn_core::FitReport {
        if self.panic_on_fit {
            panic!("injected fault: PanicProbe::fit always panics");
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(SLOW_PROBE_FIT_SECS));
        rtgcn_core::FitReport::default()
    }

    fn scores_for_day(&mut self, ds: &StockDataset, _end_day: usize) -> Vec<f32> {
        vec![0.0; ds.n_stocks()]
    }
}

fn gcn_config(
    common: &CommonConfig,
    strategy: Strategy,
    use_relational: bool,
    use_temporal: bool,
) -> RtGcnConfig {
    RtGcnConfig {
        t_steps: common.t_steps,
        n_features: common.n_features,
        rel_filters: common.hidden,
        temporal_filters: common.hidden,
        epochs: common.epochs,
        lr: common.lr,
        alpha: common.alpha,
        strategy,
        use_relational,
        use_temporal,
        abort_on_divergence: common.abort_on_divergence,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_13_models() {
        let r = Spec::table4_roster();
        assert_eq!(r.len(), 13);
        assert_eq!(r[0].name(), "ARIMA");
        assert_eq!(r[12].name(), "RT-GCN (T)");
    }

    #[test]
    fn categories() {
        assert_eq!(Spec::Gcn(Strategy::Uniform).category(), "Ours");
        assert_eq!(Spec::Baseline(ModelKind::RsrE).category(), "RAN");
        assert_eq!(Spec::RConv.name(), "R-Conv");
    }
}
