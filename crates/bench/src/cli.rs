//! Tiny hand-rolled CLI shared by every experiment harness (keeps the
//! dependency set inside the allowed list — no clap), plus the shared
//! telemetry bootstrap: every harness gets a JSONL sink under the log
//! directory and a span-tree summary on exit via [`HarnessArgs::init`].

use rtgcn_market::{Market, Scale};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Options common to all harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale (DESIGN.md §4.5). Default: small.
    pub scale: Scale,
    /// Number of seeded repetitions (paper: 15). Default: 3.
    pub seeds: usize,
    /// Training epochs per model. Default: 4.
    pub epochs: usize,
    /// Markets to run. Default: all three.
    pub markets: Vec<Market>,
    /// Output directory for JSON artifacts.
    pub out_dir: String,
    /// Telemetry JSONL directory (`--logs`). Default: `<out_dir>/logs`.
    pub logs_dir: Option<String>,
    /// Base RNG seed.
    pub base_seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::Small,
            seeds: 3,
            epochs: 4,
            markets: Market::ALL.to_vec(),
            out_dir: "results".into(),
            logs_dir: None,
            base_seed: 7,
        }
    }
}

/// (harness name, resolved logs dir) for the running binary, set once by
/// [`HarnessArgs::init`]. The runner reads this to swap per-model JSONL
/// sinks without threading the context through every call signature.
static HARNESS_CTX: OnceLock<(String, PathBuf)> = OnceLock::new();

/// The single structured error path every `src/bin/*` shares: an event in
/// the JSONL stream, a `error[<harness>]:`-prefixed line on stderr, and a
/// nonzero exit so shell pipelines (run_experiments.sh) stop on failure.
pub fn harness_error(harness: &str, err: &dyn std::fmt::Display) -> ! {
    rtgcn_telemetry::warn("harness.error", &format!("{harness}: {err}"));
    eprintln!("error[{harness}]: {err}");
    std::process::exit(2);
}

/// Begin a per-model telemetry scope: flushes the previous model's
/// aggregates and points the JSONL sink at
/// `<logs>/run-<harness>-<model>.jsonl`. No-op before [`HarnessArgs::init`]
/// (library tests and benches run without a sink).
pub fn begin_model_scope(model: &str) {
    if let Some((harness, dir)) = HARNESS_CTX.get() {
        rtgcn_telemetry::begin_model_run(dir, harness, model);
    }
}

/// Read-only view of the harness context set by [`HarnessArgs::init`]:
/// `(harness name, logs dir)`, or `None` in library tests and benches. The
/// runner uses it to place per-model JSONL sinks and the job journal.
pub fn harness_ctx() -> Option<(&'static str, &'static std::path::Path)> {
    HARNESS_CTX.get().map(|(h, d)| (h.as_str(), d.as_path()))
}

fn parse_market(s: &str) -> Option<Market> {
    match s.to_ascii_lowercase().as_str() {
        "nasdaq" => Some(Market::Nasdaq),
        "nyse" => Some(Market::Nyse),
        "csi" => Some(Market::Csi),
        _ => None,
    }
}

impl HarnessArgs {
    /// Parse `--scale`, `--seeds`, `--epochs`, `--markets a,b`, `--out`,
    /// `--logs`, `--seed`. Unknown flags abort with usage (fail fast beats
    /// silently running the wrong experiment).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale =
                        Scale::parse(&v).ok_or_else(|| format!("unknown scale {v:?}"))?;
                }
                "--seeds" => {
                    out.seeds = value("--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}"))?;
                }
                "--epochs" => {
                    out.epochs = value("--epochs")?
                        .parse()
                        .map_err(|e| format!("--epochs: {e}"))?;
                }
                "--markets" => {
                    let v = value("--markets")?;
                    out.markets = v
                        .split(',')
                        .map(|m| parse_market(m).ok_or_else(|| format!("unknown market {m:?}")))
                        .collect::<Result<_, _>>()?;
                }
                "--out" => out.out_dir = value("--out")?,
                "--logs" => out.logs_dir = Some(value("--logs")?),
                "--seed" => {
                    out.base_seed =
                        value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                other => {
                    return Err(format!(
                        "unknown flag {other:?}\nusage: [--scale small|medium|paper] [--seeds N] \
                         [--epochs N] [--markets nasdaq,nyse,csi] [--out DIR] [--logs DIR] \
                         [--seed N]"
                    ))
                }
            }
        }
        if out.seeds == 0 || out.epochs == 0 {
            return Err("--seeds and --epochs must be >= 1".into());
        }
        Ok(out)
    }

    /// Resolved telemetry log directory: `--logs` if given, else
    /// `<out_dir>/logs`.
    pub fn logs_dir(&self) -> PathBuf {
        match &self.logs_dir {
            Some(d) => PathBuf::from(d),
            None => PathBuf::from(&self.out_dir).join("logs"),
        }
    }

    /// Parse from the process environment and bootstrap telemetry. On a bad
    /// flag this routes through [`harness_error`] (named harness, nonzero
    /// exit). Returns the parsed args plus the [`rtgcn_telemetry::Telemetry`]
    /// guard — keep it alive for the whole `main` so the summary and JSONL
    /// flush fire on exit.
    pub fn init(harness: &str) -> (Self, rtgcn_telemetry::Telemetry) {
        let args = match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => harness_error(harness, &e),
        };
        let logs = args.logs_dir();
        // The monitor server (RTGCN_MONITOR) starts inside init_harness;
        // the /runs route must be on the table before that.
        crate::monitor::install_runs_route();
        let guard = rtgcn_telemetry::init_harness(harness, &logs);
        let _ = HARNESS_CTX.set((harness.to_string(), logs));
        (args, guard)
    }

    /// The seed list for repetition `0..seeds`.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds as u64).map(|i| self.base_seed + 1000 * i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.markets.len(), 3);
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--scale", "paper", "--seeds", "15", "--epochs", "10", "--markets", "csi,nasdaq",
            "--out", "/tmp/x", "--seed", "99",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.seeds, 15);
        assert_eq!(a.epochs, 10);
        assert_eq!(a.markets, vec![Market::Csi, Market::Nasdaq]);
        assert_eq!(a.out_dir, "/tmp/x");
        assert_eq!(a.seed_list()[1], 1099);
    }

    #[test]
    fn logs_dir_defaults_under_out_dir() {
        let a = parse(&["--out", "/tmp/x"]).unwrap();
        assert_eq!(a.logs_dir(), PathBuf::from("/tmp/x/logs"));
        let b = parse(&["--out", "/tmp/x", "--logs", "/var/log/rtgcn"]).unwrap();
        assert_eq!(b.logs_dir(), PathBuf::from("/var/log/rtgcn"));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "tiny"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--markets", "tse"]).is_err());
    }
}
