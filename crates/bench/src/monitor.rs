//! Live run-status board behind the monitor's `GET /runs` endpoint.
//!
//! The parallel runner ([`crate::runner::evaluate_roster`]) publishes every
//! (model, seed) job's lifecycle here — `queued` → `running` →
//! `ok`/`failed`, or `resumed` straight from the journal — and the
//! `rtgcn-monitor` HTTP server (started when `RTGCN_MONITOR` is set; see
//! `rtgcn_telemetry::http`) serves the board as JSON. The board is
//! process-global and keyed by `(context, model, seed)`, so back-to-back
//! rosters in one harness (different experiment contexts) coexist, while a
//! re-run of the same context replaces its stale rows.
//!
//! Publishing is a handful of mutex-guarded `Vec` updates per job
//! transition — nothing here touches the results path, so monitored and
//! unmonitored runs produce bit-identical `ModelRow`s (asserted by
//! `tests/monitor.rs`).

use parking_lot::Mutex;
use serde::Value;
use std::time::Instant;

/// Lifecycle of one (model, seed) pool job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Created, not yet picked up by a worker.
    Queued,
    /// A worker thread is executing an attempt right now.
    Running,
    /// Settled successfully.
    Ok,
    /// Settled after exhausting retries (or timed out on every attempt).
    Failed,
    /// Skipped: a completed result was resumed from the job journal.
    Resumed,
}

impl JobState {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Ok => "ok",
            JobState::Failed => "failed",
            JobState::Resumed => "resumed",
        }
    }
}

/// One board row. `attempts` counts started attempts (so a job being
/// retried shows `running` with `attempts > 1`).
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub context: String,
    pub model: String,
    pub seed: u64,
    pub state: JobState,
    pub attempts: u64,
    /// First-attempt start; `None` until a worker picks the job up.
    started: Option<Instant>,
    /// Frozen run duration once settled.
    settled_elapsed_ms: Option<u64>,
}

impl JobStatus {
    /// Milliseconds the job has been (or was) running; 0 while queued.
    pub fn elapsed_ms(&self) -> u64 {
        match (self.settled_elapsed_ms, self.started) {
            (Some(ms), _) => ms,
            // lint:allow(nan-discipline) integer saturation clamp on u128 millis, no floats involved
            (None, Some(t0)) => t0.elapsed().as_millis().min(u64::MAX as u128) as u64,
            (None, None) => 0,
        }
    }
}

static BOARD: Mutex<Vec<JobStatus>> = Mutex::new(Vec::new());

/// Open a roster on the board: drop any previous rows for `context`, then
/// add one row per job — `resumed` for journal-recovered results, `queued`
/// for everything about to enter the pool.
pub fn board_open(context: &str, queued: &[(String, u64)], resumed: &[(String, u64)]) {
    let mut board = BOARD.lock();
    board.retain(|j| j.context != context);
    let blank = |model: &String, seed: u64, state: JobState| JobStatus {
        context: context.to_string(),
        model: model.clone(),
        seed,
        state,
        attempts: 0,
        started: None,
        settled_elapsed_ms: None,
    };
    for (model, seed) in resumed {
        board.push(blank(model, *seed, JobState::Resumed));
    }
    for (model, seed) in queued {
        board.push(blank(model, *seed, JobState::Queued));
    }
}

fn update(context: &str, model: &str, seed: u64, f: impl FnOnce(&mut JobStatus)) {
    let mut board = BOARD.lock();
    if let Some(job) = board
        .iter_mut()
        .find(|j| j.context == context && j.model == model && j.seed == seed)
    {
        f(job);
    }
}

/// A worker picked the job up (fires once per attempt; `attempt` is
/// 1-based).
pub fn board_running(context: &str, model: &str, seed: u64, attempt: u64) {
    let now = Instant::now();
    update(context, model, seed, |j| {
        j.state = JobState::Running;
        j.attempts = attempt;
        if j.started.is_none() {
            j.started = Some(now);
        }
    });
}

/// The job reached its final state.
pub fn board_settled(context: &str, model: &str, seed: u64, ok: bool, attempts: u64) {
    update(context, model, seed, |j| {
        j.state = if ok { JobState::Ok } else { JobState::Failed };
        j.attempts = attempts;
        j.settled_elapsed_ms = Some(j.started.map(
            // lint:allow(nan-discipline) integer saturation clamp on u128 millis, no floats involved
            |t0| t0.elapsed().as_millis().min(u64::MAX as u128) as u64,
        ).unwrap_or(0));
    });
}

/// Current board rows (tests and the JSON view).
pub fn board_snapshot() -> Vec<JobStatus> {
    BOARD.lock().clone()
}

/// Clear the whole board (tests).
pub fn board_clear() {
    BOARD.lock().clear();
}

/// The `GET /runs` body: every row plus per-state counts.
pub fn runs_json() -> Value {
    let board = board_snapshot();
    let mut counts = [0u64; 5];
    let jobs: Vec<Value> = board
        .iter()
        .map(|j| {
            let idx = match j.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Ok => 2,
                JobState::Failed => 3,
                JobState::Resumed => 4,
            };
            counts[idx] += 1;
            Value::Map(vec![
                ("context".to_string(), Value::Str(j.context.clone())),
                ("model".to_string(), Value::Str(j.model.clone())),
                ("seed".to_string(), Value::U64(j.seed)),
                ("state".to_string(), Value::Str(j.state.as_str().to_string())),
                ("attempts".to_string(), Value::U64(j.attempts)),
                ("elapsed_ms".to_string(), Value::U64(j.elapsed_ms())),
            ])
        })
        .collect();
    Value::Map(vec![
        ("jobs".to_string(), Value::Seq(jobs)),
        (
            "counts".to_string(),
            Value::Map(vec![
                ("queued".to_string(), Value::U64(counts[0])),
                ("running".to_string(), Value::U64(counts[1])),
                ("ok".to_string(), Value::U64(counts[2])),
                ("failed".to_string(), Value::U64(counts[3])),
                ("resumed".to_string(), Value::U64(counts[4])),
            ]),
        ),
    ])
}

/// Plug `/runs` into the monitor's route table. Idempotent; called from
/// [`crate::HarnessArgs::init`] before the server starts, and directly by
/// tests that start a [`rtgcn_telemetry::http::Server`] by hand.
pub fn install_runs_route() {
    rtgcn_telemetry::http::register_route("/runs", |_req| {
        rtgcn_telemetry::http::Response::json(200, &runs_json())
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_tracks_full_lifecycle() {
        let _g = rtgcn_telemetry::test_lock();
        board_clear();
        let q = vec![("M".to_string(), 1), ("M".to_string(), 2)];
        let r = vec![("M".to_string(), 3)];
        board_open("ctx", &q, &r);
        board_running("ctx", "M", 1, 1);
        board_settled("ctx", "M", 1, true, 1);
        board_running("ctx", "M", 2, 1);
        board_running("ctx", "M", 2, 2); // retry
        board_settled("ctx", "M", 2, false, 2);
        let snap = board_snapshot();
        let get = |seed| snap.iter().find(|j| j.seed == seed).unwrap();
        assert_eq!(get(1).state, JobState::Ok);
        assert_eq!(get(2).state, JobState::Failed);
        assert_eq!(get(2).attempts, 2);
        assert_eq!(get(3).state, JobState::Resumed);
        let json = serde_json::to_string(&runs_json()).unwrap();
        assert!(json.contains("\"failed\":1"), "{json}");
        assert!(json.contains("\"resumed\":1"), "{json}");
        board_clear();
    }

    #[test]
    fn reopening_a_context_replaces_only_its_rows() {
        let _g = rtgcn_telemetry::test_lock();
        board_clear();
        board_open("a", &[("M".to_string(), 1)], &[]);
        board_open("b", &[("N".to_string(), 1)], &[]);
        board_open("a", &[("M".to_string(), 9)], &[]);
        let snap = board_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|j| j.context == "b" && j.model == "N"));
        assert!(snap.iter().any(|j| j.context == "a" && j.seed == 9));
        board_clear();
    }
}
