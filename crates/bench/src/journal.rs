//! Job journal for the fault-isolated parallel runner: every settled
//! (model, seed) job is appended to `results/logs/jobs-<harness>.jsonl` —
//! one flat JSON record per line, flushed immediately — so a killed or
//! crashed harness resumes from completed work instead of recomputing it.
//!
//! The record is deliberately flat (named scalar fields, no `Option`
//! payloads, status as a string) to stay inside what the vendored
//! `serde_derive` supports, and it round-trips NaN metrics faithfully:
//! `can_rank` carries the `Option`-ness of MRR separately from its value,
//! because NaN itself serialises as JSON `null` and parses back as NaN.

use crate::runner::SeedRun;
use rtgcn_core::FitReport;
use rtgcn_eval::BacktestOutcome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// One settled job. `status` is `"ok"` (payload fields carry the run) or
/// `"failed"` (`reason` says why; payload fields are defaults). `context`
/// identifies the experiment configuration (market, scale, epochs, relation
/// kind, ...) so records from a differently parameterised run are never
/// resumed into this one.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JournalRecord {
    pub context: String,
    pub model: String,
    pub seed: u64,
    pub status: String,
    pub reason: String,
    pub attempts: u64,
    pub can_rank: bool,
    pub mrr: f64,
    pub irr: BTreeMap<usize, f64>,
    pub daily_cumulative: BTreeMap<usize, Vec<f64>>,
    pub test_secs: f64,
    pub fit: FitReport,
}

impl JournalRecord {
    pub fn ok(context: &str, model: &str, run: &SeedRun, attempts: u64) -> JournalRecord {
        JournalRecord {
            context: context.to_string(),
            model: model.to_string(),
            seed: run.seed,
            status: "ok".to_string(),
            reason: String::new(),
            attempts,
            can_rank: run.outcome.mrr.is_some(),
            mrr: run.outcome.mrr.unwrap_or(f64::NAN),
            irr: run.outcome.irr.clone(),
            daily_cumulative: run.outcome.daily_cumulative.clone(),
            test_secs: run.outcome.test_secs,
            fit: run.fit.clone(),
        }
    }

    pub fn failed(
        context: &str,
        model: &str,
        seed: u64,
        reason: &str,
        attempts: u64,
    ) -> JournalRecord {
        JournalRecord {
            context: context.to_string(),
            model: model.to_string(),
            seed,
            status: "failed".to_string(),
            reason: reason.to_string(),
            attempts,
            can_rank: false,
            mrr: f64::NAN,
            irr: BTreeMap::new(),
            daily_cumulative: BTreeMap::new(),
            test_secs: 0.0,
            fit: FitReport::default(),
        }
    }

    /// Rehydrate a completed run (`None` for failed records).
    pub fn to_seed_run(&self) -> Option<SeedRun> {
        if self.status != "ok" {
            return None;
        }
        Some(SeedRun {
            seed: self.seed,
            outcome: BacktestOutcome {
                name: self.model.clone(),
                mrr: if self.can_rank { Some(self.mrr) } else { None },
                irr: self.irr.clone(),
                daily_cumulative: self.daily_cumulative.clone(),
                test_secs: self.test_secs,
            },
            fit: self.fit.clone(),
        })
    }
}

/// Append-only journal writer. Each record is written as one JSONL line and
/// flushed immediately, so a `kill -9` mid-run loses at most the in-flight
/// jobs, never a settled one.
pub struct Journal {
    writer: std::io::BufWriter<std::fs::File>,
}

impl Journal {
    pub fn append(path: &Path) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal { writer: std::io::BufWriter::new(file) })
    }

    /// Append one settled record. A failed write (disk full, revoked fd)
    /// silently voids the journal's crash-resume guarantee, so it is never
    /// swallowed: each failure emits a `journal.write_failed` warn event
    /// naming the record, and the runner keeps going — journalling is an
    /// optimisation, losing it must not kill a multi-hour sweep.
    pub fn write(&mut self, rec: &JournalRecord) {
        let line = match serde_json::to_string(rec) {
            Ok(line) => line,
            Err(e) => {
                rtgcn_telemetry::warn(
                    "journal.write_failed",
                    &format!("{}/{} seed {}: serialize: {e}", rec.context, rec.model, rec.seed),
                );
                // lint:allow(telemetry-span-discipline) scrapeable failure counter (monitor /metrics), deliberately root-scoped
                rtgcn_telemetry::count_always("journal.write_failed", 1);
                return;
            }
        };
        if let Err(e) = writeln!(self.writer, "{line}").and_then(|()| self.writer.flush()) {
            rtgcn_telemetry::warn(
                "journal.write_failed",
                &format!(
                    "{}/{} seed {}: {e} — this record will NOT survive a restart",
                    rec.context, rec.model, rec.seed
                ),
            );
            // lint:allow(telemetry-span-discipline) scrapeable failure counter (monitor /metrics), deliberately root-scoped
            rtgcn_telemetry::count_always("journal.write_failed", 1);
        }
    }
}

/// Load every parseable record from a journal file. A missing file is an
/// empty journal; unparseable lines (e.g. a record truncated by a kill) are
/// skipped, matching the snapshot pipeline's tolerance for torn writes.
pub fn load(path: &Path) -> Vec<JournalRecord> {
    let Ok(file) = std::fs::File::open(path) else { return Vec::new() };
    std::io::BufReader::new(file)
        .lines()
        .map_while(Result::ok)
        .filter_map(|l| serde_json::from_str::<JournalRecord>(l.trim()).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_telemetry::health::HealthVerdict;

    fn sample_run() -> SeedRun {
        SeedRun {
            seed: 1007,
            outcome: BacktestOutcome {
                name: "RT-GCN (U)".into(),
                mrr: Some(0.125),
                irr: [(1usize, 0.5), (5usize, f64::NAN)].into_iter().collect(),
                daily_cumulative: [(1usize, vec![0.1, 0.5])].into_iter().collect(),
                test_secs: 0.25,
            },
            fit: FitReport {
                train_secs: 1.5,
                final_loss: 0.03,
                epoch_losses: vec![0.1, 0.03],
                epoch_secs: vec![0.7, 0.8],
                health: HealthVerdict::Warn,
                ..FitReport::default()
            },
        }
    }

    #[test]
    fn journal_round_trips_ok_and_failed_records() {
        let dir = std::env::temp_dir().join(format!("rtgcn-journal-{}", std::process::id()));
        let path = dir.join("jobs-test.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::append(&path).unwrap();
            j.write(&JournalRecord::ok("ctx-a", "RT-GCN (U)", &sample_run(), 1));
            j.write(&JournalRecord::failed("ctx-a", "LSTM", 2007, "panicked: boom", 2));
        }
        let recs = load(&path);
        assert_eq!(recs.len(), 2);
        let run = recs[0].to_seed_run().unwrap();
        assert_eq!(run.seed, 1007);
        assert_eq!(run.outcome.mrr, Some(0.125));
        assert_eq!(run.outcome.irr[&1], 0.5);
        // NaN survives the null round-trip instead of collapsing to 0/None.
        assert!(run.outcome.irr[&5].is_nan());
        assert_eq!(run.outcome.daily_cumulative[&1], vec![0.1, 0.5]);
        assert_eq!(run.fit.epoch_losses, vec![0.1, 0.03]);
        assert_eq!(run.fit.health, HealthVerdict::Warn);
        assert!(recs[1].to_seed_run().is_none());
        assert_eq!(recs[1].attempts, 2);
        assert!(recs[1].reason.contains("boom"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal whose writes fail (here: ENOSPC via `/dev/full`) must warn
    /// per dropped record rather than silently voiding the crash-resume
    /// guarantee — and must not panic or kill the sweep.
    #[test]
    fn failed_write_warns_instead_of_silently_dropping() {
        let full = Path::new("/dev/full");
        if !full.exists() {
            return; // non-Linux dev environment; the ENOSPC fixture is unavailable
        }
        let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Off);
        let mut j = Journal::append(full).expect("open /dev/full");
        j.write(&JournalRecord::failed("ctx", "RT-GCN (U)", 7, "probe", 1));
        let lines = rtgcn_telemetry::drain_memory_sink();
        assert!(
            lines.iter().any(|l| l.contains("journal.write_failed") && l.contains("seed 7")),
            "a dropped record must emit journal.write_failed naming the record, got {lines:?}"
        );
        // The failure is also a counter, so a live /metrics scrape sees it.
        assert_eq!(rtgcn_telemetry::counter_value("journal.write_failed"), 1);
        assert!(
            rtgcn_telemetry::render_prometheus().contains("rtgcn_journal_write_failed_total 1"),
            "journal.write_failed must be scrapeable"
        );
    }

    #[test]
    fn nan_mrr_round_trips_via_can_rank() {
        let mut run = sample_run();
        run.outcome.mrr = Some(f64::NAN);
        let rec = JournalRecord::ok("ctx", "M", &run, 1);
        let back: JournalRecord =
            serde_json::from_str(&serde_json::to_string(&rec).unwrap()).unwrap();
        let rt = back.to_seed_run().unwrap();
        // Some(NaN) (a ranker with a degenerate split) must not become None
        // (a classification model) across a resume.
        assert!(rt.outcome.mrr.unwrap().is_nan());
    }

    #[test]
    fn truncated_and_garbage_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("rtgcn-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs-torn.jsonl");
        let good = serde_json::to_string(&JournalRecord::ok("c", "M", &sample_run(), 1)).unwrap();
        std::fs::write(&path, format!("{good}\nnot json\n{}", &good[..good.len() / 2])).unwrap();
        assert_eq!(load(&path).len(), 1);
        assert!(load(Path::new("/nonexistent/jobs.jsonl")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
