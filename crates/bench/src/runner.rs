//! Seeded run orchestration and aggregation shared by the table/figure
//! harnesses: fit + backtest per seed, means across seeds, and the paired
//! significance samples Table IV/V need.
//!
//! The execution layer is a **fault-isolated parallel job runner**: every
//! (model, seed) pair becomes one job on a bounded worker pool
//! (`RTGCN_JOBS` workers, default = available parallelism, `1` = the serial
//! path). Each job runs wrapped in `catch_unwind` on its own thread, under
//! an optional per-job timeout (`RTGCN_JOB_TIMEOUT_SECS`) with a bounded
//! retry budget (`RTGCN_JOB_RETRIES`, default 1), so one panicking or
//! hanging fit fails only its own seed instead of taking the harness down.
//! Settled jobs are journalled to `jobs-<harness>.jsonl` (see
//! [`crate::journal`]) so a killed harness resumes from completed work.
//!
//! Worker threads enter a per-model [`rtgcn_telemetry::ModelScope`], so
//! concurrent models keep disjoint metric registries and disjoint
//! `run-<harness>-<model>.jsonl` sinks. Job results are re-sorted into
//! (model, seed) order before aggregation, which makes the parallel path
//! reproduce the serial path's `ModelRow`s bit-identically: the models
//! themselves are deterministic given a seed (row-partitioned kernels sum
//! in a fixed order; all RNGs are seeded per job).
//!
//! A job that times out is *abandoned*, not cancelled: Rust threads cannot
//! be killed, so the runner stops waiting, drops the eventual result, and
//! lets the thread run to completion in the background (it holds an `Arc`
//! of the dataset until then). That is the price of fault isolation without
//! process-per-job.

use crate::journal::{self, Journal, JournalRecord};
use crate::monitor;
use crate::models::Spec;
use rtgcn_baselines::CommonConfig;
use rtgcn_core::FitReport;
use rtgcn_eval::{backtest, BacktestOutcome};
use rtgcn_market::{RelationKind, StockDataset};
use rtgcn_telemetry::ModelScope;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One seeded repetition of one model on one dataset.
pub struct SeedRun {
    pub seed: u64,
    pub outcome: BacktestOutcome,
    pub fit: FitReport,
}

/// A seed that produced no usable sample: either its job failed (panic,
/// timeout) or its metrics came back non-finite and were excluded from the
/// row means.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FailedSeed {
    pub seed: u64,
    pub reason: String,
}

/// Aggregated results of a model over its seeds (what a table row shows).
#[derive(Clone, Debug, Serialize)]
pub struct ModelRow {
    pub name: String,
    pub category: String,
    pub mrr: Option<f64>,
    /// Mean IRR per k over the *finite* samples.
    pub irr: std::collections::BTreeMap<usize, f64>,
    /// Per-seed IRR samples per k (for Wilcoxon), in seed order, including
    /// non-finite samples so pairing by seed stays intact.
    pub irr_samples: std::collections::BTreeMap<usize, Vec<f64>>,
    /// Per-seed MRR samples (empty for CLF models).
    pub mrr_samples: Vec<f64>,
    pub mean_train_secs: f64,
    pub mean_test_secs: f64,
    /// Per-seed training-health verdicts ("Healthy"/"Warn"/"Diverged");
    /// anything but all-Healthy deserves a look before trusting the row.
    pub health: Vec<String>,
    /// Seeds excluded from the means: crashed/timed-out jobs and completed
    /// seeds whose IRR/MRR samples were non-finite.
    pub failed_seeds: Vec<FailedSeed>,
}

// ------------------------------------------------------------ runner config

/// Execution knobs for [`evaluate_roster`], normally read from the
/// environment (`RTGCN_JOBS`, `RTGCN_JOB_TIMEOUT_SECS`, `RTGCN_JOB_RETRIES`)
/// plus the harness context ([`crate::HarnessArgs::init`]) for the per-model
/// JSONL sinks and the job journal.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Worker-pool width. `1` reproduces the serial path's schedule.
    pub jobs: usize,
    /// Per-job wall-clock budget; `None` = wait forever.
    pub timeout: Option<Duration>,
    /// Extra attempts after a failed first try (panic or timeout).
    pub retries: u32,
    /// Experiment-configuration key journalled with every record; only
    /// records with a matching context are resumed.
    pub context: String,
    /// Job-journal path (`jobs-<harness>.jsonl`); `None` disables journalling.
    pub journal: Option<PathBuf>,
    /// `(logs dir, harness tag)` for per-model `run-<harness>-<model>.jsonl`
    /// sinks; `None` runs model scopes without sinks (library tests).
    pub log_sink: Option<(PathBuf, String)>,
}

impl RunnerConfig {
    /// Pool knobs from the environment, per-model sinks from the harness
    /// context when [`crate::HarnessArgs::init`] has run, no journal.
    pub fn from_env() -> RunnerConfig {
        let jobs = std::env::var("RTGCN_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        let timeout = std::env::var("RTGCN_JOB_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|&s| s > 0.0 && s.is_finite())
            .map(Duration::from_secs_f64);
        let retries = std::env::var("RTGCN_JOB_RETRIES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .unwrap_or(1);
        let log_sink =
            crate::cli::harness_ctx().map(|(h, d)| (d.to_path_buf(), h.to_string()));
        RunnerConfig { jobs, timeout, retries, context: String::new(), journal: None, log_sink }
    }

    /// Enable the job journal at `<logs>/jobs-<harness>.jsonl` (requires the
    /// harness context) under the given experiment-configuration key. The
    /// context must pin everything that changes results — market, scale,
    /// epochs, relation kind — so stale records are never resumed.
    pub fn with_journal(mut self, context: impl Into<String>) -> RunnerConfig {
        self.context = context.into();
        if let Some((h, d)) = crate::cli::harness_ctx() {
            self.journal =
                Some(d.join(format!("jobs-{}.jsonl", rtgcn_telemetry::sanitize_label(h))));
        }
        self
    }
}

// ------------------------------------------------------------ worker pool

/// One unit of pool work: a labelled, retryable closure.
pub(crate) struct PoolTask<T> {
    pub label: String,
    pub work: Arc<dyn Fn() -> T + Send + Sync + 'static>,
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct PoolState<T> {
    results: Vec<Option<Result<T, String>>>,
    queue: VecDeque<usize>,
    attempts: Vec<u32>,
    settled: usize,
}

fn settle_attempt<T>(
    state: &mut PoolState<T>,
    job: usize,
    out: Result<T, String>,
    retries: u32,
    label: &str,
    on_settle: &mut impl FnMut(usize, &Result<T, String>, u64),
) {
    match out {
        Ok(v) => {
            let res = Ok(v);
            on_settle(job, &res, state.attempts[job] as u64);
            state.results[job] = Some(res);
            state.settled += 1;
        }
        Err(reason) => {
            if state.attempts[job] <= retries {
                if rtgcn_telemetry::enabled(rtgcn_telemetry::Level::Summary) {
                    eprintln!(
                        "[runner] {label} failed ({reason}); retrying (attempt {}/{})",
                        state.attempts[job] + 1,
                        retries + 1
                    );
                }
                // lint:allow(telemetry-span-discipline) pool-level retry counter, deliberately root-scoped
                rtgcn_telemetry::count("runner.jobs.retried", 1);
                state.queue.push_back(job);
            } else {
                let res = Err(reason);
                on_settle(job, &res, state.attempts[job] as u64);
                state.results[job] = Some(res);
                state.settled += 1;
            }
        }
    }
}

/// Run `tasks` on `workers` detached threads with `catch_unwind` isolation,
/// an optional per-attempt timeout, and `retries` extra attempts per job.
/// Returns per-task results in task order. `on_start(task_idx, attempt)`
/// fires on the orchestrator thread just before each attempt's worker
/// spawns (attempt is 1-based — the live status board uses it to show
/// `running` with a retry count); `on_settle(task_idx, result, attempts)`
/// fires once per task as it reaches its final state (in completion order —
/// journal writes must land the moment a job settles, not when the whole
/// pool drains).
///
/// Timed-out attempts are abandoned: their threads keep running detached
/// and their eventual results are dropped (stale attempt ids are ignored),
/// so a retry can run concurrently with the hung attempt it replaces.
pub(crate) fn run_pool<T: Send + 'static>(
    tasks: Vec<PoolTask<T>>,
    workers: usize,
    timeout: Option<Duration>,
    retries: u32,
    mut on_start: impl FnMut(usize, u64),
    mut on_settle: impl FnMut(usize, &Result<T, String>, u64),
) -> Vec<Result<T, String>> {
    let total = tasks.len();
    if total == 0 {
        return Vec::new();
    }
    // lint:allow(nan-discipline) usize worker-count clamp, not a float metric
    let workers = workers.max(1).min(total);
    let mut state = PoolState::<T> {
        results: (0..total).map(|_| None).collect(),
        queue: (0..total).collect(),
        attempts: vec![0; total],
        settled: 0,
    };
    let (tx, rx) = mpsc::channel::<(u64, usize, Result<T, String>)>();
    // attempt id -> (job, deadline); stale ids (timed out) are dropped.
    let mut inflight: BTreeMap<u64, (usize, Instant)> = BTreeMap::new();
    let mut next_attempt_id: u64 = 0;
    // Far-future stand-in deadline when no timeout is configured (recv()
    // blocks instead, so it is never consulted).
    const NO_TIMEOUT: Duration = Duration::from_secs(24 * 3600);

    while state.settled < total {
        while inflight.len() < workers {
            let Some(job) = state.queue.pop_front() else { break };
            state.attempts[job] += 1;
            on_start(job, state.attempts[job] as u64);
            let id = next_attempt_id;
            next_attempt_id += 1;
            let work = Arc::clone(&tasks[job].work);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work()))
                    .map_err(|p| format!("panicked: {}", panic_message(p.as_ref())));
                // The orchestrator may have stopped listening (pool done or
                // attempt abandoned); a failed send is fine.
                let _ = tx.send((id, job, out));
            });
            inflight.insert(id, (job, Instant::now() + timeout.unwrap_or(NO_TIMEOUT)));
        }
        let received = match timeout {
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            Some(_) => {
                let now = Instant::now();
                let wait = inflight
                    .values()
                    .map(|&(_, d)| d.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::ZERO);
                rx.recv_timeout(wait)
            }
        };
        match received {
            Ok((id, job, out)) => {
                if inflight.remove(&id).is_some() {
                    let label = tasks[job].label.clone();
                    settle_attempt(&mut state, job, out, retries, &label, &mut on_settle);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let expired: Vec<u64> = inflight
                    .iter()
                    .filter(|&(_, &(_, d))| d <= now)
                    .map(|(&id, _)| id)
                    .collect();
                for id in expired {
                    // lint:allow(panic-free-hot-paths) id was collected from `inflight` three lines up
                    let (job, _) = inflight.remove(&id).expect("expired id is inflight");
                    let label = tasks[job].label.clone();
                    let reason = format!(
                        "timed out after {:.1}s (attempt abandoned)",
                        timeout.unwrap_or(NO_TIMEOUT).as_secs_f64()
                    );
                    settle_attempt(&mut state, job, Err(reason), retries, &label, &mut on_settle);
                }
            }
            // Unreachable while we hold the original `tx`; fail closed.
            Err(RecvTimeoutError::Disconnected) => {
                for job in 0..total {
                    if state.results[job].is_none() {
                        state.results[job] = Some(Err("worker channel closed".to_string()));
                    }
                }
                break;
            }
        }
    }
    // lint:allow(panic-free-hot-paths) the drain loop above exits only once every job settled
    state.results.into_iter().map(|r| r.expect("all jobs settled")).collect()
}

// ------------------------------------------------------------ evaluation

/// Fit and backtest `spec` once per seed, serially on the calling thread
/// (the historical path; kept for callers that manage their own scopes).
pub fn run_seeds(
    spec: &Spec,
    ds: &StockDataset,
    common: &CommonConfig,
    relation_kind: RelationKind,
    seeds: &[u64],
    ks: &[usize],
) -> Vec<SeedRun> {
    // Each model gets its own JSONL file (run-<harness>-<model>.jsonl) and a
    // fresh aggregate registry, so per-model stats stand alone.
    crate::cli::begin_model_scope(&spec.name());
    seeds
        .iter()
        .map(|&seed| {
            let _seed_span = rtgcn_telemetry::span("seed");
            let mut model = spec.build(ds, common, relation_kind, seed);
            let fit = model.fit(ds);
            let outcome = backtest(model.as_mut(), ds, ks, seed);
            SeedRun { seed, outcome, fit }
        })
        .collect()
}

/// Evaluate a whole roster: every (model, seed) pair becomes one pool job.
/// Results are re-sorted into (model, seed) order before aggregation, so the
/// returned rows match a `jobs = 1` run bit-for-bit (wall-clock fields
/// aside). Completed jobs found in the journal (matching `cfg.context`) are
/// reused instead of recomputed; their models keep their previous JSONL logs.
pub fn evaluate_roster(
    specs: &[Spec],
    ds: &StockDataset,
    common: &CommonConfig,
    relation_kind: RelationKind,
    seeds: &[u64],
    ks: &[usize],
    cfg: &RunnerConfig,
) -> Vec<ModelRow> {
    let names: Vec<String> = specs.iter().map(|s| s.name()).collect();
    let slots: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| seeds.iter().map(move |&s| (mi, s)))
        .collect();
    let mut results: Vec<Option<Result<SeedRun, String>>> =
        (0..slots.len()).map(|_| None).collect();

    // Resume settled jobs from the journal (last record per key wins, so a
    // re-run after a fix supersedes older entries).
    let mut completed: BTreeMap<(String, u64), SeedRun> = BTreeMap::new();
    if let Some(path) = &cfg.journal {
        for rec in journal::load(path) {
            if rec.context == cfg.context {
                if let Some(run) = rec.to_seed_run() {
                    completed.insert((rec.model.clone(), rec.seed), run);
                }
            }
        }
    }
    let mut pending: Vec<usize> = Vec::new();
    let mut resumed_keys: Vec<(String, u64)> = Vec::new();
    for (si, &(mi, seed)) in slots.iter().enumerate() {
        match completed.remove(&(names[mi].clone(), seed)) {
            Some(run) => {
                results[si] = Some(Ok(run));
                resumed_keys.push((names[mi].clone(), seed));
            }
            None => pending.push(si),
        }
    }
    let n_resumed = slots.len() - pending.len();
    if n_resumed > 0 {
        rtgcn_telemetry::count("runner.jobs.resumed", n_resumed as u64);
        eprintln!(
            "[runner] resumed {n_resumed} completed job(s) from journal; {} left to run",
            pending.len()
        );
    }

    // Publish the roster to the live status board (the monitor's /runs).
    // Board updates are off the results path: they must never change rows.
    let queued_keys: Vec<(String, u64)> = pending
        .iter()
        .map(|&si| {
            let (mi, seed) = slots[si];
            (names[mi].clone(), seed)
        })
        .collect();
    monitor::board_open(&cfg.context, &queued_keys, &resumed_keys);

    // One telemetry scope per model that still has work; models fully
    // resumed from the journal get no scope (and keep their old log files).
    let scopes: Vec<Option<ModelScope>> = specs
        .iter()
        .enumerate()
        .map(|(mi, _)| {
            if !pending.iter().any(|&si| slots[si].0 == mi) {
                return None;
            }
            let scope = ModelScope::new();
            if let Some((dir, harness)) = &cfg.log_sink {
                let path = rtgcn_telemetry::run_log_path(dir, harness, &names[mi]);
                if let Err(e) = scope.install_file_sink(&path) {
                    eprintln!("[runner] cannot open JSONL sink {}: {e}", path.display());
                }
                scope.emit(&rtgcn_telemetry::Event::meta("harness", harness));
                scope.emit(&rtgcn_telemetry::Event::meta("model", &names[mi]));
            }
            Some(scope)
        })
        .collect();

    // Jobs run on detached threads (abandonable on timeout), so they own
    // `Arc` clones of the shared inputs rather than borrows.
    let ds_shared = Arc::new(ds.clone());
    let common_shared = Arc::new(common.clone());
    let ks_shared = Arc::new(ks.to_vec());
    let tasks: Vec<PoolTask<SeedRun>> = pending
        .iter()
        .map(|&si| {
            let (mi, seed) = slots[si];
            let spec = specs[mi];
            let scope = scopes[mi].clone();
            let ds = Arc::clone(&ds_shared);
            let common = Arc::clone(&common_shared);
            let ks = Arc::clone(&ks_shared);
            PoolTask {
                label: format!("{} seed {seed}", names[mi]),
                work: Arc::new(move || {
                    let _scope_guard = scope.as_ref().map(|s| s.enter());
                    let _seed_span = rtgcn_telemetry::span("seed");
                    let mut model = spec.build(&ds, &common, relation_kind, seed);
                    let fit = model.fit(&ds);
                    let outcome = backtest(model.as_mut(), &ds, &ks, seed);
                    SeedRun { seed, outcome, fit }
                }),
            }
        })
        .collect();

    let mut writer = cfg.journal.as_ref().and_then(|path| match Journal::append(path) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("[runner] cannot open job journal {}: {e}", path.display());
            None
        }
    });
    let verbose = rtgcn_telemetry::enabled(rtgcn_telemetry::Level::Summary);
    let pool_results = run_pool(
        tasks,
        cfg.jobs,
        cfg.timeout,
        cfg.retries,
        |ti, attempt| {
            let (mi, seed) = slots[pending[ti]];
            monitor::board_running(&cfg.context, &names[mi], seed, attempt);
        },
        |ti, res, attempts| {
            let (mi, seed) = slots[pending[ti]];
            monitor::board_settled(&cfg.context, &names[mi], seed, res.is_ok(), attempts);
            match res {
                Ok(run) => {
                    rtgcn_telemetry::count("runner.jobs.completed", 1);
                    if let Some(j) = writer.as_mut() {
                        j.write(&JournalRecord::ok(&cfg.context, &names[mi], run, attempts));
                    }
                    if verbose {
                        eprintln!("[runner] {} seed {seed}: done", names[mi]);
                    }
                }
                Err(reason) => {
                    rtgcn_telemetry::count("runner.jobs.failed", 1);
                    rtgcn_telemetry::warn(
                        "runner.job_failed",
                        &format!("{} seed {seed}: {reason}", names[mi]),
                    );
                    if let Some(j) = writer.as_mut() {
                        j.write(&JournalRecord::failed(
                            &cfg.context,
                            &names[mi],
                            seed,
                            reason,
                            attempts,
                        ));
                    }
                }
            }
        },
    );
    for (ti, r) in pool_results.into_iter().enumerate() {
        results[pending[ti]] = Some(r);
    }
    for (mi, scope) in scopes.iter().enumerate() {
        let Some(scope) = scope else { continue };
        // Per-model span tree on stderr at summary level, like the serial
        // path's exit summary used to show for its last model — here every
        // model gets one, since each scope holds its own registry.
        if verbose {
            let _g = scope.enter();
            eprintln!("[runner] telemetry summary for {}:", names[mi]);
            rtgcn_telemetry::print_summary();
        }
        scope.finish();
    }

    specs
        .iter()
        .enumerate()
        .map(|(mi, spec)| {
            let mut runs = Vec::new();
            let mut failed = Vec::new();
            for (si, &(smi, seed)) in slots.iter().enumerate() {
                if smi != mi {
                    continue;
                }
                // lint:allow(panic-free-hot-paths) run_pool returns one settled result per slot
                match results[si].take().expect("every slot settled") {
                    Ok(run) => runs.push(run),
                    Err(reason) => failed.push(FailedSeed { seed, reason }),
                }
            }
            aggregate_with_failures(spec, &runs, failed, ks)
        })
        .collect()
}

/// Mean over the finite samples; NaN when none are finite (so an all-failed
/// row reads as "no score", never as a fake 0.0).
fn finite_mean(samples: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &v in samples {
        if v.is_finite() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Aggregate seed runs into a table row. `failed` carries seeds whose jobs
/// never produced a run; completed seeds with non-finite IRR/MRR samples are
/// excluded from the means, warned about, and appended to `failed_seeds` —
/// a Diverged seed can no longer silently drag a whole row to NaN.
pub fn aggregate_with_failures(
    spec: &Spec,
    runs: &[SeedRun],
    mut failed: Vec<FailedSeed>,
    ks: &[usize],
) -> ModelRow {
    let n = runs.len().max(1) as f64;
    let mut non_finite: BTreeMap<u64, String> = BTreeMap::new();
    let mut irr = std::collections::BTreeMap::new();
    let mut irr_samples = std::collections::BTreeMap::new();
    for &k in ks {
        let samples: Vec<f64> = runs
            .iter()
            .map(|r| r.outcome.irr.get(&k).copied().unwrap_or(f64::NAN))
            .collect();
        for (r, &v) in runs.iter().zip(samples.iter()) {
            if !v.is_finite() {
                non_finite
                    .entry(r.seed)
                    .or_insert_with(|| format!("non-finite IRR-{k} sample"));
            }
        }
        irr.insert(k, finite_mean(&samples));
        irr_samples.insert(k, samples);
    }
    let mrr_samples: Vec<f64> = runs.iter().filter_map(|r| r.outcome.mrr).collect();
    for r in runs {
        if let Some(v) = r.outcome.mrr {
            if !v.is_finite() {
                non_finite.entry(r.seed).or_insert_with(|| "non-finite MRR sample".to_string());
            }
        }
    }
    let mrr = if mrr_samples.is_empty() { None } else { Some(finite_mean(&mrr_samples)) };
    for (seed, why) in non_finite {
        rtgcn_telemetry::warn(
            "aggregate.non_finite",
            &format!("{} seed {seed}: {why}; excluded from row means", spec.name()),
        );
        if !failed.iter().any(|f| f.seed == seed) {
            failed.push(FailedSeed { seed, reason: why });
        }
    }
    failed.sort_by(|a, b| a.seed.cmp(&b.seed).then_with(|| a.reason.cmp(&b.reason)));
    ModelRow {
        name: spec.name(),
        category: spec.category().to_string(),
        mrr,
        irr,
        irr_samples,
        mrr_samples,
        mean_train_secs: runs.iter().map(|r| r.fit.train_secs).sum::<f64>() / n,
        mean_test_secs: runs.iter().map(|r| r.outcome.test_secs).sum::<f64>() / n,
        health: runs.iter().map(|r| r.fit.health.to_string()).collect(),
        failed_seeds: failed,
    }
}

/// Aggregate seed runs into a table row (no externally failed seeds).
pub fn aggregate(spec: &Spec, runs: &[SeedRun], ks: &[usize]) -> ModelRow {
    aggregate_with_failures(spec, runs, Vec::new(), ks)
}

/// Convenience: run + aggregate one model with environment-derived pool
/// settings (no journal).
pub fn evaluate(
    spec: &Spec,
    ds: &StockDataset,
    common: &CommonConfig,
    relation_kind: RelationKind,
    seeds: &[u64],
    ks: &[usize],
) -> ModelRow {
    evaluate_roster(
        std::slice::from_ref(spec),
        ds,
        common,
        relation_kind,
        seeds,
        ks,
        &RunnerConfig::from_env(),
    )
    .pop()
    // lint:allow(panic-free-hot-paths) slice::from_ref passed exactly one spec
    .expect("one spec yields one row")
}

/// The strongest baseline for a metric: highest *finite* mean among
/// non-"Ours" rows. Non-finite means are skipped — `total_cmp` orders NaN
/// above every finite value, so a diverged baseline would otherwise win the
/// Wilcoxon comparison with a NaN "score".
pub fn strongest_baseline(
    rows: &[ModelRow],
    metric: impl Fn(&ModelRow) -> Option<f64>,
) -> Option<&ModelRow> {
    rows.iter()
        .filter(|r| r.category != "Ours")
        .filter_map(|r| metric(r).map(|v| (r, v)))
        .filter(|(_, v)| v.is_finite())
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_core::Strategy;
    use rtgcn_market::{Market, Scale, UniverseSpec};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 40;
        spec.test_days = 8;
        StockDataset::generate(spec, 1)
    }

    fn tiny_common() -> CommonConfig {
        CommonConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 1, ..Default::default() }
    }

    #[test]
    fn evaluate_rtgcn_over_two_seeds() {
        let ds = tiny_ds();
        let row = evaluate(
            &Spec::Gcn(Strategy::Uniform),
            &ds,
            &tiny_common(),
            RelationKind::Both,
            &[1, 2],
            &[1, 5],
        );
        assert_eq!(row.name, "RT-GCN (U)");
        assert_eq!(row.irr_samples[&1].len(), 2);
        assert_eq!(row.mrr_samples.len(), 2);
        assert!(row.mrr.unwrap() > 0.0);
        assert!(row.mean_train_secs > 0.0);
        assert!(row.failed_seeds.is_empty());
    }

    #[test]
    fn strongest_baseline_excludes_ours() {
        let mk = |name: &str, cat: &str, irr1: f64| ModelRow {
            name: name.into(),
            category: cat.into(),
            mrr: Some(0.01),
            irr: [(1usize, irr1)].into_iter().collect(),
            irr_samples: Default::default(),
            mrr_samples: vec![],
            mean_train_secs: 0.0,
            mean_test_secs: 0.0,
            health: vec![],
            failed_seeds: vec![],
        };
        let rows = vec![mk("A", "RAN", 0.5), mk("B", "RAN", 0.9), mk("Ours", "Ours", 2.0)];
        let best = strongest_baseline(&rows, |r| r.irr.get(&1).copied()).unwrap();
        assert_eq!(best.name, "B");
        // Regression: a NaN mean must never be "strongest" (total_cmp ranks
        // NaN above every finite value).
        let rows = vec![mk("A", "RAN", 0.5), mk("Diverged", "RAN", f64::NAN)];
        let best = strongest_baseline(&rows, |r| r.irr.get(&1).copied()).unwrap();
        assert_eq!(best.name, "A");
        // All-NaN baselines: no strongest baseline at all.
        let rows = vec![mk("Diverged", "RAN", f64::NAN), mk("Ours", "Ours", 2.0)];
        assert!(strongest_baseline(&rows, |r| r.irr.get(&1).copied()).is_none());
    }

    fn run_with(seed: u64, irr1: f64, mrr: f64) -> SeedRun {
        SeedRun {
            seed,
            outcome: BacktestOutcome {
                name: "M".into(),
                mrr: Some(mrr),
                irr: [(1usize, irr1)].into_iter().collect(),
                daily_cumulative: Default::default(),
                test_secs: 0.0,
            },
            fit: FitReport::default(),
        }
    }

    #[test]
    fn aggregate_skips_non_finite_samples_and_records_failed_seeds() {
        let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Off);
        let spec = Spec::Gcn(Strategy::Uniform);
        let runs =
            vec![run_with(1, 0.4, 0.1), run_with(2, f64::NAN, f64::NAN), run_with(3, 0.6, 0.3)];
        let row = aggregate(&spec, &runs, &[1]);
        // The NaN seed no longer poisons the means...
        assert_eq!(row.irr[&1], 0.5);
        assert!((row.mrr.unwrap() - 0.2).abs() < 1e-12);
        // ...but stays visible: raw samples keep seed pairing, and the seed
        // is counted in failed_seeds with a warn event.
        assert_eq!(row.irr_samples[&1].len(), 3);
        assert!(row.irr_samples[&1][1].is_nan());
        assert_eq!(row.failed_seeds.len(), 1);
        assert_eq!(row.failed_seeds[0].seed, 2);
        let warned = rtgcn_telemetry::drain_memory_sink()
            .iter()
            .any(|l| l.contains("aggregate.non_finite"));
        assert!(warned, "expected aggregate.non_finite warn");
        // All seeds non-finite: NaN mean, not 0.0.
        let row = aggregate(&spec, &[run_with(1, f64::NAN, f64::NAN)], &[1]);
        assert!(row.irr[&1].is_nan());
        assert!(row.mrr.unwrap().is_nan());
    }

    #[test]
    fn aggregate_tolerates_failed_seeds_and_missing_ks() {
        let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Off);
        let spec = Spec::Gcn(Strategy::Uniform);
        let failed = vec![FailedSeed { seed: 2, reason: "panicked: boom".into() }];
        // Seed 1's outcome has no k=5 entry: NaN sample, no panic.
        let row = aggregate_with_failures(&spec, &[run_with(1, 0.4, 0.1)], failed, &[1, 5]);
        assert_eq!(row.irr[&1], 0.4);
        assert!(row.irr[&5].is_nan());
        assert!(row.failed_seeds.iter().any(|f| f.seed == 2 && f.reason.contains("boom")));
    }

    #[test]
    fn pool_isolates_a_panicking_job() {
        let mk = |v: u64| PoolTask::<u64> {
            label: format!("job{v}"),
            work: Arc::new(move || v * 10),
        };
        let tasks = vec![
            mk(1),
            PoolTask { label: "boom".into(), work: Arc::new(|| panic!("injected panic")) },
            mk(3),
        ];
        let results = run_pool(tasks, 2, None, 0, |_, _| {}, |_, _, _| {});
        assert_eq!(results[0].as_ref().unwrap(), &10);
        assert!(results[1].as_ref().unwrap_err().contains("injected panic"));
        assert_eq!(results[2].as_ref().unwrap(), &30);
    }

    #[test]
    fn pool_times_out_a_hung_job_and_retries_once() {
        static ATTEMPTS: AtomicU32 = AtomicU32::new(0);
        let tasks = vec![PoolTask::<u64> {
            label: "hang".into(),
            work: Arc::new(|| {
                ATTEMPTS.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_secs(5));
                1
            }),
        }];
        let t0 = Instant::now();
        let mut settled = Vec::new();
        let results =
            run_pool(tasks, 1, Some(Duration::from_millis(80)), 1, |_, _| {}, |i, r, attempts| {
                settled.push((i, r.is_ok(), attempts));
            });
        assert!(results[0].as_ref().unwrap_err().contains("timed out"));
        // Exactly one retry: two attempts started, one settle callback.
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 2);
        assert_eq!(settled, vec![(0, false, 2)]);
        // Both attempts were abandoned, not awaited: the pool returned in
        // ~2x the timeout, far below the 5s the job actually sleeps.
        assert!(t0.elapsed() < Duration::from_secs(3), "took {:?}", t0.elapsed());
    }

    #[test]
    fn pool_retry_recovers_a_flaky_job() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let tasks = vec![PoolTask::<u64> {
            label: "flaky".into(),
            work: Arc::new(|| {
                if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first attempt fails");
                }
                42
            }),
        }];
        let mut final_attempts = 0;
        let results =
            run_pool(tasks, 1, None, 1, |_, _| {}, |_, _, attempts| final_attempts = attempts);
        assert_eq!(results[0].as_ref().unwrap(), &42);
        assert_eq!(final_attempts, 2);
    }

    #[test]
    fn pool_preserves_task_order_under_concurrency() {
        let tasks: Vec<PoolTask<usize>> = (0..16)
            .map(|i| PoolTask {
                label: format!("t{i}"),
                work: Arc::new(move || {
                    // Earlier tasks sleep longer so completion order inverts.
                    std::thread::sleep(Duration::from_millis(2 * (16 - i as u64)));
                    i
                }),
            })
            .collect();
        let results = run_pool(tasks, 8, None, 0, |_, _| {}, |_, _, _| {});
        let got: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
