//! Seeded run orchestration and aggregation shared by the table/figure
//! harnesses: fit + backtest per seed, means across seeds, and the paired
//! significance samples Table IV/V need.

use crate::models::Spec;
use rtgcn_baselines::CommonConfig;
use rtgcn_eval::{backtest, BacktestOutcome};
use rtgcn_core::FitReport;
use rtgcn_market::{RelationKind, StockDataset};
use serde::Serialize;

/// One seeded repetition of one model on one dataset.
pub struct SeedRun {
    pub seed: u64,
    pub outcome: BacktestOutcome,
    pub fit: FitReport,
}

/// Aggregated results of a model over its seeds (what a table row shows).
#[derive(Clone, Debug, Serialize)]
pub struct ModelRow {
    pub name: String,
    pub category: String,
    pub mrr: Option<f64>,
    /// Mean IRR per k.
    pub irr: std::collections::BTreeMap<usize, f64>,
    /// Per-seed IRR samples per k (for Wilcoxon).
    pub irr_samples: std::collections::BTreeMap<usize, Vec<f64>>,
    /// Per-seed MRR samples (empty for CLF models).
    pub mrr_samples: Vec<f64>,
    pub mean_train_secs: f64,
    pub mean_test_secs: f64,
    /// Per-seed training-health verdicts ("Healthy"/"Warn"/"Diverged");
    /// anything but all-Healthy deserves a look before trusting the row.
    pub health: Vec<String>,
}

/// Fit and backtest `spec` once per seed.
pub fn run_seeds(
    spec: &Spec,
    ds: &StockDataset,
    common: &CommonConfig,
    relation_kind: RelationKind,
    seeds: &[u64],
    ks: &[usize],
) -> Vec<SeedRun> {
    // Each model gets its own JSONL file (run-<harness>-<model>.jsonl) and a
    // fresh aggregate registry, so per-model stats stand alone.
    crate::cli::begin_model_scope(&spec.name());
    seeds
        .iter()
        .map(|&seed| {
            let _seed_span = rtgcn_telemetry::span("seed");
            let mut model = spec.build(ds, common, relation_kind, seed);
            let fit = model.fit(ds);
            let outcome = backtest(model.as_mut(), ds, ks, seed);
            SeedRun { seed, outcome, fit }
        })
        .collect()
}

/// Aggregate seed runs into a table row.
pub fn aggregate(spec: &Spec, runs: &[SeedRun], ks: &[usize]) -> ModelRow {
    let n = runs.len().max(1) as f64;
    let mut irr = std::collections::BTreeMap::new();
    let mut irr_samples = std::collections::BTreeMap::new();
    for &k in ks {
        let samples: Vec<f64> = runs.iter().map(|r| r.outcome.irr[&k]).collect();
        irr.insert(k, samples.iter().sum::<f64>() / n);
        irr_samples.insert(k, samples);
    }
    let mrr_samples: Vec<f64> = runs.iter().filter_map(|r| r.outcome.mrr).collect();
    let mrr = if mrr_samples.is_empty() {
        None
    } else {
        Some(mrr_samples.iter().sum::<f64>() / mrr_samples.len() as f64)
    };
    ModelRow {
        name: spec.name(),
        category: spec.category().to_string(),
        mrr,
        irr,
        irr_samples,
        mrr_samples,
        mean_train_secs: runs.iter().map(|r| r.fit.train_secs).sum::<f64>() / n,
        mean_test_secs: runs.iter().map(|r| r.outcome.test_secs).sum::<f64>() / n,
        health: runs.iter().map(|r| r.fit.health.to_string()).collect(),
    }
}

/// Convenience: run + aggregate.
pub fn evaluate(
    spec: &Spec,
    ds: &StockDataset,
    common: &CommonConfig,
    relation_kind: RelationKind,
    seeds: &[u64],
    ks: &[usize],
) -> ModelRow {
    let runs = run_seeds(spec, ds, common, relation_kind, seeds, ks);
    aggregate(spec, &runs, ks)
}

/// The strongest baseline for a metric: highest mean among non-"Ours" rows.
pub fn strongest_baseline(
    rows: &[ModelRow],
    metric: impl Fn(&ModelRow) -> Option<f64>,
) -> Option<&ModelRow> {
    rows.iter()
        .filter(|r| r.category != "Ours")
        .filter_map(|r| metric(r).map(|v| (r, v)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_core::Strategy;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny_ds() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 40;
        spec.test_days = 8;
        StockDataset::generate(spec, 1)
    }

    fn tiny_common() -> CommonConfig {
        CommonConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 1, ..Default::default() }
    }

    #[test]
    fn evaluate_rtgcn_over_two_seeds() {
        let ds = tiny_ds();
        let row = evaluate(
            &Spec::Gcn(Strategy::Uniform),
            &ds,
            &tiny_common(),
            RelationKind::Both,
            &[1, 2],
            &[1, 5],
        );
        assert_eq!(row.name, "RT-GCN (U)");
        assert_eq!(row.irr_samples[&1].len(), 2);
        assert_eq!(row.mrr_samples.len(), 2);
        assert!(row.mrr.unwrap() > 0.0);
        assert!(row.mean_train_secs > 0.0);
    }

    #[test]
    fn strongest_baseline_excludes_ours() {
        let mk = |name: &str, cat: &str, irr1: f64| ModelRow {
            name: name.into(),
            category: cat.into(),
            mrr: Some(0.01),
            irr: [(1usize, irr1)].into_iter().collect(),
            irr_samples: Default::default(),
            mrr_samples: vec![],
            mean_train_secs: 0.0,
            mean_test_secs: 0.0,
            health: vec![],
        };
        let rows = vec![mk("A", "RAN", 0.5), mk("B", "RAN", 0.9), mk("Ours", "Ours", 2.0)];
        let best = strongest_baseline(&rows, |r| r.irr.get(&1).copied()).unwrap();
        assert_eq!(best.name, "B");
    }
}
