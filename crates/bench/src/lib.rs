//! # rtgcn-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`) plus Criterion micro-benchmarks (`benches/`). Shared pieces:
//!
//! - [`cli`] — harness flags (`--scale`, `--seeds`, `--epochs`, ...);
//! - [`models`] — the unified [`models::Spec`] over RT-GCN, its ablations
//!   and all baselines;
//! - [`runner`] — seeded fit + backtest orchestration and aggregation;
//! - [`snapshot`] — fold telemetry JSONL run logs into machine-readable
//!   `BENCH_<harness>.json` perf baselines and diff them for regressions
//!   (CLI: the `rtgcn-report` binary).

pub mod cli;
pub mod journal;
pub mod models;
pub mod monitor;
pub mod runner;
pub mod snapshot;

pub use cli::{begin_model_scope, harness_ctx, harness_error, HarnessArgs};
pub use models::Spec;
pub use runner::{
    aggregate, aggregate_with_failures, evaluate, evaluate_roster, run_seeds,
    strongest_baseline, FailedSeed, ModelRow, RunnerConfig, SeedRun,
};
pub use snapshot::{build_snapshot, diff_snapshots, render_markdown, BenchSnapshot};
