//! Monitor smoke harness (`run_experiments.sh --monitor-smoke`): run a
//! tiny 1-model roster with the live observability server enabled, then
//! scrape `/metrics`, `/healthz`, `/runs`, and `/spans` over a raw
//! `std::net::TcpStream` (no curl dependency) and fail on any non-200
//! status or unparseable body. Defaults `RTGCN_MONITOR` to `127.0.0.1:0`
//! so the gate never collides with a user's pinned port.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{evaluate_roster, harness_error, HarnessArgs, RunnerConfig, Spec};
use rtgcn_baselines::CommonConfig;
use rtgcn_core::Strategy;
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const HARNESS: &str = "monitor_smoke";

fn scrape(addr: std::net::SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: monitor\r\n\r\n").as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp).map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: no HTTP status line in {resp:?}"))?;
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

fn check_endpoint(addr: std::net::SocketAddr, path: &str) -> Result<(), String> {
    let (status, body) = scrape(addr, path)?;
    if status != 200 {
        return Err(format!("{path}: expected 200, got {status} ({body:?})"));
    }
    match path {
        "/metrics" => {
            if !body.contains("# TYPE rtgcn_build_info gauge") {
                return Err(format!("{path}: missing build-info family in:\n{body}"));
            }
            if body.contains("NaN") {
                return Err(format!("{path}: non-finite value leaked into:\n{body}"));
            }
        }
        _ => {
            let parsed: Result<serde_json::Value, _> = serde_json::from_str(&body);
            if let Err(e) = parsed {
                return Err(format!("{path}: body is not valid JSON ({e:?}): {body:?}"));
            }
        }
    }
    println!("[{HARNESS}] GET {path} -> 200 OK ({} bytes)", body.len());
    Ok(())
}

fn main() {
    // Must be set before HarnessArgs::init (which starts the server);
    // single-threaded at this point. An explicit RTGCN_MONITOR wins.
    if std::env::var("RTGCN_MONITOR").map(|v| v.trim().is_empty()).unwrap_or(true) {
        std::env::set_var("RTGCN_MONITOR", "127.0.0.1:0");
    }
    let (args, _telemetry) = HarnessArgs::init(HARNESS);
    let Some(addr) = rtgcn_telemetry::http::monitor_addr() else {
        harness_error(HARNESS, &"monitor server did not start (bind failed?)");
    };

    // One model, one seed, tiny universe: the point is the transport, not
    // the numbers.
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 40;
    spec.test_days = 8;
    let ds = StockDataset::generate(spec, args.base_seed);
    let common = CommonConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 1, ..Default::default() };
    let cfg = RunnerConfig::from_env().with_journal(format!("monitor-smoke-s{}", args.base_seed));
    let rows = evaluate_roster(
        &[Spec::Gcn(Strategy::Uniform)],
        &ds,
        &common,
        RelationKind::Both,
        &[args.base_seed],
        &[1, 5],
        &cfg,
    );
    if rows.iter().any(|r| !r.failed_seeds.is_empty()) {
        harness_error(HARNESS, &"smoke roster had failed seeds");
    }

    for path in ["/metrics", "/healthz", "/runs", "/spans"] {
        if let Err(e) = check_endpoint(addr, path) {
            harness_error(HARNESS, &e);
        }
    }
    // /runs must reflect the settled roster, not an empty board.
    match scrape(addr, "/runs") {
        Ok((_, body)) if body.contains("\"state\":\"ok\"") || body.contains("\"state\":\"resumed\"") => {}
        Ok((_, body)) => harness_error(HARNESS, &format!("/runs shows no settled job: {body}")),
        Err(e) => harness_error(HARNESS, &e),
    }
    println!("[{HARNESS}] all four endpoints healthy at http://{addr}");
}
