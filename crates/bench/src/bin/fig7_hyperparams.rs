//! Figure 7 — hyperparameter sensitivity of RT-GCN (T): training window
//! size T ∈ {5, 10, 15, 20} (a–c), feature count 1–4 per Table VIII (d–f),
//! and ranking-loss weight α ∈ {0, 1e-4, 1e-3, 1e-2, 0.1, 0.2, 0.5} (g–i).
//! One panel group per market; each prints IRR-1/5/10 per setting.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::HarnessArgs;
use rtgcn_baselines::CommonConfig;
use rtgcn_core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_eval::{backtest, write_json, Table};
use rtgcn_market::{RelationKind, StockDataset, UniverseSpec};
use serde::Serialize;

const KS: [usize; 3] = [1, 5, 10];
const WINDOWS: [usize; 4] = [5, 10, 15, 20];
const FEATURES: [usize; 4] = [1, 2, 3, 4];
const ALPHAS: [f32; 7] = [0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.2, 0.5];

#[derive(Serialize)]
struct SweepPoint {
    sweep: String,
    value: f64,
    irr: std::collections::BTreeMap<usize, f64>,
}

fn run_point(
    ds: &StockDataset,
    base: &CommonConfig,
    t_steps: usize,
    n_features: usize,
    alpha: f32,
    seeds: &[u64],
) -> std::collections::BTreeMap<usize, f64> {
    let mut acc: std::collections::BTreeMap<usize, f64> = KS.iter().map(|&k| (k, 0.0)).collect();
    for &seed in seeds {
        let cfg = RtGcnConfig {
            t_steps,
            n_features,
            alpha,
            rel_filters: base.hidden,
            temporal_filters: base.hidden,
            epochs: base.epochs,
            lr: base.lr,
            strategy: Strategy::TimeSensitive,
            ..Default::default()
        };
        let mut model = RtGcn::new(cfg, &ds.relations(RelationKind::Both), seed);
        model.fit(ds);
        let outcome = backtest(&mut model, ds, &KS, seed);
        for &k in &KS {
            *acc.get_mut(&k).unwrap() += outcome.irr[&k] / seeds.len() as f64;
        }
    }
    acc
}

fn main() {
    let (args, _telemetry) = HarnessArgs::init("fig7_hyperparams");
    let base = CommonConfig { epochs: args.epochs, ..Default::default() };
    let seeds = args.seed_list();

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        println!(
            "\nFigure 7 — RT-GCN (T) hyperparameter sweeps, {} (scale {:?}, {} seeds)",
            market.name(),
            args.scale,
            seeds.len()
        );
        let mut artifact = Vec::new();

        // (a–c) window size.
        let mut t_table = Table::new(["Window T", "IRR-1", "IRR-5", "IRR-10"]);
        for &t in &WINDOWS {
            eprintln!("[fig7] {} window={t}", market.name());
            let irr = run_point(&ds, &base, t, base.n_features, base.alpha, &seeds);
            t_table.add_row([
                t.to_string(),
                format!("{:.2}", irr[&1]),
                format!("{:.2}", irr[&5]),
                format!("{:.2}", irr[&10]),
            ]);
            artifact.push(SweepPoint { sweep: "window".into(), value: t as f64, irr });
        }
        println!("\n(a-c) training window size:\n{}", t_table.render());

        // (d–f) feature count (Table VIII combinations).
        let mut f_table = Table::new(["Features", "IRR-1", "IRR-5", "IRR-10"]);
        for &nf in &FEATURES {
            eprintln!("[fig7] {} features={nf}", market.name());
            let irr = run_point(&ds, &base, base.t_steps, nf, base.alpha, &seeds);
            let combo = match nf {
                1 => "close",
                2 => "close+5d MA",
                3 => "close+5d+10d MA",
                _ => "close+5d+10d+20d MA",
            };
            f_table.add_row([
                format!("{nf} ({combo})"),
                format!("{:.2}", irr[&1]),
                format!("{:.2}", irr[&5]),
                format!("{:.2}", irr[&10]),
            ]);
            artifact.push(SweepPoint { sweep: "features".into(), value: nf as f64, irr });
        }
        println!("(d-f) feature number (Table VIII):\n{}", f_table.render());

        // (g–i) balancing parameter α.
        let mut a_table = Table::new(["alpha", "IRR-1", "IRR-5", "IRR-10"]);
        for &a in &ALPHAS {
            eprintln!("[fig7] {} alpha={a}", market.name());
            let irr = run_point(&ds, &base, base.t_steps, base.n_features, a, &seeds);
            a_table.add_row([
                format!("{a}"),
                format!("{:.2}", irr[&1]),
                format!("{:.2}", irr[&5]),
                format!("{:.2}", irr[&10]),
            ]);
            artifact.push(SweepPoint { sweep: "alpha".into(), value: a as f64, irr });
        }
        println!("(g-i) balancing parameter alpha:\n{}", a_table.render());

        let path = format!("{}/fig7_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &artifact).unwrap_or_else(|e| rtgcn_bench::harness_error("fig7_hyperparams", &e));
        eprintln!("[fig7] wrote {path}");
    }
}
