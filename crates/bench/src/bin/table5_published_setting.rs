//! Table V — RT-GCN (T) vs RSR_I/RSR_E/STHAN-SR on the published-data
//! setting: *industry relations only* (the NASDAQ-II / NYSE-II datasets of
//! Feng et al.), same window size and learning rate for all models, with
//! one-sample Wilcoxon tests of our 15 runs against each baseline's mean
//! (the paper takes baseline rows from the original publications; we
//! regenerate them from our reimplementations — DESIGN.md §4.4).

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{evaluate_roster, HarnessArgs, RunnerConfig, Spec};
use rtgcn_baselines::{CommonConfig, ModelKind};
use rtgcn_core::Strategy;
use rtgcn_eval::{fmt_opt, fmt_p, one_sample, write_json, Alternative, Table};
use rtgcn_market::{Market, RelationKind, StockDataset, UniverseSpec};

const KS: [usize; 2] = [5, 10];

fn main() {
    let (mut args, _telemetry) = HarnessArgs::init("table5_published_setting");
    // Table V covers NASDAQ-II and NYSE-II only.
    args.markets.retain(|m| matches!(m, Market::Nasdaq | Market::Nyse));
    let common = CommonConfig { epochs: args.epochs, ..Default::default() };
    let seeds = args.seed_list();
    let roster = [
        Spec::Baseline(ModelKind::RsrI),
        Spec::Baseline(ModelKind::RsrE),
        Spec::Baseline(ModelKind::Sthan),
        Spec::Gcn(Strategy::TimeSensitive),
    ];

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        eprintln!("[table5] {}-II: industry relations only", market.name());
        let cfg = RunnerConfig::from_env().with_journal(format!(
            "table5-{}-{:?}-e{}-s{}",
            market.name(),
            args.scale,
            args.epochs,
            args.base_seed
        ));
        let rows =
            evaluate_roster(&roster, &ds, &common, RelationKind::Industry, &seeds, &KS, &cfg);

        let mut table = Table::new(["Model", "MRR", "IRR-5", "IRR-10", "p (MRR)", "p (IRR-5)"]);
        let ours = rows.last().unwrap();
        for r in &rows {
            let (p_mrr, p_irr5) = if r.name == ours.name {
                ("-".to_string(), "-".to_string())
            } else {
                // One-sample test: our per-seed runs vs this baseline's mean
                // (stand-in for its published value).
                let pm = match (r.mrr, ours.mrr_samples.len() >= 2) {
                    (Some(m), true) => {
                        fmt_p(one_sample(&ours.mrr_samples, m, Alternative::Greater).p_value)
                    }
                    _ => "-".into(),
                };
                let pi = if ours.irr_samples[&5].len() >= 2 {
                    fmt_p(
                        one_sample(&ours.irr_samples[&5], r.irr[&5], Alternative::Greater).p_value,
                    )
                } else {
                    "-".into()
                };
                (pm, pi)
            };
            table.add_row([
                r.name.clone(),
                fmt_opt(r.mrr, 3),
                fmt_opt(r.irr.get(&5).copied(), 2),
                fmt_opt(r.irr.get(&10).copied(), 2),
                p_mrr,
                p_irr5,
            ]);
        }
        println!(
            "\nTable V — {}-II, industry relations only (scale {:?}, {} seeds)\n",
            market.name(),
            args.scale,
            seeds.len()
        );
        println!("{}", table.render());
        let path = format!("{}/table5_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &rows).unwrap_or_else(|e| rtgcn_bench::harness_error("table5_published_setting", &e));
        eprintln!("[table5] wrote {path}");
    }
}
