//! Figure 6 — cumulative return-ratio curves over the test period for the
//! three RT-GCN strategies at IRR-1/5/10, against the market index (DJI,
//! S&P 500 or CSI 300 stand-ins). Prints an ASCII chart plus the raw series
//! as a JSON artifact.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{HarnessArgs, Spec};
use rtgcn_baselines::CommonConfig;
use rtgcn_core::Strategy;
use rtgcn_eval::{backtest, write_json};
use rtgcn_market::{index_cumulative_returns, RelationKind, StockDataset, UniverseSpec};
use serde::Serialize;
use std::collections::BTreeMap;

const KS: [usize; 3] = [1, 5, 10];

#[derive(Serialize)]
struct CurveArtifact {
    market: String,
    index_name: String,
    index: Vec<f32>,
    /// strategy label -> k -> cumulative series
    curves: BTreeMap<String, BTreeMap<usize, Vec<f64>>>,
}

/// Plot several named series as a compact ASCII chart.
fn ascii_chart(series: &[(String, Vec<f64>)], width: usize, height: usize) {
    let all: Vec<f64> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    // NaN-aware bounds: a diverged (NaN) curve must not blank the whole
    // chart — finite points still plot, non-finite points are skipped below.
    let (min, max) = rtgcn_eval::finite_bounds(all.iter().copied()).unwrap_or((0.0, 0.0));
    let span = rtgcn_eval::floor_span(max - min, 1e-9);
    let marks = ['1', '5', 'X', 'I'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        for (i, &v) in s.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let x = i * (width - 1) / (s.len() - 1).max(1);
            let y = ((v - min) / span * (height - 1) as f64).round() as usize;
            grid[height - 1 - y][x] = marks[si % marks.len()];
        }
    }
    println!("  {max:+.3}");
    for row in grid {
        println!("  |{}", row.into_iter().collect::<String>());
    }
    println!("  {min:+.3}");
    for (si, (name, _)) in series.iter().enumerate() {
        println!("    {} = {}", marks[si % marks.len()], name);
    }
}

fn main() {
    let (args, _telemetry) = HarnessArgs::init("fig6_return_curves");
    let common = CommonConfig { epochs: args.epochs, ..Default::default() };

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        let test_days = ds.test_end_days();
        let index = index_cumulative_returns(&ds, &test_days);
        let mut curves: BTreeMap<String, BTreeMap<usize, Vec<f64>>> = BTreeMap::new();
        for strategy in Strategy::ALL {
            let s = Spec::Gcn(strategy);
            eprintln!("[fig6] {}: {}", market.name(), s.name());
            rtgcn_bench::begin_model_scope(&s.name());
            let mut model = s.build(&ds, &common, RelationKind::Both, args.base_seed);
            model.fit(&ds);
            let outcome = backtest(model.as_mut(), &ds, &KS, args.base_seed);
            curves.insert(
                strategy.label().to_string(),
                outcome.daily_cumulative.iter().map(|(&k, v)| (k, v.clone())).collect(),
            );
        }
        println!(
            "\nFigure 6 — {} cumulative return ratio over {} test days (scale {:?})",
            market.name(),
            test_days.len(),
            args.scale
        );
        for strategy in Strategy::ALL {
            let label = strategy.label().to_string();
            println!("\n{label} vs {}:", market.index_name());
            let mut named: Vec<(String, Vec<f64>)> = KS
                .iter()
                .map(|k| (format!("IRR-{k}"), curves[&label][k].clone()))
                .collect();
            named.push((
                market.index_name().to_string(),
                index.iter().map(|&v| v as f64).collect(),
            ));
            ascii_chart(&named, 64, 12);
            // An empty test split yields empty curves (index.degenerate /
            // backtest.degenerate warns fire upstream); print NaN, not panic.
            let final_vals: Vec<String> = KS
                .iter()
                .map(|k| {
                    let v = curves[&label][k].last().copied().unwrap_or(f64::NAN);
                    format!("IRR-{k} = {v:+.2}")
                })
                .collect();
            println!(
                "    final: {}, {} = {:+.2}",
                final_vals.join(", "),
                market.index_name(),
                index.last().copied().unwrap_or(f32::NAN)
            );
        }
        let artifact = CurveArtifact {
            market: market.name().into(),
            index_name: market.index_name().into(),
            index,
            curves,
        };
        let path = format!("{}/fig6_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &artifact).unwrap_or_else(|e| rtgcn_bench::harness_error("fig6_return_curves", &e));
        eprintln!("[fig6] wrote {path}");
    }
}
