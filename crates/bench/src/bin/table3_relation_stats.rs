//! Table III — statistics of wiki and industry relation data: relation type
//! counts and relation ratios per market, regenerated from the calibrated
//! relation generators.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::HarnessArgs;
use rtgcn_eval::Table;
use rtgcn_market::{StockDataset, UniverseSpec};

fn main() {
    let (args, _telemetry) = HarnessArgs::init("table3_relation_stats");
    let mut table = Table::new([
        "Market",
        "Wiki types",
        "Wiki ratio",
        "Industry types",
        "Industry ratio",
    ]);
    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        let wiki = &ds.wiki.relations;
        let ind = &ds.industry.relations;
        let wiki_types = wiki.active_types();
        table.add_row([
            market.name().to_string(),
            if wiki_types == 0 { "-".into() } else { wiki_types.to_string() },
            if wiki_types == 0 {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * wiki.relation_ratio())
            },
            ind.active_types().to_string(),
            format!("{:.1}%", 100.0 * ind.relation_ratio()),
        ]);
    }
    println!("Table III — relation statistics (scale: {:?})\n", args.scale);
    println!("{}", table.render());
    println!("(paper: NASDAQ 41/0.3%/97/5.4%, NYSE 28/0.4%/108/6.9%, CSI -/-/24/6.7%)");
}
