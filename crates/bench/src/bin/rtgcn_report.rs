//! `rtgcn-report` — turn per-model telemetry JSONL run logs into a
//! machine-readable BENCH snapshot, and diff snapshots for perf regressions.
//!
//! Snapshot mode (after a harness run):
//!
//! ```text
//! rtgcn-report --logs results/logs --harness table4_baselines \
//!     [--out results/BENCH_table4_baselines.json] [--md results/BENCH.md]
//! ```
//!
//! Baseline mode (CI gate; exits 3 when any metric regresses past the
//! threshold):
//!
//! ```text
//! rtgcn-report --baseline results/BENCH.baseline.json results/BENCH.json \
//!     [--threshold 20]
//! ```

use rtgcn_bench::snapshot::{build_snapshot, diff_snapshots, render_markdown, BenchSnapshot};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "usage:\n  rtgcn-report --logs DIR --harness NAME [--out FILE] [--md FILE]\n  rtgcn-report --baseline BASE_JSON NEW_JSON [--threshold PCT|RATIO]\n\n--threshold accepts either a percentage (values > 3, e.g. 20 = +20%) or a\nratio multiplier (values in (1, 3], e.g. 1.25 = +25%).";

fn fail(msg: &str) -> ! {
    eprintln!("error[rtgcn-report]: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn read_snapshot(path: &str) -> BenchSnapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse snapshot {path}: {e}")))
}

fn main() {
    let mut logs: Option<String> = None;
    let mut harness: Option<String> = None;
    let mut out: Option<String> = None;
    let mut md: Option<String> = None;
    let mut baseline: Option<(String, String)> = None;
    let mut threshold = 20.0f64;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--logs" => logs = Some(value("--logs")),
            "--harness" => harness = Some(value("--harness")),
            "--out" => out = Some(value("--out")),
            "--md" => md = Some(value("--md")),
            "--baseline" => {
                let base = value("--baseline");
                let new = value("--baseline");
                baseline = Some((base, new));
            }
            "--threshold" => {
                let raw: f64 = value("--threshold")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--threshold: {e}")));
                // Small values are ratio multipliers (1.25 = +25%), larger
                // ones plain percentages (20 = +20%).
                threshold = if raw <= 3.0 {
                    if raw <= 1.0 {
                        fail("--threshold ratio must be > 1.0 (e.g. 1.25 = +25%)");
                    }
                    (raw - 1.0) * 100.0
                } else {
                    raw
                };
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    if let Some((base_path, new_path)) = baseline {
        let base = read_snapshot(&base_path);
        let new = read_snapshot(&new_path);
        let regs = diff_snapshots(&base, &new, threshold);
        if regs.is_empty() {
            println!(
                "OK: no regression past {threshold}% across {} model(s)",
                new.models.len()
            );
            return;
        }
        eprintln!("{} regression(s) past {threshold}% vs {base_path}:", regs.len());
        for r in &regs {
            eprintln!(
                "  {} {}: {:.3} -> {:.3} ({:+.1}%)",
                r.model, r.metric, r.base, r.new, r.pct
            );
        }
        exit(3);
    }

    let (Some(logs), Some(harness)) = (logs, harness) else {
        fail("--logs and --harness are required in snapshot mode");
    };
    let snap = build_snapshot(&PathBuf::from(&logs), &harness)
        .unwrap_or_else(|e| fail(&format!("cannot read logs under {logs}: {e}")));
    if snap.models.is_empty() {
        fail(&format!("no run-{}-<model>.jsonl logs found under {logs}", harness));
    }
    let out_path =
        out.unwrap_or_else(|| format!("results/BENCH_{}.json", rtgcn_telemetry::sanitize_label(&harness)));
    rtgcn_eval::write_json(&out_path, &snap)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path} ({} models)", snap.models.len());
    if let Some(md_path) = md {
        let rendered = render_markdown(&snap);
        if let Some(dir) = PathBuf::from(&md_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&md_path, rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {md_path}: {e}")));
        println!("wrote {md_path}");
    } else {
        print!("{}", render_markdown(&snap));
    }
}
