//! `rtgcn-report` — turn per-model telemetry JSONL run logs into a
//! machine-readable BENCH snapshot, and diff snapshots for perf regressions.
//!
//! Snapshot mode (after a harness run):
//!
//! ```text
//! rtgcn-report --logs results/logs --harness table4_baselines \
//!     [--out results/BENCH_table4_baselines.json] [--md results/BENCH.md] \
//!     [--profile-md results/PROFILE.md] [--top 20]
//! ```
//!
//! Baseline mode (CI gate; exits 3 when any metric regresses past the
//! threshold, printing the top regressing span paths by self time so the
//! failure names a kernel, not just a number):
//!
//! ```text
//! rtgcn-report --baseline results/BENCH.baseline.json [NEW_JSON] \
//!     [--threshold 20] [--verify-perf] [--top 5]
//! ```

use rtgcn_bench::snapshot::{
    attribute_span_regressions, build_snapshot, diff_snapshots, render_markdown,
    render_profile_markdown, render_span_attribution, BenchSnapshot,
};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "usage:\n  rtgcn-report --logs DIR --harness NAME [--out FILE] [--md FILE] [--profile-md FILE] [--top N]\n  rtgcn-report --baseline BASE_JSON [NEW_JSON] [--threshold PCT|RATIO] [--verify-perf] [--top N]\n\n--threshold accepts either a percentage (values > 3, e.g. 20 = +20%) or a\nratio multiplier (values in (1, 3], e.g. 1.25 = +25%).\n--verify-perf defaults NEW_JSON to results/BENCH_table4.verify.json and the\nthreshold to 1.25, matching the run_experiments.sh verify stage.";

/// NEW_JSON default under `--verify-perf`: where the verify stage of
/// `run_experiments.sh` writes its freshly-measured snapshot.
const VERIFY_SNAPSHOT: &str = "results/BENCH_table4.verify.json";

fn fail(msg: &str) -> ! {
    eprintln!("error[rtgcn-report]: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn read_snapshot(path: &str) -> BenchSnapshot {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse snapshot {path}: {e}")))
}

fn main() {
    let mut logs: Option<String> = None;
    let mut harness: Option<String> = None;
    let mut out: Option<String> = None;
    let mut md: Option<String> = None;
    let mut profile_md: Option<String> = None;
    let mut baseline: Option<(String, Option<String>)> = None;
    let mut threshold: Option<f64> = None;
    let mut verify_perf = false;
    let mut top: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, name: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| fail(&format!("{name} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--logs" => logs = Some(value(&args, &mut i, "--logs")),
            "--harness" => harness = Some(value(&args, &mut i, "--harness")),
            "--out" => out = Some(value(&args, &mut i, "--out")),
            "--md" => md = Some(value(&args, &mut i, "--md")),
            "--profile-md" => profile_md = Some(value(&args, &mut i, "--profile-md")),
            "--verify-perf" => verify_perf = true,
            "--top" => {
                top = Some(
                    value(&args, &mut i, "--top")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--top: {e}"))),
                );
            }
            "--baseline" => {
                let base = value(&args, &mut i, "--baseline");
                // NEW_JSON is optional: absent when the next token is a flag
                // (or the end), in which case --verify-perf supplies it.
                let new = match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        Some(next.clone())
                    }
                    _ => None,
                };
                baseline = Some((base, new));
            }
            "--threshold" => {
                let raw: f64 = value(&args, &mut i, "--threshold")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--threshold: {e}")));
                // Small values are ratio multipliers (1.25 = +25%), larger
                // ones plain percentages (20 = +20%).
                threshold = Some(if raw <= 3.0 {
                    if raw <= 1.0 {
                        fail("--threshold ratio must be > 1.0 (e.g. 1.25 = +25%)");
                    }
                    (raw - 1.0) * 100.0
                } else {
                    raw
                });
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    if let Some((base_path, new_path)) = baseline {
        let new_path = new_path.unwrap_or_else(|| {
            if verify_perf {
                VERIFY_SNAPSHOT.to_string()
            } else {
                fail("--baseline needs NEW_JSON (or --verify-perf for the default)")
            }
        });
        let threshold = threshold.unwrap_or(if verify_perf { 25.0 } else { 20.0 });
        let base = read_snapshot(&base_path);
        let new = read_snapshot(&new_path);
        let regs = diff_snapshots(&base, &new, threshold);
        if regs.is_empty() {
            println!(
                "OK: no regression past {threshold}% across {} model(s)",
                new.models.len()
            );
            return;
        }
        eprintln!("{} regression(s) past {threshold}% vs {base_path}:", regs.len());
        for r in &regs {
            eprintln!(
                "  {} {}: {:.3} -> {:.3} ({:+.1}%)",
                r.model, r.metric, r.base, r.new, r.pct
            );
        }
        // Attribution: which span paths' *self* time grew the most. This is
        // what turns "epoch_secs_mean +40%" into "spmm_csr +38%".
        let spans = attribute_span_regressions(&base, &new, top.unwrap_or(5));
        if spans.is_empty() {
            eprintln!("no span-level attribution available (snapshots lack shared span trees)");
        } else {
            eprintln!("top span self-time regressions:");
            eprint!("{}", render_span_attribution(&spans));
        }
        exit(3);
    }

    let (Some(logs), Some(harness)) = (logs, harness) else {
        fail("--logs and --harness are required in snapshot mode");
    };
    let snap = build_snapshot(&PathBuf::from(&logs), &harness)
        .unwrap_or_else(|e| fail(&format!("cannot read logs under {logs}: {e}")));
    if snap.models.is_empty() {
        fail(&format!("no run-{}-<model>.jsonl logs found under {logs}", harness));
    }
    let out_path =
        out.unwrap_or_else(|| format!("results/BENCH_{}.json", rtgcn_telemetry::sanitize_label(&harness)));
    rtgcn_eval::write_json(&out_path, &snap)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path} ({} models)", snap.models.len());
    if let Some(profile_path) = profile_md {
        let rendered = render_profile_markdown(&snap, top.unwrap_or(20));
        if let Some(dir) = PathBuf::from(&profile_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&profile_path, rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {profile_path}: {e}")));
        println!("wrote {profile_path}");
    }
    if let Some(md_path) = md {
        let rendered = render_markdown(&snap);
        if let Some(dir) = PathBuf::from(&md_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&md_path, rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {md_path}: {e}")));
        println!("wrote {md_path}");
    } else {
        print!("{}", render_markdown(&snap));
    }
}
