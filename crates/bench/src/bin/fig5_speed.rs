//! Figure 5 — training and testing speed of the ranking-based methods
//! (Rank_LSTM, RSR, RT-GAT, RT-GCN (T)). The paper reports wall-clock per
//! training/testing pass; we print per-epoch training seconds and full
//! test-pass seconds, plus the speedup ratios the paper quotes (up to 3.2×
//! over Rank_LSTM and 13.4× over RSR on NASDAQ). ASCII bars approximate the
//! figure's layout (shaded part = testing time).

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{HarnessArgs, Spec};
use rtgcn_baselines::{CommonConfig, ModelKind};
use rtgcn_core::Strategy;
use rtgcn_eval::{backtest, write_json};
use rtgcn_market::{RelationKind, StockDataset, UniverseSpec};
use serde::Serialize;

#[derive(Serialize)]
struct SpeedRow {
    name: String,
    train_secs_per_epoch: f64,
    test_secs: f64,
}

fn main() {
    let (args, _telemetry) = HarnessArgs::init("fig5_speed");
    // One epoch is enough to measure throughput.
    let common = CommonConfig { epochs: 1, ..Default::default() };
    let roster = [
        Spec::Baseline(ModelKind::RankLstm),
        Spec::Baseline(ModelKind::RsrE),
        Spec::Baseline(ModelKind::RtGat),
        Spec::Gcn(Strategy::TimeSensitive),
    ];

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        let mut rows = Vec::new();
        for s in &roster {
            eprintln!("[fig5] {}: timing {}", market.name(), s.name());
            rtgcn_bench::begin_model_scope(&s.name());
            let mut model = s.build(&ds, &common, RelationKind::Both, args.base_seed);
            let fit = model.fit(&ds);
            let outcome = backtest(model.as_mut(), &ds, &[5], args.base_seed);
            rows.push(SpeedRow {
                name: s.name(),
                train_secs_per_epoch: fit.train_secs,
                test_secs: outcome.test_secs,
            });
        }
        println!("\nFigure 5 — speed comparison, {} (scale {:?})\n", market.name(), args.scale);
        let max = rows
            .iter()
            .map(|r| r.train_secs_per_epoch + r.test_secs)
            .fold(f64::MIN, f64::max);
        for r in &rows {
            let train_units = (40.0 * r.train_secs_per_epoch / max).round() as usize;
            let test_units = (40.0 * r.test_secs / max).round() as usize;
            println!(
                "{:>11}  {}{} {:.2}s train + {:.2}s test",
                r.name,
                "#".repeat(train_units.max(1)),
                "░".repeat(test_units.max(1)),
                r.train_secs_per_epoch,
                r.test_secs
            );
        }
        let ours = rows.last().unwrap();
        println!();
        for r in &rows[..rows.len() - 1] {
            println!(
                "RT-GCN (T) vs {:>10}: {:.1}x faster training, {:.1}x faster testing",
                r.name,
                r.train_secs_per_epoch / ours.train_secs_per_epoch,
                r.test_secs / ours.test_secs
            );
        }
        let path = format!("{}/fig5_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &rows).unwrap_or_else(|e| rtgcn_bench::harness_error("fig5_speed", &e));
        eprintln!("[fig5] wrote {path}");
    }
}
