//! Table II — statistics of the historical data: stocks, training days and
//! testing days per market. Regenerates the table from the synthetic
//! universes (at `--scale paper` the numbers match the paper exactly by
//! construction; smaller scales show the reduced counts actually used).

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::HarnessArgs;
use rtgcn_eval::Table;
use rtgcn_market::{StockDataset, UniverseSpec};

fn main() {
    let (args, _telemetry) = HarnessArgs::init("table2_dataset_stats");
    let mut table =
        Table::new(["Market", "Stocks", "Training days", "Testing days", "Total sim days"]);
    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        // Generate to prove the dataset actually materialises at this size.
        let ds = StockDataset::generate(spec.clone(), args.base_seed);
        assert_eq!(ds.n_stocks(), spec.stocks);
        assert_eq!(ds.test_end_days().len(), spec.test_days);
        table.add_row([
            market.name().to_string(),
            spec.stocks.to_string(),
            spec.train_days.to_string(),
            spec.test_days.to_string(),
            spec.total_days().to_string(),
        ]);
    }
    println!("Table II — statistics of historical data (scale: {:?})\n", args.scale);
    println!("{}", table.render());
    println!("(paper scale: NASDAQ 854/1295/207, NYSE 1405/1295/207, CSI 242/1295/139)");
}
