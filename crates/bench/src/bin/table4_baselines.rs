//! Table IV — the main result: MRR and IRR-1/5/10 of all thirteen models on
//! NASDAQ, NYSE and CSI, with the improvement of RT-GCN (T) over the
//! strongest baseline and paired Wilcoxon p-values over the seeded runs.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{evaluate_roster, strongest_baseline, HarnessArgs, ModelRow, RunnerConfig, Spec};
use rtgcn_baselines::CommonConfig;
use rtgcn_eval::{fmt_opt, fmt_p, paired, write_json, Alternative, Table};
use rtgcn_market::{RelationKind, StockDataset, UniverseSpec};

const KS: [usize; 3] = [1, 5, 10];

fn main() {
    let (args, _telemetry) = HarnessArgs::init("table4_baselines");
    let common = CommonConfig { epochs: args.epochs, ..Default::default() };
    let seeds = args.seed_list();
    let roster = Spec::table4_roster();

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        eprintln!(
            "[table4] {}: {} stocks, {} train days, {} test days, {} seeds x {} models",
            market.name(),
            ds.n_stocks(),
            ds.spec.train_days,
            ds.spec.test_days,
            seeds.len(),
            roster.len()
        );
        // One pool job per (model, seed); the journal context pins every
        // knob that changes results so --resume never mixes configurations.
        let cfg = RunnerConfig::from_env().with_journal(format!(
            "table4-{}-{:?}-e{}-s{}",
            market.name(),
            args.scale,
            args.epochs,
            args.base_seed
        ));
        let rows: Vec<ModelRow> =
            evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &KS, &cfg);
        for r in &rows {
            if !r.failed_seeds.is_empty() {
                eprintln!("[table4]   {}: {} failed seed(s)", r.name, r.failed_seeds.len());
            }
        }

        let mut table = Table::new(["Cat", "Model", "MRR", "IRR-1", "IRR-5", "IRR-10"]);
        for r in &rows {
            table.add_row([
                r.category.clone(),
                r.name.clone(),
                fmt_opt(r.mrr, 3),
                fmt_opt(r.irr.get(&1).copied(), 2),
                fmt_opt(r.irr.get(&5).copied(), 2),
                fmt_opt(r.irr.get(&10).copied(), 2),
            ]);
        }
        println!("\nTable IV — {} (scale {:?}, {} seeds)\n", market.name(), args.scale, seeds.len());
        println!("{}", table.render());

        // Improvement + significance of RT-GCN (T) vs strongest baseline.
        let ours = rows.last().expect("roster ends with RT-GCN (T)");
        let mut imp = Table::new(["Metric", "Strongest baseline", "RT-GCN (T)", "Improvement", "p-value"]);
        type Metric = (String, Box<dyn Fn(&ModelRow) -> Option<f64>>, Vec<f64>);
        let metrics: Vec<Metric> = {
            let mut v: Vec<Metric> = vec![(
                "MRR".to_string(),
                Box::new(|r: &ModelRow| r.mrr),
                ours.mrr_samples.clone(),
            )];
            for k in KS {
                v.push((
                    format!("IRR-{k}"),
                    Box::new(move |r: &ModelRow| r.irr.get(&k).copied()),
                    ours.irr_samples[&k].clone(),
                ));
            }
            v
        };
        for (label, metric, ours_samples) in metrics {
            let Some(best) = strongest_baseline(&rows, &metric) else { continue };
            let best_samples = if label == "MRR" {
                best.mrr_samples.clone()
            } else {
                let k: usize = label[4..].parse().unwrap();
                best.irr_samples[&k].clone()
            };
            let (ov, bv) = (metric(ours).unwrap_or(f64::NAN), metric(best).unwrap_or(f64::NAN));
            let improvement = if bv.abs() > 1e-12 { 100.0 * (ov - bv) / bv.abs() } else { f64::NAN };
            let p = if ours_samples.len() == best_samples.len() && ours_samples.len() >= 2 {
                Some(paired(&ours_samples, &best_samples, Alternative::Greater).p_value)
            } else {
                None
            };
            imp.add_row([
                label,
                format!("{} ({bv:.3})", best.name),
                format!("{ov:.3}"),
                format!("{improvement:+.1}%"),
                p.map(fmt_p).unwrap_or_else(|| "-".into()),
            ]);
        }
        println!("{}", imp.render());
        if seeds.len() < 15 {
            println!(
                "note: paper uses 15 seeds; {} seed(s) here — rerun with --seeds 15 for paper-grade p-values\n",
                seeds.len()
            );
        }
        let path = format!("{}/table4_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &rows).unwrap_or_else(|e| rtgcn_bench::harness_error("table4_baselines", &e));
        eprintln!("[table4] wrote {path}");
    }
}
