//! Table VI — ablation over relation families: RT-GCN's three strategies
//! (plus the relation-blind Rank_LSTM reference) trained with wiki-only vs
//! industry-only relations on NASDAQ and NYSE.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{evaluate_roster, HarnessArgs, RunnerConfig, Spec};
use rtgcn_baselines::{CommonConfig, ModelKind};
use rtgcn_core::Strategy;
use rtgcn_eval::{fmt_opt, write_json, Table};
use rtgcn_market::{Market, RelationKind, StockDataset, UniverseSpec};

const KS: [usize; 3] = [1, 5, 10];

fn main() {
    let (mut args, _telemetry) = HarnessArgs::init("table6_relation_types");
    // CSI has no wiki relations; the paper runs this on NASDAQ and NYSE.
    args.markets.retain(|m| matches!(m, Market::Nasdaq | Market::Nyse));
    let common = CommonConfig { epochs: args.epochs, ..Default::default() };
    let seeds = args.seed_list();
    let roster = [
        Spec::Baseline(ModelKind::RankLstm),
        Spec::Gcn(Strategy::Uniform),
        Spec::Gcn(Strategy::Weighted),
        Spec::Gcn(Strategy::TimeSensitive),
    ];

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        println!(
            "\nTable VI — {} (scale {:?}, {} seeds)\n",
            market.name(),
            args.scale,
            seeds.len()
        );
        let mut artifacts = Vec::new();
        for (kind, label) in
            [(RelationKind::Wiki, "Wiki-relation"), (RelationKind::Industry, "Industry-relation")]
        {
            let mut table = Table::new(["Model", "MRR", "IRR-1", "IRR-5", "IRR-10"]);
            // The relation kind changes every result, so it is part of the
            // journal context: wiki-only and industry-only runs of the same
            // model/seed never resume into each other.
            let cfg = RunnerConfig::from_env().with_journal(format!(
                "table6-{}-{kind:?}-{:?}-e{}-s{}",
                market.name(),
                args.scale,
                args.epochs,
                args.base_seed
            ));
            eprintln!("[table6] {} / {label}: {} models", market.name(), roster.len());
            for row in evaluate_roster(&roster, &ds, &common, kind, &seeds, &KS, &cfg) {
                table.add_row([
                    row.name.clone(),
                    fmt_opt(row.mrr, 3),
                    fmt_opt(row.irr.get(&1).copied(), 2),
                    fmt_opt(row.irr.get(&5).copied(), 2),
                    fmt_opt(row.irr.get(&10).copied(), 2),
                ]);
                artifacts.push((label.to_string(), row));
            }
            println!("{label}:");
            println!("{}", table.render());
        }
        let path = format!("{}/table6_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &artifacts).unwrap_or_else(|e| rtgcn_bench::harness_error("table6_relation_types", &e));
        eprintln!("[table6] wrote {path}");
    }
}
