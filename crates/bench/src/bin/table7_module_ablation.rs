//! Table VII — module ablation: R-Conv (relational convolution only) and
//! T-Conv (temporal convolution only) vs the full RT-GCN (U), across all
//! three markets.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{evaluate_roster, HarnessArgs, RunnerConfig, Spec};
use rtgcn_baselines::CommonConfig;
use rtgcn_core::Strategy;
use rtgcn_eval::{fmt_opt, write_json, Table};
use rtgcn_market::{RelationKind, StockDataset, UniverseSpec};

const KS: [usize; 3] = [1, 5, 10];

fn main() {
    let (args, _telemetry) = HarnessArgs::init("table7_module_ablation");
    let common = CommonConfig { epochs: args.epochs, ..Default::default() };
    let seeds = args.seed_list();
    let roster = [Spec::Gcn(Strategy::Uniform), Spec::RConv, Spec::TConv];

    for &market in &args.markets {
        let spec = UniverseSpec::of(market, args.scale);
        let ds = StockDataset::generate(spec, args.base_seed);
        let mut table = Table::new(["Model", "MRR", "IRR-1", "IRR-5", "IRR-10"]);
        let cfg = RunnerConfig::from_env().with_journal(format!(
            "table7-{}-{:?}-e{}-s{}",
            market.name(),
            args.scale,
            args.epochs,
            args.base_seed
        ));
        eprintln!("[table7] {}: {} models", market.name(), roster.len());
        let rows = evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &KS, &cfg);
        for row in &rows {
            table.add_row([
                row.name.clone(),
                fmt_opt(row.mrr, 3),
                fmt_opt(row.irr.get(&1).copied(), 2),
                fmt_opt(row.irr.get(&5).copied(), 2),
                fmt_opt(row.irr.get(&10).copied(), 2),
            ]);
        }
        println!(
            "\nTable VII — {} (scale {:?}, {} seeds)\n",
            market.name(),
            args.scale,
            seeds.len()
        );
        println!("{}", table.render());
        let path = format!("{}/table7_{}.json", args.out_dir, market.name().to_lowercase());
        write_json(&path, &rows).unwrap_or_else(|e| rtgcn_bench::harness_error("table7_module_ablation", &e));
        eprintln!("[table7] wrote {path}");
    }
}
