//! Figure 8 — case study: five related stocks from the NASDAQ test set.
//! Prints (a) the relational subgraph with RT-GCN (T)'s learned edge
//! weights, (c) a heatmap of predicted return ratios over ~22 trading days,
//! and (d) the ground-truth normalised prices — showing the model tracks
//! the temporal dimension and that closely connected stocks get similar
//! predictions.

// Opt-in allocation tracking (RTGCN_ALLOC_STATS=1) needs the tracking
// global allocator installed in every harness binary.
rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::HarnessArgs;
use rtgcn_core::{RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_eval::write_json;
use rtgcn_market::{RelationKind, StockDataset, UniverseSpec};
use serde::Serialize;

/// Map a value in [lo, hi] to a heat shade.
fn shade(v: f64, lo: f64, hi: f64) -> char {
    const RAMP: [char; 7] = [' ', '░', '▒', '▓', '█', '█', '█'];
    let t = ((v - lo) / rtgcn_eval::floor_span(hi - lo, 1e-9)).clamp(0.0, 1.0);
    RAMP[(t * (RAMP.len() - 1) as f64).round() as usize]
}

#[derive(Serialize)]
struct CaseArtifact {
    stocks: Vec<usize>,
    days: Vec<usize>,
    predicted: Vec<Vec<f32>>,
    actual: Vec<Vec<f32>>,
    edges: Vec<(usize, usize, f32)>,
}

fn main() {
    let (mut args, _telemetry) = HarnessArgs::init("fig8_case_study");
    args.markets = vec![rtgcn_market::Market::Nasdaq];
    let spec = UniverseSpec::of(rtgcn_market::Market::Nasdaq, args.scale);
    let ds = StockDataset::generate(spec, args.base_seed);
    let relations = ds.relations(RelationKind::Both);

    // Pick the most connected stock and four of its neighbours.
    let nbrs = relations.neighbor_lists();
    let center = (0..ds.n_stocks()).max_by_key(|&i| nbrs[i].len()).unwrap();
    let mut stocks = vec![center];
    stocks.extend(nbrs[center].iter().take(4).copied());
    println!("Figure 8 — case study on stocks {stocks:?} (center: {center})\n");

    // Train RT-GCN (T).
    let cfg = RtGcnConfig { epochs: args.epochs, ..RtGcnConfig::with_strategy(Strategy::TimeSensitive) };
    let t_steps = cfg.t_steps;
    let n_features = cfg.n_features;
    let mut model = RtGcn::new(cfg, &relations, args.base_seed);
    eprintln!("[fig8] training RT-GCN (T)...");
    model.fit(&ds);

    // (a) learned edge weights among the five stocks, averaged over the
    // window's per-step adjacencies at the first test day.
    let test_days: Vec<usize> = ds.test_end_days().into_iter().take(22).collect();
    let sample = ds.sample(test_days[0], t_steps, n_features);
    let snaps = model.adjacency_snapshot(&sample.x);
    let mut edge_weights = Vec::new();
    println!("(a) learned relational subgraph (mean |A(t)| across the window):");
    for (e, p) in model.ctx.edges.pairs.iter().enumerate() {
        let (s, d) = (p[0], p[1]);
        if s < d && stocks.contains(&s) && stocks.contains(&d) {
            let w: f32 =
                snaps.iter().map(|snap| snap[e].abs()).sum::<f32>() / snaps.len() as f32;
            let bar = "=".repeat(((w * 200.0).round() as usize).clamp(1, 30));
            println!("    {s:>4} {bar} {d:<4}  weight {w:.4}");
            edge_weights.push((s, d, w));
        }
    }

    // (c)+(d): predicted return heatmap and actual normalised prices.
    let mut predicted = vec![Vec::new(); stocks.len()];
    let mut actual = vec![Vec::new(); stocks.len()];
    for &day in &test_days {
        let scores = model.scores_for_day(&ds, day);
        for (row, &s) in stocks.iter().enumerate() {
            predicted[row].push(scores[s]);
            actual[row].push(ds.realized_return(day, s));
        }
    }
    let flat: Vec<f64> = predicted.iter().flatten().map(|&v| v as f64).collect();
    let lo = flat.iter().copied().fold(f64::MAX, f64::min);
    let hi = flat.iter().copied().fold(f64::MIN, f64::max);
    println!("\n(c) predicted return-ratio heatmap (rows = stocks, cols = {} test days):", test_days.len());
    for (row, &s) in stocks.iter().enumerate() {
        let line: String =
            predicted[row].iter().map(|&v| shade(v as f64, lo, hi)).collect();
        println!("    {s:>4} |{line}|");
    }
    println!("\n(d) ground-truth price (normalised to day 0):");
    for &s in &stocks {
        let p0 = ds.sim.price(test_days[0], s);
        let series: Vec<f64> =
            test_days.iter().map(|&d| (ds.sim.price(d, s) / p0) as f64).collect();
        let (mn, mx) =
            rtgcn_eval::finite_bounds(series.iter().copied()).unwrap_or((0.0, 0.0));
        let line: String = series.iter().map(|&v| shade(v, mn, mx)).collect();
        println!("    {s:>4} |{line}|  range {mn:.3}..{mx:.3}");
    }

    // Temporal fidelity: rank correlation between predicted and realised
    // day-mean movement across the 5 stocks.
    let mut agree = 0usize;
    let mut total = 0usize;
    for d in 1..test_days.len() {
        for row in 0..stocks.len() {
            let dp = predicted[row][d] - predicted[row][d - 1];
            let da = actual[row][d] - actual[row][d - 1];
            // `.abs() > 0.0` is false for NaN too, so NaN moves (degenerate
            // fits) are excluded from the agreement denominator.
            if dp.abs() > 0.0 && da.abs() > 0.0 {
                total += 1;
                if (dp > 0.0) == (da > 0.0) {
                    agree += 1;
                }
            }
        }
    }
    println!(
        "\nday-over-day direction agreement between predicted and realised returns: {agree}/{total} ({:.0}%)",
        100.0 * agree as f64 / total.max(1) as f64
    );

    let artifact = CaseArtifact { stocks, days: test_days, predicted, actual, edges: edge_weights };
    let path = format!("{}/fig8_case_study.json", args.out_dir);
    write_json(&path, &artifact).unwrap_or_else(|e| rtgcn_bench::harness_error("fig8_case_study", &e));
    eprintln!("[fig8] wrote {path}");
}
