//! Machine-readable perf baselines: fold per-model telemetry JSONL run logs
//! into a `BenchSnapshot` (kernel percentiles, epoch timings, phase
//! breakdown, backtest throughput, health verdicts), render it as a markdown
//! table, and diff two snapshots to flag regressions. The `rtgcn-report`
//! binary is the CLI front-end; `run_experiments.sh --bench-snapshot` wires
//! it into the experiment pipeline.
//!
//! Robustness contract: JSONL lines that fail to parse (older schema
//! versions, truncated writes) are skipped, not fatal — a snapshot built
//! from a partially-readable log is still a snapshot. Aggregate events are
//! emitted *after* streaming ones by `flush_aggregates`, so "last event per
//! name wins" yields the end-of-run totals.

use rtgcn_telemetry::Event;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// End-of-run histogram stats for one metric (e.g. `backtest.day_score_ns`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistStat {
    pub name: String,
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// End-of-run totals for one span path (e.g. `seed/fit/epoch/relational`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanStatSnap {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
}

/// One node of the hierarchical span tree: the flat totals of
/// [`SpanStatSnap`] plus the derived *self* time (total minus direct
/// children), stored in pre-order (lexicographic path order).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanTreeNode {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

/// One point of a gauge series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PointSnap {
    pub index: u64,
    pub value: f64,
}

/// A full gauge series (per-epoch losses, per-day cumulative IRR, ...).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeriesSnap {
    pub name: String,
    pub points: Vec<PointSnap>,
}

/// Everything the snapshot keeps about one model's run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSnapshot {
    pub model: String,
    /// Training-health verdict string ("Healthy"/"Warn"/"Diverged", empty
    /// for unmonitored single-shot fits).
    pub health: String,
    /// Epochs observed by the health monitor (0 when unmonitored).
    pub epochs: u64,
    /// Mean wall-clock seconds per `fit/epoch` span (0 when the model does
    /// not emit epoch spans).
    pub epoch_secs_mean: f64,
    /// Total ns per training phase (relational/temporal/loss/backward/optim).
    pub phase_ns: BTreeMap<String, u64>,
    pub hists: Vec<HistStat>,
    pub spans: Vec<SpanStatSnap>,
    /// Hierarchical view of `spans` with derived self times. `Option` so
    /// snapshots written before this field existed still deserialize
    /// (the vendored serde maps a missing `Option` field to `None`).
    pub span_tree: Option<Vec<SpanTreeNode>>,
    pub counters: BTreeMap<String, u64>,
    pub series: Vec<SeriesSnap>,
    /// Backtest throughput: scored days per second of backtest-span time.
    pub backtest_days_per_sec: f64,
}

/// One harness run's machine-readable perf baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSnapshot {
    pub harness: String,
    pub created_ms: u64,
    pub models: Vec<ModelSnapshot>,
}

/// One metric that moved past the regression threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Regression {
    pub model: String,
    pub metric: String,
    pub base: f64,
    pub new: f64,
    /// Signed percent change relative to the baseline.
    pub pct: f64,
}

/// Parse JSONL lines into events, silently skipping lines the current
/// schema cannot read.
pub fn parse_events<'a>(lines: impl IntoIterator<Item = &'a str>) -> Vec<Event> {
    lines
        .into_iter()
        .filter_map(|l| serde_json::from_str::<Event>(l.trim()).ok())
        .collect()
}

fn last_per_name<'a>(events: &'a [Event], kind: &str) -> BTreeMap<&'a str, &'a Event> {
    let mut out = BTreeMap::new();
    for e in events {
        if e.kind == kind {
            out.insert(e.name.as_str(), e);
        }
    }
    out
}

/// Fold one model's event stream into a [`ModelSnapshot`]. `model` is a
/// fallback display name; a `meta model` event in the stream wins.
pub fn model_snapshot(model: &str, events: &[Event]) -> ModelSnapshot {
    let mut name = model.to_string();
    for e in events {
        if e.kind == "meta" && e.name == "model" && !e.msg.is_empty() {
            name = e.msg.clone();
        }
    }

    let hists: Vec<HistStat> = last_per_name(events, "hist")
        .values()
        .map(|e| HistStat {
            name: e.name.clone(),
            count: e.count,
            mean_ns: if e.count > 0 { e.total_ns as f64 / e.count as f64 } else { 0.0 },
            p50_ns: e.p50_ns,
            p95_ns: e.p95_ns,
            p99_ns: e.p99_ns,
        })
        .collect();

    let spans: Vec<SpanStatSnap> = last_per_name(events, "span")
        .values()
        .map(|e| SpanStatSnap { path: e.name.clone(), count: e.count, total_ns: e.total_ns })
        .collect();

    let counters: BTreeMap<String, u64> =
        last_per_name(events, "counter").values().map(|e| (e.name.clone(), e.count)).collect();

    // Hierarchical span tree: self time = total minus direct children,
    // computed from the flat totals exactly like the telemetry summary.
    let totals: BTreeMap<String, u64> =
        spans.iter().map(|s| (s.path.clone(), s.total_ns)).collect();
    let selfs = rtgcn_telemetry::spantree::self_totals(&totals);
    let span_tree: Vec<SpanTreeNode> = spans
        .iter()
        .map(|s| SpanTreeNode {
            path: s.path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            self_ns: selfs.get(&s.path).copied().unwrap_or(s.total_ns),
        })
        .collect();

    // Gauge series: every streamed point, grouped by name in arrival order.
    let mut series_map: BTreeMap<String, Vec<PointSnap>> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "series") {
        series_map
            .entry(e.name.clone())
            .or_default()
            .push(PointSnap { index: e.count, value: e.value });
    }
    let series: Vec<SeriesSnap> =
        series_map.into_iter().map(|(name, points)| SeriesSnap { name, points }).collect();

    // Health verdict: the monitor emits exactly one end-of-fit record per
    // fit; the last one (last seed) wins.
    let (mut health, mut epochs) = (String::new(), 0u64);
    for e in events.iter().filter(|e| e.kind == "health") {
        health = e.msg.clone();
        epochs = e.count;
    }

    // Epoch timing from the span tree (paths end in `fit/epoch`).
    let mut epoch_secs_mean = 0.0;
    for s in &spans {
        if s.path.ends_with("fit/epoch") && s.count > 0 {
            epoch_secs_mean = s.total_ns as f64 / s.count as f64 / 1e9;
            if epochs == 0 {
                epochs = s.count;
            }
        }
    }

    // Phase breakdown: leaf spans under an epoch.
    let mut phase_ns = BTreeMap::new();
    for s in &spans {
        if let Some((parent, leaf)) = s.path.rsplit_once('/') {
            if parent.ends_with("fit/epoch") {
                *phase_ns.entry(leaf.to_string()).or_insert(0) += s.total_ns;
            }
        }
    }

    // Backtest throughput: days scored (the per-day histogram count) over
    // wall-clock seconds inside the backtest span.
    let day_count = hists
        .iter()
        .find(|h| h.name == "backtest.day_score_ns")
        .map(|h| h.count)
        .unwrap_or(0);
    let backtest_ns: u64 =
        spans.iter().filter(|s| s.path.ends_with("backtest")).map(|s| s.total_ns).sum();
    let backtest_days_per_sec =
        if backtest_ns > 0 { day_count as f64 / (backtest_ns as f64 / 1e9) } else { 0.0 };

    ModelSnapshot {
        model: name,
        health,
        epochs,
        epoch_secs_mean,
        phase_ns,
        hists,
        spans,
        span_tree: Some(span_tree),
        counters,
        series,
        backtest_days_per_sec,
    }
}

/// Scan `logs_dir` for this harness's per-model run logs
/// (`run-<harness>-<model>.jsonl`), returning `(model_stem, path)` pairs in
/// filename order. The bare `run-<harness>.jsonl` preamble log is excluded.
pub fn collect_model_logs(logs_dir: &Path, harness: &str) -> std::io::Result<Vec<(String, PathBuf)>> {
    let tag = rtgcn_telemetry::sanitize_label(harness);
    let prefix = format!("run-{tag}-");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(logs_dir)? {
        let path = entry?.path();
        let Some(file) = path.file_name().and_then(|f| f.to_str()) else { continue };
        if let Some(stem) = file.strip_prefix(&prefix).and_then(|r| r.strip_suffix(".jsonl")) {
            out.push((stem.to_string(), path.clone()));
        }
    }
    out.sort();
    Ok(out)
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        // lint:allow(nan-discipline) u128 -> u64 millisecond clamp, not a float metric
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Build the full snapshot for one harness from its per-model logs.
pub fn build_snapshot(logs_dir: &Path, harness: &str) -> std::io::Result<BenchSnapshot> {
    let mut models = Vec::new();
    for (stem, path) in collect_model_logs(logs_dir, harness)? {
        let text = std::fs::read_to_string(&path)?;
        let events = parse_events(text.lines());
        models.push(model_snapshot(&stem, &events));
    }
    Ok(BenchSnapshot { harness: harness.to_string(), created_ms: unix_ms(), models })
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render the snapshot as a markdown table (one row per model).
pub fn render_markdown(snap: &BenchSnapshot) -> String {
    let mut out = format!("# BENCH snapshot — {}\n\n", snap.harness);
    out.push_str(
        "| Model | Health | Epochs | Epoch s | day_score p50 ms | p95 ms | p99 ms | days/s |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
    for m in &snap.models {
        let day = m.hists.iter().find(|h| h.name == "backtest.day_score_ns");
        let (p50, p95, p99) = day
            .map(|h| (fmt_ms(h.p50_ns), fmt_ms(h.p95_ns), fmt_ms(h.p99_ns)))
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {} | {} | {} | {:.1} |\n",
            m.model,
            if m.health.is_empty() { "-" } else { &m.health },
            m.epochs,
            m.epoch_secs_mean,
            p50,
            p95,
            p99,
            m.backtest_days_per_sec,
        ));
    }
    out
}

fn pct_change(base: f64, new: f64) -> f64 {
    100.0 * (new - base) / base
}

/// Minimum baseline magnitude for a latency metric to participate in the
/// regression diff. Sub-millisecond paths (ARIMA scoring, DQN inference)
/// swing far past any realistic threshold from machine noise alone
/// (measured ±40% between same-binary runs on the single-core reference
/// box), and a regression that stays under a millisecond cannot move an
/// end-to-end number the repo reports.
const HIST_FLOOR_NS: f64 = 1e6;

/// Compare two snapshots; a metric regresses when it moves past
/// `threshold_pct` in the bad direction (slower histograms / slower epochs /
/// lower backtest throughput). Histograms are compared on their exact
/// sample mean, not the p50/p95 bucket bounds: the buckets are log-spaced
/// at 2x, so a bucket-bound comparison can only ever read 0% or ≥100% and
/// trips on any sample drifting one bucket. Sub-millisecond baselines are
/// skipped entirely (see [`HIST_FLOOR_NS`]), as is the throughput check for
/// models whose per-day scoring baseline is sub-millisecond. Models present
/// in only one snapshot are ignored — a roster change is not a perf
/// regression.
pub fn diff_snapshots(base: &BenchSnapshot, new: &BenchSnapshot, threshold_pct: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for nm in &new.models {
        let Some(bm) = base.models.iter().find(|m| m.model == nm.model) else { continue };
        let mut slower = |metric: String, b: f64, n: f64| {
            if b > 0.0 && n > b * (1.0 + threshold_pct / 100.0) {
                out.push(Regression {
                    model: nm.model.clone(),
                    metric,
                    base: b,
                    new: n,
                    pct: pct_change(b, n),
                });
            }
        };
        for nh in &nm.hists {
            if let Some(bh) = bm.hists.iter().find(|h| h.name == nh.name) {
                if bh.mean_ns >= HIST_FLOOR_NS {
                    slower(format!("{}.mean_ns", nh.name), bh.mean_ns, nh.mean_ns);
                }
            }
        }
        slower("epoch_secs_mean".into(), bm.epoch_secs_mean, nm.epoch_secs_mean);
        let day_mean = bm
            .hists
            .iter()
            .find(|h| h.name == "backtest.day_score_ns")
            .map(|h| h.mean_ns)
            .unwrap_or(0.0);
        let (b, n) = (bm.backtest_days_per_sec, nm.backtest_days_per_sec);
        if day_mean >= HIST_FLOOR_NS && b > 0.0 && n < b * (1.0 - threshold_pct / 100.0) {
            out.push(Regression {
                model: nm.model.clone(),
                metric: "backtest_days_per_sec".into(),
                base: b,
                new: n,
                pct: pct_change(b, n),
            });
        }
    }
    out
}

/// One span path whose *self* time grew relative to the baseline — the
/// attribution unit `rtgcn-report` prints when a baseline diff fails.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanRegression {
    pub model: String,
    pub path: String,
    pub base_self_ns: u64,
    pub new_self_ns: u64,
    /// Signed percent change of self time relative to the baseline.
    pub pct: f64,
}

/// Minimum baseline self time for a span path to participate in
/// attribution. Same rationale as [`HIST_FLOOR_NS`]: sub-millisecond spans
/// swing wildly from scheduling noise and cannot explain a visible
/// end-to-end regression.
const SPAN_FLOOR_NS: u64 = 1_000_000;

/// Attribute a regression to span paths: for every model present in both
/// snapshots, compare self time per shared span path and return the top-`k`
/// growers (by percent change, descending), skipping paths whose baseline
/// self time is under [`SPAN_FLOOR_NS`]. Paths present in only one snapshot
/// are ignored — renamed spans are a code change, not a regression.
pub fn attribute_span_regressions(
    base: &BenchSnapshot,
    new: &BenchSnapshot,
    k: usize,
) -> Vec<SpanRegression> {
    let mut out = Vec::new();
    for nm in &new.models {
        let Some(bm) = base.models.iter().find(|m| m.model == nm.model) else { continue };
        let (Some(bt), Some(nt)) = (&bm.span_tree, &nm.span_tree) else { continue };
        for nn in nt {
            let Some(bn) = bt.iter().find(|n| n.path == nn.path) else { continue };
            if bn.self_ns < SPAN_FLOOR_NS || nn.self_ns <= bn.self_ns {
                continue;
            }
            out.push(SpanRegression {
                model: nm.model.clone(),
                path: nn.path.clone(),
                base_self_ns: bn.self_ns,
                new_self_ns: nn.self_ns,
                pct: pct_change(bn.self_ns as f64, nn.self_ns as f64),
            });
        }
    }
    out.sort_by(|a, b| b.pct.total_cmp(&a.pct).then_with(|| a.path.cmp(&b.path)));
    out.truncate(k);
    out
}

/// Render the attribution list as the lines `rtgcn-report` prints under a
/// failed perf gate, e.g. `RT-GCN  seed/fit/epoch/relational/spmm_csr  self +38.2%  (12.0ms -> 16.6ms)`.
pub fn render_span_attribution(regs: &[SpanRegression]) -> String {
    let mut out = String::new();
    for r in regs {
        out.push_str(&format!(
            "  {}  {}  self +{:.1}%  ({} -> {})\n",
            r.model,
            r.path,
            r.pct,
            fmt_ms(r.base_self_ns) + "ms",
            fmt_ms(r.new_self_ns) + "ms",
        ));
    }
    out
}

/// Render a profiling report: the top-`n` span paths by self time across
/// all models in the snapshot, as a markdown table.
pub fn render_profile_markdown(snap: &BenchSnapshot, n: usize) -> String {
    let mut rows: Vec<(&str, &SpanTreeNode)> = Vec::new();
    for m in &snap.models {
        if let Some(tree) = &m.span_tree {
            rows.extend(tree.iter().filter(|t| t.self_ns > 0).map(|t| (m.model.as_str(), t)));
        }
    }
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.1.path.cmp(&b.1.path)));
    rows.truncate(n);
    let mut out = format!("# PROFILE — {} (top {} spans by self time)\n\n", snap.harness, n);
    out.push_str("| Model | Span path | Self ms | Total ms | Calls |\n");
    out.push_str("|---|---|---:|---:|---:|\n");
    for (model, t) in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            model,
            t.path,
            fmt_ms(t.self_ns),
            fmt_ms(t.total_ns),
            t.count,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &str, name: &str) -> Event {
        Event {
            ts_ms: 0,
            kind: kind.into(),
            name: name.into(),
            count: 0,
            total_ns: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            value: 0.0,
            msg: String::new(),
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event { msg: "RT-GCN (T)".into(), ..ev("meta", "model") },
            // A stale aggregate followed by the final one: last wins.
            Event { count: 2, p50_ns: 9_000_000, ..ev("hist", "backtest.day_score_ns") },
            Event {
                count: 8,
                total_ns: 40_000_000,
                p50_ns: 5_000_000,
                p95_ns: 7_000_000,
                p99_ns: 7_500_000,
                ..ev("hist", "backtest.day_score_ns")
            },
            Event { count: 4, total_ns: 8_000_000_000, ..ev("span", "seed/fit/epoch") },
            Event { count: 40, total_ns: 3_000_000_000, ..ev("span", "seed/fit/epoch/loss") },
            Event { count: 40, total_ns: 1_000_000_000, ..ev("span", "seed/fit/epoch/optim") },
            Event { count: 1, total_ns: 2_000_000_000, ..ev("span", "seed/backtest") },
            Event { count: 0, value: 0.01, ..ev("series", "fit.loss") },
            Event { count: 1, value: 0.005, ..ev("series", "fit.loss") },
            Event { count: 13, ..ev("counter", "tape.nodes") },
            Event { count: 4, value: 0.005, msg: "Healthy".into(), ..ev("health", "RT-GCN (T)") },
        ]
    }

    #[test]
    fn snapshot_folds_events_with_last_aggregate_winning() {
        let m = model_snapshot("rt-gcn-t", &sample_events());
        assert_eq!(m.model, "RT-GCN (T)");
        assert_eq!(m.health, "Healthy");
        assert_eq!(m.epochs, 4);
        let h = &m.hists[0];
        assert_eq!((h.count, h.p50_ns, h.p95_ns), (8, 5_000_000, 7_000_000));
        assert!((h.mean_ns - 5_000_000.0).abs() < 1.0);
        assert!((m.epoch_secs_mean - 2.0).abs() < 1e-9);
        assert_eq!(m.phase_ns["loss"], 3_000_000_000);
        assert_eq!(m.phase_ns["optim"], 1_000_000_000);
        // 8 days over 2 s of backtest span.
        assert!((m.backtest_days_per_sec - 4.0).abs() < 1e-9);
        assert_eq!(m.counters["tape.nodes"], 13);
        assert_eq!(m.series[0].points.len(), 2);
        assert_eq!(m.series[0].points[1].value, 0.005);
    }

    #[test]
    fn unparseable_lines_are_skipped() {
        let lines = ["not json", "{\"half\":", r#"{"ts_ms":1,"kind":"counter","name":"x","count":3,"total_ns":0,"p50_ns":0,"p95_ns":0,"p99_ns":0,"value":0.0,"msg":""}"#];
        let events = parse_events(lines);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].count, 3);
    }

    #[test]
    fn diff_flags_only_regressions_past_threshold() {
        let base_model = model_snapshot("m", &sample_events());
        let base = BenchSnapshot { harness: "h".into(), created_ms: 0, models: vec![base_model.clone()] };

        // +30% hist mean → flagged at 20%; a one-bucket p50/p95 jump alone
        // (the bounds double per bucket, so it reads +100%) → not.
        let mut worse = base_model.clone();
        worse.hists[0].mean_ns *= 1.3;
        worse.hists[0].p50_ns *= 2;
        worse.hists[0].p95_ns *= 2;
        worse.backtest_days_per_sec *= 0.5;
        let new = BenchSnapshot { harness: "h".into(), created_ms: 1, models: vec![worse.clone()] };
        let regs = diff_snapshots(&base, &new, 20.0);
        let metrics: Vec<&str> = regs.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"backtest.day_score_ns.mean_ns"), "{metrics:?}");
        assert!(metrics.contains(&"backtest_days_per_sec"), "{metrics:?}");
        assert!(!metrics.iter().any(|m| m.ends_with("p50_ns") || m.ends_with("p95_ns")), "{metrics:?}");

        // Bucket drift with an unchanged mean → clean diff.
        let mut bucket_only = base_model.clone();
        bucket_only.hists[0].p50_ns *= 2;
        bucket_only.hists[0].p95_ns *= 2;
        let new = BenchSnapshot { harness: "h".into(), created_ms: 1, models: vec![bucket_only] };
        assert!(diff_snapshots(&base, &new, 20.0).is_empty());

        // Identical snapshots → clean diff.
        assert!(diff_snapshots(&base, &base, 20.0).is_empty());
    }

    #[test]
    fn diff_ignores_sub_millisecond_latency_paths() {
        // A model whose scoring path is micro-latency (base mean < 1 ms):
        // relative noise dwarfs any threshold, so neither its histogram mean
        // nor its derived days/sec participates in the diff.
        let mut fast = model_snapshot("m", &sample_events());
        fast.hists[0].mean_ns = 200_000.0; // 0.2 ms
        fast.backtest_days_per_sec = 5_000.0;
        let base = BenchSnapshot { harness: "h".into(), created_ms: 0, models: vec![fast.clone()] };
        let mut worse = fast.clone();
        worse.hists[0].mean_ns *= 3.0;
        worse.backtest_days_per_sec /= 3.0;
        let new = BenchSnapshot { harness: "h".into(), created_ms: 1, models: vec![worse] };
        let regs = diff_snapshots(&base, &new, 20.0);
        assert!(
            regs.iter().all(|r| r.metric == "epoch_secs_mean"),
            "sub-ms paths must not be diffed: {regs:?}"
        );
    }

    #[test]
    fn markdown_has_a_row_per_model() {
        let snap = BenchSnapshot {
            harness: "table4".into(),
            created_ms: 0,
            models: vec![model_snapshot("m", &sample_events())],
        };
        let md = render_markdown(&snap);
        assert!(md.contains("| RT-GCN (T) | Healthy | 4 |"), "{md}");
    }

    #[test]
    fn span_tree_derives_self_time_from_direct_children() {
        let m = model_snapshot("m", &sample_events());
        let tree = m.span_tree.as_ref().expect("snapshot builds a span tree");
        let epoch = tree.iter().find(|t| t.path == "seed/fit/epoch").unwrap();
        assert_eq!(epoch.total_ns, 8_000_000_000);
        // 8 s total minus loss (3 s) and optim (1 s) children.
        assert_eq!(epoch.self_ns, 4_000_000_000);
        let loss = tree.iter().find(|t| t.path == "seed/fit/epoch/loss").unwrap();
        assert_eq!(loss.self_ns, loss.total_ns, "leaf self == total");
        // Pre-order: parent precedes children.
        let paths: Vec<&str> = tree.iter().map(|t| t.path.as_str()).collect();
        let epoch_i = paths.iter().position(|p| *p == "seed/fit/epoch").unwrap();
        let loss_i = paths.iter().position(|p| *p == "seed/fit/epoch/loss").unwrap();
        assert!(epoch_i < loss_i);
    }

    #[test]
    fn old_snapshot_json_without_span_tree_still_parses() {
        let mut m = model_snapshot("m", &sample_events());
        m.span_tree = None;
        let snap = BenchSnapshot { harness: "t".into(), created_ms: 0, models: vec![m] };
        let text = serde_json::to_string(&snap).unwrap();
        // An old snapshot simply lacks the field.
        let old = text.replace("\"span_tree\":null,", "");
        assert_ne!(old, text, "field must have been stripped");
        let back: BenchSnapshot = serde_json::from_str(&old).unwrap();
        assert!(back.models[0].span_tree.is_none());
        assert_eq!(back.models[0].epochs, 4);
    }

    #[test]
    fn attribution_names_the_grown_span_and_respects_the_floor() {
        let base_model = model_snapshot("m", &sample_events());
        let base =
            BenchSnapshot { harness: "h".into(), created_ms: 0, models: vec![base_model.clone()] };
        let mut worse = base_model.clone();
        {
            let tree = worse.span_tree.as_mut().unwrap();
            // loss self grows 50%, optim only 10%; epoch self unchanged.
            tree.iter_mut().find(|t| t.path == "seed/fit/epoch/loss").unwrap().self_ns =
                4_500_000_000;
            tree.iter_mut().find(|t| t.path == "seed/fit/epoch/optim").unwrap().self_ns =
                1_100_000_000;
        }
        let new = BenchSnapshot { harness: "h".into(), created_ms: 1, models: vec![worse] };
        let regs = attribute_span_regressions(&base, &new, 3);
        assert_eq!(regs[0].path, "seed/fit/epoch/loss");
        assert!((regs[0].pct - 50.0).abs() < 1e-6, "{}", regs[0].pct);
        assert_eq!(regs[1].path, "seed/fit/epoch/optim");
        // top-k truncation.
        assert_eq!(attribute_span_regressions(&base, &new, 1).len(), 1);
        // The printable form names the path and the percentage.
        let text = render_span_attribution(&regs);
        assert!(text.contains("seed/fit/epoch/loss  self +50.0%"), "{text}");
        // A tiny span under the floor never attributes, however much it grows.
        let mut tiny_base = base_model.clone();
        tiny_base.span_tree.as_mut().unwrap().iter_mut().for_each(|t| t.self_ns = 500);
        let mut tiny_new = tiny_base.clone();
        tiny_new.span_tree.as_mut().unwrap().iter_mut().for_each(|t| t.self_ns = 50_000);
        let b = BenchSnapshot { harness: "h".into(), created_ms: 0, models: vec![tiny_base] };
        let n = BenchSnapshot { harness: "h".into(), created_ms: 1, models: vec![tiny_new] };
        assert!(attribute_span_regressions(&b, &n, 10).is_empty());
    }

    #[test]
    fn profile_markdown_ranks_spans_by_self_time() {
        let snap = BenchSnapshot {
            harness: "table4".into(),
            created_ms: 0,
            models: vec![model_snapshot("m", &sample_events())],
        };
        let md = render_profile_markdown(&snap, 2);
        let lines: Vec<&str> = md.lines().collect();
        // Title + blank + header + separator + 2 rows, epoch self (4 s)
        // before loss self (3 s).
        assert!(lines[4].contains("seed/fit/epoch |"), "{md}");
        assert!(lines[5].contains("seed/fit/epoch/loss"), "{md}");
        assert_eq!(lines.len(), 6, "{md}");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = BenchSnapshot {
            harness: "t".into(),
            created_ms: 42,
            models: vec![model_snapshot("m", &sample_events())],
        };
        let text = serde_json::to_string(&snap).unwrap();
        let back: BenchSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.models[0].model, snap.models[0].model);
        assert_eq!(back.models[0].hists[0].p50_ns, snap.models[0].hists[0].p50_ns);
        assert_eq!(back.models[0].phase_ns, snap.models[0].phase_ns);
    }
}
