//! Criterion micro-benchmarks of the tensor/graph kernels that dominate
//! RT-GCN's runtime: dense matmul, sparse propagation (spmm), the
//! time-sensitive strategy's edge-dot, segment softmax (GAT), causal
//! temporal convolution and the O(N²) pairwise ranking loss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtgcn_tensor::{init, linalg, Edges, Tape, Tensor};
use std::hint::black_box;

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    init::normal(shape.to_vec(), 1.0, &mut init::rng(seed))
}

fn ring_edges(n: usize, degree: usize) -> Edges {
    let mut pairs = Vec::new();
    for i in 0..n {
        for d in 1..=degree {
            pairs.push([i, (i + d) % n]);
        }
        pairs.push([i, i]);
    }
    Edges::new(n, pairs)
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 256, 512] {
        let a = rand_tensor(&[n, n], 1);
        let b = rand_tensor(&[n, n], 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(linalg::matmul(&a, &b)));
        });
    }
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmm");
    for &n in &[256usize, 1024] {
        let edges = ring_edges(n, 20);
        let weights = rand_tensor(&[edges.len()], 3);
        let x = rand_tensor(&[n, 32], 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let w = tape.constant(weights.clone());
                let xv = tape.constant(x.clone());
                black_box(tape.spmm(&edges, w, xv))
            });
        });
    }
    g.finish();
}

fn bench_edge_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("edge_dot");
    for &n in &[256usize, 1024] {
        let edges = ring_edges(n, 20);
        let x = rand_tensor(&[n, 32], 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let xv = tape.constant(x.clone());
                black_box(tape.edge_dot(&edges, xv, 5.65))
            });
        });
    }
    g.finish();
}

fn bench_segment_softmax(c: &mut Criterion) {
    let edges = ring_edges(1024, 20);
    let logits = rand_tensor(&[edges.len()], 6);
    c.bench_function("segment_softmax/1024x21", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let l = tape.constant(logits.clone());
            black_box(tape.segment_softmax(&edges, l))
        });
    });
}

fn bench_conv1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv1d_causal");
    // The RT-GCN shape: batch = stocks, channels = filters, length = window.
    for &(b, ch, l) in &[(100usize, 32usize, 16usize), (800, 32, 16)] {
        let x = rand_tensor(&[b, ch, l], 7);
        let w = rand_tensor(&[ch, ch, 3], 8);
        let bias = Tensor::zeros([ch]);
        let spec = rtgcn_tensor::ConvSpec::new(3, 2, 1);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{b}x{ch}x{l}")), &b, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let xv = tape.constant(x.clone());
                let wv = tape.constant(w.clone());
                let bv = tape.constant(bias.clone());
                black_box(tape.conv1d_causal(xv, wv, bv, spec))
            });
        });
    }
    g.finish();
}

fn bench_rank_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("pairwise_rank_loss");
    for &n in &[100usize, 800] {
        let pred = rand_tensor(&[n], 9);
        let truth = rand_tensor(&[n], 10);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let p = tape.constant(pred.clone());
                black_box(tape.pairwise_rank_loss(p, &truth))
            });
        });
    }
    g.finish();
}

fn bench_backward(c: &mut Criterion) {
    // Full forward+backward through a GCN-like layer.
    let n = 256;
    let edges = ring_edges(n, 20);
    let x = rand_tensor(&[n, 16], 11);
    let theta = rand_tensor(&[16, 32], 12);
    let weights = rand_tensor(&[edges.len()], 13);
    c.bench_function("gcn_layer_fwd_bwd/256", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let w = tape.leaf(weights.clone());
            let xv = tape.leaf(x.clone());
            let th = tape.leaf(theta.clone());
            let agg = tape.spmm(&edges, w, xv);
            let z = tape.matmul(agg, th);
            let r = tape.relu(z);
            let loss = tape.sum_all(r);
            tape.backward(loss);
            black_box(tape.grad(th).is_some())
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_edge_dot,
    bench_segment_softmax,
    bench_conv1d,
    bench_rank_loss,
    bench_backward
);
criterion_main!(benches);
