//! Criterion model-level benchmarks: one training step and one scoring pass
//! of each ranking-based method on an identical small market — the
//! micro-benchmark counterpart of Figure 5 (the `fig5_speed` binary measures
//! full training runs; this isolates per-step cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rtgcn_bench::Spec;
use rtgcn_baselines::{CommonConfig, ModelKind};
use rtgcn_core::Strategy;
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use std::hint::black_box;

fn bench_dataset() -> StockDataset {
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 60;
    spec.train_days = 80;
    spec.test_days = 20;
    StockDataset::generate(spec, 42)
}

fn common() -> CommonConfig {
    CommonConfig { epochs: 1, ..Default::default() }
}

fn roster() -> Vec<Spec> {
    vec![
        Spec::Baseline(ModelKind::RankLstm),
        Spec::Baseline(ModelKind::RsrE),
        Spec::Baseline(ModelKind::RtGat),
        Spec::Gcn(Strategy::Uniform),
        Spec::Gcn(Strategy::Weighted),
        Spec::Gcn(Strategy::TimeSensitive),
    ]
}

/// One scoring pass (inference) per model — the Figure 5 "testing" cost.
fn bench_score_pass(c: &mut Criterion) {
    let ds = bench_dataset();
    let mut g = c.benchmark_group("score_pass");
    g.sample_size(10);
    for spec in roster() {
        let mut model = spec.build(&ds, &common(), RelationKind::Both, 1);
        let day = ds.test_end_days()[0];
        // Touch once so lazily-built models construct their graphs outside
        // the timed region.
        let _ = model.scores_for_day(&ds, day);
        g.bench_function(spec.name(), |bench| {
            bench.iter(|| black_box(model.scores_for_day(&ds, day)));
        });
    }
    g.finish();
}

/// Strategy-adjacency construction cost (the extra work strategy (T) pays
/// per time-step relative to (U)/(W)).
fn bench_strategy_adjacency(c: &mut Criterion) {
    use rtgcn_core::StrategyCtx;
    use rtgcn_tensor::{init, Tape, Tensor};
    let ds = bench_dataset();
    let relations = ds.relations(RelationKind::Both);
    let ctx = StrategyCtx::new(&relations);
    let n = relations.num_stocks();
    let x = init::normal([n, 4], 1.0, &mut init::rng(3));
    let mut g = c.benchmark_group("strategy_adjacency");
    g.bench_function("uniform", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            black_box(ctx.adjacency_uniform(&mut tape))
        });
    });
    g.bench_function("weighted", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let w = tape.leaf(Tensor::zeros([ctx.k_types, 1]));
            let b = tape.leaf(Tensor::from_vec(vec![1.0]));
            black_box(ctx.adjacency_weighted(&mut tape, w, b))
        });
    });
    g.bench_function("time_sensitive", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let w = tape.leaf(Tensor::zeros([ctx.k_types, 1]));
            let b = tape.leaf(Tensor::from_vec(vec![1.0]));
            let xv = tape.leaf(x.clone());
            black_box(ctx.adjacency_time_sensitive(&mut tape, w, b, xv))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_score_pass, bench_strategy_adjacency);
criterion_main!(benches);
