//! End-to-end test of the live observability server over a real parallel
//! run: start the monitor exactly the way a harness does (`RTGCN_MONITOR`
//! env + `start_monitor_from_env`), kick off a parallel roster whose probe
//! model is slow enough to be caught mid-flight, scrape all four endpoints
//! while jobs are running, and assert the monitored run's `ModelRow`s are
//! bit-identical to an unmonitored run — the monitor must be observably
//! free on the results path.

use rtgcn_bench::{evaluate_roster, monitor, ModelRow, RunnerConfig, Spec};
use rtgcn_core::Strategy;
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_telemetry as tel;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn tiny_ds() -> StockDataset {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 40;
    spec.test_days = 8;
    StockDataset::generate(spec, 1)
}

fn tiny_common() -> rtgcn_baselines::CommonConfig {
    rtgcn_baselines::CommonConfig {
        t_steps: 8,
        n_features: 2,
        hidden: 8,
        epochs: 1,
        ..Default::default()
    }
}

fn cfg_with_jobs(jobs: usize) -> RunnerConfig {
    let mut cfg = RunnerConfig::from_env();
    cfg.jobs = jobs;
    cfg.timeout = None;
    cfg.retries = 0;
    cfg.journal = None;
    cfg.log_sink = None;
    cfg
}

fn scrape(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .expect("write request");
    let mut resp = String::new();
    let _ = stream.read_to_string(&mut resp);
    let status = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"));
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Everything but wall-clock must match bit-for-bit between the monitored
/// and unmonitored schedules.
fn assert_rows_identical(a: &[ModelRow], b: &[ModelRow]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.mrr.map(f64::to_bits), y.mrr.map(f64::to_bits), "{}: mrr", x.name);
        for (k, v) in &x.irr {
            assert_eq!(v.to_bits(), y.irr[k].to_bits(), "{}: irr-{k}", x.name);
        }
        for (k, s) in &x.irr_samples {
            let bits: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
            let other: Vec<u64> = y.irr_samples[k].iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, other, "{}: irr_samples-{k}", x.name);
        }
        let bits: Vec<u64> = x.mrr_samples.iter().map(|v| v.to_bits()).collect();
        let other: Vec<u64> = y.mrr_samples.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, other, "{}: mrr_samples", x.name);
        assert_eq!(x.health, y.health, "{}: health", x.name);
        assert_eq!(x.failed_seeds, y.failed_seeds, "{}: failed_seeds", x.name);
    }
}

#[test]
fn live_run_is_scrapeable_on_all_endpoints_and_rows_stay_bit_identical() {
    let _g = tel::test_lock();
    monitor::board_clear();
    monitor::install_runs_route();
    // Start the monitor through the same path a harness uses.
    std::env::set_var("RTGCN_MONITOR", "127.0.0.1:0");
    tel::http::start_monitor_from_env();
    std::env::remove_var("RTGCN_MONITOR");
    let addr = tel::http::monitor_addr().expect("monitor must be running");

    // SlowProbe sleeps 2s per fit, so with both workers on its two seeds
    // first, the mid-flight scrape below reliably sees `running` jobs.
    let ds = tiny_ds();
    let common = tiny_common();
    let roster = [Spec::SlowProbe, Spec::Gcn(Strategy::Uniform)];
    let seeds = [1u64, 2];
    let ks = [1usize, 5];

    let run_ds = ds.clone();
    let run_common = common.clone();
    let monitored = std::thread::spawn(move || {
        evaluate_roster(
            &roster,
            &run_ds,
            &run_common,
            RelationKind::Both,
            &seeds,
            &ks,
            &cfg_with_jobs(2),
        )
    });

    // Wait until the board actually shows a running job (bounded poll —
    // SlowProbe holds both workers for 2s, so this settles in a few ms).
    let mut runs_body = String::new();
    let mut saw_running = false;
    for _ in 0..100 {
        let (status, body) = scrape(addr, "/runs");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"running\"") {
            saw_running = true;
            runs_body = body;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(saw_running, "a SlowProbe job must be observable as running mid-flight");
    let v: serde_json::Value = serde_json::from_str(&runs_body).expect("/runs is valid JSON");
    let jobs = v
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "jobs").map(|(_, v)| v.clone()))
        .and_then(|j| j.as_seq().map(<[serde_json::Value]>::to_vec))
        .expect("/runs has a jobs array");
    assert_eq!(jobs.len(), 4, "2 models x 2 seeds");
    assert!(
        jobs.iter().any(|j| {
            j.as_map().is_some_and(|m| {
                m.iter().any(|(k, v)| k == "model" && v.as_str() == Some("SlowProbe"))
            })
        }),
        "{runs_body}"
    );

    // The other three endpoints, mid-flight.
    let (status, metrics) = scrape(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE rtgcn_build_info gauge"), "{metrics}");
    assert!(metrics.contains("rtgcn_process_uptime_seconds"), "{metrics}");
    assert!(!metrics.contains("NaN"), "non-finite values must never render:\n{metrics}");
    let (status, health) = scrape(addr, "/healthz");
    assert_eq!(status, 200, "no model has diverged: {health}");
    let (status, spans) = scrape(addr, "/spans");
    assert_eq!(status, 200);
    let _: serde_json::Value = serde_json::from_str(&spans).expect("/spans is valid JSON");

    let monitored_rows = monitored.join().expect("monitored run");

    // After the run settles, the board shows every job ok.
    let (status, body) = scrape(addr, "/runs");
    assert_eq!(status, 200);
    assert!(!body.contains("\"state\":\"running\""), "{body}");
    assert!(!body.contains("\"state\":\"queued\""), "{body}");
    assert!(body.contains("\"ok\":4"), "{body}");

    tel::http::shutdown_monitor();
    monitor::board_clear();

    // Same roster without a monitor: rows must match bit-for-bit.
    let unmonitored =
        evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &ks, &cfg_with_jobs(2));
    assert_rows_identical(&monitored_rows, &unmonitored);
}
