//! End-to-end snapshot pipeline: a real (tiny) RT-GCN fit + backtest
//! streamed into the memory sink must fold into a `ModelSnapshot` carrying
//! kernel percentiles, per-day IRR series and the health verdict — and an
//! injected latency regression must trip the diff gate.

use rtgcn_bench::snapshot::{diff_snapshots, model_snapshot, parse_events, render_markdown, BenchSnapshot};
use rtgcn_core::{RtGcn, RtGcnConfig, StockRanker};
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_telemetry as tel;

fn tiny_ds() -> StockDataset {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 30;
    spec.test_days = 6;
    StockDataset::generate(spec, 11)
}

fn tiny_cfg() -> RtGcnConfig {
    RtGcnConfig {
        t_steps: 6,
        n_features: 2,
        rel_filters: 6,
        temporal_filters: 6,
        epochs: 2,
        ..RtGcnConfig::default()
    }
}

#[test]
fn memory_sink_run_folds_into_a_live_snapshot() {
    let _guard = tel::test_scope(tel::Level::Summary);
    let ds = tiny_ds();
    let mut model = RtGcn::new(tiny_cfg(), &ds.relations(RelationKind::Both), 5);
    let report = model.fit(&ds);
    assert!(report.final_loss.is_finite());
    let outcome = rtgcn_eval::backtest(&mut model, &ds, &[1, 5], 5);
    assert_eq!(outcome.daily_cumulative[&1].len(), ds.spec.test_days);
    tel::flush_aggregates();

    let lines = tel::drain_memory_sink();
    let events = parse_events(lines.iter().map(|s| s.as_str()));
    let m = model_snapshot("RT-GCN (T)", &events);

    // Kernel histogram with percentiles, one sample per scored test day.
    let day = m
        .hists
        .iter()
        .find(|h| h.name == "backtest.day_score_ns")
        .expect("backtest must record per-day scoring latency");
    assert_eq!(day.count, ds.spec.test_days as u64);
    assert!(day.p50_ns > 0 && day.p95_ns >= day.p50_ns);

    // Per-day cumulative IRR series for every requested k.
    for k in [1usize, 5] {
        let s = m
            .series
            .iter()
            .find(|s| s.name == format!("backtest.irr.k{k}"))
            .unwrap_or_else(|| panic!("missing IRR series for k={k}"));
        assert_eq!(s.points.len(), ds.spec.test_days);
        assert_eq!(s.points.last().unwrap().value, outcome.irr[&k]);
    }

    // Health verdict and per-epoch loss series from the fit monitor.
    assert_eq!(m.health, "Healthy");
    assert_eq!(m.epochs, 2);
    let loss = m.series.iter().find(|s| s.name == "fit.loss").expect("fit.loss series");
    assert_eq!(loss.points.len(), 2);

    // Phase breakdown covers the training hot paths.
    for phase in ["relational", "temporal", "loss", "backward", "optim"] {
        assert!(m.phase_ns.contains_key(phase), "missing phase {phase}: {:?}", m.phase_ns);
    }
    assert!(m.backtest_days_per_sec > 0.0);

    // The markdown rendering names the model and its verdict.
    let snap = BenchSnapshot { harness: "snapshot_test".into(), created_ms: 0, models: vec![m] };
    let md = render_markdown(&snap);
    assert!(md.contains("RT-GCN (T)") && md.contains("Healthy"), "{md}");

    // Histogram diffs compare exact means (never the 2x-spaced bucket
    // bounds) and only for paths costing ≥1 ms at baseline, so pin the
    // baseline day-score mean at 5 ms: a +30% regression on it trips the
    // 20% gate, and the untouched snapshot diffs clean against itself.
    let mut snap = snap;
    snap.models[0]
        .hists
        .iter_mut()
        .find(|h| h.name == "backtest.day_score_ns")
        .unwrap()
        .mean_ns = 5e6;
    assert!(diff_snapshots(&snap, &snap, 20.0).is_empty());
    let mut slow = snap.clone();
    let h = slow.models[0]
        .hists
        .iter_mut()
        .find(|h| h.name == "backtest.day_score_ns")
        .unwrap();
    h.mean_ns *= 1.3;
    let regs = diff_snapshots(&snap, &slow, 20.0);
    assert_eq!(regs.len(), 1, "{regs:?}");
    assert_eq!(regs[0].metric, "backtest.day_score_ns.mean_ns");
    assert!(regs[0].pct > 20.0);
}
