//! Integration tests for the fault-isolated parallel runner: parallel ==
//! serial bit-for-bit, panic/timeout isolation across sibling jobs, journal
//! resume, and per-model JSONL sinks staying unmixed under concurrency.

use rtgcn_baselines::{CommonConfig, ModelKind};
use rtgcn_bench::{evaluate_roster, ModelRow, RunnerConfig, Spec};
use rtgcn_core::Strategy;
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use std::path::PathBuf;
use std::time::Duration;

fn tiny_ds() -> StockDataset {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 40;
    spec.test_days = 8;
    StockDataset::generate(spec, 1)
}

fn tiny_common() -> CommonConfig {
    CommonConfig { t_steps: 8, n_features: 2, hidden: 8, epochs: 1, ..Default::default() }
}

fn cfg_with_jobs(jobs: usize) -> RunnerConfig {
    let mut cfg = RunnerConfig::from_env();
    cfg.jobs = jobs;
    cfg.timeout = None;
    cfg.retries = 0;
    cfg.journal = None;
    cfg.log_sink = None;
    cfg
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtgcn-runner-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Everything but wall-clock must match bit-for-bit between schedules.
fn assert_rows_identical(a: &[ModelRow], b: &[ModelRow]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.category, y.category);
        assert_eq!(x.mrr.map(f64::to_bits), y.mrr.map(f64::to_bits), "{}: mrr", x.name);
        assert_eq!(x.irr.len(), y.irr.len());
        for (k, v) in &x.irr {
            assert_eq!(v.to_bits(), y.irr[k].to_bits(), "{}: irr-{k}", x.name);
        }
        for (k, s) in &x.irr_samples {
            let bits: Vec<u64> = s.iter().map(|v| v.to_bits()).collect();
            let other: Vec<u64> = y.irr_samples[k].iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, other, "{}: irr_samples-{k}", x.name);
        }
        let bits: Vec<u64> = x.mrr_samples.iter().map(|v| v.to_bits()).collect();
        let other: Vec<u64> = y.mrr_samples.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, other, "{}: mrr_samples", x.name);
        assert_eq!(x.health, y.health, "{}: health", x.name);
        assert_eq!(x.failed_seeds, y.failed_seeds, "{}: failed_seeds", x.name);
    }
}

#[test]
fn parallel_run_reproduces_serial_rows_bit_identically() {
    let ds = tiny_ds();
    let common = tiny_common();
    let roster = [Spec::Gcn(Strategy::Uniform), Spec::Baseline(ModelKind::RankLstm)];
    let seeds = [1u64, 2, 3];
    let ks = [1usize, 5];
    let serial =
        evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &ks, &cfg_with_jobs(1));
    let parallel =
        evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &ks, &cfg_with_jobs(4));
    assert_rows_identical(&serial, &parallel);
    assert!(serial.iter().all(|r| r.failed_seeds.is_empty()));
    assert!(serial[0].mrr.unwrap().is_finite());
}

#[test]
fn a_panicking_model_fails_alone_and_siblings_survive() {
    let ds = tiny_ds();
    let roster = [Spec::PanicProbe, Spec::Gcn(Strategy::Uniform)];
    let rows = evaluate_roster(
        &roster,
        &ds,
        &tiny_common(),
        RelationKind::Both,
        &[1, 2],
        &[1],
        &cfg_with_jobs(2),
    );
    let probe = &rows[0];
    assert_eq!(probe.name, "PanicProbe");
    assert_eq!(probe.failed_seeds.len(), 2, "both probe seeds fail");
    assert!(probe.failed_seeds[0].reason.contains("injected fault"));
    assert!(probe.irr[&1].is_nan(), "no finite samples -> NaN mean, not 0.0");
    // The sibling model is untouched by the panics next door.
    let sibling = &rows[1];
    assert!(sibling.failed_seeds.is_empty());
    assert!(sibling.mrr.unwrap().is_finite());
    assert_eq!(sibling.irr_samples[&1].len(), 2);
}

#[test]
fn a_hung_model_times_out_and_is_journalled_as_failed() {
    let dir = tmp_dir("timeout");
    let journal = dir.join("jobs-test.jsonl");
    let ds = tiny_ds();
    let roster = [Spec::SlowProbe, Spec::Gcn(Strategy::Uniform)];
    let mut cfg = cfg_with_jobs(2);
    cfg.timeout = Some(Duration::from_millis(150));
    cfg.retries = 1;
    cfg.context = "timeout-it".into();
    cfg.journal = Some(journal.clone());
    let rows =
        evaluate_roster(&roster, &ds, &tiny_common(), RelationKind::Both, &[1], &[1], &mut cfg);
    assert_eq!(rows[0].failed_seeds.len(), 1);
    assert!(rows[0].failed_seeds[0].reason.contains("timed out"));
    assert!(rows[1].failed_seeds.is_empty(), "fast sibling finishes despite the hung job");
    let lines = std::fs::read_to_string(&journal).unwrap();
    assert!(lines.contains("\"failed\""), "timeout lands in the journal: {lines}");
    assert!(lines.contains("\"ok\""), "sibling success lands in the journal");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_resume_skips_completed_jobs_and_reproduces_rows() {
    let dir = tmp_dir("resume");
    let journal = dir.join("jobs-test.jsonl");
    let ds = tiny_ds();
    let common = tiny_common();
    let roster = [Spec::Gcn(Strategy::Uniform)];
    let seeds = [1u64, 2, 3];
    let mut cfg = cfg_with_jobs(2);
    cfg.context = "resume-it".into();
    cfg.journal = Some(journal.clone());
    let first =
        evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &[1, 5], &cfg);
    let count = |p: &PathBuf| std::fs::read_to_string(p).unwrap().lines().count();
    assert_eq!(count(&journal), 3, "one journal line per settled job");
    // Second run: everything resumes from the journal — no new journal
    // lines, identical rows (including Option-ness and NaN bit patterns).
    let second =
        evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &[1, 5], &cfg);
    assert_eq!(count(&journal), 3, "resumed jobs are not re-journalled");
    assert_rows_identical(&first, &second);
    // A different context must NOT resume from these records.
    let mut other = cfg.clone();
    other.context = "different-config".into();
    let third =
        evaluate_roster(&roster, &ds, &common, RelationKind::Both, &seeds, &[1, 5], &other);
    assert_eq!(count(&journal), 6, "different context recomputes all jobs");
    assert_rows_identical(&first, &third);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_model_jsonl_sinks_stay_unmixed_under_concurrency() {
    // Holds the telemetry test lock (this test raises the global level).
    let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Summary);
    let dir = tmp_dir("sinks");
    let ds = tiny_ds();
    let roster = [Spec::Gcn(Strategy::Uniform), Spec::Baseline(ModelKind::RankLstm)];
    let mut cfg = cfg_with_jobs(4);
    cfg.log_sink = Some((dir.clone(), "itest".to_string()));
    let rows = evaluate_roster(
        &roster,
        &ds,
        &tiny_common(),
        RelationKind::Both,
        &[1, 2],
        &[1],
        &cfg,
    );
    assert_eq!(rows.len(), 2);
    let read = |model: &str| {
        let path = rtgcn_telemetry::run_log_path(&dir, "itest", model);
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
    };
    let ours = read("RT-GCN (U)");
    let lstm = read("Rank_LSTM");
    for (log, own, other) in
        [(&ours, "RT-GCN (U)", "Rank_LSTM"), (&lstm, "Rank_LSTM", "RT-GCN (U)")]
    {
        assert!(
            log.lines().any(|l| l.contains("\"model\"") && l.contains(own)),
            "{own}: missing model meta line"
        );
        assert!(
            !log.contains(other),
            "{own}'s JSONL mentions {other} — sinks mixed under concurrency"
        );
        // Seed spans from the worker threads landed in the right file.
        assert!(log.contains("\"seed\""), "{own}: no seed span events");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
