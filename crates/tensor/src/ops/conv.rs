//! Causal 1-D convolution — the temporal-convolution primitive of RT-GCN
//! (paper Section IV-C, Figure 4).
//!
//! Layout: input `(B, C_in, L)` where `B` indexes stocks, channels are
//! features and `L` is the time axis; weight `(C_out, C_in, k)`. Causality is
//! enforced with left-only zero padding of `dilation·(k−1)` so output step `t`
//! never reads inputs later than `t` (no future leakage — Eq. 6). A stride
//! `> 1` compresses the temporal dimension, expanding the receptive field as
//! the paper describes.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Static configuration of a causal conv.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    pub kernel: usize,
    pub stride: usize,
    pub dilation: usize,
}

impl ConvSpec {
    pub fn new(kernel: usize, stride: usize, dilation: usize) -> Self {
        assert!(kernel >= 1 && stride >= 1 && dilation >= 1, "conv spec fields must be >= 1");
        ConvSpec { kernel, stride, dilation }
    }

    /// Left padding that makes the convolution causal.
    #[inline]
    pub fn pad(&self) -> usize {
        self.dilation * (self.kernel - 1)
    }

    /// Output length for input length `l` (always ≥ 1 for `l ≥ 1`).
    #[inline]
    pub fn out_len(&self, l: usize) -> usize {
        if l == 0 {
            0
        } else {
            (l - 1) / self.stride + 1
        }
    }
}

impl Tape {
    /// Causal strided 1-D convolution.
    ///
    /// * `x`: `(B, C_in, L)`
    /// * `w`: `(C_out, C_in, k)`
    /// * `bias`: `(C_out)`
    ///
    /// Returns `(B, C_out, L_out)` with `L_out = ⌈L / stride⌉`.
    pub fn conv1d_causal(&mut self, x: Var, w: Var, bias: Var, spec: ConvSpec) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        crate::telemetry_hooks::kernel_counter(&CALLS, "tensor.conv1d_causal.calls").inc(1);
        let _t = rtgcn_telemetry::span("conv1d_causal");
        let xv = self.value(x);
        let wv = self.value(w);
        let bv = self.value(bias);
        assert_eq!(xv.rank(), 3, "conv1d input must be (B, C_in, L), got {:?}", xv.shape());
        assert_eq!(wv.rank(), 3, "conv1d weight must be (C_out, C_in, k), got {:?}", wv.shape());
        let (b, c_in, l) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        let (c_out, wc_in, k) = (wv.dims()[0], wv.dims()[1], wv.dims()[2]);
        assert_eq!(c_in, wc_in, "conv1d channel mismatch: input {c_in}, weight {wc_in}");
        assert_eq!(k, spec.kernel, "weight kernel dim {k} != spec kernel {}", spec.kernel);
        assert_eq!(bv.dims(), [c_out], "bias must be (C_out)");

        let pad = spec.pad();
        let l_out = spec.out_len(l);
        let mut out = Tensor::zeros([b, c_out, l_out]);
        {
            let (od, xd, wd, bd) = (out.data_mut(), xv.data(), wv.data(), bv.data());
            for bi in 0..b {
                // `co` indexes four differently-strided buffers at once; an
                // iterator chain here would hide the addressing arithmetic.
                #[allow(clippy::needless_range_loop)]
                for co in 0..c_out {
                    let obase = (bi * c_out + co) * l_out;
                    for t in 0..l_out {
                        let mut acc = bd[co];
                        let origin = t * spec.stride; // rightmost input tap (before pad shift)
                        for ci in 0..c_in {
                            let xbase = (bi * c_in + ci) * l;
                            let wbase = (co * c_in + ci) * k;
                            for j in 0..k {
                                // padded position = origin + j*dilation; real
                                // input index = that − pad.
                                let ppos = origin + j * spec.dilation;
                                if ppos >= pad {
                                    let ipos = ppos - pad;
                                    debug_assert!(ipos <= origin, "causality violated");
                                    acc += wd[wbase + j] * xd[xbase + ipos];
                                }
                            }
                        }
                        od[obase + t] = acc;
                    }
                }
            }
        }

        self.push_op_named("conv1d_causal", out, vec![x, w, bias], move |ctx| {
            let (xd, wd) = (ctx.parents[0].data(), ctx.parents[1].data());
            let g = ctx.grad.data();
            let mut gx = vec![0.0f32; b * c_in * l];
            let mut gw = vec![0.0f32; c_out * c_in * k];
            let mut gb = vec![0.0f32; c_out];
            for bi in 0..b {
                #[allow(clippy::needless_range_loop)]
                for co in 0..c_out {
                    let obase = (bi * c_out + co) * l_out;
                    for t in 0..l_out {
                        let go = g[obase + t];
                        if go == 0.0 {
                            continue;
                        }
                        gb[co] += go;
                        let origin = t * spec.stride;
                        for ci in 0..c_in {
                            let xbase = (bi * c_in + ci) * l;
                            let wbase = (co * c_in + ci) * k;
                            for j in 0..k {
                                let ppos = origin + j * spec.dilation;
                                if ppos >= pad {
                                    let ipos = ppos - pad;
                                    gw[wbase + j] += go * xd[xbase + ipos];
                                    gx[xbase + ipos] += go * wd[wbase + j];
                                }
                            }
                        }
                    }
                }
            }
            vec![
                Tensor::new([b, c_in, l], gx),
                Tensor::new([c_out, c_in, k], gw),
                Tensor::from_vec(gb),
            ]
        })
    }

    /// Weight-normalised convolution weight (Salimans & Kingma): given the
    /// direction tensor `v: (C_out, C_in, k)` and per-filter gain `g: (C_out)`,
    /// returns `w = g · v / ‖v‖` with the norm taken per output filter. The
    /// paper applies weight normalisation to all TCN filters.
    pub fn weight_norm(&mut self, v: Var, gain: Var) -> Var {
        let vv = self.value(v);
        assert_eq!(vv.rank(), 3, "weight_norm expects (C_out, C_in, k)");
        let (c_out, c_in, k) = (vv.dims()[0], vv.dims()[1], vv.dims()[2]);
        let flat = self.reshape(v, [c_out, c_in * k]);
        let norm = self.row_norm(flat, 1e-6); // (C_out, 1)
        let gain2 = self.reshape(gain, [c_out, 1]);
        let scale = self.div(gain2, norm); // (C_out, 1)
        let scaled = self.mul(flat, scale); // broadcast over columns
        self.reshape(scaled, [c_out, c_in, k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    #[test]
    fn identity_kernel_preserves_input() {
        // k=1, stride=1: convolution is a pointwise map with weight 1.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, 1, 4], vec![1., 2., 3., 4.]));
        let w = tape.leaf(Tensor::new([1, 1, 1], vec![1.0]));
        let b = tape.leaf(Tensor::from_vec(vec![0.0]));
        let y = tape.conv1d_causal(x, w, b, ConvSpec::new(1, 1, 1));
        assert_eq!(tape.value(y).data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn causal_sum_kernel() {
        // k=2 with weights [1,1]: y_t = x_{t-1} + x_t, with x_{-1}=0.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, 1, 4], vec![1., 2., 3., 4.]));
        let w = tape.leaf(Tensor::new([1, 1, 2], vec![1.0, 1.0]));
        let b = tape.leaf(Tensor::from_vec(vec![0.0]));
        let y = tape.conv1d_causal(x, w, b, ConvSpec::new(2, 1, 1));
        assert_eq!(tape.value(y).data(), &[1., 3., 5., 7.]);
    }

    #[test]
    fn no_future_leakage() {
        // Perturbing x_t must never change outputs before t.
        let spec = ConvSpec::new(3, 1, 1);
        let base = Tensor::new([1, 1, 5], vec![1., 2., 3., 4., 5.]);
        let run = |x: &Tensor| -> Vec<f32> {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let w = tape.leaf(Tensor::new([1, 1, 3], vec![0.3, -0.5, 0.8]));
            let b = tape.leaf(Tensor::from_vec(vec![0.1]));
            let y = tape.conv1d_causal(xv, w, b, spec);
            tape.value(y).data().to_vec()
        };
        let y0 = run(&base);
        let mut pert = base.clone();
        pert.data_mut()[3] += 10.0; // change x_3
        let y1 = run(&pert);
        assert_eq!(&y0[..3], &y1[..3], "outputs before t=3 must be unchanged");
        assert_ne!(y0[3], y1[3]);
    }

    #[test]
    fn stride_compresses_length() {
        let spec = ConvSpec::new(3, 2, 1);
        assert_eq!(spec.out_len(8), 4);
        assert_eq!(spec.out_len(7), 4);
        assert_eq!(spec.out_len(1), 1);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 3, 8]));
        let w = tape.leaf(Tensor::ones([4, 3, 3]));
        let b = tape.leaf(Tensor::zeros([4]));
        let y = tape.conv1d_causal(x, w, b, spec);
        assert_eq!(tape.value(y).dims(), &[2, 4, 4]);
    }

    #[test]
    fn dilation_expands_receptive_field() {
        // k=2, dilation=2: y_t = w0·x_{t-2} + w1·x_t.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, 1, 5], vec![1., 2., 3., 4., 5.]));
        let w = tape.leaf(Tensor::new([1, 1, 2], vec![1.0, 10.0]));
        let b = tape.leaf(Tensor::from_vec(vec![0.0]));
        let y = tape.conv1d_causal(x, w, b, ConvSpec::new(2, 1, 2));
        assert_eq!(tape.value(y).data(), &[10., 20., 31., 42., 53.]);
    }

    #[test]
    fn conv_grad_check_input_and_weight() {
        let spec = ConvSpec::new(3, 2, 1);
        let x0 = Tensor::new([2, 2, 6], (0..24).map(|v| (v as f32) * 0.1 - 1.0).collect());
        let w0 = Tensor::new([3, 2, 3], (0..18).map(|v| (v as f32) * 0.05 - 0.4).collect());
        let w_for_x = w0.clone();
        check_gradient(&x0, 1e-2, 2e-2, move |tape, x| {
            let w = tape.leaf(w_for_x.clone());
            let b = tape.leaf(Tensor::from_vec(vec![0.1, -0.2, 0.3]));
            let y = tape.conv1d_causal(x, w, b, spec);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
        let x_for_w = x0;
        check_gradient(&w0, 1e-2, 2e-2, move |tape, w| {
            let x = tape.leaf(x_for_w.clone());
            let b = tape.leaf(Tensor::from_vec(vec![0.1, -0.2, 0.3]));
            let y = tape.conv1d_causal(x, w, b, spec);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn weight_norm_unit_direction() {
        // With gain g and any v, each output filter has norm g.
        let mut tape = Tape::new();
        let v = tape.leaf(Tensor::new([2, 1, 2], vec![3., 4., 1., 0.]));
        let g = tape.leaf(Tensor::from_vec(vec![2.0, 5.0]));
        let wn = tape.weight_norm(v, g);
        let w = tape.value(wn).clone();
        let f0: f32 = w.data()[..2].iter().map(|&x| x * x).sum::<f32>().sqrt();
        let f1: f32 = w.data()[2..].iter().map(|&x| x * x).sum::<f32>().sqrt();
        assert!((f0 - 2.0).abs() < 1e-4, "filter 0 norm {f0}");
        assert!((f1 - 5.0).abs() < 1e-4, "filter 1 norm {f1}");
    }

    #[test]
    fn weight_norm_grad_check() {
        let v0 = Tensor::new([2, 2, 2], vec![0.5, -1.0, 2.0, 0.3, 1.5, -0.7, 0.2, 0.9]);
        check_gradient(&v0, 1e-3, 2e-2, |tape, v| {
            let g = tape.leaf(Tensor::from_vec(vec![1.5, 0.8]));
            let w = tape.weight_norm(v, g);
            let wsum = tape.square(w);
            tape.sum_all(wsum)
        })
        .unwrap();
    }
}
