//! Reduction ops: full and per-axis sums/means, softmax and row-norms.

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Split a shape at `axis` into (outer, axis, inner) strides so a reduction
/// over `axis` can be written as three nested loops over contiguous memory.
fn axis_split(shape: &Shape, axis: usize) -> (usize, usize, usize) {
    assert!(axis < shape.rank(), "axis {axis} out of range for shape {shape:?}");
    let dims = shape.dims();
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    (outer, mid, inner)
}

fn drop_axis(shape: &Shape, axis: usize) -> Shape {
    let mut dims = shape.dims().to_vec();
    dims.remove(axis);
    Shape(dims)
}

impl Tape {
    /// Sum of every element, producing a scalar.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let out = Tensor::scalar(self.value(x).sum());
        self.push_op_named("sum_all", out, vec![x], |ctx| {
            let g = ctx.grad.item();
            vec![Tensor::full(ctx.parents[0].shape().clone(), g)]
        })
    }

    /// Mean of every element, producing a scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let n = self.value(x).numel().max(1) as f32;
        let s = self.sum_all(x);
        self.scale(s, 1.0 / n)
    }

    /// Sum over one axis (the axis is removed from the shape).
    pub fn sum_axis(&mut self, x: Var, axis: usize) -> Var {
        let xv = self.value(x);
        let (outer, mid, inner) = axis_split(xv.shape(), axis);
        let out_shape = drop_axis(xv.shape(), axis);
        let mut out = Tensor::zeros(out_shape);
        {
            let (od, xd) = (out.data_mut(), xv.data());
            for o in 0..outer {
                for m in 0..mid {
                    let src = (o * mid + m) * inner;
                    let dst = o * inner;
                    for i in 0..inner {
                        od[dst + i] += xd[src + i];
                    }
                }
            }
        }
        self.push_op_named("sum_axis", out, vec![x], move |ctx| {
            let mut gx = Tensor::zeros(ctx.parents[0].shape().clone());
            let (gxd, gd) = (gx.data_mut(), ctx.grad.data());
            for o in 0..outer {
                for m in 0..mid {
                    let dst = (o * mid + m) * inner;
                    let src = o * inner;
                    gxd[dst..dst + inner].copy_from_slice(&gd[src..src + inner]);
                }
            }
            vec![gx]
        })
    }

    /// Mean over one axis (the axis is removed from the shape).
    pub fn mean_axis(&mut self, x: Var, axis: usize) -> Var {
        let n = self.value(x).dims()[axis].max(1) as f32;
        let s = self.sum_axis(x, axis);
        self.scale(s, 1.0 / n)
    }

    /// Numerically stable softmax over the **last** axis.
    pub fn softmax(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let rank = xv.rank();
        assert!(rank >= 1, "softmax requires rank >= 1");
        let (outer, mid, _) = axis_split(xv.shape(), rank - 1);
        let mut out = Tensor::zeros(xv.shape().clone());
        {
            let (od, xd) = (out.data_mut(), xv.data());
            for o in 0..outer {
                let row = &xd[o * mid..(o + 1) * mid];
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut z = 0.0;
                for (j, &v) in row.iter().enumerate() {
                    let e = (v - max).exp();
                    od[o * mid + j] = e;
                    z += e;
                }
                for j in 0..mid {
                    od[o * mid + j] /= z.max(1e-12);
                }
            }
        }
        self.push_op_named("softmax", out, vec![x], move |ctx| {
            // dx = y ⊙ (g − Σ_j g_j y_j) per row.
            let (yd, gd) = (ctx.output.data(), ctx.grad.data());
            let mut gx = vec![0.0; yd.len()];
            for o in 0..outer {
                let base = o * mid;
                let dot: f32 = (0..mid).map(|j| gd[base + j] * yd[base + j]).sum();
                for j in 0..mid {
                    gx[base + j] = yd[base + j] * (gd[base + j] - dot);
                }
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// Log-softmax over the last axis (stable; pairs with NLL loss).
    pub fn log_softmax(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let rank = xv.rank();
        let (outer, mid, _) = axis_split(xv.shape(), rank - 1);
        let mut out = Tensor::zeros(xv.shape().clone());
        {
            let (od, xd) = (out.data_mut(), xv.data());
            for o in 0..outer {
                let row = &xd[o * mid..(o + 1) * mid];
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = row.iter().map(|&v| (v - max).exp()).sum::<f32>().max(1e-12).ln() + max;
                for j in 0..mid {
                    od[o * mid + j] = row[j] - lse;
                }
            }
        }
        self.push_op_named("log_softmax", out, vec![x], move |ctx| {
            // dx = g − softmax(x) · Σ_j g_j per row.
            let (yd, gd) = (ctx.output.data(), ctx.grad.data());
            let mut gx = vec![0.0; yd.len()];
            for o in 0..outer {
                let base = o * mid;
                let gsum: f32 = gd[base..base + mid].iter().sum();
                for j in 0..mid {
                    gx[base + j] = gd[base + j] - yd[base + j].exp() * gsum;
                }
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// L2 norm of each row of a matrix, returning a column `[rows, 1]`.
    /// Clamped at `eps` so weight-norm style divisions stay finite.
    pub fn row_norm(&mut self, x: Var, eps: f32) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.rank(), 2, "row_norm expects a matrix");
        let (r, c) = (xv.dims()[0], xv.dims()[1]);
        let mut out = Tensor::zeros([r, 1]);
        for i in 0..r {
            let row = &xv.data()[i * c..(i + 1) * c];
            out.data_mut()[i] = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(eps);
        }
        self.push_op_named("row_norm", out, vec![x], move |ctx| {
            let (xd, nd, gd) = (ctx.parents[0].data(), ctx.output.data(), ctx.grad.data());
            let mut gx = vec![0.0; xd.len()];
            for i in 0..r {
                let n = nd[i];
                let g = gd[i];
                for j in 0..c {
                    // d‖x‖/dx = x/‖x‖; zero where clamped.
                    gx[i * c + j] = if n > eps { g * xd[i * c + j] / n } else { 0.0 };
                }
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    #[test]
    fn sum_axis_values_and_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let s0 = tape.sum_axis(x, 0);
        let s1 = tape.sum_axis(x, 1);
        assert_eq!(tape.value(s0).data(), &[5., 7., 9.]);
        assert_eq!(tape.value(s1).data(), &[6., 15.]);
        let total = tape.sum_all(s1);
        tape.backward(total);
        assert_eq!(tape.grad(x).unwrap().data(), &[1.; 6]);
    }

    #[test]
    fn sum_axis_middle_of_3d() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 3, 2], (1..=12).map(|v| v as f32).collect()));
        let s = tape.sum_axis(x, 1);
        assert_eq!(tape.value(s).dims(), &[2, 2]);
        // sum over middle: [1+3+5, 2+4+6, 7+9+11, 8+10+12]
        assert_eq!(tape.value(s).data(), &[9., 12., 27., 30.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 4], vec![1., 2., 3., 4., -1., 0., 1., 100.]));
        let y = tape.softmax(x);
        let yd = tape.value(y);
        let r0: f32 = yd.data()[..4].iter().sum();
        let r1: f32 = yd.data()[4..].iter().sum();
        assert!((r0 - 1.0).abs() < 1e-5 && (r1 - 1.0).abs() < 1e-5);
        assert!(yd.data()[7] > 0.999, "large logit should dominate");
        assert!(!yd.has_non_finite());
    }

    #[test]
    fn softmax_grad_check() {
        let x = Tensor::new([2, 3], vec![0.1, 0.5, -0.2, 1.0, 0.0, -1.0]);
        check_gradient(&x, 1e-3, 1e-2, |tape, v| {
            let s = tape.softmax(v);
            // weight elements unevenly so gradient isn't trivially zero
            let w = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., -1., 0.5, 2.]));
            let p = tape.mul(s, w);
            tape.sum_all(p)
        })
        .unwrap();
    }

    #[test]
    fn log_softmax_grad_check() {
        let x = Tensor::new([1, 4], vec![0.3, -0.3, 0.9, 0.1]);
        check_gradient(&x, 1e-3, 1e-2, |tape, v| {
            let s = tape.log_softmax(v);
            let w = tape.leaf(Tensor::new([1, 4], vec![1., -2., 0.5, 3.]));
            let p = tape.mul(s, w);
            tape.sum_all(p)
        })
        .unwrap();
    }

    #[test]
    fn row_norm_values_and_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 2], vec![3., 4., 0., 0.]));
        let n = tape.row_norm(x, 1e-6);
        assert!((tape.value(n).data()[0] - 5.0).abs() < 1e-6);
        assert!(tape.value(n).data()[1] >= 1e-6);
        let x2 = Tensor::new([2, 3], vec![0.5, -1.0, 2.0, 0.2, 0.3, -0.4]);
        check_gradient(&x2, 1e-3, 1e-2, |tape, v| {
            let n = tape.row_norm(v, 1e-6);
            tape.sum_all(n)
        })
        .unwrap();
    }

    #[test]
    fn mean_all_matches_manual() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![2.0, 4.0, 6.0]));
        let m = tape.mean_all(x);
        assert!((tape.value(m).item() - 4.0).abs() < 1e-6);
        tape.backward(m);
        let g = tape.grad(x).unwrap();
        assert!(g.allclose(&Tensor::full([3], 1.0 / 3.0), 1e-6));
    }
}
