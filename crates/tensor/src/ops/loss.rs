//! Loss functions.
//!
//! The paper's objective (Eq. 9) combines a pointwise regression loss
//! (Eq. 7), the O(N²) pairwise ranking hinge (Eq. 8) — implemented here as a
//! fused op so the tape does not hold N² nodes — and an L2 penalty (applied
//! in the optimiser, see [`crate::optim`]).

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Mean squared error against a constant target: `mean((pred − target)²)`.
    ///
    /// Eq. (7) writes `‖r̂ − r‖²`; we use the mean so the loss scale is
    /// invariant to the number of stocks, which only rescales α and the
    /// learning rate.
    pub fn mse(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape(), "mse shapes must match");
        let n = pv.numel().max(1) as f32;
        let loss = pv.data().iter().zip(target.data()).map(|(&p, &t)| (p - t) * (p - t)).sum::<f32>()
            / n;
        let t = target.clone();
        self.push_op_named("mse", Tensor::scalar(loss), vec![pred], move |ctx| {
            let g = ctx.grad.item() * 2.0 / n;
            let data = ctx.parents[0]
                .data()
                .iter()
                .zip(t.data())
                .map(|(&p, &tv)| g * (p - tv))
                .collect();
            vec![Tensor::new(ctx.parents[0].shape().clone(), data)]
        })
    }

    /// Pairwise ranking hinge (Eq. 8):
    /// `Σ_i Σ_j ReLU(−(r̂_i − r̂_j)(r_i − r_j))`,
    /// normalised by the number of ordered pairs so that α is
    /// dataset-size-independent. Fused: O(N²) time, O(N) memory, one node.
    pub fn pairwise_rank_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.numel(), target.numel(), "rank loss length mismatch");
        let n = pv.numel();
        let norm = (n * n).max(1) as f32;
        let (pd, td) = (pv.data(), target.data());
        let mut loss = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let m = -(pd[i] - pd[j]) * (td[i] - td[j]);
                if m > 0.0 {
                    loss += m as f64;
                }
            }
        }
        let t = target.clone();
        self.push_op_named("pairwise_rank_loss", Tensor::scalar((loss as f32) / norm), vec![pred], move |ctx| {
            let g = ctx.grad.item() / norm;
            let pd = ctx.parents[0].data();
            let td = t.data();
            let mut grad = vec![0.0f32; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    // margin m_ij = −(p_i − p_j)(t_i − t_j); ∂m_ij/∂p_i = −(t_i − t_j),
                    // and by symmetry m_ji contributes the same term, hence ×2.
                    if -(pd[i] - pd[j]) * (td[i] - td[j]) > 0.0 {
                        acc -= 2.0 * (td[i] - td[j]);
                    }
                }
                grad[i] = g * acc;
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), grad)]
        })
    }

    /// Negative log-likelihood of integer class labels given `(B, C)` logits.
    /// Used by the classification baselines (A-LSTM's up/neutral/down head).
    pub fn cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.rank(), 2, "cross_entropy expects (B, C) logits");
        let (b, c) = (lv.dims()[0], lv.dims()[1]);
        assert_eq!(labels.len(), b, "one label per row required");
        for &l in labels {
            assert!(l < c, "label {l} out of range for {c} classes");
        }
        let logp = self.log_softmax(logits);
        // Pick out −logp[i, labels[i]] with a fused op.
        let lpv = self.value(logp);
        let mut loss = 0.0;
        for (i, &l) in labels.iter().enumerate() {
            loss -= lpv.data()[i * c + l];
        }
        let labels = labels.to_vec();
        self.push_op_named("cross_entropy", Tensor::scalar(loss / b as f32), vec![logp], move |ctx| {
            let g = ctx.grad.item() / b as f32;
            let mut grad = vec![0.0f32; b * c];
            for (i, &l) in labels.iter().enumerate() {
                grad[i * c + l] = -g;
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), grad)]
        })
    }

    /// The paper's combined objective without the L2 term (that lives in the
    /// optimiser): `τ_reg + α · τ_rank` (Eq. 9).
    pub fn combined_rank_loss(&mut self, pred: Var, target: &Tensor, alpha: f32) -> Var {
        self.combined_rank_loss_parts(pred, target, alpha).0
    }

    /// [`combined_rank_loss`](Self::combined_rank_loss) plus the scalar
    /// values of its two components, `(loss, τ_reg, τ_rank)` — the unscaled
    /// MSE and pairwise-ranking terms that training-health monitoring tracks
    /// per epoch. Reading the component values costs nothing extra: both
    /// nodes already sit on the tape.
    pub fn combined_rank_loss_parts(
        &mut self,
        pred: Var,
        target: &Tensor,
        alpha: f32,
    ) -> (Var, f32, f32) {
        let reg = self.mse(pred, target);
        let rank = self.pairwise_rank_loss(pred, target);
        let (reg_val, rank_val) = (self.value(reg).item(), self.value(rank).item());
        let scaled = self.scale(rank, alpha);
        (self.add(reg, scaled), reg_val, rank_val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    #[test]
    fn mse_zero_when_equal() {
        let mut tape = Tape::new();
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0]);
        let p = tape.leaf(t.clone());
        let l = tape.mse(p, &t);
        assert_eq!(tape.value(l).item(), 0.0);
        tape.backward(l);
        assert_eq!(tape.grad(p).unwrap().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn mse_grad_check() {
        let p0 = Tensor::from_vec(vec![0.2, -0.5, 1.4, 0.8]);
        let t = Tensor::from_vec(vec![0.0, 0.5, 1.0, -1.0]);
        check_gradient(&p0, 1e-3, 1e-2, move |tape, p| tape.mse(p, &t)).unwrap();
    }

    #[test]
    fn combined_loss_parts_decompose() {
        let mut tape = Tape::new();
        let t = Tensor::from_vec(vec![0.1, -0.2, 0.3]);
        let p = tape.leaf(Tensor::from_vec(vec![0.3, 0.1, -0.2]));
        let (loss, mse, rank) = tape.combined_rank_loss_parts(p, &t, 0.1);
        assert!(mse > 0.0, "discordant predictions have positive MSE");
        assert!(rank > 0.0, "discordant predictions have positive rank loss");
        let total = tape.value(loss).item();
        assert!((total - (mse + 0.1 * rank)).abs() < 1e-6, "{total} vs {mse} + 0.1·{rank}");
    }

    #[test]
    fn rank_loss_zero_for_perfect_order() {
        // Predictions perfectly concordant with targets: every pairwise
        // product is non-negative, so hinge is zero.
        let mut tape = Tape::new();
        let t = Tensor::from_vec(vec![0.1, 0.2, 0.3]);
        let p = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
        let l = tape.pairwise_rank_loss(p, &t);
        assert_eq!(tape.value(l).item(), 0.0);
    }

    #[test]
    fn rank_loss_penalises_inversions() {
        let mut tape = Tape::new();
        let t = Tensor::from_vec(vec![0.0, 1.0]);
        // Predicted order inverted.
        let p = tape.leaf(Tensor::from_vec(vec![1.0, 0.0]));
        let l = tape.pairwise_rank_loss(p, &t);
        // m_01 = −(1−0)(0−1) = 1 for both ordered pairs, / 4 pairs = 0.5.
        assert!((tape.value(l).item() - 0.5).abs() < 1e-6);
        tape.backward(l);
        let g = tape.grad(p).unwrap();
        // Gradient pushes p_0 down and p_1 up.
        assert!(g.data()[0] > 0.0 && g.data()[1] < 0.0);
    }

    #[test]
    fn rank_loss_grad_check() {
        let t = Tensor::from_vec(vec![0.05, -0.02, 0.08, 0.0]);
        let p0 = Tensor::from_vec(vec![0.3, 0.6, -0.1, 0.2]);
        check_gradient(&p0, 1e-4, 2e-2, move |tape, p| tape.pairwise_rank_loss(p, &t)).unwrap();
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let mut tape = Tape::new();
        let good = tape.leaf(Tensor::new([1, 3], vec![5.0, 0.0, 0.0]));
        let bad = tape.leaf(Tensor::new([1, 3], vec![0.0, 5.0, 0.0]));
        let lg = tape.cross_entropy(good, &[0]);
        let lb = tape.cross_entropy(bad, &[0]);
        assert!(tape.value(lg).item() < tape.value(lb).item());
    }

    #[test]
    fn cross_entropy_grad_check() {
        let l0 = Tensor::new([2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.3, -0.8]);
        check_gradient(&l0, 1e-3, 1e-2, move |tape, l| tape.cross_entropy(l, &[2, 0])).unwrap();
    }

    #[test]
    fn combined_loss_interpolates() {
        let t = Tensor::from_vec(vec![0.0, 1.0]);
        let run = |alpha: f32| {
            let mut tape = Tape::new();
            let p = tape.leaf(Tensor::from_vec(vec![1.0, 0.0]));
            let l = tape.combined_rank_loss(p, &t, alpha);
            tape.value(l).item()
        };
        let l0 = run(0.0);
        let l1 = run(1.0);
        assert!(l1 > l0, "adding rank loss increases the inverted-order loss");
        assert!((l1 - l0 - 0.5).abs() < 1e-5, "difference equals the rank term");
    }
}
