//! Dropout regularisers (inverted scaling, so inference needs no rescale).

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

impl Tape {
    /// Standard elementwise dropout with keep-probability `1 − p`. A no-op
    /// when `p == 0` (use that for evaluation).
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut StdRng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        if p == 0.0 {
            return x;
        }
        let shape = self.value(x).shape().clone();
        let scale = 1.0 / (1.0 - p);
        let mask = Tensor::new(
            shape,
            (0..self.value(x).numel())
                .map(|_| if rng.gen::<f32>() < p { 0.0 } else { scale })
                .collect(),
        );
        let m = self.constant(mask);
        self.mul(x, m)
    }

    /// Spatial dropout for `(B, C, L)` activations: drops whole channels
    /// (the same mask across the entire time axis), as used after each TCN
    /// layer in the paper (Section IV-C, citing Srivastava et al.).
    pub fn spatial_dropout(&mut self, x: Var, p: f32, rng: &mut StdRng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        let xv = self.value(x);
        assert_eq!(xv.rank(), 3, "spatial_dropout expects (B, C, L)");
        if p == 0.0 {
            return x;
        }
        let (b, c, l) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        let scale = 1.0 / (1.0 - p);
        let mut mask = Tensor::zeros([b, c, l]);
        for bi in 0..b {
            for ci in 0..c {
                let keep = if rng.gen::<f32>() < p { 0.0 } else { scale };
                let base = (bi * c + ci) * l;
                mask.data_mut()[base..base + l].fill(keep);
            }
        }
        let m = self.constant(mask);
        self.mul(x, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn p_zero_is_identity() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
        let y = tape.dropout(x, 0.0, &mut rng(0));
        assert_eq!(x, y, "p=0 should return the same var untouched");
    }

    #[test]
    fn expected_value_preserved() {
        let mut r = rng(11);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([10_000]));
        let y = tape.dropout(x, 0.3, &mut r);
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout keeps E[x], got {mean}");
    }

    #[test]
    fn spatial_dropout_kills_whole_channels() {
        let mut r = rng(5);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([4, 8, 6]));
        let y = tape.spatial_dropout(x, 0.5, &mut r);
        let yv = tape.value(y);
        for bi in 0..4 {
            for ci in 0..8 {
                let base = (bi * 8 + ci) * 6;
                let ch = &yv.data()[base..base + 6];
                let all_zero = ch.iter().all(|&v| v == 0.0);
                let all_scaled = ch.iter().all(|&v| (v - 2.0).abs() < 1e-6);
                assert!(all_zero || all_scaled, "channel must be dropped or kept whole");
            }
        }
    }

    #[test]
    fn gradient_masked_consistently() {
        let mut r = rng(7);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([64]));
        let y = tape.dropout(x, 0.5, &mut r);
        let s = tape.sum_all(y);
        tape.backward(s);
        let yv = tape.value(y).clone();
        let g = tape.grad(x).unwrap();
        for i in 0..64 {
            if yv.data()[i] == 0.0 {
                assert_eq!(g.data()[i], 0.0);
            } else {
                assert!((g.data()[i] - 2.0).abs() < 1e-6);
            }
        }
    }
}
