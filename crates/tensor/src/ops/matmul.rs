//! Differentiable matrix products and affine layers.

use crate::linalg;
use crate::tape::{Tape, Var};
use crate::telemetry_hooks::kernel_counter;
use crate::tensor::Tensor;

impl Tape {
    /// Differentiable matrix product `a (m×k) · b (k×n)`.
    ///
    /// Backward: `∂L/∂a = g · bᵀ`, `∂L/∂b = aᵀ · g`, computed with the
    /// transpose-free kernels in [`crate::linalg`].
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        kernel_counter(&CALLS, "tensor.matmul.calls").inc(1);
        let _t = rtgcn_telemetry::span("matmul");
        let out = linalg::matmul(self.value(a), self.value(b));
        self.push_op_named("matmul", out, vec![a, b], |ctx| {
            let ga = linalg::matmul_nt(ctx.grad, ctx.parents[1]);
            let gb = linalg::matmul_tn(ctx.parents[0], ctx.grad);
            vec![ga, gb]
        })
    }

    /// Affine layer `x·W + bias` where `x: (m×k)`, `w: (k×n)`,
    /// `bias: (n)` broadcast over rows.
    pub fn linear(&mut self, x: Var, w: Var, bias: Var) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        kernel_counter(&CALLS, "tensor.linear.calls").inc(1);
        let _t = rtgcn_telemetry::span("linear");
        let xv = self.value(x);
        let wv = self.value(w);
        let bv = self.value(bias);
        assert_eq!(bv.rank(), 1, "linear bias must be a vector");
        assert_eq!(bv.dims()[0], wv.dims()[1], "bias length must equal output width");
        let mut out = linalg::matmul(xv, wv);
        let n = bv.dims()[0];
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            *v += bv.data()[i % n];
        }
        self.push_op_named("linear", out, vec![x, w, bias], move |ctx| {
            let gx = linalg::matmul_nt(ctx.grad, ctx.parents[1]);
            let gw = linalg::matmul_tn(ctx.parents[0], ctx.grad);
            let mut gb = vec![0.0; n];
            for (i, &g) in ctx.grad.data().iter().enumerate() {
                gb[i % n] += g;
            }
            vec![gx, gw, Tensor::from_vec(gb)]
        })
    }

    /// Differentiable dot product of two equal-shaped tensors, yielding a
    /// scalar: `Σ_i a_i b_i`.
    pub fn dot(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape(), bv.shape(), "dot requires identical shapes");
        let out = Tensor::scalar(av.data().iter().zip(bv.data()).map(|(&x, &y)| x * y).sum());
        self.push_op_named("dot", out, vec![a, b], |ctx| {
            let g = ctx.grad.item();
            vec![ctx.parents[1].map(|v| v * g), ctx.parents[0].map(|v| v * g)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    #[test]
    fn matmul_forward() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let b = tape.leaf(Tensor::new([2, 2], vec![5., 6., 7., 8.]));
        let c = tape.matmul(a, b);
        assert_eq!(tape.value(c).data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_grad_check_both_sides() {
        let a0 = Tensor::new([3, 2], vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1]);
        let b0 = Tensor::new([2, 4], vec![1.0, 0.2, -0.3, 0.8, -0.5, 0.4, 0.9, -1.2]);
        let b_for_a = b0.clone();
        check_gradient(&a0, 1e-3, 1e-2, move |tape, a| {
            let b = tape.leaf(b_for_a.clone());
            let c = tape.matmul(a, b);
            tape.sum_all(c)
        })
        .unwrap();
        let a_for_b = a0;
        check_gradient(&b0, 1e-3, 1e-2, move |tape, b| {
            let a = tape.leaf(a_for_b.clone());
            let c = tape.matmul(a, b);
            tape.sum_all(c)
        })
        .unwrap();
    }

    #[test]
    fn linear_forward_and_bias_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 2], vec![1., 0., 0., 1.]));
        let w = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let b = tape.leaf(Tensor::from_vec(vec![0.1, 0.2, 0.3]));
        let y = tape.linear(x, w, b);
        assert!(tape
            .value(y)
            .allclose(&Tensor::new([2, 3], vec![1.1, 2.2, 3.3, 4.1, 5.2, 6.3]), 1e-5));
        let s = tape.sum_all(y);
        tape.backward(s);
        // bias gradient: one per output column summed over 2 rows.
        assert_eq!(tape.grad(b).unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn linear_grad_check_weight() {
        let w0 = Tensor::new([3, 2], vec![0.1, -0.4, 0.6, 0.2, -0.8, 0.5]);
        check_gradient(&w0, 1e-3, 1e-2, |tape, w| {
            let x = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., -1., 0.5, 2.]));
            let b = tape.leaf(Tensor::from_vec(vec![0.0, 0.1]));
            let y = tape.linear(x, w, b);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn dot_grad() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1., 2., 3.]));
        let b = tape.leaf(Tensor::from_vec(vec![4., 5., 6.]));
        let d = tape.dot(a, b);
        assert_eq!(tape.value(d).item(), 32.0);
        tape.backward(d);
        assert_eq!(tape.grad(a).unwrap().data(), &[4., 5., 6.]);
        assert_eq!(tape.grad(b).unwrap().data(), &[1., 2., 3.]);
    }
}
