//! Sparse (edge-list) differentiable ops — the kernels behind every graph
//! layer in the workspace: GCN propagation, the time-sensitive strategy's
//! per-edge weights, and GAT's per-destination attention softmax.
//!
//! Edges are `[src, dst]` pairs shared via `Arc` so backward closures don't
//! copy potentially large lists.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use std::sync::Arc;

/// A shared edge list over `n` nodes. Self-loops and duplicates are allowed
/// (self-loops are how GCN's `A + I` renormalisation is expressed).
#[derive(Clone, Debug)]
pub struct Edges {
    pub n: usize,
    pub pairs: Arc<Vec<[usize; 2]>>,
}

impl Edges {
    pub fn new(n: usize, pairs: Vec<[usize; 2]>) -> Self {
        for &[s, d] in &pairs {
            assert!(s < n && d < n, "edge ({s},{d}) out of bounds for {n} nodes");
        }
        Edges { n, pairs: Arc::new(pairs) }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl Tape {
    /// Sparse weighted aggregation: `out[d] += w_e · x[s]` over all edges
    /// `e = (s, d)`. `weights: (E)`, `x: (N, F)` → `(N, F)`.
    ///
    /// Gradients: `∂L/∂w_e = ⟨g[d], x[s]⟩` and `∂L/∂x[s] += w_e · g[d]`, so
    /// the op is differentiable w.r.t. both the adjacency weights (needed by
    /// the weighted and time-sensitive strategies) and the node features.
    pub fn spmm(&mut self, edges: &Edges, weights: Var, x: Var) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        crate::telemetry_hooks::kernel_counter(&CALLS, "tensor.spmm.calls").inc(1);
        let _t = rtgcn_telemetry::debug_span("tensor.spmm");
        let wv = self.value(weights);
        let xv = self.value(x);
        assert_eq!(wv.numel(), edges.len(), "one weight per edge required");
        assert_eq!(xv.rank(), 2, "spmm features must be (N, F)");
        assert_eq!(xv.dims()[0], edges.n, "feature rows must equal node count");
        let f = xv.dims()[1];
        let n = edges.n;
        let mut out = Tensor::zeros([n, f]);
        {
            let (od, wd, xd) = (out.data_mut(), wv.data(), xv.data());
            for (e, &[s, d]) in edges.pairs.iter().enumerate() {
                let w = wd[e];
                if w == 0.0 {
                    continue;
                }
                let src = &xd[s * f..(s + 1) * f];
                let dst = &mut od[d * f..(d + 1) * f];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += w * v;
                }
            }
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op(out, vec![weights, x], move |ctx| {
            let (wd, xd, g) = (ctx.parents[0].data(), ctx.parents[1].data(), ctx.grad.data());
            let mut gw = vec![0.0f32; wd.len()];
            let mut gx = vec![0.0f32; xd.len()];
            for (e, &[s, d]) in pairs.iter().enumerate() {
                let gdst = &g[d * f..(d + 1) * f];
                let src = &xd[s * f..(s + 1) * f];
                let mut acc = 0.0;
                for (&gv, &xv) in gdst.iter().zip(src) {
                    acc += gv * xv;
                }
                gw[e] = acc;
                let w = wd[e];
                if w != 0.0 {
                    let gsrc = &mut gx[s * f..(s + 1) * f];
                    for (o, &gv) in gsrc.iter_mut().zip(gdst) {
                        *o += w * gv;
                    }
                }
            }
            vec![
                Tensor::new(ctx.parents[0].shape().clone(), gw),
                Tensor::new(ctx.parents[1].shape().clone(), gx),
            ]
        })
    }

    /// Per-edge scaled dot product: `y_e = ⟨x[s], x[d]⟩ / scale` — the
    /// *time-correlation* term of the time-sensitive strategy (Eq. 5, where
    /// `scale = √n` with `n` the feature dimension).
    pub fn edge_dot(&mut self, edges: &Edges, x: Var, scale: f32) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.rank(), 2, "edge_dot features must be (N, F)");
        assert_eq!(xv.dims()[0], edges.n, "feature rows must equal node count");
        assert!(scale > 0.0, "edge_dot scale must be positive");
        let f = xv.dims()[1];
        let inv = 1.0 / scale;
        let mut out = Vec::with_capacity(edges.len());
        {
            let xd = xv.data();
            for &[s, d] in edges.pairs.iter() {
                let a = &xd[s * f..(s + 1) * f];
                let b = &xd[d * f..(d + 1) * f];
                out.push(a.iter().zip(b).map(|(&u, &v)| u * v).sum::<f32>() * inv);
            }
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op(Tensor::from_vec(out), vec![x], move |ctx| {
            let (xd, g) = (ctx.parents[0].data(), ctx.grad.data());
            let mut gx = vec![0.0f32; xd.len()];
            for (e, &[s, d]) in pairs.iter().enumerate() {
                let ge = g[e] * inv;
                if ge == 0.0 {
                    continue;
                }
                for j in 0..f {
                    gx[s * f + j] += ge * xd[d * f + j];
                    gx[d * f + j] += ge * xd[s * f + j];
                }
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// Softmax over the incoming edges of each destination node (numerically
    /// stable). Used by GAT-style attention: `α_e = softmax_{e'∈in(d)}(y_e)`.
    pub fn segment_softmax(&mut self, edges: &Edges, logits: Var) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.numel(), edges.len(), "one logit per edge required");
        let n = edges.n;
        let ld = lv.data();
        let mut max = vec![f32::NEG_INFINITY; n];
        for (e, &[_, d]) in edges.pairs.iter().enumerate() {
            max[d] = max[d].max(ld[e]);
        }
        let mut z = vec![0.0f32; n];
        let mut exp = vec![0.0f32; edges.len()];
        for (e, &[_, d]) in edges.pairs.iter().enumerate() {
            let v = (ld[e] - max[d]).exp();
            exp[e] = v;
            z[d] += v;
        }
        for (e, &[_, d]) in edges.pairs.iter().enumerate() {
            exp[e] /= z[d].max(1e-12);
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op(Tensor::from_vec(exp), vec![logits], move |ctx| {
            // Same Jacobian as row softmax, per destination group:
            // dx_e = y_e (g_e − Σ_{e'∈in(d)} g_{e'} y_{e'}).
            let (yd, g) = (ctx.output.data(), ctx.grad.data());
            let mut dot = vec![0.0f32; n];
            for (e, &[_, d]) in pairs.iter().enumerate() {
                dot[d] += g[e] * yd[e];
            }
            let mut gx = vec![0.0f32; yd.len()];
            for (e, &[_, d]) in pairs.iter().enumerate() {
                gx[e] = yd[e] * (g[e] - dot[d]);
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// Gather per-edge values from a per-node vector at the edge sources:
    /// `y_e = v[src_e]`. Gradient scatter-adds. Convenience for degree
    /// normalisation terms.
    pub fn gather_src(&mut self, edges: &Edges, v: Var) -> Var {
        self.gather_endpoint(edges, v, 0)
    }

    /// As [`Tape::gather_src`] but at edge destinations.
    pub fn gather_dst(&mut self, edges: &Edges, v: Var) -> Var {
        self.gather_endpoint(edges, v, 1)
    }

    fn gather_endpoint(&mut self, edges: &Edges, v: Var, which: usize) -> Var {
        let vv = self.value(v);
        assert_eq!(vv.numel(), edges.n, "per-node vector length mismatch");
        let vd = vv.data();
        let out: Vec<f32> = edges.pairs.iter().map(|p| vd[p[which]]).collect();
        let pairs = Arc::clone(&edges.pairs);
        self.push_op(Tensor::from_vec(out), vec![v], move |ctx| {
            let mut gv = vec![0.0f32; ctx.parents[0].numel()];
            for (e, p) in pairs.iter().enumerate() {
                gv[p[which]] += ctx.grad.data()[e];
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gv)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    fn path_edges() -> Edges {
        // 0 -> 1 -> 2 plus self loops.
        Edges::new(3, vec![[0, 1], [1, 2], [0, 0], [1, 1], [2, 2]])
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        // spmm with edges of a dense matrix == A·X.
        let a = Tensor::new([3, 3], vec![0.5, 0.2, 0.0, 0.1, 0.0, 0.7, 0.0, 0.3, 0.9]);
        let x = Tensor::new([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let mut pairs = Vec::new();
        let mut weights = Vec::new();
        for d in 0..3 {
            for s in 0..3 {
                if a.at(&[d, s]) != 0.0 {
                    pairs.push([s, d]);
                    weights.push(a.at(&[d, s]));
                }
            }
        }
        let edges = Edges::new(3, pairs);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::from_vec(weights));
        let xv = tape.leaf(x.clone());
        let y = tape.spmm(&edges, w, xv);
        let expect = crate::linalg::matmul(&a, &x);
        assert!(tape.value(y).allclose(&expect, 1e-5));
    }

    #[test]
    fn spmm_grad_check_weights_and_features() {
        let edges = path_edges();
        let x0 = Tensor::new([3, 2], vec![0.4, -0.8, 1.2, 0.3, -0.5, 0.9]);
        let w0 = Tensor::from_vec(vec![0.7, -0.2, 1.0, 0.5, 0.3]);
        let (e1, x1) = (edges.clone(), x0.clone());
        check_gradient(&w0, 1e-3, 1e-2, move |tape, w| {
            let x = tape.leaf(x1.clone());
            let y = tape.spmm(&e1, w, x);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
        let (e2, w2) = (edges, w0);
        check_gradient(&x0, 1e-3, 1e-2, move |tape, x| {
            let w = tape.leaf(w2.clone());
            let y = tape.spmm(&e2, w, x);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn edge_dot_values() {
        let edges = Edges::new(2, vec![[0, 1]]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let y = tape.edge_dot(&edges, x, 2.0f32.sqrt());
        let expect = (1.0 * 3.0 + 2.0 * 4.0) / 2.0f32.sqrt();
        assert!((tape.value(y).data()[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn edge_dot_grad_check_including_self_loop() {
        let edges = Edges::new(3, vec![[0, 1], [2, 2], [1, 0]]);
        let x0 = Tensor::new([3, 2], vec![0.3, -0.6, 0.9, 0.2, -0.4, 1.1]);
        check_gradient(&x0, 1e-3, 2e-2, move |tape, x| {
            let y = tape.edge_dot(&edges, x, 1.5);
            let w = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 0.5]));
            let p = tape.mul(y, w);
            tape.sum_all(p)
        })
        .unwrap();
    }

    #[test]
    fn segment_softmax_sums_to_one_per_destination() {
        let edges = Edges::new(3, vec![[0, 2], [1, 2], [2, 2], [0, 1], [1, 1]]);
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 1.0]));
        let y = tape.segment_softmax(&edges, logits);
        let yd = tape.value(y).data();
        assert!((yd[0] + yd[1] + yd[2] - 1.0).abs() < 1e-5, "dst 2 normalises");
        assert!((yd[3] + yd[4] - 1.0).abs() < 1e-5, "dst 1 normalises");
        assert!(yd[2] > yd[1] && yd[1] > yd[0], "order preserved");
    }

    #[test]
    fn segment_softmax_grad_check() {
        let edges = Edges::new(3, vec![[0, 2], [1, 2], [2, 2], [0, 1], [1, 1]]);
        let l0 = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, -0.9]);
        check_gradient(&l0, 1e-3, 1e-2, move |tape, l| {
            let y = tape.segment_softmax(&edges, l);
            let w = tape.leaf(Tensor::from_vec(vec![2.0, -1.0, 0.5, 1.5, 3.0]));
            let p = tape.mul(y, w);
            tape.sum_all(p)
        })
        .unwrap();
    }

    #[test]
    fn gather_src_dst() {
        let edges = Edges::new(3, vec![[0, 1], [2, 0]]);
        let mut tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(vec![10., 20., 30.]));
        let s = tape.gather_src(&edges, v);
        let d = tape.gather_dst(&edges, v);
        assert_eq!(tape.value(s).data(), &[10., 30.]);
        assert_eq!(tape.value(d).data(), &[20., 10.]);
        let sum = tape.add(s, d);
        let total = tape.sum_all(sum);
        tape.backward(total);
        // node 0: src of e0 + dst of e1 -> 2; node 1: dst of e0 -> 1; node 2: src of e1 -> 1.
        assert_eq!(tape.grad(v).unwrap().data(), &[2., 1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edges_bounds_checked() {
        let _ = Edges::new(2, vec![[0, 2]]);
    }
}
