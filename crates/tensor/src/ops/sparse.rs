//! Sparse (edge-list) differentiable ops — the kernels behind every graph
//! layer in the workspace: GCN propagation, the time-sensitive strategy's
//! per-edge weights, and GAT's per-destination attention softmax.
//!
//! Edges are `[src, dst]` pairs shared via `Arc` so backward closures don't
//! copy potentially large lists.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use std::sync::Arc;

/// A shared edge list over `n` nodes. Self-loops and duplicates are allowed
/// (self-loops are how GCN's `A + I` renormalisation is expressed).
#[derive(Clone, Debug)]
pub struct Edges {
    pub n: usize,
    pub pairs: Arc<Vec<[usize; 2]>>,
}

impl Edges {
    pub fn new(n: usize, pairs: Vec<[usize; 2]>) -> Self {
        for &[s, d] in &pairs {
            assert!(s < n && d < n, "edge ({s},{d}) out of bounds for {n} nodes");
        }
        Edges { n, pairs: Arc::new(pairs) }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// [`Edges`] plus CSR-style groupings of the edge ids by destination and by
/// source, built once and shared via `Arc`.
///
/// Grouping is *stable*: within one destination (or source) the edge ids keep
/// their original edge-list order, so a kernel that walks a CSR row performs
/// the exact same f32 additions, in the exact same order, as the edge-list
/// loop in [`Tape::spmm`] — the fused path is bit-identical per output
/// element, which is what makes tight fused-vs-serial parity tests possible.
#[derive(Clone, Debug)]
pub struct CsrEdges {
    pub edges: Edges,
    /// `dst_ptr[d]..dst_ptr[d+1]` indexes `dst_idx`, the edge ids whose
    /// destination is `d` (forward propagation gathers over these).
    dst_ptr: Arc<Vec<usize>>,
    dst_idx: Arc<Vec<usize>>,
    /// Same layout keyed by source (backward feature-gradient scatter).
    src_ptr: Arc<Vec<usize>>,
    src_idx: Arc<Vec<usize>>,
}

/// Stable counting-sort of edge ids by one endpoint (`which`: 0 = src,
/// 1 = dst). Returns `(ptr, idx)` with `ptr.len() == n + 1`.
fn group_by_endpoint(n: usize, pairs: &[[usize; 2]], which: usize) -> (Vec<usize>, Vec<usize>) {
    let mut ptr = vec![0usize; n + 1];
    for p in pairs {
        ptr[p[which] + 1] += 1;
    }
    for i in 0..n {
        ptr[i + 1] += ptr[i];
    }
    let mut pos = ptr.clone();
    let mut idx = vec![0usize; pairs.len()];
    for (e, p) in pairs.iter().enumerate() {
        idx[pos[p[which]]] = e;
        pos[p[which]] += 1;
    }
    (ptr, idx)
}

impl CsrEdges {
    pub fn new(edges: Edges) -> Self {
        let (dst_ptr, dst_idx) = group_by_endpoint(edges.n, &edges.pairs, 1);
        let (src_ptr, src_idx) = group_by_endpoint(edges.n, &edges.pairs, 0);
        CsrEdges {
            edges,
            dst_ptr: Arc::new(dst_ptr),
            dst_idx: Arc::new(dst_idx),
            src_ptr: Arc::new(src_ptr),
            src_idx: Arc::new(src_idx),
        }
    }

    pub fn from_pairs(n: usize, pairs: Vec<[usize; 2]>) -> Self {
        Self::new(Edges::new(n, pairs))
    }

    pub fn n(&self) -> usize {
        self.edges.n
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edge ids arriving at destination node `d`, in original edge order.
    fn in_edges(&self, d: usize) -> &[usize] {
        &self.dst_idx[self.dst_ptr[d]..self.dst_ptr[d + 1]]
    }

    /// Edge ids leaving source node `s`, in original edge order.
    fn out_edges(&self, s: usize) -> &[usize] {
        &self.src_idx[self.src_ptr[s]..self.src_ptr[s + 1]]
    }
}

/// Forward kernel shared by [`Tape::spmm_csr`] and [`Tape::spmm_batched`]:
/// `out[p, d] += w[p?, e] · x[p, s]` with the weight plane shared when
/// `plane_stride == 0`. Parallel over `planes × destination` rows; each
/// output row is owned by exactly one iteration, so rows can be split across
/// threads without synchronisation.
fn spmm_csr_forward(
    csr: &CsrEdges,
    wd: &[f32],
    plane_stride: usize,
    xd: &[f32],
    planes: usize,
    f: usize,
    out: &mut [f32],
) {
    let n = csr.n();
    let work = planes * csr.len() * f;
    crate::linalg::par_rows(planes * n, work, out, f, |r, row| {
        let (p, d) = (r / n, r % n);
        let woff = p * plane_stride;
        for &e in csr.in_edges(d) {
            let w = wd[woff + e];
            if w == 0.0 {
                continue;
            }
            let s = csr.edges.pairs[e][0];
            let src = &xd[(p * n + s) * f..(p * n + s + 1) * f];
            for (o, &v) in row.iter_mut().zip(src) {
                *o += w * v;
            }
        }
    });
}

/// Backward kernel for the CSR propagation: weight gradients
/// `gw[p?, e] = Σ ⟨g[p, d], x[p, s]⟩` (summed over planes when the weight is
/// shared) and feature gradients `gx[p, s] = Σ_{e ∈ out(s)} w[p?, e] · g[p, d]`
/// via the source-grouped layout. Both loops are parallel over disjoint
/// output rows.
fn spmm_csr_backward(
    csr: &CsrEdges,
    wd: &[f32],
    plane_stride: usize,
    xd: &[f32],
    gd: &[f32],
    planes: usize,
    f: usize,
) -> (Vec<f32>, Vec<f32>) {
    let n = csr.n();
    let e_count = csr.len();
    let pairs = &csr.edges.pairs;
    let work = planes * e_count * f;
    let mut gw = vec![0.0f32; wd.len()];
    if plane_stride == 0 {
        // Shared weights: one row per edge, planes accumulated inside.
        crate::linalg::par_rows(e_count, work, &mut gw, 1, |e, out| {
            let [s, d] = pairs[e];
            let mut acc = 0.0f32;
            for p in 0..planes {
                let gdst = &gd[(p * n + d) * f..(p * n + d + 1) * f];
                let src = &xd[(p * n + s) * f..(p * n + s + 1) * f];
                for (&gv, &xv) in gdst.iter().zip(src) {
                    acc += gv * xv;
                }
            }
            out[0] = acc;
        });
    } else {
        crate::linalg::par_rows(planes * e_count, work, &mut gw, 1, |r, out| {
            let (p, e) = (r / e_count, r % e_count);
            let [s, d] = pairs[e];
            let gdst = &gd[(p * n + d) * f..(p * n + d + 1) * f];
            let src = &xd[(p * n + s) * f..(p * n + s + 1) * f];
            let mut acc = 0.0f32;
            for (&gv, &xv) in gdst.iter().zip(src) {
                acc += gv * xv;
            }
            out[0] = acc;
        });
    }
    let mut gx = vec![0.0f32; xd.len()];
    crate::linalg::par_rows(planes * n, work, &mut gx, f, |r, row| {
        let (p, s) = (r / n, r % n);
        let woff = p * plane_stride;
        for &e in csr.out_edges(s) {
            let w = wd[woff + e];
            if w == 0.0 {
                continue;
            }
            let d = pairs[e][1];
            let gdst = &gd[(p * n + d) * f..(p * n + d + 1) * f];
            for (o, &gv) in row.iter_mut().zip(gdst) {
                *o += w * gv;
            }
        }
    });
    (gw, gx)
}

impl Tape {
    /// Sparse weighted aggregation: `out[d] += w_e · x[s]` over all edges
    /// `e = (s, d)`. `weights: (E)`, `x: (N, F)` → `(N, F)`.
    ///
    /// Gradients: `∂L/∂w_e = ⟨g[d], x[s]⟩` and `∂L/∂x[s] += w_e · g[d]`, so
    /// the op is differentiable w.r.t. both the adjacency weights (needed by
    /// the weighted and time-sensitive strategies) and the node features.
    pub fn spmm(&mut self, edges: &Edges, weights: Var, x: Var) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        crate::telemetry_hooks::kernel_counter(&CALLS, "tensor.spmm.calls").inc(1);
        // Summary-level with a short stable leaf name: hot kernels must land
        // under stable span paths (`…/relational/spmm`) so profiles and the
        // span-level regression attribution can name them.
        let _t = rtgcn_telemetry::span("spmm");
        let wv = self.value(weights);
        let xv = self.value(x);
        assert_eq!(wv.numel(), edges.len(), "one weight per edge required");
        assert_eq!(xv.rank(), 2, "spmm features must be (N, F)");
        assert_eq!(xv.dims()[0], edges.n, "feature rows must equal node count");
        let f = xv.dims()[1];
        let n = edges.n;
        let mut out = Tensor::zeros([n, f]);
        {
            let (od, wd, xd) = (out.data_mut(), wv.data(), xv.data());
            for (e, &[s, d]) in edges.pairs.iter().enumerate() {
                let w = wd[e];
                if w == 0.0 {
                    continue;
                }
                let src = &xd[s * f..(s + 1) * f];
                let dst = &mut od[d * f..(d + 1) * f];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o += w * v;
                }
            }
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("spmm", out, vec![weights, x], move |ctx| {
            let (wd, xd, g) = (ctx.parents[0].data(), ctx.parents[1].data(), ctx.grad.data());
            let mut gw = vec![0.0f32; wd.len()];
            let mut gx = vec![0.0f32; xd.len()];
            for (e, &[s, d]) in pairs.iter().enumerate() {
                let gdst = &g[d * f..(d + 1) * f];
                let src = &xd[s * f..(s + 1) * f];
                let mut acc = 0.0;
                for (&gv, &xv) in gdst.iter().zip(src) {
                    acc += gv * xv;
                }
                gw[e] = acc;
                let w = wd[e];
                if w != 0.0 {
                    let gsrc = &mut gx[s * f..(s + 1) * f];
                    for (o, &gv) in gsrc.iter_mut().zip(gdst) {
                        *o += w * gv;
                    }
                }
            }
            vec![
                Tensor::new(ctx.parents[0].shape().clone(), gw),
                Tensor::new(ctx.parents[1].shape().clone(), gx),
            ]
        })
    }

    /// Per-edge scaled dot product: `y_e = ⟨x[s], x[d]⟩ / scale` — the
    /// *time-correlation* term of the time-sensitive strategy (Eq. 5, where
    /// `scale = √n` with `n` the feature dimension).
    pub fn edge_dot(&mut self, edges: &Edges, x: Var, scale: f32) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.rank(), 2, "edge_dot features must be (N, F)");
        assert_eq!(xv.dims()[0], edges.n, "feature rows must equal node count");
        assert!(scale > 0.0, "edge_dot scale must be positive");
        let f = xv.dims()[1];
        let inv = 1.0 / scale;
        let mut out = Vec::with_capacity(edges.len());
        {
            let xd = xv.data();
            for &[s, d] in edges.pairs.iter() {
                let a = &xd[s * f..(s + 1) * f];
                let b = &xd[d * f..(d + 1) * f];
                out.push(a.iter().zip(b).map(|(&u, &v)| u * v).sum::<f32>() * inv);
            }
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("edge_dot", Tensor::from_vec(out), vec![x], move |ctx| {
            let (xd, g) = (ctx.parents[0].data(), ctx.grad.data());
            let mut gx = vec![0.0f32; xd.len()];
            for (e, &[s, d]) in pairs.iter().enumerate() {
                let ge = g[e] * inv;
                if ge == 0.0 {
                    continue;
                }
                for j in 0..f {
                    gx[s * f + j] += ge * xd[d * f + j];
                    gx[d * f + j] += ge * xd[s * f + j];
                }
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// Softmax over the incoming edges of each destination node (numerically
    /// stable). Used by GAT-style attention: `α_e = softmax_{e'∈in(d)}(y_e)`.
    pub fn segment_softmax(&mut self, edges: &Edges, logits: Var) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.numel(), edges.len(), "one logit per edge required");
        let n = edges.n;
        let ld = lv.data();
        let mut max = vec![f32::NEG_INFINITY; n];
        for (e, &[_, d]) in edges.pairs.iter().enumerate() {
            max[d] = max[d].max(ld[e]);
        }
        let mut z = vec![0.0f32; n];
        let mut exp = vec![0.0f32; edges.len()];
        for (e, &[_, d]) in edges.pairs.iter().enumerate() {
            let v = (ld[e] - max[d]).exp();
            exp[e] = v;
            z[d] += v;
        }
        for (e, &[_, d]) in edges.pairs.iter().enumerate() {
            exp[e] /= z[d].max(1e-12);
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("segment_softmax", Tensor::from_vec(exp), vec![logits], move |ctx| {
            // Same Jacobian as row softmax, per destination group:
            // dx_e = y_e (g_e − Σ_{e'∈in(d)} g_{e'} y_{e'}).
            let (yd, g) = (ctx.output.data(), ctx.grad.data());
            let mut dot = vec![0.0f32; n];
            for (e, &[_, d]) in pairs.iter().enumerate() {
                dot[d] += g[e] * yd[e];
            }
            let mut gx = vec![0.0f32; yd.len()];
            for (e, &[_, d]) in pairs.iter().enumerate() {
                gx[e] = yd[e] * (g[e] - dot[d]);
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// Gather per-edge values from a per-node vector at the edge sources:
    /// `y_e = v[src_e]`. Gradient scatter-adds. Convenience for degree
    /// normalisation terms.
    pub fn gather_src(&mut self, edges: &Edges, v: Var) -> Var {
        self.gather_endpoint(edges, v, 0)
    }

    /// As [`Tape::gather_src`] but at edge destinations.
    pub fn gather_dst(&mut self, edges: &Edges, v: Var) -> Var {
        self.gather_endpoint(edges, v, 1)
    }

    fn gather_endpoint(&mut self, edges: &Edges, v: Var, which: usize) -> Var {
        let vv = self.value(v);
        assert_eq!(vv.numel(), edges.n, "per-node vector length mismatch");
        let vd = vv.data();
        let out: Vec<f32> = edges.pairs.iter().map(|p| vd[p[which]]).collect();
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("gather_edge", Tensor::from_vec(out), vec![v], move |ctx| {
            let mut gv = vec![0.0f32; ctx.parents[0].numel()];
            for (e, p) in pairs.iter().enumerate() {
                gv[p[which]] += ctx.grad.data()[e];
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gv)]
        })
    }

    /// [`Tape::spmm`] on a pre-grouped [`CsrEdges`]: same contract
    /// (`weights: (E)`, `x: (N, F)` → `(N, F)`), same math, but the forward
    /// gather and both gradient scatters walk the CSR rows, which are
    /// disjoint per output element and therefore thread-parallel. The stable
    /// grouping keeps every per-element accumulation order identical to the
    /// edge-list loop, so results are bit-equal to [`Tape::spmm`].
    pub fn spmm_csr(&mut self, csr: &CsrEdges, weights: Var, x: Var) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        crate::telemetry_hooks::kernel_counter(&CALLS, "tensor.spmm_csr.calls").inc(1);
        let _t = rtgcn_telemetry::span("spmm_csr");
        // Seeded slowdown for the perf gate: proves a kernel regression is
        // both caught by the threshold diff and attributed to this span.
        let canary = rtgcn_telemetry::perf_canary_ns();
        if canary > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(canary));
        }
        let wv = self.value(weights);
        let xv = self.value(x);
        assert_eq!(wv.numel(), csr.len(), "one weight per edge required");
        assert_eq!(xv.rank(), 2, "spmm_csr features must be (N, F)");
        assert_eq!(xv.dims()[0], csr.n(), "feature rows must equal node count");
        let (n, f) = (csr.n(), xv.dims()[1]);
        let mut out = Tensor::zeros([n, f]);
        spmm_csr_forward(csr, wv.data(), 0, xv.data(), 1, f, out.data_mut());
        let csr = csr.clone();
        self.push_op_named("spmm_csr", out, vec![weights, x], move |ctx| {
            let (wd, xd, gd) = (ctx.parents[0].data(), ctx.parents[1].data(), ctx.grad.data());
            let (gw, gx) = spmm_csr_backward(&csr, wd, 0, xd, gd, 1, f);
            vec![
                Tensor::new(ctx.parents[0].shape().clone(), gw),
                Tensor::new(ctx.parents[1].shape().clone(), gx),
            ]
        })
    }

    /// Time-batched propagation — the fused kernel behind the RT-GCN forward
    /// pass: one op aggregates all `P` time planes at once instead of `P`
    /// separate [`Tape::spmm`] nodes.
    ///
    /// `x: (P, N, F)`; `weights` is either `(E)` (one adjacency shared by
    /// every plane — Uniform/Weighted strategies) or `(P, E)` (per-plane
    /// adjacency — TimeSensitive). Returns `(P, N, F)`. Gradients flow to
    /// both operands; for shared weights the per-plane weight gradients are
    /// summed over `P`.
    pub fn spmm_batched(&mut self, csr: &CsrEdges, weights: Var, x: Var) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        crate::telemetry_hooks::kernel_counter(&CALLS, "tensor.spmm_batched.calls").inc(1);
        let _t = rtgcn_telemetry::span("spmm_batched");
        let wv = self.value(weights);
        let xv = self.value(x);
        assert_eq!(xv.rank(), 3, "spmm_batched features must be (P, N, F)");
        let (p, n, f) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        assert_eq!(n, csr.n(), "feature rows must equal node count");
        let plane_stride = match wv.rank() {
            1 => {
                assert_eq!(wv.numel(), csr.len(), "one weight per edge required");
                0
            }
            2 => {
                assert_eq!(
                    wv.dims(),
                    &[p, csr.len()][..],
                    "per-plane weights must be (P, E)"
                );
                csr.len()
            }
            // lint:allow(panic-free-hot-paths) weight rank is fixed by the two call sites; anything else is a programming error
            r => panic!("spmm_batched weights must be (E) or (P, E), got rank {r}"),
        };
        let mut out = Tensor::zeros([p, n, f]);
        spmm_csr_forward(csr, wv.data(), plane_stride, xv.data(), p, f, out.data_mut());
        let csr = csr.clone();
        self.push_op_named("spmm_batched", out, vec![weights, x], move |ctx| {
            let (wd, xd, gd) = (ctx.parents[0].data(), ctx.parents[1].data(), ctx.grad.data());
            let (gw, gx) = spmm_csr_backward(&csr, wd, plane_stride, xd, gd, p, f);
            vec![
                Tensor::new(ctx.parents[0].shape().clone(), gw),
                Tensor::new(ctx.parents[1].shape().clone(), gx),
            ]
        })
    }

    /// Time-batched [`Tape::edge_dot`]: `y[p, e] = ⟨x[p, s], x[p, d]⟩ / scale`
    /// for all planes at once. `x: (P, N, F)` → `(P, E)`. One op replaces `P`
    /// per-plane nodes when the time-sensitive strategy recomputes its
    /// `XᵀX/√n` correlation factor each step.
    pub fn edge_dot_batched(&mut self, edges: &Edges, x: Var, scale: f32) -> Var {
        static CALLS: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
        crate::telemetry_hooks::kernel_counter(&CALLS, "tensor.edge_dot_batched.calls").inc(1);
        let xv = self.value(x);
        assert_eq!(xv.rank(), 3, "edge_dot_batched features must be (P, N, F)");
        assert!(scale > 0.0, "edge_dot_batched scale must be positive");
        let (p, n, f) = (xv.dims()[0], xv.dims()[1], xv.dims()[2]);
        assert_eq!(n, edges.n, "feature rows must equal node count");
        let e_count = edges.len();
        let inv = 1.0 / scale;
        let mut out = Tensor::zeros([p, e_count]);
        {
            let xd = xv.data();
            let od = out.data_mut();
            let pairs = &edges.pairs;
            crate::linalg::par_rows(p, p * e_count * f, od, e_count, |pi, row| {
                let plane = &xd[pi * n * f..(pi + 1) * n * f];
                for (e, &[s, d]) in pairs.iter().enumerate() {
                    let a = &plane[s * f..(s + 1) * f];
                    let b = &plane[d * f..(d + 1) * f];
                    row[e] = a.iter().zip(b).map(|(&u, &v)| u * v).sum::<f32>() * inv;
                }
            });
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("edge_dot_batched", out, vec![x], move |ctx| {
            let (xd, gd) = (ctx.parents[0].data(), ctx.grad.data());
            let mut gx = vec![0.0f32; xd.len()];
            crate::linalg::par_rows(p, p * e_count * f, &mut gx, n * f, |pi, grow| {
                let plane = &xd[pi * n * f..(pi + 1) * n * f];
                let g = &gd[pi * e_count..(pi + 1) * e_count];
                for (e, &[s, d]) in pairs.iter().enumerate() {
                    let ge = g[e] * inv;
                    if ge == 0.0 {
                        continue;
                    }
                    for j in 0..f {
                        grow[s * f + j] += ge * plane[d * f + j];
                        grow[d * f + j] += ge * plane[s * f + j];
                    }
                }
            });
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }

    /// Per-plane [`Tape::gather_src`]: `y[p, e] = v[p, src_e]` for
    /// `v: (P, N)` → `(P, E)`.
    pub fn gather_src_batched(&mut self, edges: &Edges, v: Var) -> Var {
        self.gather_endpoint_batched(edges, v, 0)
    }

    /// Per-plane [`Tape::gather_dst`]: `y[p, e] = v[p, dst_e]`.
    pub fn gather_dst_batched(&mut self, edges: &Edges, v: Var) -> Var {
        self.gather_endpoint_batched(edges, v, 1)
    }

    fn gather_endpoint_batched(&mut self, edges: &Edges, v: Var, which: usize) -> Var {
        let vv = self.value(v);
        assert_eq!(vv.rank(), 2, "batched gather expects (P, N)");
        let (p, n) = (vv.dims()[0], vv.dims()[1]);
        assert_eq!(n, edges.n, "per-node vector length mismatch");
        let e_count = edges.len();
        let vd = vv.data();
        let mut out = Vec::with_capacity(p * e_count);
        for pi in 0..p {
            let plane = &vd[pi * n..(pi + 1) * n];
            out.extend(edges.pairs.iter().map(|pair| plane[pair[which]]));
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("gather_edge_batched", Tensor::new([p, e_count], out), vec![v], move |ctx| {
            let gd = ctx.grad.data();
            let mut gv = vec![0.0f32; ctx.parents[0].numel()];
            for pi in 0..p {
                let g = &gd[pi * e_count..(pi + 1) * e_count];
                let grow = &mut gv[pi * n..(pi + 1) * n];
                for (e, pair) in pairs.iter().enumerate() {
                    grow[pair[which]] += g[e];
                }
            }
            vec![Tensor::new(ctx.parents[0].shape().clone(), gv)]
        })
    }

    /// Per-plane [`Tape::segment_softmax`]: normalises the incoming-edge
    /// logits of every destination node independently within each plane.
    /// `logits: (P, E)` → `(P, E)`. Used by the batched GAT attention.
    pub fn segment_softmax_batched(&mut self, edges: &Edges, logits: Var) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.rank(), 2, "batched segment softmax expects (P, E)");
        let (p, e_count) = (lv.dims()[0], lv.dims()[1]);
        assert_eq!(e_count, edges.len(), "one logit per edge required");
        let n = edges.n;
        let mut out = Tensor::zeros([p, e_count]);
        {
            let ld = lv.data();
            let od = out.data_mut();
            let pairs = &edges.pairs;
            crate::linalg::par_rows(p, p * e_count * 4, od, e_count, |pi, row| {
                let l = &ld[pi * e_count..(pi + 1) * e_count];
                let mut max = vec![f32::NEG_INFINITY; n];
                for (e, &[_, d]) in pairs.iter().enumerate() {
                    max[d] = max[d].max(l[e]);
                }
                let mut z = vec![0.0f32; n];
                for (e, &[_, d]) in pairs.iter().enumerate() {
                    let v = (l[e] - max[d]).exp();
                    row[e] = v;
                    z[d] += v;
                }
                for (e, &[_, d]) in pairs.iter().enumerate() {
                    row[e] /= z[d].max(1e-12);
                }
            });
        }
        let pairs = Arc::clone(&edges.pairs);
        self.push_op_named("segment_softmax_batched", out, vec![logits], move |ctx| {
            let (yd, gd) = (ctx.output.data(), ctx.grad.data());
            let mut gx = vec![0.0f32; yd.len()];
            crate::linalg::par_rows(p, p * e_count * 4, &mut gx, e_count, |pi, grow| {
                let y = &yd[pi * e_count..(pi + 1) * e_count];
                let g = &gd[pi * e_count..(pi + 1) * e_count];
                let mut dot = vec![0.0f32; n];
                for (e, &[_, d]) in pairs.iter().enumerate() {
                    dot[d] += g[e] * y[e];
                }
                for (e, &[_, d]) in pairs.iter().enumerate() {
                    grow[e] = y[e] * (g[e] - dot[d]);
                }
            });
            vec![Tensor::new(ctx.parents[0].shape().clone(), gx)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    fn path_edges() -> Edges {
        // 0 -> 1 -> 2 plus self loops.
        Edges::new(3, vec![[0, 1], [1, 2], [0, 0], [1, 1], [2, 2]])
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        // spmm with edges of a dense matrix == A·X.
        let a = Tensor::new([3, 3], vec![0.5, 0.2, 0.0, 0.1, 0.0, 0.7, 0.0, 0.3, 0.9]);
        let x = Tensor::new([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let mut pairs = Vec::new();
        let mut weights = Vec::new();
        for d in 0..3 {
            for s in 0..3 {
                if a.at(&[d, s]) != 0.0 {
                    pairs.push([s, d]);
                    weights.push(a.at(&[d, s]));
                }
            }
        }
        let edges = Edges::new(3, pairs);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::from_vec(weights));
        let xv = tape.leaf(x.clone());
        let y = tape.spmm(&edges, w, xv);
        let expect = crate::linalg::matmul(&a, &x);
        assert!(tape.value(y).allclose(&expect, 1e-5));
    }

    #[test]
    fn spmm_grad_check_weights_and_features() {
        let edges = path_edges();
        let x0 = Tensor::new([3, 2], vec![0.4, -0.8, 1.2, 0.3, -0.5, 0.9]);
        let w0 = Tensor::from_vec(vec![0.7, -0.2, 1.0, 0.5, 0.3]);
        let (e1, x1) = (edges.clone(), x0.clone());
        check_gradient(&w0, 1e-3, 1e-2, move |tape, w| {
            let x = tape.leaf(x1.clone());
            let y = tape.spmm(&e1, w, x);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
        let (e2, w2) = (edges, w0);
        check_gradient(&x0, 1e-3, 1e-2, move |tape, x| {
            let w = tape.leaf(w2.clone());
            let y = tape.spmm(&e2, w, x);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn edge_dot_values() {
        let edges = Edges::new(2, vec![[0, 1]]);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let y = tape.edge_dot(&edges, x, 2.0f32.sqrt());
        let expect = (1.0 * 3.0 + 2.0 * 4.0) / 2.0f32.sqrt();
        assert!((tape.value(y).data()[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn edge_dot_grad_check_including_self_loop() {
        let edges = Edges::new(3, vec![[0, 1], [2, 2], [1, 0]]);
        let x0 = Tensor::new([3, 2], vec![0.3, -0.6, 0.9, 0.2, -0.4, 1.1]);
        check_gradient(&x0, 1e-3, 2e-2, move |tape, x| {
            let y = tape.edge_dot(&edges, x, 1.5);
            let w = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 0.5]));
            let p = tape.mul(y, w);
            tape.sum_all(p)
        })
        .unwrap();
    }

    #[test]
    fn segment_softmax_sums_to_one_per_destination() {
        let edges = Edges::new(3, vec![[0, 2], [1, 2], [2, 2], [0, 1], [1, 1]]);
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 1.0]));
        let y = tape.segment_softmax(&edges, logits);
        let yd = tape.value(y).data();
        assert!((yd[0] + yd[1] + yd[2] - 1.0).abs() < 1e-5, "dst 2 normalises");
        assert!((yd[3] + yd[4] - 1.0).abs() < 1e-5, "dst 1 normalises");
        assert!(yd[2] > yd[1] && yd[1] > yd[0], "order preserved");
    }

    #[test]
    fn segment_softmax_grad_check() {
        let edges = Edges::new(3, vec![[0, 2], [1, 2], [2, 2], [0, 1], [1, 1]]);
        let l0 = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, -0.9]);
        check_gradient(&l0, 1e-3, 1e-2, move |tape, l| {
            let y = tape.segment_softmax(&edges, l);
            let w = tape.leaf(Tensor::from_vec(vec![2.0, -1.0, 0.5, 1.5, 3.0]));
            let p = tape.mul(y, w);
            tape.sum_all(p)
        })
        .unwrap();
    }

    #[test]
    fn gather_src_dst() {
        let edges = Edges::new(3, vec![[0, 1], [2, 0]]);
        let mut tape = Tape::new();
        let v = tape.leaf(Tensor::from_vec(vec![10., 20., 30.]));
        let s = tape.gather_src(&edges, v);
        let d = tape.gather_dst(&edges, v);
        assert_eq!(tape.value(s).data(), &[10., 30.]);
        assert_eq!(tape.value(d).data(), &[20., 10.]);
        let sum = tape.add(s, d);
        let total = tape.sum_all(sum);
        tape.backward(total);
        // node 0: src of e0 + dst of e1 -> 2; node 1: dst of e0 -> 1; node 2: src of e1 -> 1.
        assert_eq!(tape.grad(v).unwrap().data(), &[2., 1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edges_bounds_checked() {
        let _ = Edges::new(2, vec![[0, 2]]);
    }

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut s = seed;
        move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        }
    }

    #[test]
    fn csr_grouping_is_stable() {
        // Duplicate (0,1) edges must keep their original relative order.
        let csr = CsrEdges::from_pairs(3, vec![[0, 1], [2, 1], [0, 1], [1, 1]]);
        assert_eq!(csr.in_edges(1), &[0, 1, 2, 3]);
        assert_eq!(csr.in_edges(0), &[] as &[usize]);
        assert_eq!(csr.out_edges(0), &[0, 2]);
        assert_eq!(csr.out_edges(1), &[3]);
        assert_eq!(csr.out_edges(2), &[1]);
    }

    #[test]
    fn spmm_csr_bit_equal_to_edge_list_spmm() {
        let mut next = lcg(3);
        let edges = Edges::new(4, vec![[0, 1], [1, 2], [3, 0], [2, 2], [0, 0], [1, 1], [2, 2], [3, 3]]);
        let csr = CsrEdges::new(edges.clone());
        let w0 = Tensor::from_vec((0..edges.len()).map(|_| next()).collect());
        let x0 = Tensor::new([4, 3], (0..12).map(|_| next()).collect());
        let mut tape = Tape::new();
        let (w, x) = (tape.leaf(w0.clone()), tape.leaf(x0.clone()));
        let a = tape.spmm(&edges, w, x);
        let (w2, x2) = (tape.leaf(w0), tape.leaf(x0));
        let b = tape.spmm_csr(&csr, w2, x2);
        assert_eq!(tape.value(a).data(), tape.value(b).data(), "forward bit-equal");
        // Gradients bit-equal too: seed both ops with the same upstream grad
        // (backward resets retained grads, so capture between the two runs).
        let sa = tape.sum_all(a);
        let sb = tape.sum_all(b);
        tape.backward(sa);
        let (gw_a, gx_a) = (tape.grad(w).unwrap().clone(), tape.grad(x).unwrap().clone());
        tape.backward(sb);
        assert_eq!(gw_a.data(), tape.grad(w2).unwrap().data());
        assert_eq!(gx_a.data(), tape.grad(x2).unwrap().data());
    }

    #[test]
    fn spmm_batched_matches_per_plane_loop() {
        let mut next = lcg(7);
        let edges = path_edges();
        let csr = CsrEdges::new(edges.clone());
        let (p, n, f) = (3usize, 3usize, 2usize);
        let x0 = Tensor::new([p, n, f], (0..p * n * f).map(|_| next()).collect());
        // Per-plane weights (P, E).
        let w0 = Tensor::new([p, edges.len()], (0..p * edges.len()).map(|_| next()).collect());
        let mut tape = Tape::new();
        let (w, x) = (tape.leaf(w0.clone()), tape.leaf(x0.clone()));
        let y = tape.spmm_batched(&csr, w, x);
        for pi in 0..p {
            let wp = tape.leaf(Tensor::from_vec(w0.data()[pi * edges.len()..(pi + 1) * edges.len()].to_vec()));
            let xp = tape.leaf(Tensor::new([n, f], x0.data()[pi * n * f..(pi + 1) * n * f].to_vec()));
            let yp = tape.spmm(&edges, wp, xp);
            let got = tape.value(y).data()[pi * n * f..(pi + 1) * n * f].to_vec();
            assert_eq!(got, tape.value(yp).data(), "plane {pi} bit-equal");
        }
    }

    #[test]
    fn spmm_batched_shared_weights_grad_sums_planes() {
        let edges = path_edges();
        let csr = CsrEdges::new(edges.clone());
        let (p, n, f) = (2usize, 3usize, 2usize);
        let mut next = lcg(11);
        let x0 = Tensor::new([p, n, f], (0..p * n * f).map(|_| next()).collect());
        let w0 = Tensor::from_vec((0..edges.len()).map(|_| next()).collect());
        // Batched-with-shared-weights gradient == sum of per-plane spmm grads.
        let mut tape = Tape::new();
        let (w, x) = (tape.leaf(w0.clone()), tape.leaf(x0.clone()));
        let y = tape.spmm_batched(&csr, w, x);
        let s = tape.sum_all(y);
        tape.backward(s);
        let gw_batched = tape.grad(w).unwrap().clone();
        let mut gw_ref = vec![0.0f32; edges.len()];
        for pi in 0..p {
            let mut t2 = Tape::new();
            let wp = t2.leaf(w0.clone());
            let xp = t2.leaf(Tensor::new([n, f], x0.data()[pi * n * f..(pi + 1) * n * f].to_vec()));
            let yp = t2.spmm(&edges, wp, xp);
            let sp = t2.sum_all(yp);
            t2.backward(sp);
            for (acc, g) in gw_ref.iter_mut().zip(t2.grad(wp).unwrap().data()) {
                *acc += g;
            }
        }
        for (a, b) in gw_batched.data().iter().zip(&gw_ref) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spmm_batched_grad_check_per_plane_weights() {
        let edges = path_edges();
        let csr = CsrEdges::new(edges.clone());
        let (p, n, f) = (2usize, 3usize, 2usize);
        let mut next = lcg(13);
        let x0 = Tensor::new([p, n, f], (0..p * n * f).map(|_| next()).collect());
        let w0 = Tensor::new([p, edges.len()], (0..p * edges.len()).map(|_| next()).collect());
        let (c1, x1) = (csr.clone(), x0.clone());
        check_gradient(&w0, 1e-3, 1e-2, move |tape, w| {
            let x = tape.leaf(x1.clone());
            let y = tape.spmm_batched(&c1, w, x);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
        check_gradient(&x0, 1e-3, 1e-2, move |tape, x| {
            let w = tape.leaf(w0.clone());
            let y = tape.spmm_batched(&csr, w, x);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn edge_dot_batched_matches_per_plane() {
        let edges = Edges::new(3, vec![[0, 1], [2, 0], [1, 1]]);
        let (p, n, f) = (3usize, 3usize, 2usize);
        let mut next = lcg(17);
        let x0 = Tensor::new([p, n, f], (0..p * n * f).map(|_| next()).collect());
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.edge_dot_batched(&edges, x, (f as f32).sqrt());
        for pi in 0..p {
            let xp = tape.leaf(Tensor::new([n, f], x0.data()[pi * n * f..(pi + 1) * n * f].to_vec()));
            let yp = tape.edge_dot(&edges, xp, (f as f32).sqrt());
            let got = &tape.value(y).data()[pi * edges.len()..(pi + 1) * edges.len()];
            assert_eq!(got, tape.value(yp).data(), "plane {pi}");
        }
        let e2 = edges.clone();
        check_gradient(&x0, 1e-3, 2e-2, move |tape, x| {
            let y = tape.edge_dot_batched(&e2, x, 1.3);
            let sq = tape.square(y);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn gather_and_segment_softmax_batched_match_per_plane() {
        let edges = Edges::new(3, vec![[0, 2], [1, 2], [2, 2], [0, 1], [1, 1]]);
        let (p, n) = (2usize, 3usize);
        let mut next = lcg(19);
        let v0 = Tensor::new([p, n], (0..p * n).map(|_| next()).collect());
        let l0 = Tensor::new([p, edges.len()], (0..p * edges.len()).map(|_| next()).collect());
        let mut tape = Tape::new();
        let v = tape.leaf(v0.clone());
        let l = tape.leaf(l0.clone());
        let gs = tape.gather_src_batched(&edges, v);
        let gd = tape.gather_dst_batched(&edges, v);
        let sm = tape.segment_softmax_batched(&edges, l);
        for pi in 0..p {
            let vp = tape.leaf(Tensor::from_vec(v0.data()[pi * n..(pi + 1) * n].to_vec()));
            let lp = tape.leaf(Tensor::from_vec(
                l0.data()[pi * edges.len()..(pi + 1) * edges.len()].to_vec(),
            ));
            let gsp = tape.gather_src(&edges, vp);
            let gdp = tape.gather_dst(&edges, vp);
            let smp = tape.segment_softmax(&edges, lp);
            let r = pi * edges.len()..(pi + 1) * edges.len();
            assert_eq!(&tape.value(gs).data()[r.clone()], tape.value(gsp).data());
            assert_eq!(&tape.value(gd).data()[r.clone()], tape.value(gdp).data());
            assert_eq!(&tape.value(sm).data()[r], tape.value(smp).data());
        }
        let e2 = edges.clone();
        check_gradient(&l0, 1e-3, 1e-2, move |tape, l| {
            let y = tape.segment_softmax_batched(&e2, l);
            let w = tape.leaf(Tensor::new(
                [p, e2.len()],
                (0..p * e2.len()).map(|i| 0.5 + 0.3 * i as f32).collect(),
            ));
            let m = tape.mul(y, w);
            tape.sum_all(m)
        })
        .unwrap();
        check_gradient(&v0, 1e-3, 1e-2, move |tape, v| {
            let s = tape.gather_src_batched(&edges, v);
            let d = tape.gather_dst_batched(&edges, v);
            let m = tape.mul(s, d);
            let sq = tape.square(m);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn batched_ops_handle_empty_edge_list() {
        let edges = Edges::new(3, vec![]);
        let csr = CsrEdges::new(edges.clone());
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::zeros([0]));
        let x = tape.leaf(Tensor::ones([2, 3, 4]));
        let y = tape.spmm_batched(&csr, w, x);
        assert_eq!(tape.value(y).dims(), &[2, 3, 4]);
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0));
        let c = tape.edge_dot_batched(&edges, x, 2.0);
        assert_eq!(tape.value(c).dims(), &[2, 0]);
        let s = tape.sum_all(y);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().dims(), &[2, 3, 4]);
    }
}
