//! Shape-manipulation ops: reshape, transpose, permute, stack/concat, row
//! gather/slice. All are differentiable (their backward is the inverse data
//! movement).

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Apply a rank-3 permutation to a shape.
fn permuted_dims(dims: &[usize], perm: [usize; 3]) -> [usize; 3] {
    [dims[perm[0]], dims[perm[1]], dims[perm[2]]]
}

fn permute3_data(x: &Tensor, perm: [usize; 3]) -> Tensor {
    assert_eq!(x.rank(), 3, "permute3 requires rank-3, got {:?}", x.shape());
    {
        let mut seen = [false; 3];
        for &p in &perm {
            assert!(p < 3 && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
    }
    let d = x.dims();
    let od = permuted_dims(d, perm);
    let strides = x.shape().strides();
    let mut out = Tensor::zeros(od);
    let out_data = out.data_mut();
    let xd = x.data();
    let mut flat = 0;
    for i in 0..od[0] {
        for j in 0..od[1] {
            for k in 0..od[2] {
                let mut idx = [0usize; 3];
                idx[perm[0]] = i;
                idx[perm[1]] = j;
                idx[perm[2]] = k;
                out_data[flat] = xd[idx[0] * strides[0] + idx[1] * strides[1] + idx[2] * strides[2]];
                flat += 1;
            }
        }
    }
    out
}

/// Inverse of a rank-3 permutation.
fn inverse_perm(perm: [usize; 3]) -> [usize; 3] {
    let mut inv = [0usize; 3];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

impl Tape {
    /// View with a new shape (same element count). Gradient reshapes back.
    pub fn reshape(&mut self, x: Var, shape: impl Into<Shape>) -> Var {
        let shape = shape.into();
        let out = self.value(x).reshape(shape);
        self.push_op_named("reshape", out, vec![x], |ctx| {
            vec![ctx.grad.reshape(ctx.parents[0].shape().clone())]
        })
    }

    /// Matrix transpose (rank-2 only).
    pub fn transpose2(&mut self, x: Var) -> Var {
        let out = self.value(x).transpose();
        self.push_op_named("transpose2", out, vec![x], |ctx| vec![ctx.grad.transpose()])
    }

    /// Permute the axes of a rank-3 tensor, e.g. `(T,N,F) → (N,F,T)` with
    /// `perm = [1, 2, 0]` (output axis `i` takes input axis `perm[i]`).
    pub fn permute3(&mut self, x: Var, perm: [usize; 3]) -> Var {
        let out = permute3_data(self.value(x), perm);
        let inv = inverse_perm(perm);
        self.push_op_named("permute3", out, vec![x], move |ctx| vec![permute3_data(ctx.grad, inv)])
    }

    /// Concatenate along axis 0. All inputs must agree on trailing dims.
    pub fn concat0(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "concat0 of zero tensors");
        let first = self.value(xs[0]);
        let tail: Vec<usize> = first.dims()[1..].to_vec();
        let inner: usize = tail.iter().product::<usize>().max(1);
        let mut total0 = 0;
        let mut lens = Vec::with_capacity(xs.len());
        for &x in xs {
            let v = self.value(x);
            assert_eq!(&v.dims()[1..], &tail[..], "concat0 trailing-dim mismatch");
            total0 += v.dims()[0];
            lens.push(v.dims()[0]);
        }
        let mut dims = vec![total0];
        dims.extend_from_slice(&tail);
        let mut data = Vec::with_capacity(total0 * inner);
        for &x in xs {
            data.extend_from_slice(self.value(x).data());
        }
        let out = Tensor::new(dims, data);
        self.push_op_named("concat0", out, xs.to_vec(), move |ctx| {
            let g = ctx.grad.data();
            let mut grads = Vec::with_capacity(lens.len());
            let mut offset = 0;
            for (p, &l) in ctx.parents.iter().zip(&lens) {
                let n = l * inner;
                grads.push(Tensor::new(p.shape().clone(), g[offset..offset + n].to_vec()));
                offset += n;
            }
            grads
        })
    }

    /// Concatenate two matrices along axis 1: `(P, X) + (P, Y) → (P, X+Y)`.
    /// Gradient splits the columns back. Used by the fused adjacency path to
    /// append per-plane self-loop weights to the relation-edge weights.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.rank(), 2, "concat_cols expects matrices");
        assert_eq!(bv.rank(), 2, "concat_cols expects matrices");
        assert_eq!(av.dims()[0], bv.dims()[0], "concat_cols row-count mismatch");
        let (rows, x, y) = (av.dims()[0], av.dims()[1], bv.dims()[1]);
        let mut data = Vec::with_capacity(rows * (x + y));
        for r in 0..rows {
            data.extend_from_slice(&av.data()[r * x..(r + 1) * x]);
            data.extend_from_slice(&bv.data()[r * y..(r + 1) * y]);
        }
        let out = Tensor::new([rows, x + y], data);
        self.push_op_named("concat_cols", out, vec![a, b], move |ctx| {
            let g = ctx.grad.data();
            let mut ga = Vec::with_capacity(rows * x);
            let mut gb = Vec::with_capacity(rows * y);
            for r in 0..rows {
                let row = &g[r * (x + y)..(r + 1) * (x + y)];
                ga.extend_from_slice(&row[..x]);
                gb.extend_from_slice(&row[x..]);
            }
            vec![Tensor::new([rows, x], ga), Tensor::new([rows, y], gb)]
        })
    }

    /// Stack equal-shaped tensors along a new leading axis.
    pub fn stack0(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "stack0 of zero tensors");
        let shape = self.value(xs[0]).shape().clone();
        let inner = shape.numel();
        let mut dims = vec![xs.len()];
        dims.extend_from_slice(shape.dims());
        let mut data = Vec::with_capacity(xs.len() * inner);
        for &x in xs {
            let v = self.value(x);
            assert_eq!(v.shape(), &shape, "stack0 requires equal shapes");
            data.extend_from_slice(v.data());
        }
        let out = Tensor::new(dims, data);
        let n = xs.len();
        self.push_op_named("stack0", out, xs.to_vec(), move |ctx| {
            let g = ctx.grad.data();
            (0..n)
                .map(|i| {
                    Tensor::new(
                        ctx.parents[i].shape().clone(),
                        g[i * inner..(i + 1) * inner].to_vec(),
                    )
                })
                .collect()
        })
    }

    /// Slice rows `[start, end)` along axis 0; gradient zero-pads back.
    pub fn slice_rows(&mut self, x: Var, start: usize, end: usize) -> Var {
        let out = self.value(x).slice_axis0(start, end);
        self.push_op_named("slice_rows", out, vec![x], move |ctx| {
            let mut gx = Tensor::zeros(ctx.parents[0].shape().clone());
            let inner: usize = ctx.parents[0].dims()[1..].iter().product::<usize>().max(1);
            gx.data_mut()[start * inner..end * inner].copy_from_slice(ctx.grad.data());
            vec![gx]
        })
    }

    /// Gather rows of a matrix by index (duplicates allowed); gradient
    /// scatter-adds back into the source rows.
    pub fn gather_rows(&mut self, x: Var, indices: Vec<usize>) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.rank(), 2, "gather_rows expects a matrix");
        let (r, c) = (xv.dims()[0], xv.dims()[1]);
        for &i in &indices {
            assert!(i < r, "gather index {i} out of bounds for {r} rows");
        }
        let mut data = Vec::with_capacity(indices.len() * c);
        for &i in &indices {
            data.extend_from_slice(&xv.data()[i * c..(i + 1) * c]);
        }
        let out = Tensor::new([indices.len(), c], data);
        self.push_op_named("gather_rows", out, vec![x], move |ctx| {
            let mut gx = Tensor::zeros(ctx.parents[0].shape().clone());
            let g = ctx.grad.data();
            for (k, &i) in indices.iter().enumerate() {
                let dst = &mut gx.data_mut()[i * c..(i + 1) * c];
                for (d, &v) in dst.iter_mut().zip(&g[k * c..(k + 1) * c]) {
                    *d += v;
                }
            }
            vec![gx]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    #[test]
    fn concat_cols_values_and_grad() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let b = tape.leaf(Tensor::new([2, 3], vec![5., 6., 7., 8., 9., 10.]));
        let c = tape.concat_cols(a, b);
        assert_eq!(tape.value(c).dims(), &[2, 5]);
        assert_eq!(tape.value(c).data(), &[1., 2., 5., 6., 7., 3., 4., 8., 9., 10.]);
        let a0 = Tensor::new([2, 2], vec![0.3, -0.5, 0.8, 0.1]);
        check_gradient(&a0, 1e-3, 1e-2, |tape, a| {
            let b = tape.leaf(Tensor::new([2, 1], vec![0.4, -0.9]));
            let c = tape.concat_cols(a, b);
            let sq = tape.square(c);
            tape.sum_all(sq)
        })
        .unwrap();
        // Zero-column operand degenerates gracefully (empty relation set).
        let mut tape = Tape::new();
        let empty = tape.leaf(Tensor::zeros([2, 0]));
        let b = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let c = tape.concat_cols(empty, b);
        assert_eq!(tape.value(c).data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn permute3_roundtrip() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([2, 3, 4], (0..24).map(|v| v as f32).collect()));
        let p = tape.permute3(x, [1, 2, 0]);
        assert_eq!(tape.value(p).dims(), &[3, 4, 2]);
        let back = tape.permute3(p, [2, 0, 1]);
        assert_eq!(tape.value(back), tape.value(x));
        // element check: out[j,k,i] == in[i,j,k]
        assert_eq!(tape.value(p).at(&[2, 3, 1]), tape.value(x).at(&[1, 2, 3]));
    }

    #[test]
    fn permute3_grad_is_inverse_permutation() {
        let x = Tensor::new([2, 2, 3], (0..12).map(|v| v as f32 * 0.1).collect());
        check_gradient(&x, 1e-3, 1e-2, |tape, v| {
            let p = tape.permute3(v, [2, 0, 1]);
            let sq = tape.square(p);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn concat0_and_grads() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::new([1, 2], vec![1., 2.]));
        let b = tape.leaf(Tensor::new([2, 2], vec![3., 4., 5., 6.]));
        let c = tape.concat0(&[a, b]);
        assert_eq!(tape.value(c).dims(), &[3, 2]);
        assert_eq!(tape.value(c).data(), &[1., 2., 3., 4., 5., 6.]);
        let s = tape.sum_all(c);
        tape.backward(s);
        assert_eq!(tape.grad(a).unwrap().dims(), &[1, 2]);
        assert_eq!(tape.grad(b).unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn stack0_shape_and_grad() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 2], vec![1., 2., 3., 4.]));
        let b = tape.leaf(Tensor::new([2, 2], vec![5., 6., 7., 8.]));
        let s = tape.stack0(&[a, b]);
        assert_eq!(tape.value(s).dims(), &[2, 2, 2]);
        let sq = tape.square(s);
        let total = tape.sum_all(sq);
        tape.backward(total);
        assert_eq!(tape.grad(a).unwrap().data(), &[2., 4., 6., 8.]);
        assert_eq!(tape.grad(b).unwrap().data(), &[10., 12., 14., 16.]);
    }

    #[test]
    fn gather_rows_with_duplicates_accumulates() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let g = tape.gather_rows(x, vec![0, 2, 0]);
        assert_eq!(tape.value(g).data(), &[1., 2., 5., 6., 1., 2.]);
        let s = tape.sum_all(g);
        tape.backward(s);
        // row 0 gathered twice -> grad 2, row 1 never -> 0, row 2 once -> 1.
        assert_eq!(tape.grad(x).unwrap().data(), &[2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn slice_rows_grad_zero_pads() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([4, 1], vec![1., 2., 3., 4.]));
        let s = tape.slice_rows(x, 1, 3);
        assert_eq!(tape.value(s).data(), &[2., 3.]);
        let total = tape.sum_all(s);
        tape.backward(total);
        assert_eq!(tape.grad(x).unwrap().data(), &[0., 1., 1., 0.]);
    }

    #[test]
    fn reshape_grad_flows() {
        let x = Tensor::new([2, 3], (0..6).map(|v| v as f32).collect());
        check_gradient(&x, 1e-3, 1e-2, |tape, v| {
            let r = tape.reshape(v, [3, 2]);
            let sq = tape.square(r);
            tape.sum_all(sq)
        })
        .unwrap();
    }
}
