//! Elementwise differentiable ops (with NumPy-style broadcasting for binary
//! ops) recorded on a [`Tape`].

use crate::shape::Shape;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Apply a binary op with broadcasting; `fwd` computes elementwise values,
/// `dfa`/`dfb` compute the local derivatives w.r.t. each operand given
/// `(a, b, out)` values at that element.
fn binary_broadcast(
    name: &'static str,
    tape: &mut Tape,
    a: Var,
    b: Var,
    fwd: fn(f32, f32) -> f32,
    dfa: fn(f32, f32, f32) -> f32,
    dfb: fn(f32, f32, f32) -> f32,
) -> Var {
    let (av, bv) = (tape.value(a), tape.value(b));
    let (ashape, bshape) = (av.shape().clone(), bv.shape().clone());
    if ashape == bshape {
        // Fast path: no broadcasting, no materialised copies.
        let out = av.zip(bv, fwd);
        return tape.push_op_named(name, out, vec![a, b], move |ctx| {
            let (av, bv, ov, g) =
                (ctx.parents[0].data(), ctx.parents[1].data(), ctx.output.data(), ctx.grad.data());
            let mut ga = vec![0.0; av.len()];
            let mut gb = vec![0.0; bv.len()];
            for i in 0..av.len() {
                ga[i] = g[i] * dfa(av[i], bv[i], ov[i]);
                gb[i] = g[i] * dfb(av[i], bv[i], ov[i]);
            }
            vec![
                Tensor::new(ctx.parents[0].shape().clone(), ga),
                Tensor::new(ctx.parents[1].shape().clone(), gb),
            ]
        });
    }
    let target: Shape = ashape
        .broadcast_with(&bshape)
        // lint:allow(panic-free-hot-paths) shape mismatch is a caller programming error, caught by op tests
        .unwrap_or_else(|| panic!("cannot broadcast {ashape:?} with {bshape:?}"));
    let ab = av.broadcast_to(&target);
    let bb = bv.broadcast_to(&target);
    let out = ab.zip(&bb, fwd);
    tape.push_op_named(name, out, vec![a, b], move |ctx| {
        let ab = ctx.parents[0].broadcast_to(&target);
        let bb = ctx.parents[1].broadcast_to(&target);
        let (ad, bd, od, g) = (ab.data(), bb.data(), ctx.output.data(), ctx.grad.data());
        let mut ga = vec![0.0; ad.len()];
        let mut gb = vec![0.0; bd.len()];
        for i in 0..ad.len() {
            ga[i] = g[i] * dfa(ad[i], bd[i], od[i]);
            gb[i] = g[i] * dfb(ad[i], bd[i], od[i]);
        }
        vec![
            Tensor::new(target.clone(), ga).reduce_to(ctx.parents[0].shape()),
            Tensor::new(target.clone(), gb).reduce_to(ctx.parents[1].shape()),
        ]
    })
}

/// Apply a unary op; `fwd` maps each element, `df` gives the local derivative
/// from `(x, y)`.
fn unary(
    name: &'static str,
    tape: &mut Tape,
    x: Var,
    fwd: fn(f32) -> f32,
    df: fn(f32, f32) -> f32,
) -> Var {
    let out = tape.value(x).map(fwd);
    tape.push_op_named(name, out, vec![x], move |ctx| {
        let (xd, yd, g) = (ctx.parents[0].data(), ctx.output.data(), ctx.grad.data());
        let data = (0..xd.len()).map(|i| g[i] * df(xd[i], yd[i])).collect();
        vec![Tensor::new(ctx.parents[0].shape().clone(), data)]
    })
}

impl Tape {
    /// `a + b` with broadcasting.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        binary_broadcast("add", self, a, b, |x, y| x + y, |_, _, _| 1.0, |_, _, _| 1.0)
    }

    /// `a - b` with broadcasting.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        binary_broadcast("sub", self, a, b, |x, y| x - y, |_, _, _| 1.0, |_, _, _| -1.0)
    }

    /// Elementwise `a * b` with broadcasting.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        binary_broadcast("mul", self, a, b, |x, y| x * y, |_, y, _| y, |x, _, _| x)
    }

    /// Elementwise `a / b` with broadcasting.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        binary_broadcast("div", self, a, b, |x, y| x / y, |_, y, _| 1.0 / y, |x, y, _| -x / (y * y))
    }

    /// `-x`.
    pub fn neg(&mut self, x: Var) -> Var {
        unary("neg", self, x, |v| -v, |_, _| -1.0)
    }

    /// `x * k` for a compile-time constant `k` (no extra leaf).
    pub fn scale(&mut self, x: Var, k: f32) -> Var {
        let out = self.value(x).map(|v| v * k);
        self.push_op_named("scale", out, vec![x], move |ctx| vec![ctx.grad.map(|g| g * k)])
    }

    /// `x + k` for a constant `k`.
    pub fn add_scalar(&mut self, x: Var, k: f32) -> Var {
        let out = self.value(x).map(|v| v + k);
        self.push_op_named("add_scalar", out, vec![x], |ctx| vec![ctx.grad.clone()])
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        unary("relu", self, x, |v| v.max(0.0), |v, _| if v > 0.0 { 1.0 } else { 0.0 })
    }

    /// Leaky ReLU with fixed negative slope 0.2 (the GAT default).
    pub fn leaky_relu(&mut self, x: Var) -> Var {
        unary("leaky_relu", self, x, |v| if v > 0.0 { v } else { 0.2 * v }, |v, _| if v > 0.0 { 1.0 } else { 0.2 })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        unary("sigmoid", self, x, |v| 1.0 / (1.0 + (-v).exp()), |_, y| y * (1.0 - y))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        unary("tanh", self, x, |v| v.tanh(), |_, y| 1.0 - y * y)
    }

    /// `exp(x)`.
    pub fn exp(&mut self, x: Var) -> Var {
        unary("exp", self, x, |v| v.exp(), |_, y| y)
    }

    /// Natural log; inputs are clamped at `1e-12` to avoid `-inf`.
    pub fn ln(&mut self, x: Var) -> Var {
        unary("ln", self, x, |v| v.max(1e-12).ln(), |v, _| 1.0 / v.max(1e-12))
    }

    /// `sqrt(x)`; derivative clamped near zero for stability.
    pub fn sqrt(&mut self, x: Var) -> Var {
        unary("sqrt", self, x, |v| v.max(0.0).sqrt(), |_, y| 0.5 / y.max(1e-6))
    }

    /// `x²`.
    pub fn square(&mut self, x: Var) -> Var {
        unary("square", self, x, |v| v * v, |v, _| 2.0 * v)
    }

    /// `|x|` (subgradient 0 at 0).
    pub fn abs(&mut self, x: Var) -> Var {
        unary("abs", self, x, |v| v.abs(), |v, _| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Clamp from below (used for numerical guards; straight-through gradient
    /// only where unclamped).
    pub fn clamp_min(&mut self, x: Var, min: f32) -> Var {
        let out = self.value(x).map(|v| v.max(min));
        self.push_op_named("clamp_min", out, vec![x], move |ctx| {
            let (xd, g) = (ctx.parents[0].data(), ctx.grad.data());
            let data = (0..xd.len()).map(|i| if xd[i] > min { g[i] } else { 0.0 }).collect();
            vec![Tensor::new(ctx.parents[0].shape().clone(), data)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::check_gradient;

    fn t(v: Vec<f32>) -> Tensor {
        Tensor::from_vec(v)
    }

    #[test]
    fn add_mul_values() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(vec![1., 2., 3.]));
        let b = tape.leaf(t(vec![10., 20., 30.]));
        let s = tape.add(a, b);
        let m = tape.mul(a, b);
        assert_eq!(tape.value(s).data(), &[11., 22., 33.]);
        assert_eq!(tape.value(m).data(), &[10., 40., 90.]);
    }

    #[test]
    fn broadcast_add_gradients_reduce() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let b = tape.leaf(Tensor::new([1, 3], vec![10., 20., 30.]));
        let s = tape.add(a, b);
        let total = tape.sum_all(s);
        tape.backward(total);
        assert_eq!(tape.grad(a).unwrap().data(), &[1.; 6]);
        // b was broadcast over 2 rows, so its grad sums to 2 per element.
        assert_eq!(tape.grad(b).unwrap().data(), &[2., 2., 2.]);
    }

    #[test]
    fn grad_checks_elementwise() {
        let x = t(vec![0.3, -0.7, 1.2, -0.1]);
        for (name, f) in [
            ("relu", (|tape: &mut Tape, x: Var| tape.relu(x)) as fn(&mut Tape, Var) -> Var),
            ("sigmoid", |tape, x| tape.sigmoid(x)),
            ("tanh", |tape, x| tape.tanh(x)),
            ("exp", |tape, x| tape.exp(x)),
            ("square", |tape, x| tape.square(x)),
            ("leaky", |tape, x| tape.leaky_relu(x)),
        ] {
            let g = move |tape: &mut Tape, v: Var| {
                let y = f(tape, v);
                tape.sum_all(y)
            };
            check_gradient(&x, 1e-3, 1e-2, g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn grad_check_div() {
        let x = t(vec![0.5, 2.0, -1.5]);
        check_gradient(&x, 1e-3, 1e-2, |tape, v| {
            let c = tape.leaf(t(vec![2.0, 4.0, 0.5]));
            let d = tape.div(v, c);
            tape.sum_all(d)
        })
        .unwrap();
    }

    #[test]
    fn scale_and_add_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(t(vec![1., 2.]));
        let y = tape.scale(x, 3.0);
        let z = tape.add_scalar(y, 1.0);
        let s = tape.sum_all(z);
        assert_eq!(tape.value(s).item(), 11.0);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn clamp_min_blocks_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(t(vec![-1.0, 2.0]));
        let y = tape.clamp_min(x, 0.0);
        let s = tape.sum_all(y);
        tape.backward(s);
        assert_eq!(tape.value(y).data(), &[0.0, 2.0]);
        assert_eq!(tape.grad(x).unwrap().data(), &[0.0, 1.0]);
    }
}
