//! Differentiable operations recorded on a [`crate::tape::Tape`].
//!
//! Each submodule adds `impl Tape` blocks for one family of ops:
//!
//! - [`elementwise`] — broadcast arithmetic and activations
//! - [`matmul`] — dense products and affine layers
//! - [`reduce`] — sums/means/softmax/norms
//! - [`shape_ops`] — reshape/permute/stack/gather
//! - [`conv`] — causal strided 1-D convolution + weight norm (the TCN core)
//! - [`sparse`] — edge-list graph kernels (spmm, edge-dot, segment softmax)
//! - [`loss`] — MSE, pairwise ranking hinge, cross-entropy
//! - [`dropout`] — elementwise and spatial dropout

pub mod conv;
pub mod dropout;
pub mod elementwise;
pub mod loss;
pub mod matmul;
pub mod reduce;
pub mod shape_ops;
pub mod sparse;

pub use conv::ConvSpec;
pub use sparse::{CsrEdges, Edges};
