//! Optimisers: SGD (with momentum) and Adam, plus global-norm gradient
//! clipping. The paper trains with Adam at lr = 0.001 and L2 weight
//! regularisation λ = 0.01 (Eq. 9); applying λ as a gradient-side penalty
//! `g += 2λθ` is exactly the gradient of the paper's `λ‖β‖²` loss term.

use crate::param::ParamStore;
use crate::tensor::Tensor;

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for id in store.ids().collect::<Vec<_>>() {
            store.grad_mut(id).scale_assign(scale);
        }
    }
    norm
}

/// Common optimiser interface.
pub trait Optimizer {
    /// Apply one update step from the store's accumulated gradients, then
    /// zero them.
    fn step(&mut self, store: &mut ParamStore);
    /// Learning rate currently in effect.
    fn lr(&self) -> f32;
    /// Override the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and L2 penalty.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub l2: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32, l2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum, l2, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids.iter().map(|&id| Tensor::zeros(store.value(id).shape().clone())).collect();
        }
        for (k, &id) in ids.iter().enumerate() {
            let l2 = self.l2;
            let grad: Vec<f32> = {
                let g = store.grad(id);
                let v = store.value(id);
                g.data().iter().zip(v.data()).map(|(&g, &p)| g + 2.0 * l2 * p).collect()
            };
            let vel = &mut self.velocity[k];
            for (vd, &gd) in vel.data_mut().iter_mut().zip(&grad) {
                *vd = self.momentum * *vd + gd;
            }
            let lr = self.lr;
            let vel_data: Vec<f32> = vel.data().to_vec();
            let value = store.value_mut(id);
            for (p, v) in value.data_mut().iter_mut().zip(vel_data) {
                *p -= lr * v;
            }
        }
        store.zero_grads();
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and gradient-side L2 penalty.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub l2: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Paper configuration: `Adam::new(0.001, 0.01)` (lr 1e-3, λ = 0.01).
    pub fn new(lr: f32, l2: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8, l2)
    }

    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32, l2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas in [0,1)");
        Adam { lr, beta1, beta2, eps, l2, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.m.len() != ids.len() {
            self.m = ids.iter().map(|&id| Tensor::zeros(store.value(id).shape().clone())).collect();
            self.v = ids.iter().map(|&id| Tensor::zeros(store.value(id).shape().clone())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, &id) in ids.iter().enumerate() {
            let l2 = self.l2;
            let grad: Vec<f32> = {
                let g = store.grad(id);
                let p = store.value(id);
                g.data().iter().zip(p.data()).map(|(&g, &p)| g + 2.0 * l2 * p).collect()
            };
            let (m, v) = (&mut self.m[k], &mut self.v[k]);
            for ((md, vd), &gd) in m.data_mut().iter_mut().zip(v.data_mut()).zip(&grad) {
                *md = self.beta1 * *md + (1.0 - self.beta1) * gd;
                *vd = self.beta2 * *vd + (1.0 - self.beta2) * gd * gd;
            }
            let lr = self.lr;
            let eps = self.eps;
            let m_data: Vec<f32> = m.data().to_vec();
            let v_data: Vec<f32> = v.data().to_vec();
            let value = store.value_mut(id);
            for ((p, md), vd) in value.data_mut().iter_mut().zip(m_data).zip(v_data) {
                let mhat = md / bc1;
                let vhat = vd / bc2;
                *p -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        store.zero_grads();
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise f(w) = (w − 3)² and check convergence.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        for _ in 0..400 {
            let mut tape = Tape::new();
            let wv = store.bind(&mut tape, w);
            let shifted = tape.add_scalar(wv, -3.0);
            let loss = tape.square(shifted);
            let loss = tape.sum_all(loss);
            tape.backward(loss);
            store.absorb_grads(&tape);
            opt.step(&mut store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_to_minimum() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let w = converges(&mut opt);
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let w = converges(&mut opt);
        assert!((w - 3.0).abs() < 1e-2, "sgd+momentum ended at {w}");
    }

    #[test]
    fn adam_converges_to_minimum() {
        let mut opt = Adam::new(0.05, 0.0);
        let w = converges(&mut opt);
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }

    #[test]
    fn l2_shrinks_optimum_towards_zero() {
        let mut opt = Adam::new(0.05, 0.5);
        let w = converges(&mut opt);
        // With penalty the optimum of (w−3)² + 0.5·w² is at 2/ (1+0.5) ·1.5 = 2.
        assert!((w - 2.0).abs() < 0.05, "regularised optimum should be 2, got {w}");
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![0.0, 0.0]));
        let mut tape = Tape::new();
        let wv = store.bind(&mut tape, w);
        let t = Tensor::from_vec(vec![30.0, 40.0]);
        let loss = tape.mse(wv, &t);
        tape.backward(loss);
        store.absorb_grads(&tape);
        let pre = clip_grad_norm(&mut store, 1.0);
        assert!(pre > 1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.0));
        let mut tape = Tape::new();
        let wv = store.bind(&mut tape, w);
        let loss = tape.square(wv);
        let loss = tape.sum_all(loss);
        tape.backward(loss);
        store.absorb_grads(&tape);
        let mut opt = Adam::new(0.01, 0.0);
        opt.step(&mut store);
        assert_eq!(store.grad(w).item(), 0.0);
    }
}
