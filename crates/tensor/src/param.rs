//! Persistent model parameters.
//!
//! The tape is rebuilt every step (define-by-run), so parameters live outside
//! it in a [`ParamStore`]. Each training step binds parameters onto the tape
//! with [`ParamStore::bind`], runs forward/backward, then calls
//! [`ParamStore::absorb_grads`] to pull the tape gradients into the
//! persistent per-parameter gradient buffers consumed by the optimiser.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;

/// Stable handle to a parameter within one [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

struct ParamSlot {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A named collection of trainable tensors with persistent gradients.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
    by_name: HashMap<String, ParamId>,
    /// Bindings made since the last `absorb_grads` call: (param, tape node).
    bindings: RefCell<Vec<(ParamId, Var)>>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter. Names must be unique; namespace layers with
    /// prefixes like `"gcn.theta"`.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "duplicate parameter name {name:?}");
        let grad = Tensor::zeros(value.shape().clone());
        let id = ParamId(self.slots.len());
        self.by_name.insert(name.clone(), id);
        self.slots.push(ParamSlot { name, value, grad });
        id
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar parameters (for model-size reporting).
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.numel()).sum()
    }

    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].grad
    }

    /// Mutable gradient access; public writers are the optimisers in
    /// [`crate::optim`], kept out of typical model code.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].grad
    }

    /// Iterate `(id, name)` pairs in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.slots.len()).map(ParamId)
    }

    /// Put the parameter's current value on the tape as a leaf and remember
    /// the binding so `absorb_grads` can route the gradient back.
    pub fn bind(&self, tape: &mut Tape, id: ParamId) -> Var {
        let var = tape.leaf(self.slots[id.0].value.clone());
        self.bindings.borrow_mut().push((id, var));
        var
    }

    /// After `tape.backward`, accumulate each bound leaf's gradient into the
    /// parameter's persistent grad buffer and clear the bindings.
    pub fn absorb_grads(&mut self, tape: &Tape) {
        let bindings = std::mem::take(&mut *self.bindings.borrow_mut());
        for (id, var) in bindings {
            if let Some(g) = tape.grad(var) {
                // Kernel-boundary invariant: the optimiser must never see a
                // non-finite gradient; name the parameter it was bound to.
                crate::finite_check!("absorbed gradient", &self.slots[id.0].name, g.data());
                self.slots[id.0].grad.add_assign(g);
            }
        }
    }

    /// Discard bindings without absorbing (e.g. after an inference-only pass).
    pub fn clear_bindings(&self) {
        self.bindings.borrow_mut().clear();
    }

    /// Zero every persistent gradient buffer.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.fill(0.0);
        }
    }

    /// Global L2 norm over all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.slots.iter().map(|s| s.grad.data().iter().map(|&g| g * g).sum::<f32>()).sum::<f32>().sqrt()
    }

    /// Global L2 norm over all parameter values.
    pub fn value_norm(&self) -> f32 {
        self.slots
            .iter()
            .map(|s| s.value.data().iter().map(|&v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Snapshot all values (for early stopping / best-checkpoint restore).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.slots.iter().map(|s| s.value.clone()).collect()
    }

    /// Restore a snapshot taken from this store.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.slots.len(), "snapshot size mismatch");
        for (s, t) in self.slots.iter_mut().zip(snapshot) {
            assert_eq!(s.value.shape(), t.shape(), "snapshot shape mismatch for {}", s.name);
            s.value = t.clone();
        }
    }

    /// Serialise all parameters to a simple self-describing binary format
    /// (name, shape, f32 data per entry). Checkpointing for trained models.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"RTGP\x01");
        buf.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        for s in &self.slots {
            let name = s.name.as_bytes();
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name);
            let dims = s.value.dims();
            buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in s.value.data() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&buf)
    }

    /// Load a checkpoint produced by [`ParamStore::save`] into an existing
    /// store. Every parameter must exist with a matching shape (build the
    /// model with the same config first).
    pub fn load(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let bytes = std::fs::read(path)?;
        let err = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> std::io::Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(err("truncated checkpoint"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 5)? != b"RTGP\x01" {
            return Err(err("not an RTGP v1 checkpoint"));
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if count != self.slots.len() {
            return Err(err("parameter count mismatch"));
        }
        for _ in 0..count {
            let nlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, nlen)?.to_vec())
                .map_err(|_| err("invalid parameter name"))?;
            let rank = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize);
            }
            let numel: usize = dims.iter().product();
            let raw = take(&mut pos, numel * 4)?;
            let data: Vec<f32> =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            let id = self
                .id(&name)
                .ok_or_else(|| err(&format!("unknown parameter {name:?} in checkpoint")))?;
            let expected = self.value(id).shape().clone();
            let tensor = Tensor::new(dims, data);
            if tensor.shape() != &expected {
                return Err(err(&format!("shape mismatch for {name:?}")));
            }
            *self.value_mut(id) = tensor;
        }
        Ok(())
    }
}

/// Finite-difference check of every parameter in a [`ParamStore`] against the
/// analytic gradients of `loss` — the model-level companion of
/// [`crate::tape::check_gradient`].
///
/// `loss` must rebuild the scalar objective on a fresh tape from the store's
/// *current* values each call and be deterministic across calls (disable
/// dropout / fix RNG consumption). Each parameter is probed at up to
/// `max_elems_per_param` evenly-strided elements with central differences of
/// half-width `eps`; an element fails when
/// `|analytic − numeric| / max(1, |analytic|, |numeric|) > tol`.
pub fn check_param_gradients(
    store: &mut ParamStore,
    eps: f32,
    tol: f32,
    max_elems_per_param: usize,
    mut loss: impl FnMut(&mut Tape, &ParamStore) -> Var,
) -> Result<(), String> {
    store.zero_grads();
    let mut tape = Tape::new();
    let root = loss(&mut tape, store);
    if tape.value(root).numel() != 1 {
        return Err(format!(
            "loss must be scalar, got shape {:?}",
            tape.value(root).shape()
        ));
    }
    tape.backward(root);
    store.absorb_grads(&tape);
    drop(tape);

    let ids: Vec<ParamId> = store.ids().collect();
    for id in ids {
        let numel = store.value(id).numel();
        let step = (numel / max_elems_per_param.max(1)).max(1);
        for i in (0..numel).step_by(step) {
            let orig = store.value(id).data()[i];
            let eval = |v: f32, store: &mut ParamStore, loss: &mut dyn FnMut(&mut Tape, &ParamStore) -> Var| -> f32 {
                store.value_mut(id).data_mut()[i] = v;
                let mut tape = Tape::new();
                let root = loss(&mut tape, store);
                let out = tape.value(root).item();
                store.clear_bindings();
                out
            };
            let plus = eval(orig + eps, store, &mut loss);
            let minus = eval(orig - eps, store, &mut loss);
            store.value_mut(id).data_mut()[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = store.grad(id).data()[i];
            let denom = 1.0f32.max(analytic.abs()).max(numeric.abs());
            if (analytic - numeric).abs() / denom > tol {
                return Err(format!(
                    "gradient mismatch for {}[{i}]: analytic {analytic}, numeric {numeric}",
                    store.name(id)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_backward_absorb_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![2.0, 3.0]));
        let mut tape = Tape::new();
        let wv = store.bind(&mut tape, w);
        let sq = tape.square(wv);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        store.absorb_grads(&tape);
        assert_eq!(store.grad(w).data(), &[4.0, 6.0]);
        // Gradients accumulate across absorbs until zeroed.
        let mut tape2 = Tape::new();
        let wv2 = store.bind(&mut tape2, w);
        let sq2 = tape2.square(wv2);
        let loss2 = tape2.sum_all(sq2);
        tape2.backward(loss2);
        store.absorb_grads(&tape2);
        assert_eq!(store.grad(w).data(), &[8.0, 12.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(1.0));
        store.add("w", Tensor::scalar(2.0));
    }

    #[test]
    fn snapshot_restore() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0]));
        let snap = store.snapshot();
        store.value_mut(w).data_mut()[0] = 99.0;
        store.restore(&snap);
        assert_eq!(store.value(w).data(), &[1.0]);
    }

    #[test]
    fn lookup_and_counting() {
        let mut store = ParamStore::new();
        let a = store.add("layer.a", Tensor::zeros([2, 3]));
        store.add("layer.b", Tensor::zeros([4]));
        assert_eq!(store.id("layer.a"), Some(a));
        assert_eq!(store.id("nope"), None);
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.name(a), "layer.a");
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("rtgcn_param_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.rtgp");
        let mut a = ParamStore::new();
        a.add("layer.w", Tensor::new([2, 2], vec![1.5, -2.5, 0.25, 9.0]));
        a.add("layer.b", Tensor::from_vec(vec![0.5]));
        a.save(&path).unwrap();
        let mut b = ParamStore::new();
        let w = b.add("layer.w", Tensor::zeros([2, 2]));
        let bias = b.add("layer.b", Tensor::zeros([1]));
        b.load(&path).unwrap();
        assert_eq!(b.value(w).data(), &[1.5, -2.5, 0.25, 9.0]);
        assert_eq!(b.value(bias).data(), &[0.5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let dir = std::env::temp_dir().join("rtgcn_param_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.rtgp");
        let mut a = ParamStore::new();
        a.add("w", Tensor::zeros([3]));
        a.save(&path).unwrap();
        let mut b = ParamStore::new();
        b.add("w", Tensor::zeros([4]));
        assert!(b.load(&path).is_err());
        let mut c = ParamStore::new();
        c.add("other", Tensor::zeros([3]));
        assert!(c.load(&path).is_err(), "unknown name must be rejected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("rtgcn_param_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros([1]));
        assert!(s.load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_param_gradients_passes_on_correct_model() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::new([2, 2], vec![0.5, -1.2, 2.0, 0.3]));
        let b = store.add("b", Tensor::from_vec(vec![0.7, -0.4]));
        check_param_gradients(&mut store, 1e-2, 1e-3, 16, |tape, s| {
            let wv = s.bind(tape, w);
            let bv = s.bind(tape, b);
            let x = tape.constant(Tensor::new([3, 2], vec![1., 2., -0.5, 0.3, 0.8, -1.1]));
            let h = tape.matmul(x, wv);
            let y = tape.add(h, bv);
            let r = tape.relu(y);
            let sq = tape.square(r);
            tape.sum_all(sq)
        })
        .unwrap();
        // Values must be restored exactly after probing.
        assert_eq!(store.value(w).data(), &[0.5, -1.2, 2.0, 0.3]);
    }

    #[test]
    fn check_param_gradients_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        let err = check_param_gradients(&mut store, 1e-2, 1e-3, 8, |tape, s| s.bind(tape, w));
        assert!(err.is_err());
    }

    #[test]
    fn multiple_bindings_of_same_param_accumulate() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(3.0));
        let mut tape = Tape::new();
        let w1 = store.bind(&mut tape, w);
        let w2 = store.bind(&mut tape, w);
        let prod = tape.mul(w1, w2); // w * w, but through two independent leaves
        let loss = tape.sum_all(prod);
        tape.backward(loss);
        store.absorb_grads(&tape);
        // d(w²)/dw = 2w = 6 when both leaves route back to the same param.
        assert_eq!(store.grad(w).item(), 6.0);
    }
}
