//! Reverse-mode automatic differentiation tape.
//!
//! A [`Tape`] records every operation of one forward pass as a node in a
//! topologically ordered arena. [`Var`] is a cheap copyable handle (an index
//! into the arena). Calling [`Tape::backward`] walks the arena in reverse,
//! invoking each node's backward closure to propagate gradients to its
//! parents.
//!
//! Design notes:
//! - The tape is rebuilt every training step (define-by-run); model
//!   parameters live outside the tape in a [`crate::param::ParamStore`] and
//!   are re-inserted as leaves each step.
//! - Backward closures return one gradient tensor per parent rather than
//!   mutating shared state, which keeps the borrow story trivial and makes
//!   ops easy to test in isolation.
//! - Gradients for *every* node are retained after `backward`, so callers can
//!   inspect intermediate gradients (used by the adversarial-LSTM baseline to
//!   perturb its latent representation).

use crate::tensor::Tensor;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Arena index (stable for the lifetime of the tape).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Context handed to a backward closure.
pub struct BackwardCtx<'a> {
    /// Gradient of the loss w.r.t. this node's output.
    pub grad: &'a Tensor,
    /// This node's forward output.
    pub output: &'a Tensor,
    /// Forward values of the node's parents, in registration order.
    pub parents: &'a [&'a Tensor],
}

type BackwardFn = Box<dyn Fn(&BackwardCtx<'_>) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    /// Op label for diagnostics — `finite_check!` failures name the
    /// producing node with it.
    name: &'static str,
}

/// A single forward pass's computation graph.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl Tape {
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Record a leaf (input or parameter value). Leaves receive gradients but
    /// propagate nothing further.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push("leaf", value, Vec::new(), None)
    }

    /// Record a constant: identical to a leaf. The distinction is purely
    /// documentary — constants' gradients are computed but never read.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.leaf(value)
    }

    /// Record an op node. `backward` must return exactly one gradient tensor
    /// per parent, each with the parent's shape.
    pub fn push_op(
        &mut self,
        value: Tensor,
        parents: Vec<Var>,
        backward: impl Fn(&BackwardCtx<'_>) -> Vec<Tensor> + 'static,
    ) -> Var {
        self.push_op_named("op", value, parents, backward)
    }

    /// [`Tape::push_op`] with an op label: `finite_check!` failures in this
    /// node's forward value or backward gradients are reported against
    /// `name`, so NaN is pinned to the producing kernel. The built-in ops
    /// all register named; prefer this for custom ops too.
    pub fn push_op_named(
        &mut self,
        name: &'static str,
        value: Tensor,
        parents: Vec<Var>,
        backward: impl Fn(&BackwardCtx<'_>) -> Vec<Tensor> + 'static,
    ) -> Var {
        let parents = parents.into_iter().map(|v| v.0).collect();
        self.push(name, value, parents, Some(Box::new(backward)))
    }

    fn push(
        &mut self,
        name: &'static str,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var {
        for &p in &parents {
            assert!(p < self.nodes.len(), "parent Var belongs to a different tape");
        }
        // Kernel-boundary invariant: a non-finite forward output is caught
        // here, at the op that produced it (debug builds only).
        crate::finite_check!("forward output", name, value.data());
        self.nodes.push(Node { value, parents, backward, name });
        Var(self.nodes.len() - 1)
    }

    /// Forward value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` call w.r.t. `v`, if any was computed.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Run reverse-mode differentiation from `root`, which must be a scalar
    /// (1-element) node. Gradients of all nodes are retained and queryable
    /// through [`Tape::grad`] until the next `backward` call.
    pub fn backward(&mut self, root: Var) {
        let root_value = &self.nodes[root.0].value;
        assert_eq!(
            root_value.numel(),
            1,
            "backward root must be scalar, got shape {:?}",
            root_value.shape()
        );
        self.backward_seeded(root, Tensor::new(root_value.shape().clone(), vec![1.0]));
    }

    /// Like [`Tape::backward`] but with an explicit seed gradient (used for
    /// vector-Jacobian products).
    pub fn backward_seeded(&mut self, root: Var, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.nodes[root.0].value.shape(),
            "seed gradient shape must match the root value shape"
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[root.0] = Some(seed);

        for i in (0..=root.0).rev() {
            let Some(grad) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            if let Some(backward) = &node.backward {
                let parent_values: Vec<&Tensor> =
                    node.parents.iter().map(|&p| &self.nodes[p].value).collect();
                let ctx = BackwardCtx { grad: &grad, output: &node.value, parents: &parent_values };
                let parent_grads = backward(&ctx);
                // Kernel-boundary invariant: each gradient is checked the
                // moment the producing op's backward returns it, so NaN is
                // attributed to this node — not to wherever the gradient
                // accumulates three ops later (debug builds only).
                if cfg!(debug_assertions) {
                    for pg in &parent_grads {
                        crate::finite_check!("backward gradient", node.name, pg.data());
                    }
                }
                assert_eq!(
                    parent_grads.len(),
                    node.parents.len(),
                    "op at node {i} returned {} gradients for {} parents",
                    parent_grads.len(),
                    node.parents.len()
                );
                for (&p, pg) in node.parents.iter().zip(parent_grads) {
                    debug_assert_eq!(
                        pg.shape(),
                        self.nodes[p].value.shape(),
                        "gradient shape mismatch for parent {p} of node {i}"
                    );
                    match &mut grads[p] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            grads[i] = Some(grad);
        }
        self.grads = grads;
    }

    /// Drop all recorded nodes and gradients, keeping allocations.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.grads.clear();
    }
}

/// Numerically check the gradient of `f` w.r.t. a single input tensor using
/// central differences. Test-support utility used across the workspace's op
/// tests; `f` must rebuild its computation on a fresh tape each call and
/// return a scalar Var.
pub fn check_gradient(
    input: &Tensor,
    eps: f32,
    tol: f32,
    f: impl Fn(&mut Tape, Var) -> Var,
) -> Result<(), String> {
    // Analytic gradient.
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let y = f(&mut tape, x);
    tape.backward(y);
    let analytic = tape.grad(x).cloned().unwrap_or_else(|| Tensor::zeros(input.shape().clone()));

    for i in 0..input.numel() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;

        let eval = |t: &Tensor| -> f32 {
            let mut tape = Tape::new();
            let x = tape.leaf(t.clone());
            let y = f(&mut tape, x);
            tape.value(y).item()
        };
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        if (a - numeric).abs() / denom > tol {
            return Err(format!(
                "gradient mismatch at element {i}: analytic {a}, numeric {numeric}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = sum(x * x) has gradient 2x.
    fn square_sum(tape: &mut Tape, x: Var) -> Var {
        let xv = tape.value(x).clone();
        let sq = xv.zip(&xv, |a, b| a * b);
        let s = Tensor::scalar(sq.sum());
        tape.push_op(s, vec![x], move |ctx| {
            let g = ctx.grad.item();
            vec![ctx.parents[0].map(|v| 2.0 * v * g)]
        })
    }

    #[test]
    fn backward_simple_square() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 3.0]));
        let y = square_sum(&mut tape, x);
        assert_eq!(tape.value(y).item(), 14.0);
        tape.backward(y);
        assert_eq!(tape.grad(x).unwrap().data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn gradient_accumulates_across_fanout() {
        // z = sum(x*x) + sum(x*x): grad should be 4x.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        let a = square_sum(&mut tape, x);
        let b = square_sum(&mut tape, x);
        let sum = Tensor::scalar(tape.value(a).item() + tape.value(b).item());
        let z = tape.push_op(sum, vec![a, b], |ctx| {
            vec![ctx.grad.clone(), ctx.grad.clone()]
        });
        tape.backward(z);
        assert_eq!(tape.grad(x).unwrap().data(), &[4.0, 8.0]);
    }

    #[test]
    fn numeric_check_square() {
        let x = Tensor::from_vec(vec![0.5, -1.5, 2.0]);
        check_gradient(&x, 1e-3, 1e-2, square_sum).unwrap();
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_on_non_scalar_panics() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        tape.backward(x);
    }

    #[test]
    fn leaves_have_no_parents_and_grad_defaults_none() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(3.0));
        assert!(tape.grad(x).is_none());
        tape.backward(x);
        assert_eq!(tape.grad(x).unwrap().item(), 1.0);
    }
}
