//! The dense `f32` tensor type backing every model in the workspace.
//!
//! Data is stored contiguously in row-major order. All autodiff machinery
//! operates on plain `Tensor` values (see [`crate::tape`]); `Tensor` itself is
//! a value type with no graph bookkeeping.

use crate::shape::{IndexIter, Shape};
use std::fmt;

/// A dense, row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and backing data. Panics if the element
    /// count does not match the shape.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} implies {} elements but {} were provided",
            shape.numel(),
            data.len()
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, v: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![v; n] }
    }

    /// Rank-0 scalar.
    pub fn scalar(v: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![v] }
    }

    /// 1-D tensor from a slice.
    pub fn from_vec(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor { shape: Shape(vec![n]), data }
    }

    /// 2-D tensor from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Tensor::from_rows");
            data.extend_from_slice(row);
        }
        Tensor { shape: Shape(vec![r, c]), data }
    }

    /// Append one row to a rank-2 tensor in place (amortised O(row) — the
    /// streaming day-advance path grows price/return histories this way).
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(self.shape.rank(), 2, "push_row needs a rank-2 tensor");
        assert_eq!(row.len(), self.shape.0[1], "row length must match the column count");
        self.data.extend_from_slice(row);
        self.shape.0[0] += 1;
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `n` evenly spaced values in `[start, end)` with unit step semantics of
    /// `numpy.arange` when `step = (end-start)/n`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        if n == 0 {
            return Tensor::from_vec(vec![]);
        }
        if n == 1 {
            return Tensor::from_vec(vec![start]);
        }
        let step = (end - start) / (n as f32 - 1.0);
        Tensor::from_vec((0..n).map(|i| start + step * i as f32).collect())
    }

    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the backing buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Mutable value at a multi-index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.shape.flat_index(idx);
        &mut self.data[i]
    }

    /// The single value of a rank-0/1-element tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with {} elements", self.numel());
        self.data[0]
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {:?} -> {shape} changes element count",
            self.shape
        );
        Tensor { shape, data: self.data.clone() }
    }

    /// In-place reshape (no data movement).
    pub fn reshape_inplace(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.numel(), "reshape changes element count");
        self.shape = shape;
    }

    /// Map every element through `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Zip two same-shaped tensors elementwise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires identical shapes");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Elementwise in-place accumulate: `self += other`. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign requires identical shapes");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place scale.
    pub fn scale_assign(&mut self, k: f32) {
        for a in self.data.iter_mut() {
            *a *= k;
        }
    }

    /// Fill with a constant.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Broadcast this tensor to a larger shape (NumPy rules). Panics if
    /// incompatible. Returns a materialised contiguous tensor.
    pub fn broadcast_to(&self, target: &Shape) -> Tensor {
        if &self.shape == target {
            return self.clone();
        }
        assert!(
            self.shape.broadcast_with(target).map(|s| &s == target).unwrap_or(false),
            "cannot broadcast {:?} to {:?}",
            self.shape,
            target
        );
        let mut out = Tensor::zeros(target.clone());
        let src_dims = self.shape.dims();
        let src_strides = self.shape.strides();
        let rank_diff = target.rank() - self.shape.rank();
        for (flat, idx) in IndexIter::new(target).enumerate() {
            let mut src_flat = 0;
            for (d, &i) in idx.iter().enumerate() {
                if d >= rank_diff {
                    let sd = d - rank_diff;
                    let si = if src_dims[sd] == 1 { 0 } else { i };
                    src_flat += si * src_strides[sd];
                }
            }
            out.data[flat] = self.data[src_flat];
        }
        out
    }

    /// Reduce a broadcast gradient back to the original shape by summing over
    /// broadcast dimensions. Inverse of [`Tensor::broadcast_to`] for autodiff.
    pub fn reduce_to(&self, target: &Shape) -> Tensor {
        if &self.shape == target {
            return self.clone();
        }
        let mut out = Tensor::zeros(target.clone());
        let tgt_dims = target.dims();
        let tgt_strides = target.strides();
        let rank_diff = self.shape.rank() - target.rank();
        for (flat, idx) in IndexIter::new(&self.shape).enumerate() {
            let mut tgt_flat = 0;
            for (d, &i) in idx.iter().enumerate() {
                if d >= rank_diff {
                    let td = d - rank_diff;
                    let ti = if tgt_dims[td] == 1 { 0 } else { i };
                    tgt_flat += ti * tgt_strides[td];
                }
            }
            out.data[tgt_flat] += self.data[flat];
        }
        out
    }

    /// 2-D transpose. Panics unless rank == 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a matrix, got {:?}", self.shape);
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Extract row `i` of a matrix as a 1-D tensor.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let c = self.dims()[1];
        Tensor::from_vec(self.data[i * c..(i + 1) * c].to_vec())
    }

    /// Slice along the first axis: rows `[start, end)` (works for any rank).
    pub fn slice_axis0(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() >= 1, "slice_axis0 requires rank >= 1");
        let d0 = self.dims()[0];
        assert!(start <= end && end <= d0, "slice [{start}, {end}) out of bounds for axis of size {d0}");
        let inner: usize = self.dims()[1..].iter().product();
        let mut dims = self.dims().to_vec();
        dims[0] = end - start;
        Tensor::new(dims, self.data[start * inner..end * inner].to_vec())
    }

    /// Approximate equality with absolute tolerance, for tests.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... ({} elements)]", &self.data[..8], self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1).data(), &[4., 5., 6.]);
        assert_eq!(t.sum(), 21.0);
        assert!((t.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn shape_mismatch_panics() {
        let _ = Tensor::new([2, 2], vec![1., 2., 3.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn broadcast_to_and_reduce_to_are_adjoint_on_shapes() {
        let t = Tensor::new([1, 3], vec![1., 2., 3.]);
        let b = t.broadcast_to(&Shape::from([2, 3]));
        assert_eq!(b.data(), &[1., 2., 3., 1., 2., 3.]);
        let r = b.reduce_to(&Shape::from([1, 3]));
        assert_eq!(r.data(), &[2., 4., 6.]);
    }

    #[test]
    fn broadcast_scalar() {
        let s = Tensor::scalar(5.0);
        let b = s.broadcast_to(&Shape::from([2, 2]));
        assert_eq!(b.data(), &[5., 5., 5., 5.]);
        let r = Tensor::ones([2, 2]).reduce_to(&Shape::scalar());
        assert_eq!(r.item(), 4.0);
    }

    #[test]
    fn slice_axis0_3d() {
        let t = Tensor::new([3, 2, 2], (0..12).map(|x| x as f32).collect());
        let s = t.slice_axis0(1, 3);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.data()[0], 4.0);
    }

    #[test]
    fn eye_and_linspace() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[1, 1]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        let l = Tensor::linspace(0.0, 1.0, 5);
        assert!(l.allclose(&Tensor::from_vec(vec![0., 0.25, 0.5, 0.75, 1.0]), 1e-6));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([2]);
        assert!(!t.has_non_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
