//! Deterministic weight initialisation.
//!
//! Every stochastic component in the workspace takes an explicit seed so that
//! experiments are reproducible run-to-run (the paper averages 15 seeded
//! runs; our harnesses do the same with `--seeds`).

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a seeded RNG. Thin alias so call sites don't import rand directly.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform tensor in `[lo, hi)`.
pub fn uniform(shape: impl Into<crate::shape::Shape>, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    Tensor::new(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Standard-normal tensor scaled by `std`, via Box–Muller (keeps us inside
/// the allowed `rand` core API without `rand_distr`).
pub fn normal(shape: impl Into<crate::shape::Shape>, std: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::new(shape, data)
}

/// Xavier/Glorot uniform initialisation for a weight of shape
/// `[fan_in, fan_out]` (or higher rank, in which case the first dim is
/// treated as fan-in and the rest as fan-out).
pub fn xavier(shape: impl Into<crate::shape::Shape>, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let dims = shape.dims();
    let (fan_in, fan_out) = match dims.len() {
        0 | 1 => (1, dims.first().copied().unwrap_or(1)),
        _ => (dims[0], dims[1..].iter().product()),
    };
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -limit, limit, rng)
}

/// Kaiming/He normal initialisation (for ReLU stacks).
pub fn kaiming(shape: impl Into<crate::shape::Shape>, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let fan_in = shape.dims().first().copied().unwrap_or(1).max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, std, rng)
}

/// A single standard-normal scalar.
pub fn randn_scalar(rng: &mut StdRng) -> f32 {
    normal([1], 1.0, rng).data()[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = xavier([4, 4], &mut rng(7));
        let b = xavier([4, 4], &mut rng(7));
        assert_eq!(a, b);
        let c = xavier([4, 4], &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let t = normal([10_000], 2.0, &mut rng(42));
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_within_limit() {
        let t = xavier([16, 16], &mut rng(1));
        let limit = (6.0f32 / 32.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn uniform_bounds() {
        let t = uniform([1000], -0.5, 0.5, &mut rng(3));
        assert!(t.max() < 0.5 && t.min() >= -0.5);
    }
}
