//! Debug-build finite-value invariants for the autodiff kernels.
//!
//! The repo's NaN-discipline convention (DESIGN.md § "Static analysis &
//! invariants") keeps NaN out of kernel outputs and gradients; when one does
//! appear, it historically surfaced three crates downstream (a NaN IRR in a
//! bench table) with no pointer back to the op that produced it. The
//! [`finite_check!`] macro closes that gap: asserted at kernel boundaries —
//! forward outputs in [`crate::Tape`], per-parent gradients right after each
//! backward closure runs, parameter gradients in
//! [`crate::ParamStore::absorb_grads`] — it panics *at the producing op*,
//! naming it.
//!
//! Cost model: the checks are compiled out of release builds
//! (`debug_assertions` off — note the release profile's `debug = true` only
//! adds debuginfo, it does not enable debug assertions). In debug builds
//! they default on and can be disabled with `RTGCN_FINITE_CHECK=0` (read
//! once per process) or suppressed for a region via [`suppress`] — for tests
//! that deliberately drive a model to divergence.

use std::cell::Cell;
use std::sync::OnceLock;

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("RTGCN_FINITE_CHECK").map(|v| v != "0").unwrap_or(true))
}

thread_local! {
    static SUPPRESS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Is the finite check active on this thread right now?
pub fn enabled() -> bool {
    cfg!(debug_assertions) && env_enabled() && SUPPRESS_DEPTH.with(|d| d.get()) == 0
}

/// RAII region suppressing finite checks on the current thread (nestable).
/// For tests that intentionally produce non-finite values.
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

pub fn suppress() -> SuppressGuard {
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    SuppressGuard(())
}

/// Assert every element of `data` is finite. `stage` says which kernel
/// boundary ("forward output", "backward gradient", ...), `label` names the
/// producing op or parameter. Panics with both plus the offending index and
/// value, so the report pinpoints the origin instead of the symptom.
pub fn assert_all_finite(stage: &str, label: &str, data: &[f32]) {
    if !enabled() {
        return;
    }
    if let Some((i, v)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
        panic!(
            "finite_check failed: {stage} of `{label}` has non-finite value {v} at element {i} \
             (of {len}) — NaN/inf originates at this op, not downstream \
             (set RTGCN_FINITE_CHECK=0 to disable)",
            len = data.len()
        );
    }
}

/// Assert a tensor-or-slice is finite at a kernel boundary; compiled out of
/// release builds. Usage: `finite_check!("forward output", "matmul",
/// tensor.data())`.
#[macro_export]
macro_rules! finite_check {
    ($stage:expr, $label:expr, $data:expr) => {
        if cfg!(debug_assertions) {
            $crate::finite::assert_all_finite($stage, $label, $data);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_data_passes() {
        assert_all_finite("forward output", "t", &[0.0, -1.5, 3.0e20]);
        finite_check!("forward output", "t", &[1.0f32]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn non_finite_panics_with_stage_and_label() {
        let err = std::panic::catch_unwind(|| {
            assert_all_finite("backward gradient", "nan_kernel", &[1.0, f32::NAN]);
        })
        .expect_err("NaN must panic in debug builds");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("backward gradient"), "{msg}");
        assert!(msg.contains("nan_kernel"), "{msg}");
        assert!(msg.contains("element 1"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn suppress_guard_disables_and_restores() {
        {
            let _g = suppress();
            assert!(!enabled());
            assert_all_finite("forward output", "t", &[f32::INFINITY]);
            {
                let _g2 = suppress();
                assert!(!enabled());
            }
            assert!(!enabled(), "nested guard must not re-enable on drop");
        }
        assert!(enabled() || std::env::var("RTGCN_FINITE_CHECK").ok().as_deref() == Some("0"));
    }
}
