//! # rtgcn-tensor
//!
//! A from-scratch dense-tensor and reverse-mode autodiff engine sized for the
//! RT-GCN reproduction: every neural model in this workspace (RT-GCN itself,
//! the LSTM/GRU/SFM recurrences, GAT and hypergraph attention, the RL
//! baselines) runs on these kernels. No BLAS, no GPU — hot loops are
//! cache-conscious and parallelised with crossbeam scoped threads.
//!
//! ## Architecture
//!
//! - [`tensor::Tensor`] — contiguous row-major `f32` storage + shape.
//! - [`tape::Tape`] — define-by-run autodiff arena; ops live in [`ops`] as
//!   `impl Tape` extensions and register backward closures.
//! - [`param::ParamStore`] — persistent named parameters bound onto a fresh
//!   tape each step; [`optim`] consumes the accumulated gradients.
//! - [`linalg`] — raw (non-differentiable) matmul kernels shared by ops.
//! - [`init`] — seeded Xavier/Kaiming/uniform/normal initialisers.
//!
//! ## Example
//!
//! ```
//! use rtgcn_tensor::{Tape, Tensor, ParamStore, Adam, Optimizer};
//!
//! // Fit y = 2x with one weight.
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(0.0));
//! let mut opt = Adam::new(0.1, 0.0);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let wv = store.bind(&mut tape, w);
//!     let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
//!     let pred = tape.mul(x, wv);
//!     let loss = tape.mse(pred, &Tensor::from_vec(vec![2.0, 4.0, 6.0]));
//!     tape.backward(loss);
//!     store.absorb_grads(&tape);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).item() - 2.0).abs() < 1e-2);
//! ```

pub mod finite;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod optim;
pub mod param;
pub mod shape;
pub mod tape;
mod telemetry_hooks;
pub mod tensor;

pub use finite::{assert_all_finite, suppress, SuppressGuard};
pub use linalg::{num_threads, set_num_threads};
pub use ops::{ConvSpec, CsrEdges, Edges};
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use param::{check_param_gradients, ParamId, ParamStore};
pub use shape::Shape;
pub use tape::{check_gradient, BackwardCtx, Tape, Var};
pub use tensor::Tensor;
