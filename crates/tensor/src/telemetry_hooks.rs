//! Glue between the hot tensor kernels and `rtgcn-telemetry`.
//!
//! Kernel call sites cache their [`Counter`] handle in a function-local
//! `OnceLock` so the per-call cost at any log level is a couple of relaxed
//! atomic loads — cheap enough to leave compiled into release builds
//! (`RTGCN_LOG=off` keeps the criterion kernel benches within noise).

use rtgcn_telemetry::Counter;
use std::sync::OnceLock;

/// Fetch (once) the registry counter for a kernel call site.
#[inline]
pub(crate) fn kernel_counter(
    cell: &'static OnceLock<Counter>,
    name: &'static str,
) -> &'static Counter {
    cell.get_or_init(|| rtgcn_telemetry::counter(name))
}
