//! Dense linear-algebra kernels.
//!
//! These are the hot loops of every model in the workspace, so they are
//! written cache-consciously (i-k-j loop order so the innermost loop streams
//! both the `b` row and the output row) and parallelised across output rows
//! with crossbeam scoped threads once the work is large enough to amortise
//! thread startup.

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Work threshold (in fused multiply-adds) below which matmuls stay
/// single-threaded.
const PAR_THRESHOLD: usize = 1 << 18;

/// Sentinel for "no programmatic override set" in [`THREAD_OVERRIDE`].
const THREADS_UNSET: usize = usize::MAX;

/// Programmatic thread-count override (see [`set_num_threads`]); takes
/// precedence over the `RTGCN_THREADS` environment variable.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(THREADS_UNSET);

/// Force the kernel thread count from code; `Some(0)` and `Some(1)` both mean
/// fully serial, `None` restores the `RTGCN_THREADS` / auto-detect default.
/// Primarily for tests that must exercise both the serial and the threaded
/// paths deterministically within one process.
pub fn set_num_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(THREADS_UNSET), Ordering::SeqCst);
}

/// Worker-thread count for the dense and sparse kernels, resolved as:
///
/// 1. [`set_num_threads`] override, when set;
/// 2. the `RTGCN_THREADS` environment variable (`0` = serial; read once,
///    invalid values ignored);
/// 3. `available_parallelism()` capped at 8 (the historical default; the cap
///    avoids oversubscribing shared CI boxes, lift it explicitly via the env
///    var on big machines).
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced != THREADS_UNSET {
        return forced.max(1);
    }
    static ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let env = ENV.get_or_init(|| {
        std::env::var("RTGCN_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    });
    match env {
        Some(n) => (*n).max(1),
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
    }
}

/// Parallelise `f(row_range)` over `rows` rows when `work` is large enough.
/// Shared by the dense matmuls here and the fused sparse kernels in
/// [`crate::ops::sparse`].
pub(crate) fn par_rows(rows: usize, work: usize, out: &mut [f32], row_len: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let threads = num_threads();
    if work < PAR_THRESHOLD || threads <= 1 || rows < 2 * threads {
        for i in 0..rows {
            f(i, &mut out[i * row_len..(i + 1) * row_len]);
        }
        return;
    }
    let chunk = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        for (c, out_chunk) in out.chunks_mut(chunk * row_len).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let base = c * chunk;
                for (k, row) in out_chunk.chunks_mut(row_len).enumerate() {
                    f(base + k, row);
                }
            });
        }
    })
    .expect("matmul worker thread panicked");
}

/// `C = A · B` for row-major matrices `A: (m×k)`, `B: (k×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be a matrix, got {:?}", a.shape());
    assert_eq!(b.rank(), 2, "matmul rhs must be a matrix, got {:?}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims mismatch: {:?} x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    par_rows(m, m * n * k, out.data_mut(), n, |i, row| {
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (r, &bv) in row.iter_mut().zip(brow) {
                *r += av * bv;
            }
        }
    });
    out
}

/// `C = Aᵀ · B` for `A: (k×m)`, `B: (k×n)` without materialising `Aᵀ`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_tn lhs must be a matrix");
    assert_eq!(b.rank(), 2, "matmul_tn rhs must be a matrix");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims mismatch: {:?}ᵀ x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    // Serial k-loop per output row would stride badly through `a`; instead
    // accumulate rank-1 updates per k. Parallelising over output rows keeps
    // writes disjoint: out[i, :] += a[p, i] * b[p, :].
    par_rows(m, m * n * k, out.data_mut(), n, |i, row| {
        for p in 0..k {
            // SAFETY: `i < m` (par_rows hands each closure a row index below
            // the `m` passed as its first argument) and `p < k` by the loop
            // bound, so `p * m + i <= (k-1)*m + (m-1) < k*m == ad.len()`
            // (`ad` is the data of the `(k×m)` tensor validated above). The
            // unchecked load drops a bounds check from the innermost
            // column-strided access the optimiser cannot elide.
            let av = unsafe { *ad.get_unchecked(p * m + i) };
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (r, &bv) in row.iter_mut().zip(brow) {
                *r += av * bv;
            }
        }
    });
    out
}

/// `C = A · Bᵀ` for `A: (m×k)`, `B: (n×k)` without materialising `Bᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_nt lhs must be a matrix");
    assert_eq!(b.rank(), 2, "matmul_nt rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims mismatch: {:?} x {:?}ᵀ", a.shape(), b.shape());
    let mut out = Tensor::zeros([m, n]);
    let (ad, bd) = (a.data(), b.data());
    par_rows(m, m * n * k, out.data_mut(), n, |i, row| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, r) in row.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *r = acc;
        }
    });
    out
}

/// Matrix–vector product `y = A·x` for `A: (m×k)`, `x: (k)`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matvec lhs must be a matrix");
    assert_eq!(x.rank(), 1, "matvec rhs must be a vector");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, x.dims()[0], "matvec dims mismatch");
    let mut out = vec![0.0; m];
    let (ad, xd) = (a.data(), x.data());
    for (i, o) in out.iter_mut().enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        *o = arow.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec(out)
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.numel(), b.numel(), "dot length mismatch");
    a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum()
}

/// Outer product `x yᵀ` of two vectors.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 1, "outer expects vectors");
    assert_eq!(y.rank(), 1, "outer expects vectors");
    let (m, n) = (x.dims()[0], y.dims()[0]);
    let mut out = Tensor::zeros([m, n]);
    for i in 0..m {
        let xv = x.data()[i];
        for j in 0..n {
            out.data_mut()[i * n + j] = xv * y.data()[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::new([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree() {
        let mut seed = 1u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a = Tensor::new([7, 5], (0..35).map(|_| next()).collect());
        let b = Tensor::new([5, 9], (0..45).map(|_| next()).collect());
        let expect = naive_matmul(&a, &b);
        assert!(matmul(&a, &b).allclose(&expect, 1e-4));
        assert!(matmul_tn(&a.transpose(), &b).allclose(&expect, 1e-4));
        assert!(matmul_nt(&a, &b.transpose()).allclose(&expect, 1e-4));
    }

    #[test]
    fn matmul_large_parallel_path() {
        // Big enough to exercise the threaded branch.
        let m = 300;
        let a = Tensor::ones([m, m]);
        let b = Tensor::full([m, m], 2.0);
        let c = matmul(&a, &b);
        assert!((c.at(&[0, 0]) - 2.0 * m as f32).abs() < 1e-3);
        assert!((c.at(&[m - 1, m - 1]) - 2.0 * m as f32).abs() < 1e-3);
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::new([2, 3], vec![1., 0., 2., 0., 1., 3.]);
        let x = Tensor::from_vec(vec![1., 2., 3.]);
        let y = matvec(&a, &x);
        assert_eq!(y.data(), &[7., 11.]);
        assert_eq!(dot(&x, &x), 14.0);
    }

    #[test]
    fn outer_product() {
        let x = Tensor::from_vec(vec![1., 2.]);
        let y = Tensor::from_vec(vec![3., 4., 5.]);
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3., 4., 5., 6., 8., 10.]);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_mismatch_panics() {
        let _ = matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    /// Serialises tests that mutate the process-global thread override.
    fn override_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn thread_override_resolution() {
        let _guard = override_lock();
        // A programmatic override beats everything; 0 degrades to serial (1).
        set_num_threads(Some(3));
        assert_eq!(num_threads(), 3);
        set_num_threads(Some(0));
        assert_eq!(num_threads(), 1);
        set_num_threads(None);
        // Without an override the count comes from RTGCN_THREADS or the
        // auto-detect fallback — either way it is at least 1.
        assert!(num_threads() >= 1);
    }

    #[test]
    fn serial_and_threaded_paths_agree() {
        let _guard = override_lock();
        // Large enough to clear PAR_THRESHOLD so the threaded branch runs.
        let m = 96;
        let mut seed = 9u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a = Tensor::new([m, m], (0..m * m).map(|_| next()).collect());
        let b = Tensor::new([m, m], (0..m * m).map(|_| next()).collect());
        set_num_threads(Some(1));
        let serial = matmul(&a, &b);
        set_num_threads(Some(4));
        let threaded = matmul(&a, &b);
        set_num_threads(None);
        // Row partitioning does not change per-row accumulation order, so the
        // two paths must agree bit-for-bit.
        assert_eq!(serial.data(), threaded.data());
    }
}
