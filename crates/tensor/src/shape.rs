//! Shape utilities: dimension bookkeeping, row-major strides and NumPy-style
//! broadcasting used by every tensor op in the workspace.

use std::fmt;

/// A tensor shape (row-major). Thin wrapper over `Vec<usize>` so that shape
/// logic (strides, broadcasting, element counts) lives in one place.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size along dimension `d`. Panics if out of range.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Whether two shapes are broadcast-compatible (aligned from the right,
    /// each pair of dims equal or one of them 1).
    pub fn broadcast_compatible(&self, other: &Shape) -> bool {
        self.broadcast_with(other).is_some()
    }

    /// The broadcast result shape of `self` and `other`, or `None` if they
    /// are incompatible.
    pub fn broadcast_with(&self, other: &Shape) -> Option<Shape> {
        let r = self.rank().max(other.rank());
        let mut out = vec![0; r];
        for i in 0..r {
            let a = dim_from_right(&self.0, i);
            let b = dim_from_right(&other.0, i);
            let d = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
            out[r - 1 - i] = d;
        }
        Some(Shape(out))
    }

    /// Flat (row-major) index for a multi-dimensional index. Debug-asserts
    /// bounds.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut flat = 0;
        let mut acc = 1;
        for (i, &d) in self.0.iter().enumerate().rev() {
            debug_assert!(idx[i] < d, "index {} out of bounds for dim {i} of size {d}", idx[i]);
            flat += idx[i] * acc;
            acc *= d;
        }
        flat
    }

    /// The dims as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }
}

#[inline]
fn dim_from_right(dims: &[usize], i: usize) -> usize {
    if i < dims.len() {
        dims[dims.len() - 1 - i]
    } else {
        1
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

/// Iterator over all multi-indices of a shape in row-major order. Used by
/// generic broadcasting fallbacks (hot paths use specialised kernels).
pub struct IndexIter {
    dims: Vec<usize>,
    cur: Vec<usize>,
    done: bool,
}

impl IndexIter {
    pub fn new(shape: &Shape) -> Self {
        let done = shape.numel() == 0;
        IndexIter { dims: shape.0.clone(), cur: vec![0; shape.rank()], done }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // advance odometer
        let mut i = self.dims.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.cur[i] += 1;
            if self.cur[i] < self.dims[i] {
                break;
            }
            self.cur[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn flat_index_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.flat_index(&[0, 0, 0]), 0);
        assert_eq!(s.flat_index(&[1, 2, 3]), 23);
        assert_eq!(s.flat_index(&[1, 0, 2]), 14);
    }

    #[test]
    fn broadcasting_rules() {
        let a = Shape::from([3, 1, 4]);
        let b = Shape::from([2, 4]);
        assert_eq!(a.broadcast_with(&b).unwrap().dims(), &[3, 2, 4]);
        let c = Shape::from([3, 5]);
        assert!(a.broadcast_with(&c).is_none());
        // scalar broadcasts with anything
        assert_eq!(Shape::scalar().broadcast_with(&a).unwrap().dims(), a.dims());
    }

    #[test]
    fn index_iter_row_major_order() {
        let s = Shape::from([2, 2]);
        let idxs: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(idxs, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn index_iter_scalar_yields_one() {
        let idxs: Vec<_> = IndexIter::new(&Shape::scalar()).collect();
        assert_eq!(idxs, vec![Vec::<usize>::new()]);
    }
}
