//! Property-based tests for the tensor engine: algebraic identities of the
//! linalg kernels and structural invariants of the sparse/conv ops under
//! random inputs.

use proptest::prelude::*;
use rtgcn_tensor::{linalg, ConvSpec, Edges, Tape, Tensor};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::new([rows, cols], data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A(B + C) == AB + AC (within f32 tolerance).
    #[test]
    fn matmul_distributes((m, k, n) in (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|d| Just(d))) {
        let runner = |seed: u64, r: usize, c: usize| {
            let mut rng = rtgcn_tensor::init::rng(seed);
            rtgcn_tensor::init::uniform([r, c], -2.0, 2.0, &mut rng)
        };
        let a = runner(1, m, k);
        let b = runner(2, k, n);
        let c = runner(3, k, n);
        let bc = b.zip(&c, |x, y| x + y);
        let lhs = linalg::matmul(&a, &bc);
        let ab = linalg::matmul(&a, &b);
        let ac = linalg::matmul(&a, &c);
        let rhs = ab.zip(&ac, |x, y| x + y);
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// matmul_tn(Aᵀ stored as A) and matmul_nt agree with explicit
    /// transposition for arbitrary rectangular matrices.
    #[test]
    fn transpose_free_kernels_agree(a in matrix(4, 3), b in matrix(3, 5)) {
        let expect = linalg::matmul(&a, &b);
        let via_tn = linalg::matmul_tn(&a.transpose(), &b);
        let via_nt = linalg::matmul_nt(&a, &b.transpose());
        prop_assert!(via_tn.allclose(&expect, 1e-3));
        prop_assert!(via_nt.allclose(&expect, 1e-3));
    }

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(a in matrix(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// conv out_len: ⌈L/stride⌉ for any L, stride.
    #[test]
    fn conv_out_len_formula(l in 1usize..100, stride in 1usize..5, kernel in 1usize..5) {
        let spec = ConvSpec::new(kernel, stride, 1);
        prop_assert_eq!(spec.out_len(l), l.div_ceil(stride));
    }

    /// spmm against an explicit dense multiply for a random graph.
    #[test]
    fn spmm_matches_dense(
        n in 2usize..8,
        f in 1usize..5,
        edge_bits in proptest::collection::vec((0usize..8, 0usize..8, -3.0f32..3.0), 0..20),
    ) {
        let mut dense = Tensor::zeros([n, n]);
        let mut pairs = Vec::new();
        let mut weights = Vec::new();
        for (s, d, w) in edge_bits {
            let (s, d) = (s % n, d % n);
            pairs.push([s, d]);
            weights.push(w);
            *dense.at_mut(&[d, s]) += w;
        }
        let edges = Edges::new(n, pairs);
        let mut rng = rtgcn_tensor::init::rng(9);
        let x = rtgcn_tensor::init::uniform([n, f], -1.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let wv = tape.constant(Tensor::from_vec(weights));
        let xv = tape.constant(x.clone());
        let y = tape.spmm(&edges, wv, xv);
        let expect = linalg::matmul(&dense, &x);
        prop_assert!(tape.value(y).allclose(&expect, 1e-3));
    }

    /// Gradient of mean_all is uniform 1/n.
    #[test]
    fn mean_gradient_uniform(data in proptest::collection::vec(-5.0f32..5.0, 1..40)) {
        let n = data.len();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(data));
        let m = tape.mean_all(x);
        tape.backward(m);
        let g = tape.grad(x).unwrap();
        for &v in g.data() {
            prop_assert!((v - 1.0 / n as f32).abs() < 1e-5);
        }
    }

    /// Backward through chained elementwise ops obeys the chain rule:
    /// d/dx sum(sigmoid(kx)) == k·σ'(kx).
    #[test]
    fn chain_rule_scale_sigmoid(data in proptest::collection::vec(-3.0f32..3.0, 1..20), k in -2.0f32..2.0) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(data.clone()));
        let kx = tape.scale(x, k);
        let s = tape.sigmoid(kx);
        let total = tape.sum_all(s);
        tape.backward(total);
        let g = tape.grad(x).unwrap();
        for (i, &xv) in data.iter().enumerate() {
            let sig = 1.0 / (1.0 + (-k * xv).exp());
            let expect = k * sig * (1.0 - sig);
            prop_assert!((g.data()[i] - expect).abs() < 1e-4, "at {i}: {} vs {expect}", g.data()[i]);
        }
    }
}
