//! Acceptance tests for the debug-build finite-value invariant layer
//! (ISSUE 6): a NaN injected into a kernel must be caught *at the producing
//! op* — named in the panic message — not three ops downstream where the
//! gradient finally accumulates into a parameter.
//!
//! All failure-path tests are `#[cfg(debug_assertions)]`: the checks are
//! compiled out of release builds by design, and these tests prove exactly
//! the debug-build contract.

use rtgcn_tensor::{ParamStore, Tape, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// A NaN produced by one op's *backward* closure panics naming that op and
/// the "backward gradient" stage — even though finite downstream ops
/// (`scale`, `sum_all`) sit between it and the backward root and run their
/// own backwards first. This is the producer-attribution guarantee: the
/// report points at `nan_kernel`, not at whatever op the NaN would have
/// reached next.
#[cfg(debug_assertions)]
#[test]
fn nan_in_backward_is_caught_at_the_producing_op() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0]));
    // Forward value is finite (passes the forward check); the backward
    // closure injects NaN into the gradient it hands back to `x`.
    let bad = tape.push_op_named("nan_kernel", Tensor::from_vec(vec![1.0, 2.0, 3.0]), vec![x], |ctx| {
        let mut g = ctx.grad.data().to_vec();
        g[1] = f32::NAN;
        vec![Tensor::new(ctx.parents[0].shape().clone(), g)]
    });
    // Finite downstream ops whose backwards run *before* nan_kernel's.
    let y = tape.scale(bad, 2.0);
    let s = tape.sum_all(y);

    let err = catch_unwind(AssertUnwindSafe(|| tape.backward(s)))
        .expect_err("NaN gradient must panic in a debug build");
    let msg = panic_message(err);
    assert!(msg.contains("nan_kernel"), "panic must name the producing op, got: {msg}");
    assert!(msg.contains("backward gradient"), "panic must name the stage, got: {msg}");
    assert!(
        !msg.contains("`scale`") && !msg.contains("`sum_all`"),
        "panic must not blame a downstream op, got: {msg}"
    );
}

/// A non-finite *forward* output panics at `push_op_named` time, naming the
/// op, before the value can flow anywhere else.
#[cfg(debug_assertions)]
#[test]
fn non_finite_forward_output_is_caught_at_registration() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_vec(vec![1.0]));
    let err = catch_unwind(AssertUnwindSafe(|| {
        tape.push_op_named("inf_forward", Tensor::from_vec(vec![f32::INFINITY]), vec![x], |ctx| {
            vec![ctx.grad.clone()]
        })
    }))
    .expect_err("non-finite forward output must panic in a debug build");
    let msg = panic_message(err);
    assert!(msg.contains("inf_forward"), "got: {msg}");
    assert!(msg.contains("forward output"), "got: {msg}");
}

/// The third kernel boundary: a NaN arriving in a parameter's absorbed
/// gradient panics naming the *parameter*, at `absorb_grads` — not later in
/// the optimiser step.
#[cfg(debug_assertions)]
#[test]
fn nan_absorbed_param_gradient_names_the_parameter() {
    let mut params = ParamStore::new();
    let w = params.add("probe.weight", Tensor::from_vec(vec![1.0, 1.0]));
    let mut tape = Tape::new();
    let wv = params.bind(&mut tape, w);
    // The op's backward emits NaN toward the parameter. Suppress the
    // per-node check so the NaN survives to the absorb boundary — this
    // test targets the absorb_grads assertion specifically.
    let bad = {
        let _quiet = rtgcn_tensor::suppress();
        let bad = tape.push_op_named("nan_to_param", Tensor::from_vec(vec![1.0, 1.0]), vec![wv], |ctx| {
            vec![Tensor::new(ctx.parents[0].shape().clone(), vec![f32::NAN, 0.0])]
        });
        let s = tape.sum_all(bad);
        tape.backward(s);
        bad
    };
    let _ = bad;
    let err = catch_unwind(AssertUnwindSafe(|| params.absorb_grads(&tape)))
        .expect_err("NaN absorbed gradient must panic in a debug build");
    let msg = panic_message(err);
    assert!(msg.contains("probe.weight"), "panic must name the parameter, got: {msg}");
    assert!(msg.contains("absorbed gradient"), "got: {msg}");
}

/// `suppress()` lets tests drive models to divergence deliberately: within
/// the guard the same NaN-producing graph runs to completion.
#[test]
fn suppress_guard_allows_deliberate_non_finite_values() {
    let _quiet = rtgcn_tensor::suppress();
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
    let bad = tape.push_op_named("nan_kernel", Tensor::from_vec(vec![f32::NAN, 1.0]), vec![x], |ctx| {
        vec![Tensor::new(ctx.parents[0].shape().clone(), vec![f32::NAN, f32::NAN])]
    });
    let s = tape.sum_all(bad);
    tape.backward(s);
    assert!(tape.grad(x).unwrap().data()[0].is_nan());
}

/// The built-in ops register real names: a healthy graph runs clean under
/// the checks, and the names flow through `backward` without interfering
/// with gradient accumulation.
#[test]
fn named_builtin_ops_run_clean_under_checks() {
    let mut tape = Tape::new();
    let a = tape.leaf(Tensor::new([2, 2], vec![1.0, 2.0, 3.0, 4.0]));
    let b = tape.leaf(Tensor::new([2, 2], vec![0.5, -0.5, 1.5, -1.5]));
    let m = tape.matmul(a, b);
    let r = tape.relu(m);
    let s = tape.sum_all(r);
    tape.backward(s);
    assert!(tape.grad(a).unwrap().data().iter().all(|v| v.is_finite()));
}
