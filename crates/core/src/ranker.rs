//! The common interface every model in the evaluation implements, plus the
//! RT-GCN implementation. Harnesses (Tables IV–VII, Figures 5–8) drive
//! models exclusively through [`StockRanker`], so RT-GCN and all eleven
//! baselines are interchangeable.

use crate::model::RtGcn;
use rtgcn_market::StockDataset;
use rtgcn_telemetry::health::{EpochHealth, HealthConfig, HealthMonitor, HealthVerdict};
use rtgcn_tensor::Adam;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Cumulative wall-clock seconds spent in each training phase across all
/// epochs of a fit. RT-GCN fills every field; models without a comparable
/// structure leave this at the all-zero default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseSecs {
    /// Relational graph convolution (forward).
    pub relational: f64,
    /// Temporal convolution stack (forward).
    pub temporal: f64,
    /// Loss evaluation (combined regression + pairwise ranking).
    pub loss: f64,
    /// Reverse-mode sweep + gradient absorption.
    pub backward: f64,
    /// Gradient clipping + optimiser step.
    pub optim: f64,
}

impl PhaseSecs {
    pub fn total(&self) -> f64 {
        self.relational + self.temporal + self.loss + self.backward + self.optim
    }
}

/// Outcome of fitting a model (Figure 5's speed comparison reads the times).
/// Serialisable so the parallel runner's job journal can round-trip
/// completed seed runs across harness restarts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FitReport {
    /// Wall-clock seconds spent training.
    pub train_secs: f64,
    /// Mean training loss of the final epoch (NaN for non-loss models).
    pub final_loss: f32,
    /// Per-epoch mean losses.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds per epoch (empty for single-shot fits).
    pub epoch_secs: Vec<f64>,
    /// Per-phase breakdown (all-zero for models that don't report phases).
    pub phase_secs: PhaseSecs,
    /// Training-health verdict, worst across epochs (`Healthy` for models
    /// that don't run the monitor — single-shot fits like ARIMA).
    pub health: HealthVerdict,
    /// Per-epoch numerical diagnostics (empty for unmonitored fits). When
    /// `abort_on_divergence` stopped the fit early this is shorter than the
    /// configured epoch budget.
    pub epoch_health: Vec<EpochHealth>,
}

/// A model that ranks stocks by expected next-day return ratio.
pub trait StockRanker {
    /// Display name used in result tables (e.g. `RT-GCN (T)`).
    fn name(&self) -> String;

    /// Train on the dataset's training split.
    fn fit(&mut self, ds: &StockDataset) -> FitReport;

    /// Ranking scores for the window ending at `end_day` (higher = buy).
    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32>;

    /// Score an arbitrary `(T, N, D)` feature window directly — the
    /// serving path for `POST /score`. `None` for models that only score
    /// dataset days (the default), or whose lazy graph state has not been
    /// built yet (call [`Self::prepare`] first).
    fn score_window(&mut self, x: &rtgcn_tensor::Tensor) -> Option<Vec<f32>> {
        let _ = x;
        None
    }

    /// Streaming variant of [`Self::score_window`]: the day-advance engine
    /// may pass a precomputed `(T, E_rel)` time-sensitive correlation factor
    /// from its per-plane cache. Models that can consume it (RT-GCN's
    /// time-sensitive strategy) skip re-dotting every plane; everyone else
    /// ignores it and scores normally — the default.
    fn score_window_streamed(
        &mut self,
        x: &rtgcn_tensor::Tensor,
        corr: Option<&rtgcn_tensor::Tensor>,
    ) -> Option<Vec<f32>> {
        let _ = corr;
        self.score_window(x)
    }

    /// Rebuild relation-derived state after the graph mutated (streaming
    /// edge add/drop events). Returns whether the model took the new tensor;
    /// `false` (the default) means the model has no relation state or cannot
    /// absorb the change, and the caller must fall back to a full refit.
    fn refresh_relations(&mut self, relations: &rtgcn_graph::RelationTensor) -> bool {
        let _ = relations;
        false
    }

    /// Whether scores are a true ranking. Classification baselines return
    /// `false`: their "scores" are class ids (2 = up, 1 = neutral, 0 = down)
    /// and the evaluator falls back to random top-N among predicted-up
    /// stocks (paper Section V-C.1).
    fn can_rank(&self) -> bool {
        true
    }

    /// Force lazy dataset-derived state (relation graphs, hypergraph
    /// layouts) into existence *without* training, so checkpoint parameters
    /// can be applied to a freshly constructed model. Models that build
    /// everything in their constructor keep the no-op default.
    fn prepare(&mut self, ds: &StockDataset) {
        let _ = ds;
    }

    /// The model's trainable parameters, if it exposes a [`ParamStore`]
    /// (checkpointable families return `Some`; closed-form baselines like
    /// ARIMA return the `None` default and cannot be served).
    fn param_store(&self) -> Option<&rtgcn_tensor::ParamStore> {
        None
    }

    /// Mutable access to the parameter store (see [`Self::param_store`]).
    fn param_store_mut(&mut self) -> Option<&mut rtgcn_tensor::ParamStore> {
        None
    }
}

impl StockRanker for RtGcn {
    fn name(&self) -> String {
        let mut label = self.config.strategy.label().to_string();
        if !self.config.use_temporal {
            label = "R-Conv".to_string();
        } else if !self.config.use_relational {
            label = "T-Conv".to_string();
        }
        label
    }

    fn fit(&mut self, ds: &StockDataset) -> FitReport {
        let _fit_span = rtgcn_telemetry::span("fit");
        let t0 = Instant::now();
        let mut opt = Adam::new(self.config.lr, self.config.lambda);
        let days = ds.train_end_days(self.config.t_steps);
        if self.config.epochs == 0 {
            rtgcn_telemetry::warn(
                "fit.zero_epochs",
                &format!("{}: fit called with epochs == 0; final_loss is NaN", self.name()),
            );
        }
        if days.is_empty() && self.config.epochs > 0 {
            rtgcn_telemetry::warn(
                "fit.empty_split",
                &format!(
                    "{}: training split has no usable days for t_steps = {}; \
                     epoch losses are NaN",
                    self.name(),
                    self.config.t_steps
                ),
            );
        }
        self.reset_phase_clock();
        let mut monitor = HealthMonitor::new(
            &self.name(),
            HealthConfig {
                abort_on_divergence: self.config.abort_on_divergence,
                ..HealthConfig::default()
            },
        );
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut epoch_secs = Vec::with_capacity(self.config.epochs);
        for _epoch in 0..self.config.epochs {
            let _epoch_span = rtgcn_telemetry::span("epoch");
            let e0 = Instant::now();
            let mut acc = 0.0f64;
            for &day in &days {
                let s = ds.sample(day, self.config.t_steps, self.config.n_features);
                let st = self.train_step_stats(&s.x, &s.y, &mut opt);
                acc += st.loss as f64;
                monitor.observe_step(st.loss, st.mse, st.rank, st.grad_norm);
            }
            // An empty split yields NaN, not a silent 0.0 that would read as
            // a perfectly converged model downstream.
            let mean = if days.is_empty() { f32::NAN } else { (acc / days.len() as f64) as f32 };
            epoch_losses.push(mean);
            epoch_secs.push(e0.elapsed().as_secs_f64());
            monitor.end_epoch(self.weight_norm(), self.config.lambda);
            if monitor.should_abort() {
                break;
            }
        }
        let (health, epoch_health) = monitor.finish();
        FitReport {
            train_secs: t0.elapsed().as_secs_f64(),
            final_loss: epoch_losses.last().copied().unwrap_or(f32::NAN),
            epoch_losses,
            epoch_secs,
            phase_secs: self.phase_secs(),
            health,
            epoch_health,
        }
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.config.t_steps, self.config.n_features);
        self.score(&s.x)
    }

    fn score_window(&mut self, x: &rtgcn_tensor::Tensor) -> Option<Vec<f32>> {
        Some(self.score(x))
    }

    fn score_window_streamed(
        &mut self,
        x: &rtgcn_tensor::Tensor,
        corr: Option<&rtgcn_tensor::Tensor>,
    ) -> Option<Vec<f32>> {
        use crate::config::Strategy;
        match corr {
            // The override is only sound when exactly one relational layer
            // consumes the raw input window on the fused path: with stacked
            // layers the second convolution dots *hidden* activations, which
            // the per-plane cache does not model.
            Some(c)
                if self.config.fused
                    && self.config.use_relational
                    && self.config.layers == 1
                    && self.config.strategy == Strategy::TimeSensitive =>
            {
                Some(self.score_with_corr(x, c))
            }
            _ => self.score_window(x),
        }
    }

    fn refresh_relations(&mut self, relations: &rtgcn_graph::RelationTensor) -> bool {
        RtGcn::refresh_relations(self, relations)
    }

    fn param_store(&self) -> Option<&rtgcn_tensor::ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut rtgcn_tensor::ParamStore> {
        Some(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RtGcnConfig, Strategy};
    use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
    use rtgcn_telemetry::Level;

    fn tiny_dataset() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 12;
        spec.train_days = 60;
        spec.test_days = 10;
        spec.sectors = 3;
        StockDataset::generate(spec, 1)
    }

    fn tiny_config(strategy: Strategy) -> RtGcnConfig {
        RtGcnConfig {
            t_steps: 8,
            n_features: 2,
            rel_filters: 8,
            temporal_filters: 8,
            epochs: 2,
            strategy,
            dropout: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn fit_and_score_through_trait() {
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut model = RtGcn::new(tiny_config(Strategy::Weighted), &relations, 3);
        let report = model.fit(&ds);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(report.train_secs > 0.0);
        assert!(report.final_loss.is_finite());
        let day = ds.test_end_days()[0];
        let scores = model.scores_for_day(&ds, day);
        assert_eq!(scores.len(), ds.n_stocks());
        assert!(model.can_rank());
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut cfg = tiny_config(Strategy::Uniform);
        cfg.epochs = 4;
        let mut model = RtGcn::new(cfg, &relations, 5);
        let report = model.fit(&ds);
        assert!(
            report.epoch_losses.last().unwrap() <= report.epoch_losses.first().unwrap(),
            "losses {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn zero_epoch_fit_reports_nan_and_warns() {
        let _gate = rtgcn_telemetry::test_scope(Level::Summary);
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut cfg = tiny_config(Strategy::Uniform);
        cfg.epochs = 0;
        let mut model = RtGcn::new(cfg, &relations, 9);
        let report = model.fit(&ds);
        assert!(report.final_loss.is_nan(), "epochs == 0 must yield NaN, got {}", report.final_loss);
        assert!(report.epoch_losses.is_empty());
        assert!(report.epoch_secs.is_empty());
        let events = rtgcn_telemetry::drain_memory_sink().join("\n");
        assert!(
            events.contains("fit.zero_epochs"),
            "expected fit.zero_epochs warning, got: {events}"
        );
    }

    #[test]
    fn empty_training_split_reports_nan_and_warns() {
        let _gate = rtgcn_telemetry::test_scope(Level::Summary);
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut cfg = tiny_config(Strategy::Uniform);
        // Window longer than the training split → no usable end days.
        cfg.t_steps = ds.spec.train_days + ds.spec.test_days + 10;
        cfg.epochs = 2;
        let mut model = RtGcn::new(cfg, &relations, 9);
        let report = model.fit(&ds);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(
            report.epoch_losses.iter().all(|l| l.is_nan()),
            "empty split must yield NaN losses, not a silent 0.0: {:?}",
            report.epoch_losses
        );
        assert!(report.final_loss.is_nan());
        let events = rtgcn_telemetry::drain_memory_sink().join("\n");
        assert!(
            events.contains("fit.empty_split"),
            "expected fit.empty_split warning, got: {events}"
        );
    }

    #[test]
    fn fit_report_carries_epoch_and_phase_timings() {
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut model = RtGcn::new(tiny_config(Strategy::Weighted), &relations, 3);
        let report = model.fit(&ds);
        assert_eq!(report.epoch_secs.len(), 2, "one wall-clock entry per epoch");
        assert!(report.epoch_secs.iter().all(|&s| s > 0.0));
        let p = report.phase_secs;
        assert!(p.relational > 0.0, "relational phase untimed");
        assert!(p.temporal > 0.0, "temporal phase untimed");
        assert!(p.loss > 0.0, "loss phase untimed");
        assert!(p.backward > 0.0, "backward phase untimed");
        assert!(p.optim > 0.0, "optimiser phase untimed");
        assert!(
            p.total() <= report.train_secs * 1.05,
            "phases ({}) cannot exceed total train time ({})",
            p.total(),
            report.train_secs
        );
    }

    #[test]
    fn healthy_fit_reports_verdict_and_per_epoch_diagnostics() {
        let _gate = rtgcn_telemetry::test_scope(Level::Summary);
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut model = RtGcn::new(tiny_config(Strategy::Weighted), &relations, 3);
        let report = model.fit(&ds);
        assert_eq!(report.health, HealthVerdict::Healthy, "{:?}", report.epoch_health);
        assert_eq!(report.epoch_health.len(), 2);
        for e in &report.epoch_health {
            assert!(e.loss.is_finite() && e.mse.is_finite() && e.rank.is_finite());
            assert!(e.grad_norm.is_finite() && e.grad_norm > 0.0);
            assert!(e.weight_norm.is_finite() && e.weight_norm > 0.0);
            assert!(e.l2 > 0.0, "λ‖θ‖² must be positive for λ > 0");
            assert_eq!(e.non_finite_steps, 0);
            // The components recompose the combined objective (Eq. 9).
            let recomposed = e.mse + model.config.alpha * e.rank;
            assert!((recomposed - e.loss).abs() < 1e-3 * e.loss.abs().max(1.0));
        }
        // Per-epoch series land in the registry with monotone epoch indices.
        let loss_series = rtgcn_telemetry::series_points("fit.loss");
        assert_eq!(loss_series.len(), 2);
        assert!(loss_series[0].index < loss_series[1].index);
        let events = rtgcn_telemetry::drain_memory_sink().join("\n");
        assert!(events.contains("\"health\""), "health event missing: {events}");
    }

    #[test]
    fn absurd_lr_diverges_warns_and_aborts_early() {
        let _gate = rtgcn_telemetry::test_scope(Level::Summary);
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut cfg = tiny_config(Strategy::Uniform);
        cfg.lr = 1e4; // absurd: Adam steps of ~1e4 per parameter
        cfg.epochs = 8;
        cfg.abort_on_divergence = true;
        let mut model = RtGcn::new(cfg, &relations, 9);
        let report = model.fit(&ds);
        assert_eq!(report.health, HealthVerdict::Diverged, "{:?}", report.epoch_health);
        assert!(
            report.epoch_losses.len() < 8,
            "early abort must stop before the epoch budget: ran {} epochs",
            report.epoch_losses.len()
        );
        assert_eq!(report.epoch_health.len(), report.epoch_losses.len());
        let events = rtgcn_telemetry::drain_memory_sink().join("\n");
        assert!(events.contains("fit.diverged"), "expected fit.diverged warn: {events}");
    }

    #[test]
    fn divergence_without_abort_runs_the_full_epoch_budget() {
        let _gate = rtgcn_telemetry::test_scope(Level::Summary);
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut cfg = tiny_config(Strategy::Uniform);
        cfg.lr = 1e4;
        cfg.epochs = 3;
        let mut model = RtGcn::new(cfg, &relations, 9);
        let report = model.fit(&ds);
        assert_eq!(report.health, HealthVerdict::Diverged);
        assert_eq!(report.epoch_losses.len(), 3, "abort is opt-in");
    }

    #[test]
    fn names_for_ablations() {
        let ds = tiny_dataset();
        let relations = ds.relations(RelationKind::Both);
        let mut r = RtGcnConfig::r_conv();
        r.t_steps = 8;
        r.n_features = 2;
        let m = RtGcn::new(r, &relations, 1);
        assert_eq!(m.name(), "R-Conv");
        let mut t = RtGcnConfig::t_conv();
        t.t_steps = 8;
        t.n_features = 2;
        let m = RtGcn::new(t, &relations, 1);
        assert_eq!(m.name(), "T-Conv");
        let m = RtGcn::new(tiny_config(Strategy::TimeSensitive), &relations, 1);
        assert_eq!(m.name(), "RT-GCN (T)");
    }
}
