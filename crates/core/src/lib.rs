//! # rtgcn-core
//!
//! The paper's contribution: RT-GCN, a relational temporal graph
//! convolutional network for ranking-based stock prediction (Zheng et al.,
//! ICDE 2023).
//!
//! - [`config`] — hyperparameters and the [`config::Strategy`] enum;
//! - [`strategy`] — differentiable construction of the weighted adjacency
//!   for the uniform / weighted / time-sensitive strategies (Eqs. 3–5);
//! - [`layers`] — relational graph convolution and the weight-normalised
//!   causal temporal convolution block;
//! - [`model`] — the end-to-end [`model::RtGcn`] (Figure 3);
//! - [`ranker`] — the [`ranker::StockRanker`] trait every evaluated model
//!   implements, with RT-GCN's implementation.
//!
//! ```no_run
//! use rtgcn_core::{RtGcn, RtGcnConfig, Strategy, StockRanker};
//! use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
//!
//! let ds = StockDataset::generate(UniverseSpec::of(Market::Nasdaq, Scale::Small), 42);
//! let relations = ds.relations(RelationKind::Both);
//! let mut model = RtGcn::new(RtGcnConfig::with_strategy(Strategy::TimeSensitive), &relations, 42);
//! let report = model.fit(&ds);
//! println!("trained in {:.1}s, final loss {:.4}", report.train_secs, report.final_loss);
//! ```

pub mod checkpoint;
pub mod config;
pub mod layers;
pub mod model;
pub mod ranker;
pub mod refit;
pub mod strategy;

pub use checkpoint::{Checkpoint, CheckpointError, DataSpec};
pub use config::{RtGcnConfig, Strategy};
pub use model::{RtGcn, StepStats};
pub use ranker::{FitReport, PhaseSecs, StockRanker};
pub use refit::{RefitPolicy, RefitReason};
pub use strategy::StrategyCtx;
