//! Durable model checkpoints: a versioned, byte-exact binary container for
//! trained parameters plus the config and dataset descriptor needed to
//! rebuild the model that produced them (the format `rtgcn-serve` boots
//! from).
//!
//! ## Wire format (version 1, all integers little-endian)
//!
//! ```text
//! magic      8  b"RTGCKPT\0"
//! version    2  u16
//! family     var  string (u32 len + UTF-8), e.g. "rtgcn"
//! config     var  string — the family's config as JSON, stored verbatim
//! data       var  string — DataSpec JSON (dataset descriptor), verbatim
//! n_params   4  u32
//! per param:
//!   name     var  string
//!   rank     4  u32
//!   dims     8·rank  u64 each
//!   values   4·numel  f32 each (raw IEEE-754 bits — NaN payloads survive)
//! checksum   8  u64 FNV-1a over every preceding byte
//! ```
//!
//! The config/data JSON strings are kept verbatim (never re-serialised) so
//! `from_bytes(to_bytes(c)) == c` holds byte-for-byte, and the trailing
//! checksum makes any single-byte corruption detectable before the body is
//! parsed. Decoding never panics: every length is bounds-checked against
//! the remaining input and hard caps before allocation.

use rtgcn_tensor::{ParamStore, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// File magic for the checkpoint container.
pub const MAGIC: [u8; 8] = *b"RTGCKPT\0";
/// Current (and only) wire-format version.
pub const FORMAT_VERSION: u16 = 1;
/// Cap on any embedded string (names, config JSON). A real config is <1 KiB.
const MAX_STRING_BYTES: usize = 1 << 20;
/// Cap on tensor rank; nothing in the workspace exceeds rank 4.
const MAX_RANK: usize = 8;
/// Cap on parameter count; the largest model has a few dozen.
const MAX_PARAMS: usize = 1 << 16;

/// Everything needed to regenerate the dataset a model was trained on.
/// Features are per-window anchor-normalised (no learned normalisation
/// state), so `(spec, seed, relation_kind)` deterministically reproduces
/// the exact inputs the checkpointed parameters expect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataSpec {
    pub spec: rtgcn_market::UniverseSpec,
    pub seed: u64,
    pub relation_kind: rtgcn_market::RelationKind,
}

/// A decoded checkpoint: identity + raw JSON payloads + named parameters
/// in registration order.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Model family tag (e.g. `"rtgcn"`, `"lstm"`, `"rsr"`); the serving
    /// layer dispatches reconstruction on this.
    pub family: String,
    /// The family's config serialised as JSON, stored verbatim.
    pub config_json: String,
    /// [`DataSpec`] as JSON, stored verbatim.
    pub data_json: String,
    /// `(name, value)` per parameter, in [`ParamStore`] registration order.
    pub params: Vec<(String, Tensor)>,
}

/// Structured decode/apply failures — corrupted bytes map here, never to a
/// panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// First 8 bytes are not [`MAGIC`] (or the input is shorter than a
    /// minimal container).
    BadMagic,
    /// Container declares a format version this build cannot read.
    UnsupportedVersion(u16),
    /// Trailing FNV-1a checksum does not match the content.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// Input ended before the structure it declared (offset = where).
    Truncated { offset: usize },
    /// Structurally invalid content (oversized lengths, bad UTF-8, …).
    Malformed(String),
    /// `apply_to` target store disagrees with the checkpoint's parameters.
    ParamMismatch(String),
    /// Filesystem failure on save/load (message only — `io::Error` does
    /// not implement `Clone`/`PartialEq`).
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint: bad magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {FORMAT_VERSION})")
            }
            CheckpointError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}")
            }
            CheckpointError::Truncated { offset } => {
                write!(f, "truncated checkpoint: input ends inside a field at byte {offset}")
            }
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::ParamMismatch(msg) => write!(f, "parameter mismatch: {msg}"),
            CheckpointError::Io(msg) => write!(f, "checkpoint io: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// ------------------------------------------------------------------ checksum

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------------- encode

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Checkpoint {
    /// Capture a trained model's parameters. `config_json`/`data_json` are
    /// embedded verbatim; params are cloned in registration order.
    pub fn from_store(
        family: &str,
        config_json: String,
        data_json: String,
        store: &ParamStore,
    ) -> Checkpoint {
        let params = store
            .ids()
            .map(|id| (store.name(id).to_string(), store.value(id).clone()))
            .collect();
        Checkpoint { family: family.to_string(), config_json, data_json, params }
    }

    /// Serialise to the versioned container (see module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        put_string(&mut out, &self.family);
        put_string(&mut out, &self.config_json);
        put_string(&mut out, &self.data_json);
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for (name, value) in &self.params {
            put_string(&mut out, name);
            let dims = value.dims();
            out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in value.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a container. Returns a structured error on any malformed
    /// input — never panics, never allocates beyond the input length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        // magic(8) + version(2) + checksum(8)
        if bytes.len() < 18 {
            return Err(CheckpointError::BadMagic);
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let expected = u64::from_le_bytes(tail.try_into().expect("split_at gives 8 bytes"));
        let actual = fnv1a64(content);
        if expected != actual {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        let mut r = Reader { buf: content, pos: 10 };
        let family = r.string("family")?;
        let config_json = r.string("config")?;
        let data_json = r.string("data")?;
        let n_params = r.u32("n_params")? as usize;
        if n_params > MAX_PARAMS {
            return Err(CheckpointError::Malformed(format!("{n_params} params exceeds cap")));
        }
        let mut params = Vec::with_capacity(n_params.min(1024));
        for i in 0..n_params {
            let name = r.string("param name")?;
            let rank = r.u32("rank")? as usize;
            if rank > MAX_RANK {
                return Err(CheckpointError::Malformed(format!(
                    "param {i} ({name}): rank {rank} exceeds cap {MAX_RANK}"
                )));
            }
            let mut dims = Vec::with_capacity(rank);
            let mut numel: usize = 1;
            for _ in 0..rank {
                let d = r.u64("dim")?;
                let d = usize::try_from(d)
                    .map_err(|_| CheckpointError::Malformed(format!("dim {d} overflows usize")))?;
                numel = numel.checked_mul(d).ok_or_else(|| {
                    CheckpointError::Malformed(format!("param {name}: element count overflows"))
                })?;
                dims.push(d);
            }
            let data = r.f32s(numel, &name)?;
            params.push((name, Tensor::new(dims, data)));
        }
        if r.pos != content.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after last parameter",
                content.len() - r.pos
            )));
        }
        Ok(Checkpoint { family, config_json, data_json, params })
    }

    /// Write the container to `path` (via a sibling temp file + rename, so
    /// a crashed writer never leaves a half-written checkpoint in place).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Read + decode a container from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::from_bytes(&bytes)
    }

    /// Content-addressed identity: FNV-1a of the serialised container as
    /// 16 hex digits. Equal checkpoints ⇔ equal ids; the serving registry
    /// uses this as the version tag.
    pub fn content_id(&self) -> String {
        format!("{:016x}", fnv1a64(&self.to_bytes()))
    }

    /// Parse the embedded [`DataSpec`].
    pub fn data_spec(&self) -> Result<DataSpec, CheckpointError> {
        serde_json::from_str(&self.data_json)
            .map_err(|e| CheckpointError::Malformed(format!("data spec JSON: {e:?}")))
    }

    /// Copy every parameter into `store`. The store must contain exactly
    /// the checkpoint's parameter set with matching shapes (i.e. a freshly
    /// constructed model of the same family/config).
    pub fn apply_to(&self, store: &mut ParamStore) -> Result<(), CheckpointError> {
        if store.len() != self.params.len() {
            return Err(CheckpointError::ParamMismatch(format!(
                "store has {} params, checkpoint has {}",
                store.len(),
                self.params.len()
            )));
        }
        for (name, value) in &self.params {
            let id = store.id(name).ok_or_else(|| {
                CheckpointError::ParamMismatch(format!("store has no parameter named {name:?}"))
            })?;
            let target = store.value_mut(id);
            if target.dims() != value.dims() {
                return Err(CheckpointError::ParamMismatch(format!(
                    "{name}: store shape {:?} vs checkpoint {:?}",
                    target.dims(),
                    value.dims()
                )));
            }
            *target = value.clone();
        }
        Ok(())
    }
}

// ------------------------------------------------------------------- decode

/// Bounds-checked cursor over the checksummed content.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated { offset: self.pos })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, _what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    fn u64(&mut self, _what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    fn string(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.u32(what)? as usize;
        if len > MAX_STRING_BYTES {
            return Err(CheckpointError::Malformed(format!("{what}: {len}-byte string exceeds cap")));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CheckpointError::Malformed(format!("{what}: invalid UTF-8")))
    }

    fn f32s(&mut self, n: usize, name: &str) -> Result<Vec<f32>, CheckpointError> {
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| CheckpointError::Malformed(format!("{name}: byte length overflows")))?;
        let raw = self.take(bytes)?;
        Ok(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("chunk"))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, RelationKind, Scale, UniverseSpec};

    fn sample() -> Checkpoint {
        let mut store = ParamStore::new();
        store.add("fc.w", Tensor::new([2, 3], vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE, 3.25, -0.125]));
        store.add("fc.b", Tensor::from_vec(vec![0.5]));
        let data = DataSpec {
            spec: UniverseSpec::of(Market::Csi, Scale::Small),
            seed: 7,
            relation_kind: RelationKind::Both,
        };
        Checkpoint::from_store(
            "rtgcn",
            "{\"epochs\":3}".to_string(),
            serde_json::to_string(&data).unwrap(),
            &store,
        )
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
        assert_eq!(back.content_id(), c.content_id());
    }

    #[test]
    fn data_spec_round_trips() {
        let c = sample();
        let spec = c.data_spec().unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.relation_kind, RelationKind::Both);
    }

    #[test]
    fn apply_to_restores_values_and_rejects_mismatches() {
        let c = sample();
        let mut store = ParamStore::new();
        store.add("fc.w", Tensor::zeros([2, 3]));
        store.add("fc.b", Tensor::zeros([1]));
        c.apply_to(&mut store).unwrap();
        let id = store.id("fc.w").unwrap();
        assert_eq!(store.value(id).data(), c.params[0].1.data());

        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("fc.w", Tensor::zeros([3, 2]));
        wrong_shape.add("fc.b", Tensor::zeros([1]));
        assert!(matches!(c.apply_to(&mut wrong_shape), Err(CheckpointError::ParamMismatch(_))));

        let mut missing = ParamStore::new();
        missing.add("fc.w", Tensor::zeros([2, 3]));
        assert!(matches!(c.apply_to(&mut missing), Err(CheckpointError::ParamMismatch(_))));
    }

    #[test]
    fn structured_errors_for_bad_containers() {
        let c = sample();
        let good = c.to_bytes();

        assert_eq!(Checkpoint::from_bytes(b"short"), Err(CheckpointError::BadMagic));

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(Checkpoint::from_bytes(&bad_magic), Err(CheckpointError::BadMagic));

        // Version is checked before the checksum, so a bumped version is
        // reported as such even though the checksum no longer matches.
        let mut bumped = good.clone();
        bumped[8] = 0xff;
        assert_eq!(Checkpoint::from_bytes(&bumped), Err(CheckpointError::UnsupportedVersion(0xff)));

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            Checkpoint::from_bytes(&good[..good.len() - 9]),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let c = sample();
        let dir = std::env::temp_dir().join(format!("rtgcn-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        c.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
