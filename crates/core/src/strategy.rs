//! Differentiable construction of the weighted adjacency `A` from the
//! relation tensor `𝒜` — the three relation-aware strategies of paper
//! Section IV-B, including the Kipf–Welling renormalisation
//! `D̃^{-1/2}(A + I)D̃^{-1/2}` expressed with tape ops so gradients reach the
//! strategy parameters `w ∈ R^K, b` (and, for the time-sensitive strategy,
//! the node features).

use rtgcn_graph::{NormalizedAdjCache, RelationTensor, DEGREE_EPS};
use rtgcn_tensor::{CsrEdges, Edges, Tape, Tensor, Var};

/// Static per-dataset context shared by every forward pass: the directed
/// relation edges with self-loops appended (plus their CSR grouping and the
/// precomputed/memoised normalised adjacencies in [`NormalizedAdjCache`]),
/// the per-edge multi-hot relation vectors, and the precomputed
/// uniform-strategy weights.
#[derive(Clone, Debug)]
pub struct StrategyCtx {
    /// Relation edges followed by one self-loop per node (order matters:
    /// weight vectors are laid out the same way).
    pub edges: Edges,
    /// The leading relation edges only (no self-loops), `Arc`-backed; the
    /// edge set of the time-correlation term.
    pub rel_edges: Edges,
    /// Number of leading relation edges (the rest are self-loops).
    pub n_rel_edges: usize,
    /// Number of relation types K.
    pub k_types: usize,
    /// `(E_rel, K)` multi-hot matrix, one row per relation edge.
    pub multi_hot: Tensor,
    /// Precomputed Eq. 3 weights (already renormalised), length `E_total`.
    pub uniform_weights: Vec<f32>,
    /// CSR layouts + static/frozen normalised adjacencies for the fused
    /// kernels.
    pub cache: NormalizedAdjCache,
    /// Streaming fast path: a precomputed `(T, E_rel)` correlation factor
    /// for the time-sensitive strategy, supplied by the day-advance engine's
    /// per-plane cache. When set (and the dims match the current window),
    /// [`Self::adjacency_time_sensitive_batched`] uses it as a constant
    /// instead of re-dotting every plane — inference only, no gradient
    /// flows back into the features. `None` (always, during training) keeps
    /// the exact batch path.
    pub corr_override: Option<Tensor>,
}

impl StrategyCtx {
    pub fn new(relations: &RelationTensor) -> Self {
        let rel_pairs = relations.directed_edges();
        let cache = NormalizedAdjCache::new(relations.num_stocks(), &rel_pairs);
        StrategyCtx::with_cache(relations, cache)
    }

    /// Like [`Self::new`] but reusing an existing cache's CSR layout and
    /// uniform weights (via [`NormalizedAdjCache::fork_layout`]) instead of
    /// renormalising from scratch. The cache must have been built from the
    /// same relation tensor. The serving registry uses this so every model
    /// over one market shares a single layout allocation.
    pub fn with_cache(relations: &RelationTensor, cache: NormalizedAdjCache) -> Self {
        let rel_pairs = relations.directed_edges();
        let n_rel = rel_pairs.len();
        assert_eq!(cache.n_rel_edges(), n_rel, "cache built from a different relation tensor");
        assert_eq!(cache.n_nodes(), relations.num_stocks(), "cache node count mismatch");
        let k = relations.num_types();
        let multi_hot = Tensor::new([n_rel, k.max(1)], if k == 0 {
            vec![0.0; n_rel]
        } else {
            relations.edge_multi_hot_flat()
        });
        StrategyCtx {
            edges: cache.edges().clone(),
            rel_edges: Edges::new(relations.num_stocks(), rel_pairs),
            n_rel_edges: n_rel,
            k_types: k.max(1),
            multi_hot,
            uniform_weights: cache.uniform().as_ref().clone(),
            cache,
            corr_override: None,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.edges.n
    }

    /// CSR grouping of [`Self::edges`] for the fused propagation kernels.
    pub fn csr(&self) -> &CsrEdges {
        self.cache.csr()
    }

    /// Uniform strategy (Eq. 3): constant renormalised binary adjacency.
    pub fn adjacency_uniform(&self, tape: &mut Tape) -> Var {
        tape.constant(Tensor::from_vec(self.uniform_weights.clone()))
    }

    /// Relation-importance term `𝒜_ijᵀ w + b` per relation edge (shared by
    /// the weighted and time-sensitive strategies). `w: (K, 1)`, `b: (1)`.
    fn relation_importance(&self, tape: &mut Tape, w: Var, b: Var) -> Var {
        let hot = tape.constant(self.multi_hot.clone());
        let imp = tape.linear(hot, w, b); // (E_rel, 1)
        tape.reshape(imp, [self.n_rel_edges])
    }

    /// Append unit self-loop weights and renormalise (differentiably):
    /// `Ã = A + I`, `D̃_ii = Σ_j |Ã_ij|` (clamped), output weight per edge
    /// `Ã_sd / √(D̃_ss D̃_dd)`.
    fn renormalize_on_tape(&self, tape: &mut Tape, raw_rel: Var) -> Var {
        let n = self.n_nodes();
        let loops = tape.constant(Tensor::ones([n]));
        let raw_all = tape.concat0(&[raw_rel, loops]);
        let abs_w = tape.abs(raw_all);
        let ones_col = tape.constant(Tensor::ones([n, 1]));
        let deg_col = tape.spmm(&self.edges, abs_w, ones_col); // (N,1): Σ_in |w|
        let deg = tape.reshape(deg_col, [n]);
        let deg = tape.clamp_min(deg, DEGREE_EPS);
        let sqrt_deg = tape.sqrt(deg);
        let one = tape.constant(Tensor::scalar(1.0));
        let dinv = tape.div(one, sqrt_deg); // broadcast scalar / (N)
        let d_src = tape.gather_src(&self.edges, dinv);
        let d_dst = tape.gather_dst(&self.edges, dinv);
        let scaled = tape.mul(raw_all, d_src);
        tape.mul(scaled, d_dst)
    }

    /// Weighted strategy (Eq. 4): `A_ij = 𝒜_ijᵀ w + b`, shared across all
    /// time-steps, renormalised.
    pub fn adjacency_weighted(&self, tape: &mut Tape, w: Var, b: Var) -> Var {
        let imp = self.relation_importance(tape, w, b);
        self.renormalize_on_tape(tape, imp)
    }

    /// Time-sensitive strategy (Eq. 5):
    /// `A(t)_ij = (X(t)_iᵀ X(t)_j / √n) · (𝒜_ijᵀ w + b)`, unique per
    /// time-step. `x_t: (N, D)` are that step's node features; the scaled
    /// dot-product gradient flows back into them.
    pub fn adjacency_time_sensitive(&self, tape: &mut Tape, w: Var, b: Var, x_t: Var) -> Var {
        let d = tape.value(x_t).dims()[1];
        let corr = tape.edge_dot(&self.rel_edges, x_t, (d as f32).sqrt());
        let imp = self.relation_importance(tape, w, b);
        let raw = tape.mul(corr, imp);
        self.renormalize_on_tape(tape, raw)
    }

    /// Frozen weighted strategy for inference: computes `𝒜ᵀw + b` off-tape
    /// from the parameter *values* and pulls the renormalised weights through
    /// the [`NormalizedAdjCache`] memo, so repeated scoring against fixed
    /// parameters renormalises once. Returns a constant (non-differentiable)
    /// weight vector — training must use [`Self::adjacency_weighted`].
    pub fn adjacency_weighted_frozen(&self, tape: &mut Tape, w_val: &Tensor, b_val: &Tensor) -> Var {
        let (hot, k) = (self.multi_hot.data(), self.k_types);
        let (wv, bv) = (w_val.data(), b_val.data()[0]);
        let raw: Vec<f32> = (0..self.n_rel_edges)
            .map(|e| {
                let row = &hot[e * k..(e + 1) * k];
                row.iter().zip(wv).map(|(h, w)| h * w).sum::<f32>() + bv
            })
            .collect();
        let weights = self.cache.normalized_frozen(&raw);
        tape.constant(Tensor::from_vec(weights.as_ref().clone()))
    }

    /// Time-sensitive strategy, fused across all `T` planes: one
    /// `edge_dot_batched` for the `X(t)ᵀX(t)/√d` correlations, a single
    /// shared importance term, and one batched renormalisation. `x3` is the
    /// full `(T, N, D)` window; the result is `(T, E_total)` per-plane edge
    /// weights for [`rtgcn_tensor::Tape::spmm_batched`]. Matches `T`
    /// applications of [`Self::adjacency_time_sensitive`] to ~1 ulp (the
    /// degree product associates differently).
    pub fn adjacency_time_sensitive_batched(&self, tape: &mut Tape, w: Var, b: Var, x3: Var) -> Var {
        let dims = tape.value(x3).dims().to_vec();
        let (t, d) = (dims[0], dims[2]);
        let n = self.n_nodes();
        let raw_all = if self.n_rel_edges == 0 {
            // No relation edges: the adjacency is self-loops only, raw
            // weight 1 — skip the correlation term entirely (a (T,0)
            // edge_dot has nothing to contribute).
            tape.constant(Tensor::ones([t, n]))
        } else {
            let corr = match &self.corr_override {
                // Streaming inference: the per-plane cache already holds
                // this window's `X(t)ᵀX(t)/√d`; dims are double-checked so a
                // stale override (different window length after a TCN
                // stride, or a mutated edge set) falls back to the exact
                // computation instead of silently mis-shaping.
                Some(c) if c.dims() == [t, self.n_rel_edges] => tape.constant(c.clone()),
                _ => tape.edge_dot_batched(&self.rel_edges, x3, (d as f32).sqrt()), // (T, E_rel)
            };
            let imp = self.relation_importance(tape, w, b); // (E_rel)
            let raw_rel = tape.mul(corr, imp); // broadcast over planes
            let loops = tape.constant(Tensor::ones([t, n]));
            tape.concat_cols(raw_rel, loops)
        };
        self.renormalize_batched(tape, raw_all, t)
    }

    /// Batched renormalisation of `(T, E_total)` raw weights (self-loops
    /// already appended): per-plane `Ã_sd / √(D̃_ss D̃_dd)` with the abs-degree
    /// clamp, all planes in single fused kernels.
    fn renormalize_batched(&self, tape: &mut Tape, raw_all: Var, t: usize) -> Var {
        let n = self.n_nodes();
        let abs_w = tape.abs(raw_all);
        let ones_col = tape.constant(Tensor::ones([t, n, 1]));
        let deg3 = tape.spmm_batched(self.csr(), abs_w, ones_col); // (T,N,1): Σ_in |w|
        let deg = tape.reshape(deg3, [t, n]);
        let deg = tape.clamp_min(deg, DEGREE_EPS);
        let sqrt_deg = tape.sqrt(deg);
        let one = tape.constant(Tensor::scalar(1.0));
        let dinv = tape.div(one, sqrt_deg); // broadcast scalar / (T,N)
        let d_src = tape.gather_src_batched(&self.edges, dinv);
        let d_dst = tape.gather_dst_batched(&self.edges, dinv);
        let scaled = tape.mul(raw_all, d_src);
        tape.mul(scaled, d_dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_relations() -> RelationTensor {
        let mut r = RelationTensor::new(3, 2);
        r.connect(0, 1, 0);
        r.connect(1, 2, 1);
        r.connect(0, 2, 0);
        r
    }

    #[test]
    fn ctx_layout() {
        let ctx = StrategyCtx::new(&triangle_relations());
        assert_eq!(ctx.n_rel_edges, 6, "3 pairs × 2 directions");
        assert_eq!(ctx.edges.len(), 9, "plus 3 self-loops");
        assert_eq!(ctx.multi_hot.dims(), &[6, 2]);
        assert_eq!(ctx.uniform_weights.len(), 9);
    }

    #[test]
    fn uniform_matches_static_renormalisation() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let mut tape = Tape::new();
        let w = ctx.adjacency_uniform(&mut tape);
        // Triangle with self loops: every node degree 3, all weights 1/3.
        for &v in tape.value(w).data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5, "weight {v}");
        }
    }

    #[test]
    fn weighted_reduces_to_uniform_when_w0_b1() {
        // With w = 0 and b = 1 every relation edge gets raw weight 1, so the
        // weighted strategy must reproduce Eq. 3 exactly.
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::zeros([2, 1]));
        let b = tape.leaf(Tensor::from_vec(vec![1.0]));
        let adj = ctx.adjacency_weighted(&mut tape, w, b);
        let expect = Tensor::from_vec(ctx.uniform_weights.clone());
        assert!(tape.value(adj).allclose(&expect, 1e-5));
    }

    #[test]
    fn weighted_gradients_reach_w_and_b() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::new([2, 1], vec![0.5, -0.3]));
        let b = tape.leaf(Tensor::from_vec(vec![0.2]));
        let adj = ctx.adjacency_weighted(&mut tape, w, b);
        let sq = tape.square(adj);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        assert!(tape.grad(w).unwrap().norm() > 0.0, "gradient must reach w");
        assert!(tape.grad(b).unwrap().norm() > 0.0, "gradient must reach b");
    }

    #[test]
    fn weighted_grad_check_via_numeric_diff() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let w0 = Tensor::new([2, 1], vec![0.7, -0.4]);
        rtgcn_tensor::check_gradient(&w0, 1e-3, 2e-2, move |tape, w| {
            let b = tape.leaf(Tensor::from_vec(vec![0.3]));
            let adj = ctx.adjacency_weighted(tape, w, b);
            let sq = tape.square(adj);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn time_sensitive_gives_distinct_adjacency_per_step() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::new([2, 1], vec![0.5, 0.5]));
        let b = tape.leaf(Tensor::from_vec(vec![0.1]));
        let x1 = tape.leaf(Tensor::new([3, 2], vec![1., 0., 0., 1., 1., 1.]));
        let x2 = tape.leaf(Tensor::new([3, 2], vec![0.2, 0.9, 0.4, 0.1, 0.8, 0.8]));
        let a1 = ctx.adjacency_time_sensitive(&mut tape, w, b, x1);
        let a2 = ctx.adjacency_time_sensitive(&mut tape, w, b, x2);
        assert_ne!(tape.value(a1), tape.value(a2), "adjacency must vary with features");
    }

    #[test]
    fn time_sensitive_gradient_reaches_features() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let x0 = Tensor::new([3, 2], vec![0.6, -0.2, 0.3, 0.8, -0.5, 0.4]);
        rtgcn_tensor::check_gradient(&x0, 1e-3, 2e-2, move |tape, x| {
            let w = tape.leaf(Tensor::new([2, 1], vec![0.5, -0.7]));
            let b = tape.leaf(Tensor::from_vec(vec![0.2]));
            let adj = ctx.adjacency_time_sensitive(tape, w, b, x);
            let sq = tape.square(adj);
            tape.sum_all(sq)
        })
        .unwrap();
    }

    #[test]
    fn weighted_frozen_matches_on_tape_weighted() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let w_val = Tensor::new([2, 1], vec![0.4, -0.6]);
        let b_val = Tensor::from_vec(vec![0.25]);
        let mut tape = Tape::new();
        let w = tape.leaf(w_val.clone());
        let b = tape.leaf(b_val.clone());
        let on_tape = ctx.adjacency_weighted(&mut tape, w, b);
        let frozen = ctx.adjacency_weighted_frozen(&mut tape, &w_val, &b_val);
        let (a, f) = (tape.value(on_tape).clone(), tape.value(frozen).clone());
        assert!(a.allclose(&f, 1e-6), "frozen path must match on-tape renormalisation");
        // Second call with identical parameters must hit the memo.
        let again = ctx.adjacency_weighted_frozen(&mut tape, &w_val, &b_val);
        assert_eq!(tape.value(again), &f);
    }

    #[test]
    fn time_sensitive_batched_matches_per_plane() {
        let rel = triangle_relations();
        let ctx = StrategyCtx::new(&rel);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::new([2, 1], vec![0.5, -0.2]));
        let b = tape.leaf(Tensor::from_vec(vec![0.3]));
        let x_data: Vec<f32> = (0..2 * 3 * 2).map(|i| ((i * 37 + 11) % 17) as f32 / 17.0 - 0.4).collect();
        let x3 = tape.leaf(Tensor::new([2, 3, 2], x_data.clone()));
        let batched = ctx.adjacency_time_sensitive_batched(&mut tape, w, b, x3);
        assert_eq!(tape.value(batched).dims(), &[2, ctx.edges.len()]);
        for plane in 0..2 {
            let x_t = tape.leaf(Tensor::new([3, 2], x_data[plane * 6..(plane + 1) * 6].to_vec()));
            let serial = ctx.adjacency_time_sensitive(&mut tape, w, b, x_t);
            let e = ctx.edges.len();
            let got = &tape.value(batched).data()[plane * e..(plane + 1) * e];
            for (g, s) in got.iter().zip(tape.value(serial).data()) {
                assert!(
                    (g - s).abs() <= 1e-6 * s.abs().max(1.0),
                    "plane {plane}: batched {g} vs serial {s}"
                );
            }
        }
    }

    #[test]
    fn time_sensitive_batched_handles_empty_relations() {
        let rel = RelationTensor::new(4, 1);
        let ctx = StrategyCtx::new(&rel);
        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::zeros([1, 1]));
        let b = tape.leaf(Tensor::from_vec(vec![0.5]));
        let x3 = tape.leaf(Tensor::ones([3, 4, 2]));
        let adj = ctx.adjacency_time_sensitive_batched(&mut tape, w, b, x3);
        assert_eq!(tape.value(adj).dims(), &[3, 4]);
        for &v in tape.value(adj).data() {
            assert!((v - 1.0).abs() < 1e-6, "isolated self-loop weight 1, got {v}");
        }
    }

    #[test]
    fn empty_relations_yield_self_loops_only() {
        let rel = RelationTensor::new(4, 1);
        let ctx = StrategyCtx::new(&rel);
        assert_eq!(ctx.n_rel_edges, 0);
        assert_eq!(ctx.edges.len(), 4);
        let mut tape = Tape::new();
        let adj = ctx.adjacency_uniform(&mut tape);
        for &v in tape.value(adj).data() {
            assert!((v - 1.0).abs() < 1e-6, "isolated self-loop weight 1, got {v}");
        }
    }
}
