//! Model and training configuration for RT-GCN.

use serde::{Deserialize, Serialize};

/// The three relation-aware propagation strategies (paper Section IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Eq. 3 — binary adjacency, all relations equal.
    Uniform,
    /// Eq. 4 — learned per-relation-type weights, shared across time.
    Weighted,
    /// Eq. 5 — scaled-dot-product time correlation × relation importance,
    /// one adjacency per time-step.
    TimeSensitive,
}

impl Strategy {
    pub const ALL: [Strategy; 3] = [Strategy::Uniform, Strategy::Weighted, Strategy::TimeSensitive];

    /// Paper display name, e.g. `RT-GCN (T)`.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Uniform => "RT-GCN (U)",
            Strategy::Weighted => "RT-GCN (W)",
            Strategy::TimeSensitive => "RT-GCN (T)",
        }
    }
}

/// RT-GCN hyperparameters. Defaults follow the paper's tuned setting:
/// window T = 16 (grid {5,10,15,20} showed ~15 is best and flat beyond),
/// 4 features, α = 0.1, λ = 0.01, Adam lr = 0.001, one RT-GCN layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RtGcnConfig {
    /// Window size T (days of history per prediction).
    pub t_steps: usize,
    /// Number of features per stock-day, 1..=4 (Table VIII).
    pub n_features: usize,
    /// Relational convolution output width F.
    pub rel_filters: usize,
    /// Temporal convolution output channels H.
    pub temporal_filters: usize,
    /// Temporal kernel size.
    pub kernel: usize,
    /// Temporal stride (receptive-field expansion, Section IV-C).
    pub stride: usize,
    /// Stacked RT-GCN layers (paper uses 1; more overfits).
    pub layers: usize,
    /// Propagation strategy.
    pub strategy: Strategy,
    /// Spatial dropout after each TCN layer.
    pub dropout: f32,
    /// Ranking-loss balance α (Eq. 9).
    pub alpha: f32,
    /// L2 regularisation λ (Eq. 9), applied in the optimiser.
    pub lambda: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs (full passes over the training windows).
    pub epochs: usize,
    /// Ablation switches (Table VII): `R-Conv` = temporal off,
    /// `T-Conv` = relational off.
    pub use_relational: bool,
    pub use_temporal: bool,
    /// Stop the fit loop early once the training-health monitor reports
    /// `HealthVerdict::Diverged` (opt-in; the default keeps the paper's
    /// fixed epoch budget).
    pub abort_on_divergence: bool,
    /// Use the fused time-batched GCN kernels (default). The serial
    /// per-plane reference path is kept alive for parity testing and
    /// before/after benchmarking; set `RTGCN_FUSED=0` in the environment to
    /// make `Default` select it.
    pub fused: bool,
}

/// Default for [`RtGcnConfig::fused`]: fused unless `RTGCN_FUSED` is set to
/// `0`/`false`/`off` (a benchmarking escape hatch, re-read on every call so
/// tests can flip it).
pub fn fused_default() -> bool {
    match std::env::var("RTGCN_FUSED") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

impl Default for RtGcnConfig {
    fn default() -> Self {
        RtGcnConfig {
            t_steps: 16,
            n_features: 4,
            rel_filters: 32,
            temporal_filters: 32,
            kernel: 3,
            stride: 2,
            layers: 1,
            strategy: Strategy::TimeSensitive,
            dropout: 0.1,
            alpha: 0.1,
            lambda: 0.01,
            lr: 1e-3,
            epochs: 6,
            use_relational: true,
            use_temporal: true,
            abort_on_divergence: false,
            fused: fused_default(),
        }
    }
}

impl RtGcnConfig {
    pub fn with_strategy(strategy: Strategy) -> Self {
        RtGcnConfig { strategy, ..Default::default() }
    }

    /// The R-Conv ablation of Table VII: relational convolution only.
    pub fn r_conv() -> Self {
        RtGcnConfig {
            strategy: Strategy::Uniform,
            use_temporal: false,
            ..Default::default()
        }
    }

    /// The T-Conv ablation of Table VII: temporal convolution only.
    pub fn t_conv() -> Self {
        RtGcnConfig {
            strategy: Strategy::Uniform,
            use_relational: false,
            ..Default::default()
        }
    }

    /// Validate invariants; call before building a model.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_steps == 0 {
            return Err("t_steps must be >= 1".into());
        }
        if !(1..=4).contains(&self.n_features) {
            return Err("n_features must be in 1..=4 (Table VIII)".into());
        }
        if self.kernel == 0 || self.stride == 0 {
            return Err("kernel and stride must be >= 1".into());
        }
        if self.layers == 0 || self.layers > 4 {
            return Err("layers must be in 1..=4".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        if !self.use_relational && !self.use_temporal {
            return Err("at least one of relational/temporal modules must be enabled".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paperlike() {
        let c = RtGcnConfig::default();
        c.validate().unwrap();
        assert_eq!(c.strategy, Strategy::TimeSensitive);
        assert_eq!(c.lambda, 0.01);
        assert_eq!(c.lr, 1e-3);
        if std::env::var("RTGCN_FUSED").is_err() {
            assert!(c.fused, "fused kernels are the default path");
        }
    }

    #[test]
    fn ablations_flip_modules() {
        let r = RtGcnConfig::r_conv();
        assert!(r.use_relational && !r.use_temporal);
        r.validate().unwrap();
        let t = RtGcnConfig::t_conv();
        assert!(!t.use_relational && t.use_temporal);
        t.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = RtGcnConfig::default();
        c.n_features = 5;
        assert!(c.validate().is_err());
        let mut c = RtGcnConfig::default();
        c.use_relational = false;
        c.use_temporal = false;
        assert!(c.validate().is_err());
        let mut c = RtGcnConfig::default();
        c.layers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::Uniform.label(), "RT-GCN (U)");
        assert_eq!(Strategy::TimeSensitive.label(), "RT-GCN (T)");
    }
}
