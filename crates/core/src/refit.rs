//! Walk-forward refit policy for the streaming day-advance loop
//! (DESIGN.md §14).
//!
//! A live model rots: the market regime drifts away from its training split.
//! The stream engine asks this policy after every advanced day whether to
//! retrain. Two triggers, either sufficient:
//!
//! - **schedule** — a fixed day-count cadence (`every_days`), the classic
//!   walk-forward protocol;
//! - **drift** — the rolling mean of the lagged next-day MRR over the last
//!   `drift_window` evaluated days fell below `(1 − drift_drop)` of the
//!   post-fit baseline, the serving-side analogue of the training
//!   [`HealthMonitor`](rtgcn_telemetry::health::HealthMonitor)'s divergence
//!   verdicts.

use serde::{Deserialize, Serialize};

/// Why a refit fired (recorded in telemetry and the walk-forward report).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefitReason {
    /// The day-count schedule elapsed.
    Schedule,
    /// Rolling ranking quality dropped below the drift threshold.
    Drift,
}

/// When to retrain a streaming model. Disabled fields never trigger.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RefitPolicy {
    /// Refit every `n` advanced days since the last fit. `None` disables
    /// the schedule trigger.
    pub every_days: Option<usize>,
    /// Number of most-recent evaluated days the drift check averages over.
    /// `0` disables the drift trigger.
    pub drift_window: usize,
    /// Relative MRR drop (`0.3` = 30 % below baseline) that counts as drift.
    pub drift_drop: f32,
}

impl RefitPolicy {
    /// Never refit.
    pub fn disabled() -> Self {
        RefitPolicy { every_days: None, drift_window: 0, drift_drop: 0.0 }
    }

    /// Schedule-only policy.
    pub fn every(days: usize) -> Self {
        assert!(days > 0, "a zero-day refit cadence would refit every day twice");
        RefitPolicy { every_days: Some(days), drift_window: 0, drift_drop: 0.0 }
    }

    /// Drift-only policy.
    pub fn on_drift(window: usize, drop: f32) -> Self {
        assert!(window > 0 && drop > 0.0, "drift policy needs a window and a threshold");
        RefitPolicy { every_days: None, drift_window: window, drift_drop: drop }
    }

    /// Whether either trigger is armed at all.
    pub fn is_enabled(&self) -> bool {
        self.every_days.is_some() || self.drift_window > 0
    }

    /// Decide after an advanced day. `days_since_fit` counts days appended
    /// since the last (re)fit; `recent_mrr` is the lagged next-day MRR
    /// history since the last fit (newest last); `baseline_mrr` is the
    /// reference quality right after that fit (NaN/non-finite disables the
    /// drift check until a baseline exists).
    pub fn should_refit(
        &self,
        days_since_fit: usize,
        recent_mrr: &[f32],
        baseline_mrr: f32,
    ) -> Option<RefitReason> {
        if let Some(n) = self.every_days {
            if days_since_fit >= n {
                return Some(RefitReason::Schedule);
            }
        }
        if self.drift_window > 0
            && baseline_mrr.is_finite()
            && baseline_mrr > 0.0
            && recent_mrr.len() >= self.drift_window
        {
            let tail = &recent_mrr[recent_mrr.len() - self.drift_window..];
            let mean = tail.iter().sum::<f32>() / self.drift_window as f32;
            if mean < baseline_mrr * (1.0 - self.drift_drop) {
                return Some(RefitReason::Drift);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_fires() {
        let p = RefitPolicy::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.should_refit(10_000, &[0.0; 64], 1.0), None);
    }

    #[test]
    fn schedule_fires_on_cadence() {
        let p = RefitPolicy::every(5);
        assert_eq!(p.should_refit(4, &[], f32::NAN), None);
        assert_eq!(p.should_refit(5, &[], f32::NAN), Some(RefitReason::Schedule));
        assert_eq!(p.should_refit(17, &[], f32::NAN), Some(RefitReason::Schedule));
    }

    #[test]
    fn drift_needs_full_window_and_finite_baseline() {
        let p = RefitPolicy::on_drift(3, 0.5);
        // Not enough history yet.
        assert_eq!(p.should_refit(99, &[0.01, 0.01], 0.5), None);
        // Window full and mean (0.01) < 0.5 × (1 − 0.5) = 0.25 → drift.
        assert_eq!(p.should_refit(99, &[0.01, 0.01, 0.01], 0.5), Some(RefitReason::Drift));
        // Healthy recent MRR → no drift.
        assert_eq!(p.should_refit(99, &[0.5, 0.6, 0.4], 0.5), None);
        // No baseline yet → drift disarmed.
        assert_eq!(p.should_refit(99, &[0.01, 0.01, 0.01], f32::NAN), None);
    }

    #[test]
    fn drift_averages_only_the_tail() {
        let p = RefitPolicy::on_drift(2, 0.4);
        // Old good days must not mask a bad recent tail.
        let hist = [0.9, 0.9, 0.9, 0.05, 0.05];
        assert_eq!(p.should_refit(1, &hist, 0.8), Some(RefitReason::Drift));
    }

    #[test]
    fn schedule_wins_over_drift_when_both_fire() {
        let p = RefitPolicy { every_days: Some(1), drift_window: 1, drift_drop: 0.1 };
        assert_eq!(p.should_refit(1, &[0.0], 1.0), Some(RefitReason::Schedule));
    }
}
