//! The end-to-end RT-GCN model (paper Section IV, Figure 3): stacked
//! relation-temporal graph convolution layers → average pooling over the
//! temporal dimension → fully connected ranking-score head, trained with the
//! combined regression + pairwise-ranking objective (Eq. 9).

use crate::config::RtGcnConfig;
use crate::layers::{RelationalConv, TemporalConvBlock};
use crate::ranker::PhaseSecs;
use crate::strategy::StrategyCtx;
use rand::rngs::StdRng;
use rtgcn_graph::RelationTensor;
use rtgcn_tensor::{
    clip_grad_norm, init, ConvSpec, Optimizer, ParamId, ParamStore, Tape, Tensor, Var,
};
use std::time::Instant;

/// Nanosecond accumulators behind [`PhaseSecs`]. Always ticking (plain
/// `Instant` reads, independent of the telemetry level) so `FitReport`
/// carries a breakdown even with `RTGCN_LOG=off`.
#[derive(Clone, Copy, Default)]
struct PhaseClock {
    relational_ns: u64,
    temporal_ns: u64,
    loss_ns: u64,
    backward_ns: u64,
    optim_ns: u64,
}

impl PhaseClock {
    fn secs(&self) -> PhaseSecs {
        let s = |ns: u64| ns as f64 / 1e9;
        PhaseSecs {
            relational: s(self.relational_ns),
            temporal: s(self.temporal_ns),
            loss: s(self.loss_ns),
            backward: s(self.backward_ns),
            optim: s(self.optim_ns),
        }
    }
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Per-step diagnostics from [`RtGcn::train_step_stats`]: the combined loss,
/// its MSE and pairwise-ranking components (Eq. 9), and the pre-clip global
/// gradient L2 norm — the inputs of the training-health monitor.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    pub loss: f32,
    pub mse: f32,
    pub rank: f32,
    pub grad_norm: f32,
}

/// A ready-to-train RT-GCN over a fixed stock universe and relation tensor.
pub struct RtGcn {
    pub config: RtGcnConfig,
    pub store: ParamStore,
    pub ctx: StrategyCtx,
    rel_convs: Vec<RelationalConv>,
    tcn_blocks: Vec<TemporalConvBlock>,
    fc_w: ParamId,
    fc_b: ParamId,
    rng: StdRng,
    n_stocks: usize,
    phases: PhaseClock,
}

impl RtGcn {
    /// Build the model. Panics on invalid configuration (use
    /// [`RtGcnConfig::validate`] for a `Result`).
    pub fn new(config: RtGcnConfig, relations: &RelationTensor, seed: u64) -> Self {
        RtGcn::build(config, relations, StrategyCtx::new(relations), seed)
    }

    /// Like [`RtGcn::new`] but sharing a prebuilt normalised-adjacency
    /// layout (see [`rtgcn_graph::SharedAdjCache`]): the CSR grouping and
    /// uniform weights are `Arc`-shared with `cache`, while this model gets
    /// its own frozen-adjacency memo slot. The serving registry uses this
    /// so concurrent workers over one market never duplicate the layout.
    pub fn with_shared_cache(
        config: RtGcnConfig,
        relations: &RelationTensor,
        cache: &rtgcn_graph::SharedAdjCache,
        seed: u64,
    ) -> Self {
        let ctx = StrategyCtx::with_cache(relations, cache.fork_layout());
        RtGcn::build(config, relations, ctx, seed)
    }

    fn build(config: RtGcnConfig, relations: &RelationTensor, ctx: StrategyCtx, seed: u64) -> Self {
        // lint:allow(panic-free-hot-paths) documented constructor contract: invalid config is a programming error
        config.validate().unwrap_or_else(|e| panic!("invalid RtGcnConfig: {e}"));
        let mut rng = init::rng(seed);
        let mut store = ParamStore::new();
        let k = ctx.k_types;
        let mut rel_convs = Vec::new();
        let mut tcn_blocks = Vec::new();
        let mut width = config.n_features;
        for layer in 0..config.layers {
            if config.use_relational {
                rel_convs.push(RelationalConv::new(
                    &mut store,
                    &format!("layer{layer}.rel"),
                    width,
                    config.rel_filters,
                    k,
                    config.strategy,
                    &mut rng,
                ));
                width = config.rel_filters;
            }
            if config.use_temporal {
                tcn_blocks.push(TemporalConvBlock::new(
                    &mut store,
                    &format!("layer{layer}.tcn"),
                    width,
                    config.temporal_filters,
                    ConvSpec::new(config.kernel, config.stride, 1),
                    config.dropout,
                    &mut rng,
                ));
                width = config.temporal_filters;
            }
        }
        let fc_w = store.add("fc.w", init::xavier([width, 1], &mut rng));
        let fc_b = store.add("fc.b", Tensor::zeros([1]));
        RtGcn {
            config,
            store,
            ctx,
            rel_convs,
            tcn_blocks,
            fc_w,
            fc_b,
            rng,
            n_stocks: relations.num_stocks(),
            phases: PhaseClock::default(),
        }
    }

    pub fn n_stocks(&self) -> usize {
        self.n_stocks
    }

    /// Zero the per-phase wall-clock accumulators (start of a fit).
    pub fn reset_phase_clock(&mut self) {
        self.phases = PhaseClock::default();
    }

    /// Per-phase wall-clock breakdown accumulated since the last reset.
    pub fn phase_secs(&self) -> PhaseSecs {
        self.phases.secs()
    }

    /// Trainable scalar count (for the speed-comparison context).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Save trained parameters as a raw [`rtgcn_tensor::ParamStore`] dump.
    /// For a durable, versioned, checksummed container that also records
    /// the config and dataset descriptor (what `rtgcn-serve` boots from),
    /// use [`crate::Checkpoint`] instead.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.save(path)
    }

    /// Load parameters from a checkpoint produced by [`RtGcn::save`] into a
    /// model built with the same configuration and relation graph.
    pub fn load(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.load(path)
    }

    /// Check the `(T, N, D)` input against the configuration.
    fn check_input(&self, x: &Tensor) {
        let (t, n, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(t, self.config.t_steps, "input window length mismatch");
        assert_eq!(n, self.n_stocks, "stock count mismatch");
        assert_eq!(d, self.config.n_features, "feature count mismatch");
    }

    /// Split an `(T, N, D)` input tensor into per-plane `(N, D)` vars.
    fn split_steps(&self, tape: &mut Tape, x: &Tensor) -> Vec<Var> {
        self.check_input(x);
        let (t, n, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let xv = tape.constant(x.clone());
        (0..t)
            .map(|s| {
                let plane = tape.slice_rows(xv, s, s + 1);
                tape.reshape(plane, [n, d])
            })
            .collect()
    }

    /// Forward pass producing the ranking scores `r̂ ∈ R^N`. Dispatches to
    /// the fused time-batched kernels (the default) or the serial per-plane
    /// reference path (`config.fused = false`, kept for parity testing and
    /// before/after benchmarking). Both paths record the same
    /// `kernel.gcn.*` latency histograms, so `rtgcn-report` snapshots stay
    /// comparable across the flag.
    pub fn forward(&mut self, tape: &mut Tape, x: &Tensor, training: bool) -> Var {
        if self.config.fused {
            self.forward_fused(tape, x, training)
        } else {
            self.forward_serial(tape, x, training)
        }
    }

    /// Fused path: the window stays a rank-3 `(T, N, C)` tensor end to end —
    /// one batched propagation + two `(T·N, C)` matmuls per relational
    /// layer, permutes (no per-plane slicing) around the TCN.
    fn forward_fused(&mut self, tape: &mut Tape, x: &Tensor, training: bool) -> Var {
        self.check_input(x);
        let n = self.n_stocks;
        let mut cur = tape.constant(x.clone()); // (T, N, C)
        let (mut rel_i, mut tcn_i) = (0usize, 0usize);
        for _layer in 0..self.config.layers {
            if self.config.use_relational {
                let _span = rtgcn_telemetry::span("relational");
                let t = Instant::now();
                cur = self.rel_convs[rel_i].forward_fused(tape, &self.store, &self.ctx, cur, training);
                let dt = elapsed_ns(t);
                self.phases.relational_ns += dt;
                rtgcn_telemetry::record_ns("kernel.gcn.relational_ns", dt);
                rel_i += 1;
            }
            if self.config.use_temporal {
                let _span = rtgcn_telemetry::span("temporal");
                let t = Instant::now();
                let nct = tape.permute3(cur, [1, 2, 0]); // (N, C, T)
                let out =
                    self.tcn_blocks[tcn_i].forward(tape, &self.store, nct, training, &mut self.rng);
                tcn_i += 1;
                cur = tape.permute3(out, [2, 0, 1]); // (T', N, C)
                let dt = elapsed_ns(t);
                self.phases.temporal_ns += dt;
                rtgcn_telemetry::record_ns("kernel.gcn.temporal_ns", dt);
            }
        }
        // Average pooling over the remaining temporal dimension (stride = H).
        let pooled = tape.mean_axis(cur, 0); // (N, C)
        let fc_w = self.store.bind(tape, self.fc_w);
        let fc_b = self.store.bind(tape, self.fc_b);
        let scores = tape.linear(pooled, fc_w, fc_b); // (N, 1)
        tape.reshape(scores, [n])
    }

    /// Serial reference path: one `(N, D)` var per plane, `T` separate
    /// spmm + matmul chains per relational layer.
    fn forward_serial(&mut self, tape: &mut Tape, x: &Tensor, training: bool) -> Var {
        let mut xs = self.split_steps(tape, x);
        let n = self.n_stocks;
        let (mut rel_i, mut tcn_i) = (0usize, 0usize);
        for _layer in 0..self.config.layers {
            if self.config.use_relational {
                let _span = rtgcn_telemetry::span("relational");
                let t = Instant::now();
                xs = self.rel_convs[rel_i].forward(tape, &self.store, &self.ctx, &xs);
                let dt = elapsed_ns(t);
                self.phases.relational_ns += dt;
                rtgcn_telemetry::record_ns("kernel.gcn.relational_ns", dt);
                rel_i += 1;
            }
            if self.config.use_temporal {
                let _span = rtgcn_telemetry::span("temporal");
                let t = Instant::now();
                let stacked = tape.stack0(&xs); // (T, N, C)
                let nct = tape.permute3(stacked, [1, 2, 0]); // (N, C, T)
                let out =
                    self.tcn_blocks[tcn_i].forward(tape, &self.store, nct, training, &mut self.rng);
                tcn_i += 1;
                // Back to per-plane layout for a possible next layer.
                let tnc = tape.permute3(out, [2, 0, 1]); // (T', N, C)
                let t_out = tape.value(tnc).dims()[0];
                let c = tape.value(tnc).dims()[2];
                xs = (0..t_out)
                    .map(|s| {
                        let plane = tape.slice_rows(tnc, s, s + 1);
                        tape.reshape(plane, [n, c])
                    })
                    .collect();
                let dt = elapsed_ns(t);
                self.phases.temporal_ns += dt;
                rtgcn_telemetry::record_ns("kernel.gcn.temporal_ns", dt);
            }
        }
        // Average pooling over the remaining temporal dimension (stride = H).
        let stacked = tape.stack0(&xs); // (T', N, C)
        let pooled = tape.mean_axis(stacked, 0); // (N, C)
        let fc_w = self.store.bind(tape, self.fc_w);
        let fc_b = self.store.bind(tape, self.fc_b);
        let scores = tape.linear(pooled, fc_w, fc_b); // (N, 1)
        tape.reshape(scores, [n])
    }

    /// Inference: ranking scores as a plain vector.
    pub fn score(&mut self, x: &Tensor) -> Vec<f32> {
        let mut tape = Tape::new();
        let s = self.forward(&mut tape, x, false);
        let out = tape.value(s).data().to_vec();
        self.store.clear_bindings();
        out
    }

    /// Inference with a precomputed time-sensitive correlation factor
    /// (`(T, E_rel)`, from the streaming engine's per-plane cache): installs
    /// it as the strategy's override for the duration of one forward, then
    /// clears it. Callers guarantee `corr` was computed for exactly this
    /// window — [`StrategyCtx`] falls back to the exact path on any dim
    /// mismatch.
    pub fn score_with_corr(&mut self, x: &Tensor, corr: &Tensor) -> Vec<f32> {
        self.ctx.corr_override = Some(corr.clone());
        let out = self.score(x);
        self.ctx.corr_override = None;
        out
    }

    /// Rebuild the strategy context for a mutated relation tensor (streaming
    /// edge add/drop events). The learned relation-importance parameters
    /// `w ∈ R^K` carry over, so the stock universe and type count must be
    /// unchanged; returns `false` (and leaves the model untouched) otherwise.
    pub fn refresh_relations(&mut self, relations: &RelationTensor) -> bool {
        if relations.num_stocks() != self.n_stocks {
            rtgcn_telemetry::warn(
                "stream.refresh_relations",
                &format!(
                    "stock universe changed ({} -> {}); refusing to refresh",
                    self.n_stocks,
                    relations.num_stocks()
                ),
            );
            return false;
        }
        if relations.num_types().max(1) != self.ctx.k_types {
            rtgcn_telemetry::warn(
                "stream.refresh_relations",
                &format!(
                    "relation type count changed ({} -> {}); learned w no longer applies",
                    self.ctx.k_types,
                    relations.num_types().max(1)
                ),
            );
            return false;
        }
        self.ctx = StrategyCtx::new(relations);
        true
    }

    /// One optimisation step on a single day's window. Returns the loss.
    pub fn train_step(&mut self, x: &Tensor, y: &Tensor, opt: &mut dyn Optimizer) -> f32 {
        self.train_step_stats(x, y, opt).loss
    }

    /// [`train_step`](Self::train_step) plus the per-step diagnostics the
    /// training-health monitor consumes: the loss components of Eq. 9 and
    /// the pre-clip global gradient L2 norm.
    pub fn train_step_stats(&mut self, x: &Tensor, y: &Tensor, opt: &mut dyn Optimizer) -> StepStats {
        let mut tape = Tape::new();
        let scores = self.forward(&mut tape, x, true);
        let (loss, loss_val, mse, rank) = {
            let _span = rtgcn_telemetry::span("loss");
            let t = Instant::now();
            let (loss, mse, rank) = tape.combined_rank_loss_parts(scores, y, self.config.alpha);
            let loss_val = tape.value(loss).item();
            self.phases.loss_ns += elapsed_ns(t);
            (loss, loss_val, mse, rank)
        };
        {
            let _span = rtgcn_telemetry::span("backward");
            let t = Instant::now();
            tape.backward(loss);
            self.store.absorb_grads(&tape);
            self.phases.backward_ns += elapsed_ns(t);
        }
        let grad_norm = {
            let _span = rtgcn_telemetry::span("optim");
            let t = Instant::now();
            let grad_norm = clip_grad_norm(&mut self.store, 5.0);
            opt.step(&mut self.store);
            self.phases.optim_ns += elapsed_ns(t);
            grad_norm
        };
        StepStats { loss: loss_val, mse, rank, grad_norm }
    }

    /// Global parameter L2 norm (the ‖θ‖ the L2 term of Eq. 9 penalises).
    pub fn weight_norm(&self) -> f32 {
        self.store.value_norm()
    }

    /// Snapshot of the strategy's weighted adjacency for introspection
    /// (Figure 8 case study): one weight vector per time-step, aligned with
    /// `self.ctx.edges` (relation edges then self-loops). Uniform/Weighted
    /// return a single shared snapshot.
    pub fn adjacency_snapshot(&mut self, x: &Tensor) -> Vec<Vec<f32>> {
        use crate::config::Strategy;
        let mut tape = Tape::new();
        let xs = self.split_steps(&mut tape, x);
        let conv = self.rel_convs.first();
        let out = match self.config.strategy {
            Strategy::Uniform => {
                let a = self.ctx.adjacency_uniform(&mut tape);
                vec![tape.value(a).data().to_vec()]
            }
            Strategy::Weighted => {
                // lint:allow(panic-free-hot-paths) weighted strategy implies the relational module (validated at construction)
                let conv = conv.expect("relational module disabled");
                let w = self.store.bind(&mut tape, conv.w_rel);
                let b = self.store.bind(&mut tape, conv.b_rel);
                let a = self.ctx.adjacency_weighted(&mut tape, w, b);
                vec![tape.value(a).data().to_vec()]
            }
            Strategy::TimeSensitive => {
                // lint:allow(panic-free-hot-paths) time-sensitive strategy implies the relational module (validated at construction)
                let conv = conv.expect("relational module disabled");
                xs.iter()
                    .map(|&x_t| {
                        let w = self.store.bind(&mut tape, conv.w_rel);
                        let b = self.store.bind(&mut tape, conv.b_rel);
                        let a = self.ctx.adjacency_time_sensitive(&mut tape, w, b, x_t);
                        tape.value(a).data().to_vec()
                    })
                    .collect()
            }
        };
        self.store.clear_bindings();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use rtgcn_tensor::Adam;

    fn relations(n: usize) -> RelationTensor {
        let mut r = RelationTensor::new(n, 2);
        for i in 0..n - 1 {
            r.connect(i, i + 1, i % 2);
        }
        r
    }

    fn toy_input(t: usize, n: usize, d: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = init::rng(seed);
        let x = init::normal([t, n, d], 0.5, &mut rng);
        let y = init::normal([n], 0.02, &mut rng);
        (x, y)
    }

    #[test]
    fn forward_shapes_all_strategies() {
        for strategy in Strategy::ALL {
            let mut cfg = RtGcnConfig::with_strategy(strategy);
            cfg.t_steps = 8;
            cfg.n_features = 3;
            let mut model = RtGcn::new(cfg, &relations(5), 1);
            let (x, _) = toy_input(8, 5, 3, 2);
            let scores = model.score(&x);
            assert_eq!(scores.len(), 5, "{strategy:?}");
            assert!(scores.iter().all(|s| s.is_finite()), "{strategy:?}");
        }
    }

    #[test]
    fn ablation_variants_run() {
        for cfg in [RtGcnConfig::r_conv(), RtGcnConfig::t_conv()] {
            let mut cfg = cfg;
            cfg.t_steps = 8;
            cfg.n_features = 2;
            let mut model = RtGcn::new(cfg, &relations(4), 3);
            let (x, _) = toy_input(8, 4, 2, 4);
            assert_eq!(model.score(&x).len(), 4);
        }
    }

    #[test]
    fn two_layer_stack_runs() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::TimeSensitive);
        cfg.layers = 2;
        cfg.t_steps = 12;
        cfg.n_features = 2;
        let mut model = RtGcn::new(cfg, &relations(4), 5);
        let (x, _) = toy_input(12, 4, 2, 6);
        assert_eq!(model.score(&x).len(), 4);
    }

    #[test]
    fn fused_and_serial_scores_match() {
        for strategy in Strategy::ALL {
            let mut cfg = RtGcnConfig::with_strategy(strategy);
            cfg.t_steps = 8;
            cfg.n_features = 3;
            cfg.dropout = 0.0;
            cfg.fused = true;
            let mut serial_cfg = cfg.clone();
            serial_cfg.fused = false;
            let rel = relations(5);
            let mut fused = RtGcn::new(cfg, &rel, 21);
            let mut serial = RtGcn::new(serial_cfg, &rel, 21);
            let (x, _) = toy_input(8, 5, 3, 22);
            let (sf, ss) = (fused.score(&x), serial.score(&x));
            for (f, s) in sf.iter().zip(&ss) {
                assert!(
                    (f - s).abs() <= 1e-6 * s.abs().max(1.0),
                    "{strategy:?}: fused {f} vs serial {s}"
                );
            }
        }
    }

    #[test]
    fn fused_training_tracks_serial_losses() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::TimeSensitive);
        cfg.t_steps = 8;
        cfg.n_features = 2;
        cfg.dropout = 0.0;
        cfg.fused = true;
        let mut serial_cfg = cfg.clone();
        serial_cfg.fused = false;
        let rel = relations(5);
        let mut fused = RtGcn::new(cfg, &rel, 23);
        let mut serial = RtGcn::new(serial_cfg, &rel, 23);
        let (x, y) = toy_input(8, 5, 2, 24);
        let mut opt_f = Adam::new(1e-3, 0.0);
        let mut opt_s = Adam::new(1e-3, 0.0);
        for step in 0..5 {
            let lf = fused.train_step(&x, &y, &mut opt_f);
            let ls = serial.train_step(&x, &y, &mut opt_s);
            assert!(
                (lf - ls).abs() <= 1e-3 * ls.abs().max(1.0),
                "step {step}: fused loss {lf} vs serial {ls}"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::Weighted);
        cfg.t_steps = 8;
        cfg.n_features = 2;
        cfg.dropout = 0.0;
        let mut model = RtGcn::new(cfg, &relations(6), 7);
        let (x, y) = toy_input(8, 6, 2, 8);
        let mut opt = Adam::new(5e-3, 0.0);
        let first = model.train_step(&x, &y, &mut opt);
        let mut last = first;
        for _ in 0..60 {
            last = model.train_step(&x, &y, &mut opt);
        }
        assert!(
            last < first * 0.8,
            "loss should drop on a fixed batch: first {first}, last {last}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut cfg = RtGcnConfig::with_strategy(Strategy::TimeSensitive);
            cfg.t_steps = 6;
            cfg.n_features = 2;
            let mut m = RtGcn::new(cfg, &relations(4), 11);
            let (x, _) = toy_input(6, 4, 2, 12);
            m.score(&x)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn adjacency_snapshot_per_step_only_for_time_sensitive() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::TimeSensitive);
        cfg.t_steps = 5;
        cfg.n_features = 2;
        let mut model = RtGcn::new(cfg, &relations(4), 13);
        let (x, _) = toy_input(5, 4, 2, 14);
        let snaps = model.adjacency_snapshot(&x);
        assert_eq!(snaps.len(), 5, "one adjacency per time-step");
        assert_ne!(snaps[0], snaps[4], "adjacency evolves across steps");

        let mut cfg = RtGcnConfig::with_strategy(Strategy::Weighted);
        cfg.t_steps = 5;
        cfg.n_features = 2;
        let mut model = RtGcn::new(cfg, &relations(4), 13);
        assert_eq!(model.adjacency_snapshot(&x).len(), 1, "shared adjacency");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_scores() {
        let dir = std::env::temp_dir().join("rtgcn_model_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.rtgp");
        let mut cfg = RtGcnConfig::with_strategy(Strategy::Weighted);
        cfg.t_steps = 6;
        cfg.n_features = 2;
        cfg.dropout = 0.0;
        let rel = relations(4);
        let mut a = RtGcn::new(cfg.clone(), &rel, 31);
        let (x, y) = toy_input(6, 4, 2, 32);
        let mut opt = Adam::new(1e-3, 0.0);
        for _ in 0..5 {
            a.train_step(&x, &y, &mut opt);
        }
        let expect = a.score(&x);
        a.save(&path).unwrap();
        // Fresh model with different seed, then load the checkpoint.
        let mut b = RtGcn::new(cfg, &rel, 99);
        assert_ne!(b.score(&x), expect, "different init should differ");
        b.load(&path).unwrap();
        assert_eq!(b.score(&x), expect, "loaded model must reproduce scores");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corr_override_reproduces_exact_scores() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::TimeSensitive);
        cfg.t_steps = 6;
        cfg.n_features = 2;
        cfg.dropout = 0.0;
        let rel = relations(5);
        let mut model = RtGcn::new(cfg, &rel, 41);
        let (x, _) = toy_input(6, 5, 2, 42);
        let base = model.score(&x);
        // Feed back the exact correlation the batch path would compute: the
        // override must be bit-transparent.
        let corr_t = {
            let mut tape = Tape::new();
            let x3 = tape.constant(x.clone());
            let corr = tape.edge_dot_batched(&model.ctx.rel_edges, x3, (2.0f32).sqrt());
            tape.value(corr).clone()
        };
        assert_eq!(corr_t.dims(), &[6, model.ctx.n_rel_edges]);
        let streamed = model.score_with_corr(&x, &corr_t);
        assert_eq!(base, streamed, "override with the true corr must be exact");
        assert!(model.ctx.corr_override.is_none(), "override must be cleared");
        // A mismatched override is ignored, not mis-applied.
        let bad = Tensor::zeros([6, 1]);
        assert_eq!(model.score_with_corr(&x, &bad), base);
    }

    #[test]
    fn refresh_relations_swaps_graph_but_keeps_params() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::TimeSensitive);
        cfg.t_steps = 6;
        cfg.n_features = 2;
        cfg.dropout = 0.0;
        let rel = relations(5);
        let mut model = RtGcn::new(cfg, &rel, 43);
        let (x, _) = toy_input(6, 5, 2, 44);
        let before = model.score(&x);
        // Same universe + type count, different edges: accepted.
        let mut rel2 = RelationTensor::new(5, 2);
        rel2.connect(0, 4, 0);
        rel2.connect(1, 3, 1);
        assert!(model.refresh_relations(&rel2));
        assert_eq!(model.ctx.n_rel_edges, 4);
        let after = model.score(&x);
        assert_ne!(before, after, "a different graph must change scores");
        // Type-count change: refused, state untouched.
        let rel3 = RelationTensor::new(5, 3);
        assert!(!model.refresh_relations(&rel3));
        assert_eq!(model.ctx.k_types, 2);
        // Universe change: refused.
        let rel4 = RelationTensor::new(6, 2);
        assert!(!model.refresh_relations(&rel4));
    }

    #[test]
    fn scores_differ_across_stocks() {
        let mut cfg = RtGcnConfig::with_strategy(Strategy::Uniform);
        cfg.t_steps = 8;
        cfg.n_features = 2;
        let mut model = RtGcn::new(cfg, &relations(6), 17);
        let (x, _) = toy_input(8, 6, 2, 18);
        let s = model.score(&x);
        let spread = s.iter().cloned().fold(f32::MIN, f32::max)
            - s.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread > 1e-6, "scores should not collapse, spread {spread}");
    }
}
