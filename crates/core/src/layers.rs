//! The two building blocks of an RT-GCN layer (paper Section IV, Figure 3):
//! relational graph convolution (applied plane-by-plane on `G_RT`) and the
//! weight-normalised causal temporal convolution with residual connection
//! and spatial dropout.

use crate::config::Strategy;
use crate::strategy::StrategyCtx;
use rand::rngs::StdRng;
use rtgcn_tensor::{init, ConvSpec, ParamId, ParamStore, Tape, Tensor, Var};

/// Relational graph convolution `Z_t = ReLU(X_t Θ_self + Â(t) X_t Θ_nbr)`
/// — Eq. 2 applied with a strategy-provided adjacency, using the
/// self/neighbour *partitioning* of ST-GCN (Yan et al. [23], the
/// architecture RT-GCN's graph layer builds on): the root node keeps its
/// own weight matrix. Without the partition, symmetric renormalisation over
/// dense industry cliques (degree ≈ 50) dilutes each stock's own features
/// to `1/deg`, erasing the per-stock temporal signal before the temporal
/// convolution can read it (DESIGN.md §6).
pub struct RelationalConv {
    pub theta_self: ParamId,
    pub theta: ParamId,
    /// Strategy parameters `w ∈ R^{K×1}` and `b` (unused by Uniform).
    pub w_rel: ParamId,
    pub b_rel: ParamId,
    pub strategy: Strategy,
}

impl RelationalConv {
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        k_types: usize,
        strategy: Strategy,
        rng: &mut StdRng,
    ) -> Self {
        let theta_self =
            store.add(format!("{prefix}.theta_self"), init::xavier([in_dim, out_dim], rng));
        let theta = store.add(format!("{prefix}.theta"), init::xavier([in_dim, out_dim], rng));
        // Relation weights start near the uniform strategy (w ≈ 0, b = 1) so
        // early training matches Eq. 3 and learns departures from it.
        let w_rel = store.add(format!("{prefix}.w_rel"), init::normal([k_types, 1], 0.1, rng));
        let b_rel = store.add(format!("{prefix}.b_rel"), Tensor::from_vec(vec![1.0]));
        RelationalConv { theta_self, theta, w_rel, b_rel, strategy }
    }

    /// Forward over all time-steps. `xs[t]` is the `(N, D)` feature matrix of
    /// plane `t`; returns one `(N, F)` output per plane.
    ///
    /// The Uniform and Weighted strategies share one adjacency across planes
    /// (computed once); TimeSensitive rebuilds it per plane from `xs[t]`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ctx: &StrategyCtx,
        xs: &[Var],
    ) -> Vec<Var> {
        let theta_self = store.bind(tape, self.theta_self);
        let theta = store.bind(tape, self.theta);
        let shared_adj = match self.strategy {
            Strategy::Uniform => Some(ctx.adjacency_uniform(tape)),
            Strategy::Weighted => {
                let w = store.bind(tape, self.w_rel);
                let b = store.bind(tape, self.b_rel);
                Some(ctx.adjacency_weighted(tape, w, b))
            }
            Strategy::TimeSensitive => None,
        };
        xs.iter()
            .map(|&x_t| {
                let adj = match shared_adj {
                    Some(a) => a,
                    None => {
                        let w = store.bind(tape, self.w_rel);
                        let b = store.bind(tape, self.b_rel);
                        ctx.adjacency_time_sensitive(tape, w, b, x_t)
                    }
                };
                let own = tape.matmul(x_t, theta_self);
                let agg = tape.spmm(&ctx.edges, adj, x_t);
                let nbr = tape.matmul(agg, theta);
                let z = tape.add(own, nbr);
                tape.relu(z)
            })
            .collect()
    }

    /// Fused forward over all time-steps: `x3` is the full `(T, N, C)`
    /// window, the result `(T, N, F)`. All planes share one
    /// `(T·N, C) × (C, F)` matmul per weight matrix and one batched
    /// propagation through the cached CSR layout, instead of `T` separate
    /// spmm + matmul chains. `training` selects the on-tape (differentiable)
    /// adjacency for the Weighted strategy; at inference it goes through
    /// [`NormalizedAdjCache::normalized_frozen`](rtgcn_graph::NormalizedAdjCache::normalized_frozen)
    /// instead, so repeated scoring renormalises once per parameter vector.
    pub fn forward_fused(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ctx: &StrategyCtx,
        x3: Var,
        training: bool,
    ) -> Var {
        let dims = tape.value(x3).dims().to_vec();
        let (t, n, c) = (dims[0], dims[1], dims[2]);
        let out_dim = store.value(self.theta).dims()[1];
        let adj = match self.strategy {
            Strategy::Uniform => tape.constant(Tensor::from_vec(ctx.cache.uniform().as_ref().clone())),
            Strategy::Weighted if training => {
                let w = store.bind(tape, self.w_rel);
                let b = store.bind(tape, self.b_rel);
                ctx.adjacency_weighted(tape, w, b)
            }
            Strategy::Weighted => {
                ctx.adjacency_weighted_frozen(tape, store.value(self.w_rel), store.value(self.b_rel))
            }
            Strategy::TimeSensitive => {
                let w = store.bind(tape, self.w_rel);
                let b = store.bind(tape, self.b_rel);
                ctx.adjacency_time_sensitive_batched(tape, w, b, x3)
            }
        };
        let theta_self = store.bind(tape, self.theta_self);
        let theta = store.bind(tape, self.theta);
        let x2 = tape.reshape(x3, [t * n, c]);
        let own = tape.matmul(x2, theta_self);
        let agg = tape.spmm_batched(ctx.csr(), adj, x3); // (T, N, C)
        let agg2 = tape.reshape(agg, [t * n, c]);
        let nbr = tape.matmul(agg2, theta);
        let z = tape.add(own, nbr);
        let a = tape.relu(z);
        tape.reshape(a, [t, n, out_dim])
    }
}

/// Weight-normalised causal temporal convolution block: conv → ReLU →
/// spatial dropout, plus a (possibly strided 1×1) residual connection
/// (Section IV-C; He et al. residual, Salimans–Kingma weight norm,
/// Srivastava spatial dropout).
pub struct TemporalConvBlock {
    pub v: ParamId,
    pub gain: ParamId,
    pub bias: ParamId,
    /// 1×1 skip projection, present when channels or stride change.
    pub skip: Option<(ParamId, ParamId)>,
    pub spec: ConvSpec,
    pub in_channels: usize,
    pub out_channels: usize,
    pub dropout: f32,
}

impl TemporalConvBlock {
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_channels: usize,
        out_channels: usize,
        spec: ConvSpec,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        let v = store.add(
            format!("{prefix}.v"),
            init::kaiming([out_channels, in_channels * spec.kernel], rng)
                .reshape([out_channels, in_channels, spec.kernel]),
        );
        let gain = store.add(format!("{prefix}.gain"), Tensor::ones([out_channels]));
        let bias = store.add(format!("{prefix}.bias"), Tensor::zeros([out_channels]));
        let skip = if in_channels != out_channels || spec.stride != 1 {
            let sw = store.add(
                format!("{prefix}.skip_w"),
                init::xavier([out_channels, in_channels, 1], rng),
            );
            let sb = store.add(format!("{prefix}.skip_b"), Tensor::zeros([out_channels]));
            Some((sw, sb))
        } else {
            None
        };
        TemporalConvBlock { v, gain, bias, skip, spec, in_channels, out_channels, dropout }
    }

    /// `x: (N, C_in, T)` → `(N, C_out, ⌈T/stride⌉)`. `rng` is consulted only
    /// when `training` (dropout).
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let v = store.bind(tape, self.v);
        let gain = store.bind(tape, self.gain);
        let bias = store.bind(tape, self.bias);
        let w = tape.weight_norm(v, gain);
        let conv = tape.conv1d_causal(x, w, bias, self.spec);
        let act = tape.relu(conv);
        let reg = if training && self.dropout > 0.0 {
            tape.spatial_dropout(act, self.dropout, rng)
        } else {
            act
        };
        let residual = match self.skip {
            Some((sw, sb)) => {
                let sw = store.bind(tape, sw);
                let sb = store.bind(tape, sb);
                let skip_spec = ConvSpec::new(1, self.spec.stride, 1);
                tape.conv1d_causal(x, sw, sb, skip_spec)
            }
            None => x,
        };
        tape.add(reg, residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_graph::RelationTensor;

    fn ctx3() -> StrategyCtx {
        let mut r = RelationTensor::new(3, 2);
        r.connect(0, 1, 0);
        r.connect(1, 2, 1);
        StrategyCtx::new(&r)
    }

    fn x_t(tape: &mut Tape, seed: f32) -> Var {
        tape.constant(Tensor::new(
            [3, 2],
            vec![seed, 0.1, 0.2, seed * 0.5, -0.3, seed + 0.1],
        ))
    }

    #[test]
    fn relational_conv_output_shapes() {
        for strategy in Strategy::ALL {
            let mut store = ParamStore::new();
            let mut rng = init::rng(1);
            let conv = RelationalConv::new(&mut store, "rc", 2, 5, 2, strategy, &mut rng);
            let mut tape = Tape::new();
            let xs: Vec<Var> = (0..4).map(|t| x_t(&mut tape, t as f32 * 0.3 + 0.2)).collect();
            let zs = conv.forward(&mut tape, &store, &ctx3(), &xs);
            assert_eq!(zs.len(), 4);
            for z in zs {
                assert_eq!(tape.value(z).dims(), &[3, 5], "{strategy:?}");
                assert!(!tape.value(z).has_non_finite());
            }
        }
    }

    #[test]
    fn relational_conv_aggregates_neighbours() {
        // With uniform strategy, node 0's output depends on node 1's input.
        let mut store = ParamStore::new();
        let mut rng = init::rng(2);
        let conv = RelationalConv::new(&mut store, "rc", 2, 3, 2, Strategy::Uniform, &mut rng);
        let ctx = ctx3();
        let run = |x: Tensor| -> Tensor {
            let mut tape = Tape::new();
            let xv = tape.constant(x);
            let z = conv.forward(&mut tape, &store, &ctx, &[xv]);
            store.clear_bindings();
            tape.value(z[0]).clone()
        };
        let base = run(Tensor::new([3, 2], vec![1., 1., 1., 1., 1., 1.]));
        let pert = run(Tensor::new([3, 2], vec![1., 1., 9., 9., 1., 1.]));
        let row0_changed = (0..3).any(|f| (base.at(&[0, f]) - pert.at(&[0, f])).abs() > 1e-6);
        assert!(row0_changed, "perturbing neighbour 1 must change node 0's output");
        // Node 2 is NOT related to node 1's pair (0,1)... it is related to 1.
        // Node 0 and 2 are unrelated: perturbing node 1 still reaches both.
        // Check instead that an isolated change of node 0 does not affect a
        // non-neighbour: perturb node 0, check node 2 (only neighbour is 1).
        let pert0 = run(Tensor::new([3, 2], vec![9., 9., 1., 1., 1., 1.]));
        let row2_changed = (0..3).any(|f| (base.at(&[2, f]) - pert0.at(&[2, f])).abs() > 1e-6);
        assert!(!row2_changed, "node 2 must be unaffected by non-neighbour node 0");
    }

    #[test]
    fn fused_forward_matches_serial_per_plane() {
        let (t, n, d, f) = (4, 3, 2, 5);
        let data: Vec<f32> =
            (0..t * n * d).map(|i| ((i * 31 + 7) % 23) as f32 / 23.0 - 0.4).collect();
        for strategy in Strategy::ALL {
            for training in [false, true] {
                let mut store = ParamStore::new();
                let mut rng = init::rng(9);
                let conv = RelationalConv::new(&mut store, "rc", d, f, 2, strategy, &mut rng);
                let ctx = ctx3();
                let mut tape = Tape::new();
                let xs: Vec<Var> = (0..t)
                    .map(|p| {
                        tape.constant(Tensor::new([n, d], data[p * n * d..(p + 1) * n * d].to_vec()))
                    })
                    .collect();
                let serial = conv.forward(&mut tape, &store, &ctx, &xs);
                let x3 = tape.constant(Tensor::new([t, n, d], data.clone()));
                let fused = conv.forward_fused(&mut tape, &store, &ctx, x3, training);
                assert_eq!(tape.value(fused).dims(), &[t, n, f]);
                for (p, &s) in serial.iter().enumerate() {
                    let got = &tape.value(fused).data()[p * n * f..(p + 1) * n * f];
                    for (g, e) in got.iter().zip(tape.value(s).data()) {
                        assert!(
                            (g - e).abs() <= 1e-6 * e.abs().max(1.0),
                            "{strategy:?} training={training} plane {p}: fused {g} vs serial {e}"
                        );
                    }
                }
                store.clear_bindings();
            }
        }
    }

    #[test]
    fn temporal_block_shapes_and_residual() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(3);
        let spec = ConvSpec::new(3, 2, 1);
        let block = TemporalConvBlock::new(&mut store, "tcn", 4, 8, spec, 0.0, &mut rng);
        assert!(block.skip.is_some(), "channel/stride change requires projection");
        let mut tape = Tape::new();
        let x = tape.constant(init::normal([5, 4, 10], 1.0, &mut rng));
        let y = block.forward(&mut tape, &store, x, false, &mut rng);
        assert_eq!(tape.value(y).dims(), &[5, 8, 5]);
    }

    #[test]
    fn temporal_block_identity_skip_when_same_shape() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(4);
        let spec = ConvSpec::new(3, 1, 1);
        let block = TemporalConvBlock::new(&mut store, "tcn", 6, 6, spec, 0.0, &mut rng);
        assert!(block.skip.is_none());
        let mut tape = Tape::new();
        let x = tape.constant(init::normal([2, 6, 8], 1.0, &mut rng));
        let y = block.forward(&mut tape, &store, x, false, &mut rng);
        assert_eq!(tape.value(y).dims(), &[2, 6, 8]);
    }

    #[test]
    fn temporal_block_gradients_flow_to_all_params() {
        let mut store = ParamStore::new();
        let mut rng = init::rng(5);
        let spec = ConvSpec::new(2, 2, 1);
        let block = TemporalConvBlock::new(&mut store, "tcn", 3, 4, spec, 0.0, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(init::normal([2, 3, 6], 1.0, &mut rng));
        let y = block.forward(&mut tape, &store, x, true, &mut rng);
        let sq = tape.square(y);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        store.absorb_grads(&tape);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(
                store.grad(id).norm() > 0.0,
                "no gradient reached {}",
                store.name(id)
            );
        }
    }
}
