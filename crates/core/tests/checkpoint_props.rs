//! Property tests for the checkpoint container: decoding adversarial
//! bytes — random single-byte corruption, truncation at any offset,
//! version bumps, random garbage — must always return a structured
//! [`CheckpointError`], never panic, and a clean round trip must be
//! byte-exact for arbitrary parameter sets.

use proptest::prelude::*;
use rtgcn_core::checkpoint::fnv1a64;
use rtgcn_core::{Checkpoint, CheckpointError, DataSpec};
use rtgcn_market::{Market, RelationKind, Scale, UniverseSpec};
use rtgcn_tensor::{ParamStore, Tensor};

/// A checkpoint with `n_params` parameters whose shapes and values are
/// derived deterministically from `seed`.
fn arbitrary_checkpoint(n_params: usize, seed: u64) -> Checkpoint {
    let mut store = ParamStore::new();
    for p in 0..n_params {
        let mix = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(p as u64);
        let rows = 1 + (mix % 4) as usize;
        let cols = 1 + ((mix >> 8) % 5) as usize;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((mix >> 16).wrapping_add(i as u64) % 1000) as f32 * 0.125 - 31.0)
            .collect();
        store.add(format!("layer{p}.w"), Tensor::new([rows, cols], data));
    }
    let data = DataSpec {
        spec: UniverseSpec::of(Market::Nasdaq, Scale::Small),
        seed,
        relation_kind: RelationKind::Wiki,
    };
    Checkpoint::from_store(
        "rtgcn",
        format!("{{\"seed\":{seed}}}"),
        serde_json::to_string(&data).unwrap(),
        &store,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_byte_exact_for_arbitrary_params(
        n_params in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let c = arbitrary_checkpoint(n_params, seed);
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("clean bytes must decode");
        prop_assert_eq!(&back, &c);
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
    }

    /// Flip one byte anywhere: the decoder must report a structured error
    /// (corruption anywhere past the version field trips the checksum) —
    /// and must never accept the container unchanged.
    #[test]
    fn single_byte_corruption_is_always_detected(
        seed in 0u64..1_000_000,
        offset_frac in 0.0f64..1.0,
        flip in 1u32..256,
    ) {
        let c = arbitrary_checkpoint(2, seed);
        let mut bytes = c.to_bytes();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= flip as u8;
        match Checkpoint::from_bytes(&bytes) {
            Err(
                CheckpointError::BadMagic
                | CheckpointError::UnsupportedVersion(_)
                | CheckpointError::ChecksumMismatch { .. },
            ) => {}
            Err(e) => panic!("corruption at byte {offset} gave unexpected error class: {e}"),
            Ok(_) => panic!("corrupted byte {offset} decoded successfully"),
        }
    }

    /// Truncate at any length: never a panic, never a successful decode
    /// (the trailing checksum cannot survive losing bytes).
    #[test]
    fn truncation_at_any_offset_is_a_structured_error(
        seed in 0u64..1_000_000,
        keep_frac in 0.0f64..1.0,
    ) {
        let c = arbitrary_checkpoint(3, seed);
        let bytes = c.to_bytes();
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        match Checkpoint::from_bytes(&bytes[..keep]) {
            Ok(_) => panic!("decoded a {keep}-byte prefix of a {}-byte container", bytes.len()),
            Err(e) => {
                // Any structured class is acceptable; reaching here at all
                // means no panic. Exercise Display too.
                let _ = e.to_string();
            }
        }
    }

    /// A bumped version must be reported as UnsupportedVersion even though
    /// the checksum no longer matches (version is checked first, so old
    /// binaries give actionable errors on future checkpoints).
    #[test]
    fn version_bump_reports_unsupported_version(
        seed in 0u64..1_000_000,
        version in 2u32..1000,
    ) {
        let c = arbitrary_checkpoint(1, seed);
        let mut bytes = c.to_bytes();
        bytes[8..10].copy_from_slice(&(version as u16).to_le_bytes());
        prop_assert_eq!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(version as u16))
        );
    }

    /// Random garbage (even with a valid magic + version + checksum
    /// grafted on) must never panic the decoder.
    #[test]
    fn random_bytes_never_panic(
        body in proptest::collection::vec(0u32..256, 0..200),
        graft_frame in 0u32..2,
    ) {
        let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
        // Raw garbage …
        let _ = Checkpoint::from_bytes(&body);
        // … and garbage dressed as a valid frame: magic + version up
        // front, correct FNV-1a checksum at the back, noise in between.
        if graft_frame == 1 {
            let mut framed = Vec::with_capacity(body.len() + 18);
            framed.extend_from_slice(b"RTGCKPT\0");
            framed.extend_from_slice(&1u16.to_le_bytes());
            framed.extend_from_slice(&body);
            let sum = fnv1a64(&framed);
            framed.extend_from_slice(&sum.to_le_bytes());
            match Checkpoint::from_bytes(&framed) {
                // The parser must reject it structurally (garbage cannot
                // be a coherent param table) or — vanishingly unlikely —
                // decode; both are fine, panicking is not.
                Ok(_) | Err(_) => {}
            }
        }
    }
}
