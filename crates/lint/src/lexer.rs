//! A hand-rolled Rust lexer — just enough fidelity for lint rules.
//!
//! The rules in [`crate::rules`] are token-pattern matchers, so the lexer's
//! one job is to never hand them text that is not code: string literals
//! (plain, raw, byte), char literals, and comments (line, block — nested —
//! and doc) must be recognised and set aside. Comments are retained with
//! their line spans because two lint conventions live inside them:
//! `// lint:allow(<rule>) <reason>` suppressions and `// SAFETY:`
//! justifications for `unsafe` blocks.
//!
//! This is deliberately not a full Rust lexer (no `syn`, no dependencies):
//! shebangs, `c"..."` literals and exotic suffixes are handled permissively,
//! and anything unrecognised becomes a single-char punct token, which at
//! worst makes a rule miss — never crash.

/// Token classification. Only the distinctions the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`s, stored without `r#`).
    Ident,
    /// Punctuation. Multi-char operators the rules care about (`==`, `!=`,
    /// `..`, `..=`, `::`, `->`, `=>`) are emitted as single tokens; all other
    /// punctuation is one char per token.
    Punct,
    /// String literal of any flavour (contents not retained).
    Str,
    /// Char literal.
    Char,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (`0.0`, `1e-9`, `2.5f32`, `3f64`, ...).
    Float,
    /// Lifetime (`'a`). Emitted so char-literal handling has a home; unused
    /// by the current rules.
    Lifetime,
}

#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment with its line span (block comments can span many lines).
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

#[derive(Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_string(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    /// Plain (escaped) string body; opening quote at current pos.
    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Raw string: pos is at `r`'s following `#`* or `"`; consumes through
    /// the matching close quote.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // '
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime = matches!(first, Some(c) if c == '_' || c.is_alphabetic())
            && second != Some('\'');
        if is_lifetime {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal: consume body (with escapes) through the closing '.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            match c {
                '0'..='9' | '_' => {
                    text.push(c);
                    self.bump();
                }
                '.' => {
                    // `1.5` is a float; `1..n` is int + range; `1.max(2)` is
                    // int + method call.
                    if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                        is_float = true;
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                'e' | 'E' => {
                    let next = self.peek(1);
                    let exp_digit = match next {
                        Some('+' | '-') => {
                            matches!(self.peek(2), Some(d) if d.is_ascii_digit())
                        }
                        Some(d) => d.is_ascii_digit(),
                        None => false,
                    };
                    if exp_digit {
                        is_float = true;
                        text.push(c);
                        self.bump();
                        if matches!(self.peek(0), Some('+' | '-')) {
                            text.push(self.bump().unwrap_or('+'));
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        // Type suffix (f32/f64/u8/usize/...).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with("f3") || suffix.starts_with("f6") {
            is_float = true;
        }
        text.push_str(&suffix);
        self.push(if is_float { TokKind::Float } else { TokKind::Int }, text, line);
    }

    /// An identifier — unless it is a string prefix (`r"`, `b"`, `br#"`,
    /// `r#"`, `c"`, `cr#"`) or raw ident (`r#ident`).
    fn ident_or_prefixed_string(&mut self, line: u32) {
        let c = self.peek(0).unwrap_or('_');
        let starts_raw = |this: &Self, at: usize| -> bool {
            // `#`* followed by `"` starting at offset `at`.
            let mut k = at;
            while this.peek(k) == Some('#') {
                k += 1;
            }
            k > at && this.peek(k) == Some('"')
        };
        match c {
            'r' | 'b' | 'c' => {
                let second = self.peek(1);
                if second == Some('"') {
                    self.bump();
                    if c == 'r' {
                        self.raw_string(line);
                    } else {
                        self.string_literal(line);
                    }
                    return;
                }
                if c == 'r' && starts_raw(self, 1) {
                    // Could be r#"..."# (raw string) or r#ident (raw ident).
                    // starts_raw already verified a quote follows the hashes.
                    self.bump();
                    self.raw_string(line);
                    return;
                }
                if (c == 'b' || c == 'c')
                    && second == Some('r')
                    && (self.peek(2) == Some('"') || starts_raw(self, 2))
                {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                    return;
                }
                if c == 'r' && second == Some('#') {
                    // raw ident r#type — skip the r# and lex the ident.
                    self.bump();
                    self.bump();
                }
            }
            _ => {}
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            // Defensive: should be unreachable, but never loop forever.
            self.bump();
            return;
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self, line: u32) {
        let c = self.bump().unwrap_or(' ');
        let two = |this: &Self| this.peek(0);
        let joined = match (c, two(self)) {
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            ('.', Some('.')) => Some(".."),
            _ => None,
        };
        if let Some(op) = joined {
            self.bump();
            if op == ".." && self.peek(0) == Some('=') {
                self.bump();
                self.push(TokKind::Punct, "..=".into(), line);
            } else {
                self.push(TokKind::Punct, op.into(), line);
            }
        } else {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_idents() {
        let src = r##"
            let a = "unwrap() partial_cmp"; // unwrap in comment
            /* partial_cmp in /* nested */ block */
            let b = r#"raw unwrap"#;
            let c = b"byte unwrap";
            call();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"call".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\''; }");
        let kinds: Vec<TokKind> = lexed.tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Lifetime));
        assert_eq!(kinds.iter().filter(|k| **k == TokKind::Char).count(), 2);
    }

    #[test]
    fn float_detection() {
        let toks = lex("a == 0.0; b != 1e-9; c == 2.5f32; d == 3; e[0..n]; 1.max(2)").tokens;
        let floats: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Float).map(|t| t.text.as_str()).collect();
        assert_eq!(floats, ["0.0", "1e-9", "2.5f32"]);
        // `0..n` must not glue into a float.
        assert!(toks.iter().any(|t| t.kind == TokKind::Punct && t.text == ".."));
    }

    #[test]
    fn comment_spans_and_text() {
        let lexed = lex("// SAFETY: fine\nlet x = 1; /* lint:allow(x) reason\nspans */\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let lexed = lex("let s = \"line\nbreak\";\ncall();");
        let call = lexed.tokens.iter().find(|t| t.text == "call").map(|t| t.line);
        assert_eq!(call, Some(3));
    }
}
