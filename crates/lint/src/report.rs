//! Machine-readable lint report (`results/LINT.json`).
//!
//! Hand-rolled JSON (the linter has zero dependencies, see Cargo.toml). The
//! output is deterministic — findings and allows sorted by (file, line,
//! rule), no timestamps — so the committed report diffs like the BENCH
//! snapshots do.

use crate::rules::{Allow, Finding};

pub struct Report {
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
    pub files_scanned: usize,
}

impl Report {
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allows
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason),
                if i + 1 == self.allows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "float-literal-equality",
                    file: "b.rs".into(),
                    line: 2,
                    message: "say \"no\"\n".into(),
                },
                Finding {
                    rule: "nan-discipline",
                    file: "a.rs".into(),
                    line: 9,
                    message: "m".into(),
                },
            ],
            allows: vec![],
            files_scanned: 2,
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\\\"no\\\"\\n"));
        let a = j.find("a.rs").unwrap();
        let b = j.find("b.rs").unwrap();
        assert!(a < b, "findings must sort by file");
        assert!(j.contains("\"finding_count\": 2"));
    }
}
