//! The repo-specific rule set.
//!
//! Every rule has a stable ID (used in `// lint:allow(<id>) <reason>`
//! comments and in `results/LINT.json`) and a path scope. Scopes and
//! carve-outs are documented per-rule below and summarised in DESIGN.md's
//! "Static analysis & invariants" section — when adjusting a scope, update
//! both places.

use crate::lexer::{lex, Comment, TokKind, Token};

pub const NAN_DISCIPLINE: &str = "nan-discipline";
pub const PANIC_FREE: &str = "panic-free-hot-paths";
pub const TELEMETRY_SPAN: &str = "telemetry-span-discipline";
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
pub const FLOAT_EQ: &str = "float-literal-equality";
pub const UNEXPLAINED_ALLOW: &str = "unexplained-allow";

/// All rule IDs that may appear in an allow comment, in report order.
pub const RULE_IDS: [&str; 6] =
    [NAN_DISCIPLINE, PANIC_FREE, TELEMETRY_SPAN, UNSAFE_AUDIT, FLOAT_EQ, UNEXPLAINED_ALLOW];

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// A parsed `lint:allow` suppression (reported in the JSON artifact so the
/// allow inventory is diffable alongside the findings).
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// Lint a single file's source under its repo-relative path. The path drives
/// rule scoping, so tests can lint fixture text under any virtual path.
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, Vec<Allow>) {
    let lexed = lex(src);
    let ctx = FileCtx::build(path, src, &lexed.tokens, &lexed.comments);
    let mut findings = Vec::new();

    rule_nan_discipline(&ctx, &mut findings);
    rule_panic_free(&ctx, &mut findings);
    rule_telemetry_span(&ctx, &mut findings);
    rule_unsafe_audit(&ctx, &mut findings);
    rule_float_eq(&ctx, &mut findings);

    // Apply suppressions, then report unexplained / unknown-rule allows.
    findings.retain(|f| !ctx.is_allowed(f.rule, f.line));
    for a in &ctx.allows {
        if a.reason.is_empty() {
            findings.push(Finding {
                rule: UNEXPLAINED_ALLOW,
                file: ctx.path.clone(),
                line: a.line,
                message: format!(
                    "lint:allow({}) has no reason — every allow must justify itself",
                    a.rule
                ),
            });
        } else if !RULE_IDS.contains(&a.rule.as_str()) {
            findings.push(Finding {
                rule: UNEXPLAINED_ALLOW,
                file: ctx.path.clone(),
                line: a.line,
                message: format!("lint:allow({}) names an unknown rule", a.rule),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // Two hits of one rule on one line (e.g. `.min(a).min(b)`) carry no
    // extra signal — collapse them.
    findings.dedup();
    let allows = ctx
        .allows
        .iter()
        .map(|a| Allow {
            rule: a.rule.clone(),
            file: ctx.path.clone(),
            line: a.line,
            reason: a.reason.clone(),
        })
        .collect();
    (findings, allows)
}

struct RawAllow {
    rule: String,
    line: u32,
    /// Lines this allow covers (its own + the next token-bearing line).
    covers: (u32, u32),
    reason: String,
}

struct FnSpan {
    /// Token index of the `fn` keyword.
    name: String,
    line: u32,
    /// Token index range of the body (inside the braces), empty if bodyless.
    body: std::ops::Range<usize>,
    is_pub: bool,
}

struct FileCtx<'a> {
    path: String,
    tokens: &'a [Token],
    /// Per-token: does it sit inside a `#[test]` fn / `#[cfg(test)]` item?
    in_test: Vec<bool>,
    allows: Vec<RawAllow>,
    /// Line spans of comments containing `SAFETY:`.
    safety_lines: Vec<(u32, u32)>,
    fns: Vec<FnSpan>,
    source_lines: Vec<&'a str>,
}

impl<'a> FileCtx<'a> {
    fn build(path: &str, src: &'a str, tokens: &'a [Token], comments: &'a [Comment]) -> Self {
        let whole_file_test = path.contains("/tests/") || path.starts_with("tests/");
        let mut in_test = vec![whole_file_test; tokens.len()];
        if !whole_file_test {
            mark_test_regions(tokens, &mut in_test);
        }
        let allows = parse_allows(tokens, comments);
        // A multi-line `// SAFETY:` justification lexes as one comment per
        // `//` line; group contiguous comment runs so the whole block counts
        // as the SAFETY comment (its proximity to `unsafe` is measured from
        // the run's last line).
        let mut safety_lines: Vec<(u32, u32)> = Vec::new();
        for c in comments {
            match safety_lines.last_mut() {
                Some((_, end)) if *end + 1 == c.line => *end = c.end_line,
                _ if c.text.contains("SAFETY:") => {
                    safety_lines.push((c.line, c.end_line));
                }
                _ => {}
            }
        }
        let fns = collect_fns(tokens);
        FileCtx {
            path: path.to_string(),
            tokens,
            in_test,
            allows,
            safety_lines,
            fns,
            source_lines: src.lines().collect(),
        }
    }

    fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (line == a.covers.0 || line == a.covers.1))
    }

    fn snippet(&self, line: u32) -> String {
        self.source_lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().chars().take(120).collect())
            .unwrap_or_default()
    }

    fn in_scope(&self, prefixes: &[&str]) -> bool {
        prefixes
            .iter()
            .any(|p| if p.ends_with(".rs") { self.path == *p } else { self.path.starts_with(p) })
    }
}

/// Parse `lint:allow(<rule>) <reason>` comments. The allow covers its own
/// line and the next line that carries a token (so it works both trailing a
/// statement and on the line above it).
fn parse_allows(tokens: &[Token], comments: &[Comment]) -> Vec<RawAllow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("lint:allow(") else { continue };
        let rest = &c.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        // Prose mentioning the syntax (`lint:allow(<id>)`) is not an allow:
        // a real rule ID is strictly kebab-case.
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            continue;
        }
        let reason = rest[close + 1..].trim().trim_start_matches(['-', ':']).trim().to_string();
        let next_token_line = tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > c.end_line)
            .unwrap_or(c.end_line);
        out.push(RawAllow { rule, line: c.line, covers: (c.line, next_token_line), reason });
    }
    out
}

/// Mark every token inside a `#[test]`/`#[cfg(test)]`-attributed item (or an
/// item under a `#![cfg(test)]` file) as test code. Attribute detection is
/// token-level: an attribute whose tokens include the ident `test` counts,
/// which covers `#[test]`, `#[cfg(test)]`, and `#[cfg(all(test, ...))]`.
fn mark_test_regions(tokens: &[Token], in_test: &mut [bool]) {
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct && t.text == "#" {
            let mut j = i + 1;
            let inner = tokens.get(j).map(|t| t.text == "!").unwrap_or(false);
            if inner {
                j += 1;
            }
            if tokens.get(j).map(|t| t.text == "[").unwrap_or(false) {
                // Collect the attribute token range.
                let mut depth = 0usize;
                let mut k = j;
                let mut has_test = false;
                while k < tokens.len() {
                    let tk = &tokens[k];
                    if tk.kind == TokKind::Punct && tk.text == "[" {
                        depth += 1;
                    } else if tk.kind == TokKind::Punct && tk.text == "]" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if tk.kind == TokKind::Ident && tk.text == "test" {
                        has_test = true;
                    }
                    k += 1;
                }
                if has_test {
                    if inner {
                        // `#![cfg(test)]` — whole file is test code.
                        in_test.iter_mut().for_each(|b| *b = true);
                        return;
                    }
                    // Mark from the attribute through the item body: the
                    // first `{` after the attribute through its match, or a
                    // terminating `;` before any brace.
                    let mut m = k + 1;
                    let mut bdepth = 0usize;
                    let mut entered = false;
                    while m < tokens.len() {
                        let tm = &tokens[m];
                        if tm.kind == TokKind::Punct {
                            match tm.text.as_str() {
                                "{" => {
                                    bdepth += 1;
                                    entered = true;
                                }
                                "}" => {
                                    bdepth = bdepth.saturating_sub(1);
                                    if entered && bdepth == 0 {
                                        break;
                                    }
                                }
                                ";" if !entered => break,
                                _ => {}
                            }
                        }
                        m += 1;
                    }
                    for slot in in_test.iter_mut().take((m + 1).min(tokens.len())).skip(i) {
                        *slot = true;
                    }
                    i = m + 1;
                    continue;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Collect `fn` spans (name, body token range, pub-ness) by brace matching.
fn collect_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "fn" {
            let is_pub = i >= 1 && tokens[..i].iter().rev().take(4).any(|t| t.text == "pub");
            let Some(name_tok) = tokens.get(i + 1) else { break };
            let name = name_tok.text.clone();
            let line = tokens[i].line;
            // Find the body opening brace, skipping the signature. A `;`
            // before any `{` means a bodyless decl (trait method).
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut body = 0..0;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        ";" if paren == 0 => break,
                        "{" if paren == 0 => {
                            let mut depth = 0usize;
                            let mut k = j;
                            while k < tokens.len() {
                                match tokens[k].text.as_str() {
                                    "{" => depth += 1,
                                    "}" => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            body = (j + 1)..k.min(tokens.len());
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            out.push(FnSpan { name, line, body, is_pub });
        }
        i += 1;
    }
    out
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, ctx: &FileCtx, line: u32, msg: String) {
    let snippet = ctx.snippet(line);
    let message = if snippet.is_empty() { msg } else { format!("{msg}: `{snippet}`") };
    findings.push(Finding { rule, file: ctx.path.clone(), line, message });
}

/// Is token `i` in expression-index position — i.e. a `[` that directly
/// follows an identifier, `)`, or `]`? Filters out slice/array *types* like
/// `&[&str]` and `[f32; 4]`.
fn is_index_bracket(tokens: &[Token], i: usize) -> bool {
    if tokens[i].text != "[" {
        return false;
    }
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else { return false };
    prev.kind == TokKind::Ident && prev.text != "return" && prev.text != "in"
        || (prev.kind == TokKind::Punct && (prev.text == ")" || prev.text == "]"))
}

/// Token range of the balanced group opening at `open` (exclusive of the
/// delimiters); `open` must point at `(` or `[`.
fn group_range(tokens: &[Token], open: usize) -> std::ops::Range<usize> {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open..open,
    };
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].kind == TokKind::Punct {
            if tokens[k].text == o {
                depth += 1;
            } else if tokens[k].text == c {
                depth -= 1;
                if depth == 0 {
                    return (open + 1)..k;
                }
            }
        }
        k += 1;
    }
    (open + 1)..tokens.len()
}

// ---------------------------------------------------------------------------
// Rule 1: nan-discipline
// ---------------------------------------------------------------------------

/// Scores and metrics flow through `eval` and `bench`; a bare
/// `partial_cmp`/`sort_by(...unwrap...)` (anywhere) or `.max(`/`.min(` (in
/// eval/bench) silently mis-orders NaN. The approved NaN-aware helpers live
/// in `crates/eval/src/float.rs`, which is the one exempted file. `.max(n)`
/// with a literal integer argument is skipped — that is integer clamping,
/// not float comparison.
fn rule_nan_discipline(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    const HELPER_FILE: &str = "crates/eval/src/float.rs";
    let minmax_scoped = ctx.in_scope(&["crates/eval/src/", "crates/bench/src/"])
        && ctx.path != HELPER_FILE;
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "partial_cmp" => push(
                findings,
                NAN_DISCIPLINE,
                ctx,
                t.line,
                "bare `partial_cmp` — NaN compares as None/arbitrary; use `total_cmp` or an \
                 eval::float helper"
                    .into(),
            ),
            "sort_by" | "sort_unstable_by" | "max_by" | "min_by" => {
                if toks.get(i + 1).map(|t| t.text != "(").unwrap_or(true) {
                    continue;
                }
                let r = group_range(toks, i + 1);
                if toks[r].iter().any(|t| t.kind == TokKind::Ident && t.text == "unwrap") {
                    push(
                        findings,
                        NAN_DISCIPLINE,
                        ctx,
                        t.line,
                        format!(
                            "`{}` with `.unwrap()` comparator — panics or mis-orders on NaN; \
                             use `total_cmp` or an eval::float helper",
                            t.text
                        ),
                    );
                }
            }
            "max" | "min" if minmax_scoped => {
                // Method-call position only: `.max(...)` with args.
                let dotted =
                    i >= 1 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
                if !dotted || toks.get(i + 1).map(|t| t.text != "(").unwrap_or(true) {
                    continue;
                }
                let r = group_range(toks, i + 1);
                if r.is_empty() {
                    continue; // Iterator::max/min — NaN handling is the caller's problem upstream.
                }
                let args = &toks[r];
                let single_int_literal = args.len() == 1 && args[0].kind == TokKind::Int;
                if single_int_literal {
                    continue;
                }
                push(
                    findings,
                    NAN_DISCIPLINE,
                    ctx,
                    t.line,
                    format!(
                        "bare `.{}()` on a possibly-NaN value — `f64::{0}` silently drops NaN; \
                         use an eval::float helper (or lint:allow with a reason for integer \
                         clamps)",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: panic-free-hot-paths
// ---------------------------------------------------------------------------

/// Kernel + serving-critical modules must not panic: `unwrap`/`expect`/
/// `panic!`-family everywhere in the hot list, plus map-index (`m[&k]`) and
/// range-slice (`v[a..b]`) indexing in eval/bench library code — the exact
/// two forms behind the PR 5 backtest panics. Plain `v[i]` indexing in
/// kernels is deliberately NOT flagged (bounds are loop invariants there and
/// the noise would drown the signal); `crates/bench/src/bin/` report
/// formatters are also out of scope — they run after results land and their
/// BTreeMap keys are the K_SET constants.
fn rule_panic_free(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    const HOT: [&str; 8] = [
        "crates/tensor/src/ops/",
        "crates/graph/src/",
        "crates/core/src/model.rs",
        "crates/core/src/layers.rs",
        "crates/core/src/strategy.rs",
        "crates/eval/src/backtest.rs",
        "crates/bench/src/runner.rs",
        "crates/bench/src/journal.rs",
    ];
    let panic_scoped = ctx.in_scope(&HOT);
    let index_scoped = ctx.in_scope(&["crates/eval/src/", "crates/bench/src/"])
        && !ctx.path.starts_with("crates/bench/src/bin/");
    if !panic_scoped && !index_scoped {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if panic_scoped && t.kind == TokKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect"
                    if toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
                        // `.unwrap()` method position, not a fn named unwrap.
                        && i >= 1
                        && toks[i - 1].text == "." =>
                {
                    push(
                        findings,
                        PANIC_FREE,
                        ctx,
                        t.line,
                        format!("`.{}()` in a panic-free hot path", t.text),
                    );
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false) =>
                {
                    push(
                        findings,
                        PANIC_FREE,
                        ctx,
                        t.line,
                        format!("`{}!` in a panic-free hot path", t.text),
                    );
                }
                _ => {}
            }
        }
        if index_scoped && t.kind == TokKind::Punct && is_index_bracket(toks, i) {
            let r = group_range(toks, i);
            if r.is_empty() {
                continue;
            }
            let inner = &toks[r.clone()];
            if inner[0].kind == TokKind::Punct && inner[0].text == "&" {
                push(
                    findings,
                    PANIC_FREE,
                    ctx,
                    t.line,
                    "map index `[&k]` panics on a missing key — use `.get(&k)` and warn on \
                     None"
                        .into(),
                );
            } else {
                // Range slice at top bracket depth.
                let mut depth = 0i32;
                for tk in inner {
                    if tk.kind == TokKind::Punct {
                        match tk.text.as_str() {
                            "[" | "(" => depth += 1,
                            "]" | ")" => depth -= 1,
                            ".." | "..=" if depth == 0 => {
                                push(
                                    findings,
                                    PANIC_FREE,
                                    ctx,
                                    t.line,
                                    "range-slice indexing panics on out-of-range bounds — use \
                                     `.get(range)` and warn on None"
                                        .into(),
                                );
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: telemetry-span-discipline
// ---------------------------------------------------------------------------

/// PR 1 conventions: a kernel fn that records a `*_ns` histogram must pair
/// it with a span/counter/scope so the BENCH pipeline can attribute the
/// timing; and in the worker-pool modules, per-model telemetry free
/// functions may only run inside a `ModelScope` (jobs `enter()` the model's
/// scope) — `warn` stays allowed because warnings deliberately route to the
/// root scope.
fn rule_telemetry_span(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    const KERNEL: [&str; 3] =
        ["crates/tensor/src/ops/", "crates/core/src/model.rs", "crates/core/src/layers.rs"];
    const POOL: [&str; 2] = ["crates/bench/src/runner.rs", "crates/bench/src/journal.rs"];

    // Workspace-wide: span names must be string literals. The profiling
    // pipeline (span-tree snapshots, folded stacks, baseline attribution)
    // keys on span *paths* — a name computed at runtime produces unstable
    // paths that can never be diffed against a baseline. The telemetry
    // crate itself is exempt: its internals forward `name` parameters.
    if !ctx.in_scope(&["crates/telemetry/src/"]) {
        for (bi, t) in ctx.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "span" | "debug_span") {
                continue;
            }
            if ctx.in_test.get(bi).copied().unwrap_or(false) {
                continue;
            }
            // Call position only — not `.span(` methods or `fn span(` defs.
            if !ctx.tokens.get(bi + 1).map(|n| n.text == "(").unwrap_or(false) {
                continue;
            }
            match bi.checked_sub(1).and_then(|p| ctx.tokens.get(p)).map(|p| p.text.as_str()) {
                Some(".") | Some("fn") => continue,
                Some("::") => {
                    // Qualified calls: only telemetry's own free fns count;
                    // `SomeType::span(...)` is someone else's API.
                    let telemetry_qual = bi
                        .checked_sub(2)
                        .and_then(|p| ctx.tokens.get(p))
                        .map(|q| q.text == "rtgcn_telemetry" || q.text == "tel")
                        .unwrap_or(false);
                    if !telemetry_qual {
                        continue;
                    }
                }
                _ => {}
            }
            let literal_name =
                ctx.tokens.get(bi + 2).map(|a| a.kind == TokKind::Str).unwrap_or(false);
            if !literal_name {
                push(
                    findings,
                    TELEMETRY_SPAN,
                    ctx,
                    t.line,
                    format!(
                        "`{}` called with a non-literal name — span paths must be stable \
                         string literals for profiling and baseline attribution",
                        t.text
                    ),
                );
            }
        }
    }

    let kernel_scoped = ctx.in_scope(&KERNEL);
    let pool_scoped = ctx.in_scope(&POOL);
    if !kernel_scoped && !pool_scoped {
        return;
    }
    let toks = ctx.tokens;
    for f in &ctx.fns {
        if f.body.is_empty() {
            continue;
        }
        let body = &toks[f.body.clone()];
        let body_test = ctx.in_test.get(f.body.start).copied().unwrap_or(false);
        if body_test {
            continue;
        }
        let has = |name: &str| body.iter().any(|t| t.kind == TokKind::Ident && t.text == name);
        if kernel_scoped && f.is_pub && has("record_ns") {
            let paired = ["span", "debug_span", "kernel_counter", "count", "counter", "enter"]
                .iter()
                .any(|n| has(n));
            if !paired {
                push(
                    findings,
                    TELEMETRY_SPAN,
                    ctx,
                    f.line,
                    format!(
                        "pub fn `{}` records a histogram without a paired span/counter/scope",
                        f.name
                    ),
                );
            }
        }
        if pool_scoped {
            let in_scope_fn = has("enter")
                || has("test_scope")
                || has("root_scope")
                || has("begin_model_scope");
            if in_scope_fn {
                continue;
            }
            for (bi, t) in body.iter().enumerate() {
                let is_free_call = t.kind == TokKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "record_ns" | "gauge" | "span" | "debug_span" | "count" | "count_always"
                    )
                    // Call position only — and not a dotted method like the
                    // iterator's `.count()`, which is unrelated to telemetry.
                    && body.get(bi + 1).map(|n| n.text == "(").unwrap_or(false)
                    && !(bi >= 1 && body[bi - 1].text == ".");
                if is_free_call {
                    push(
                        findings,
                        TELEMETRY_SPAN,
                        ctx,
                        t.line,
                        format!(
                            "telemetry free fn `{}` called in `{}` outside any ModelScope \
                             — per-model metrics must be recorded inside the job's scope",
                            t.text, f.name
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: unsafe-audit
// ---------------------------------------------------------------------------

/// Every `unsafe` (tests included — unsound test helpers poison everything)
/// must carry a `// SAFETY:` comment on the same line or within the three
/// lines above, per the convention ROADMAP item 3's SIMD work will lean on.
fn rule_unsafe_audit(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for t in ctx.tokens.iter() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe` in a string was never tokenised as an ident, so this is
        // real code. Accept a SAFETY comment ending on lines [line-3, line].
        let ok = ctx
            .safety_lines
            .iter()
            .any(|&(_, end)| end <= t.line && end + 3 >= t.line);
        if !ok {
            push(
                findings,
                UNSAFE_AUDIT,
                ctx,
                t.line,
                "`unsafe` without a `// SAFETY:` comment in the 3 lines above".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: float-literal-equality
// ---------------------------------------------------------------------------

/// `x == 0.0` on a *computed* float is almost always a latent bug (the value
/// is an accumulation away from 1e-17). `crates/tensor/src/` is carved out:
/// its kernels use exact `== 0.0` sparsity skips on *stored* values, which
/// is well-defined IEEE-754 and intentional (documented in DESIGN.md).
fn rule_float_eq(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if ctx.path.starts_with("crates/tensor/src/") {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_adjacent = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|j| toks.get(j))
            .any(|t| t.kind == TokKind::Float);
        if float_adjacent {
            push(
                findings,
                FLOAT_EQ,
                ctx,
                t.line,
                format!(
                    "`{}` against a float literal — compare with a tolerance or justify with \
                     lint:allow",
                    t.text
                ),
            );
        }
    }
}
