//! `rtgcn-lint` — run the repo-specific lint pass.
//!
//! ```text
//! rtgcn-lint [--deny] [--json PATH] [--root DIR] [FILE...]
//!   --deny       exit 3 when any finding survives suppression (CI gate)
//!   --json PATH  write the machine-readable report (default: skip)
//!   --root DIR   workspace root to walk (default: .)
//!   FILE...      lint only these files instead of walking the workspace
//! ```
//!
//! Exit codes: 0 clean, 2 usage/IO error, 3 findings under `--deny`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json requires a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: rtgcn-lint [--deny] [--json PATH] [--root DIR] [FILE...]\n\
                     rules: {}",
                    rtgcn_lint::rules::RULE_IDS.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let result = if files.is_empty() {
        rtgcn_lint::run(&root)
    } else {
        rtgcn_lint::lint_files(&root, &files)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error[rtgcn-lint]: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    println!(
        "rtgcn-lint: {} file(s), {} finding(s), {} allow(s)",
        report.files_scanned,
        report.findings.len(),
        report.allows.len()
    );

    if let Some(path) = json {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error[rtgcn-lint]: creating {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error[rtgcn-lint]: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if deny && !report.findings.is_empty() {
        eprintln!("rtgcn-lint: --deny with {} finding(s)", report.findings.len());
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error[rtgcn-lint]: {msg} (usage: rtgcn-lint [--deny] [--json PATH] [--root DIR] [FILE...])");
    ExitCode::from(2)
}
