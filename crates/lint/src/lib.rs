//! # rtgcn-lint
//!
//! Zero-dependency, repo-specific static analysis for the RT-GCN workspace:
//! rules clippy cannot express because they encode *this* repo's conventions
//! — NaN discipline in the ranking metrics path, panic-free kernels and
//! serving paths, telemetry span/counter pairing, `// SAFETY:` audits, and
//! float-literal equality. See DESIGN.md § "Static analysis & invariants"
//! for the rule table and [`rules`] for per-rule scoping.
//!
//! Suppression syntax (the reason is mandatory — an allow without one is
//! itself a finding):
//!
//! ```text
//! // lint:allow(nan-discipline) usize clamp, not a float metric
//! let workers = workers.max(1).min(total);
//! ```

pub mod lexer;
pub mod report;
pub mod rules;

use report::Report;
use std::path::{Path, PathBuf};

/// Walk the workspace roots under `root` and lint every first-party `.rs`
/// file. Scanned roots: `src/`, `tests/`, `examples/`, `crates/*/src/`,
/// `crates/*/tests/`, `crates/*/benches/`. `vendor/`, `target/` and any
/// `fixtures/` directory are never entered (fixtures are deliberate rule
/// violations used by the lint's own tests).
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for c in crates {
            for sub in ["src", "tests", "benches"] {
                collect_rs(&c.join(sub), &mut files);
            }
        }
    }
    files.sort();
    lint_files(root, &files)
}

/// Lint an explicit file list (paths may be absolute or root-relative).
pub fn lint_files(root: &Path, files: &[PathBuf]) -> std::io::Result<Report> {
    let mut findings = Vec::new();
    let mut allows = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let src = std::fs::read_to_string(f)?;
        let (fs, als) = rules::lint_source(&rel, &src);
        findings.extend(fs);
        allows.extend(als);
    }
    let mut report = Report { findings, allows, files_scanned: files.len() };
    report.sort();
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if p.is_dir() {
            if name != "fixtures" && name != "target" && name != "vendor" {
                collect_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_skips_fixtures_and_vendor() {
        let tmp = std::env::temp_dir().join(format!("rtgcn-lint-walk-{}", std::process::id()));
        let src = tmp.join("crates/x/src");
        let fix = tmp.join("crates/x/tests/fixtures");
        let ven = tmp.join("crates/x/src/vendor");
        for d in [&src, &fix, &ven] {
            std::fs::create_dir_all(d).unwrap();
        }
        std::fs::write(src.join("lib.rs"), "fn a() {}\n").unwrap();
        std::fs::write(fix.join("bad.rs"), "fn b() { x.partial_cmp(&y); }\n").unwrap();
        std::fs::write(ven.join("v.rs"), "fn c() { x.partial_cmp(&y); }\n").unwrap();
        let report = run(&tmp).unwrap();
        std::fs::remove_dir_all(&tmp).ok();
        assert_eq!(report.files_scanned, 1);
        assert!(report.findings.is_empty());
    }
}
