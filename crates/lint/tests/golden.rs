//! Golden-fixture tests: one violating and one clean fixture per rule ID.
//! Fixtures are linted under *virtual* workspace paths so the per-rule
//! scoping (eval/bench for nan-discipline, the hot list for panic-free,
//! kernel/pool modules for telemetry) activates exactly as it would on real
//! files. The `fixtures/` directory is skipped by the workspace walker, so
//! the corpus never leaks into a real `rtgcn-lint --deny` run.

use rtgcn_lint::report::Report;
use rtgcn_lint::rules::{self, lint_source};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint `fixture_name` as if it lived at `virtual_path`; return findings.
fn lint_at(fixture_name: &str, virtual_path: &str) -> Vec<rules::Finding> {
    lint_source(virtual_path, &fixture(fixture_name)).0
}

/// Each violating fixture fires its rule (and only rules we expect), each
/// clean twin is silent — and the JSON report carries the rule ID, which is
/// what `--deny` serialises into `results/LINT.json`.
#[test]
fn every_rule_has_a_firing_and_a_silent_fixture() {
    let cases: &[(&str, &str, &str, &str)] = &[
        // (rule, bad fixture, clean fixture, virtual path)
        ("nan-discipline", "nan_discipline_bad.rs", "nan_discipline_clean.rs", "crates/eval/src/fixture.rs"),
        ("panic-free-hot-paths", "panic_free_bad.rs", "panic_free_clean.rs", "crates/bench/src/runner.rs"),
        ("telemetry-span-discipline", "telemetry_span_bad.rs", "telemetry_span_clean.rs", "crates/tensor/src/ops/fixture.rs"),
        ("unsafe-audit", "unsafe_audit_bad.rs", "unsafe_audit_clean.rs", "crates/tensor/src/simd.rs"),
        ("float-literal-equality", "float_eq_bad.rs", "float_eq_clean.rs", "crates/eval/src/fixture.rs"),
        ("unexplained-allow", "unexplained_allow_bad.rs", "unexplained_allow_clean.rs", "crates/eval/src/fixture.rs"),
    ];
    for &(rule, bad, clean, vpath) in cases {
        let findings = lint_at(bad, vpath);
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "{bad} under {vpath} must fire `{rule}`, got {findings:?}"
        );
        // The finding round-trips into the JSON report with its rule ID.
        let report =
            Report { findings: findings.clone(), allows: Vec::new(), files_scanned: 1 };
        assert!(
            report.to_json().contains(&format!("\"rule\": \"{rule}\"")),
            "JSON report must carry the rule ID `{rule}`"
        );
        let silent = lint_at(clean, vpath);
        assert!(silent.is_empty(), "{clean} under {vpath} must be clean, got {silent:?}");
    }
}

/// The scoping itself: the same nan-discipline trigger is a finding inside
/// eval, and silent outside it (minus the workspace-wide `partial_cmp` arm).
#[test]
fn nan_discipline_minmax_only_fires_in_eval_and_bench() {
    let src = "pub fn f(a: f64, b: f64) -> f64 { a.max(b) }\n";
    assert!(!lint_source("crates/graph/src/adj.rs", src).0.iter().any(|f| f.rule == "nan-discipline"));
    assert!(lint_source("crates/eval/src/metrics.rs", src).0.iter().any(|f| f.rule == "nan-discipline"));
    assert!(lint_source("crates/bench/src/snapshot.rs", src).0.iter().any(|f| f.rule == "nan-discipline"));
    // The approved-helper module is the one exemption inside eval.
    assert!(lint_source("crates/eval/src/float.rs", src).0.is_empty());
}

/// Test code is exempt from every rule except unsafe-audit: a whole-file
/// `tests/` path never fires panic/NaN/float-eq rules, but an unaudited
/// `unsafe` still does.
#[test]
fn test_paths_are_exempt_except_unsafe_audit() {
    let src = r#"
pub fn helper(v: &[f64]) -> f64 {
    let x = v.first().unwrap();
    if *x == 0.0 { return f64::NAN; }
    unsafe { *v.get_unchecked(0) }
}
"#;
    let findings = lint_source("crates/eval/tests/backtest.rs", src).0;
    assert_eq!(findings.len(), 1, "only unsafe-audit may fire in test files, got {findings:?}");
    assert_eq!(findings[0].rule, "unsafe-audit");
}

/// End-to-end acceptance: seeding a violation into a real directory tree and
/// running the built `rtgcn-lint --deny --json` binary exits non-zero (3)
/// with the rule ID present in the JSON report; the clean twin exits 0.
#[test]
fn deny_mode_exits_3_and_reports_rule_id_in_json() {
    let bin = env!("CARGO_BIN_EXE_rtgcn-lint");
    let root = std::env::temp_dir().join(format!("rtgcn-lint-golden-{}", std::process::id()));
    let src_dir = root.join("crates/eval/src");
    std::fs::create_dir_all(&src_dir).unwrap();

    // Seeded violation → exit 3, rule ID in the JSON.
    std::fs::write(src_dir.join("seeded.rs"), fixture("float_eq_bad.rs")).unwrap();
    let json_path = root.join("results/LINT.json");
    let out = std::process::Command::new(bin)
        .args(["--root", root.to_str().unwrap(), "--deny", "--json", json_path.to_str().unwrap()])
        .output()
        .expect("run rtgcn-lint");
    assert_eq!(out.status.code(), Some(3), "deny mode must exit 3 on findings: {out:?}");
    let json = std::fs::read_to_string(&json_path).expect("LINT.json written");
    assert!(json.contains("\"rule\": \"float-literal-equality\""), "{json}");
    assert!(json.contains("seeded.rs"), "{json}");

    // Replace with the clean twin → exit 0, zero findings in the JSON.
    std::fs::write(src_dir.join("seeded.rs"), fixture("float_eq_clean.rs")).unwrap();
    let out = std::process::Command::new(bin)
        .args(["--root", root.to_str().unwrap(), "--deny", "--json", json_path.to_str().unwrap()])
        .output()
        .expect("run rtgcn-lint");
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0: {out:?}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"finding_count\": 0"), "{json}");

    std::fs::remove_dir_all(&root).ok();
}
