// Golden fixture: a reasoned allow suppresses the finding and reports clean.
pub fn clamp(k: usize, n: usize) -> usize {
    // lint:allow(nan-discipline) usize top-k clamp on index counts, not a float metric
    k.min(n).max(1)
}
