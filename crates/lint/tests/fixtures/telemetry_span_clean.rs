// Golden fixture: histogram paired with a span — must NOT fire.
pub fn spmm_kernel(n: usize) -> usize {
    let _s = rtgcn_telemetry::span("kernel.spmm");
    let t0 = std::time::Instant::now();
    let out = n * 2;
    rtgcn_telemetry::record_ns("kernel.spmm_ns", t0.elapsed().as_nanos() as u64);
    out
}

// Literal span names and unrelated `.span(` methods stay silent.
pub fn literal_span(parser: &mut Parser) -> usize {
    let _s = rtgcn_telemetry::debug_span("kernel.detail");
    parser.span(3)
}
