// Golden fixture: an allow with no reason is itself a finding.
pub fn clamp(k: usize, n: usize) -> usize {
    // lint:allow(nan-discipline)
    k.min(n).max(1)
}
