// Golden fixture: fallible flows that must NOT fire panic-free-hot-paths.
pub fn settle(results: &mut Vec<Option<u64>>) -> Option<u64> {
    results.pop().flatten()
}

pub fn by_key(m: &std::collections::BTreeMap<u64, f64>, k: u64) -> f64 {
    m.get(&k).copied().unwrap_or(f64::NAN)
}

pub fn window(v: &[f64], a: usize, b: usize) -> Option<&[f64]> {
    v.get(a..b)
}
