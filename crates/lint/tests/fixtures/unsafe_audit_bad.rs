// Golden fixture: unsafe with no SAFETY comment.
pub fn first(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
