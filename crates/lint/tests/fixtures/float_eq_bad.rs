// Golden fixture: exact equality against a float literal.
pub fn is_flat(delta: f64) -> bool {
    delta == 0.0
}
