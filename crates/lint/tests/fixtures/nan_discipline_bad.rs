// Golden fixture: bare float `.max()` plus `partial_cmp` in eval scope.
pub fn worst_drawdown(xs: &[f64]) -> f64 {
    let mut worst = f64::NAN;
    for &x in xs {
        worst = worst.max(x);
    }
    worst
}

pub fn rank(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
