// Golden fixture: panics in a hot path.
pub fn settle(results: &mut Vec<Option<u64>>) -> u64 {
    let last = results.pop().unwrap();
    last.expect("slot must be settled")
}

pub fn by_key(m: &std::collections::BTreeMap<u64, f64>, k: u64) -> f64 {
    m[&k]
}

pub fn window(v: &[f64], a: usize, b: usize) -> &[f64] {
    &v[a..b]
}
