// Golden fixture: tolerance comparison — must NOT fire.
pub fn is_flat(delta: f64) -> bool {
    delta.abs() < 1e-12
}

#[cfg(test)]
mod tests {
    // Exact expectations in tests are fine: the rule skips test code.
    #[test]
    fn exact_zero_in_test_is_allowed() {
        assert!(super::is_flat(0.0) == true);
        let x = 0.0f64;
        assert!(x == 0.0);
    }
}
