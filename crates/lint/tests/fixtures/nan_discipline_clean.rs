// Golden fixture: NaN-aware idioms that must NOT fire nan-discipline.
pub fn worst_drawdown(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| x.is_finite()).reduce(|a, b| if a > b { a } else { b })
}

pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn clamp_workers(requested: usize) -> usize {
    // Single integer literal argument: integer clamping, not float math.
    requested.max(1)
}
