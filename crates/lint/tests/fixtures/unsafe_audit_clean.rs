// Golden fixture: audited unsafe — must NOT fire.
pub fn first(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
