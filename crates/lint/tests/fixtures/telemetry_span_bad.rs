// Golden fixture: a kernel entry point timing itself with no span/counter.
pub fn spmm_kernel(n: usize) -> usize {
    let t0 = std::time::Instant::now();
    let out = n * 2;
    rtgcn_telemetry::record_ns("kernel.spmm_ns", t0.elapsed().as_nanos() as u64);
    out
}

// Golden fixture: a runtime-computed span name — paths must be literals.
pub fn dynamic_span(which: &str) {
    let name = format!("kernel.{which}");
    let _s = rtgcn_telemetry::span(&name);
}
