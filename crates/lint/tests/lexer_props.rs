//! Property tests for the lint lexer's core safety guarantee: rule triggers
//! that appear inside string literals, raw strings, or comments are *data*,
//! not code, and must never produce a finding. The linter is wired into the
//! CI gate with `--deny`, so a single false positive from quoted text (an
//! error message mentioning `unwrap`, a doc comment showing `== 0.0`) would
//! block every build.

use proptest::prelude::*;
use rtgcn_lint::lexer::{lex, TokKind};
use rtgcn_lint::rules::lint_source;

/// Snippets that each fire at least one rule when written as real code in a
/// hot-path file. None contain `"`, `\`, `#`, or comment delimiters, so they
/// embed verbatim in every quoting context below.
const TRIGGERS: &[&str] = &[
    ".unwrap()",
    ".expect(msg)",
    "a.partial_cmp(b)",
    "x == 0.0",
    "y != 1.5",
    "unsafe { }",
    "w.max(z)",
    "m[&k]",
    "v[a..b]",
    "panic!(oops)",
];

fn trigger() -> impl Strategy<Value = &'static str> {
    (0usize..TRIGGERS.len()).prop_map(|i| TRIGGERS[i])
}

/// Random identifier-safe padding so the trigger sits mid-text, not at a
/// delimiter boundary.
fn pad() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u32..26).prop_map(|c| (b'a' + c as u8) as char), 0..12)
        .prop_map(|cs| cs.into_iter().collect())
}

/// The quoting contexts under test. Each embeds `text` somewhere the lexer
/// must treat as opaque.
fn embed(kind: usize, text: &str) -> String {
    match kind {
        0 => format!("pub fn f() {{\n    // {text}\n}}\n"),
        1 => format!("pub fn f() {{\n    /* {text}\n       {text} */\n}}\n"),
        2 => format!("/// {text}\npub fn f() {{}}\n"),
        3 => format!("pub fn f() -> &'static str {{\n    \"{text}\"\n}}\n"),
        4 => format!("pub fn f() -> &'static str {{\n    r#\"{text}\"#\n}}\n"),
        _ => format!("pub fn f() -> u8 {{\n    let _s = b\"{text}\";\n    0\n}}\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A trigger quoted in any comment/string context produces zero
    /// findings, even linted under the most rule-active virtual path in the
    /// workspace (eval backtest: nan-discipline + panic-free + float-eq all
    /// scoped on).
    #[test]
    fn quoted_triggers_never_fire(
        (t, kind, before, after) in (trigger(), 0usize..6, pad(), pad())
    ) {
        let text = format!("{before} {t} {after}");
        let src = embed(kind, &text);
        let (findings, allows) = lint_source("crates/eval/src/backtest.rs", &src);
        prop_assert!(findings.is_empty(), "src {src:?} produced {findings:?}");
        prop_assert!(allows.is_empty(), "quoted text parsed as an allow: {allows:?}");
    }

    /// The lexer agrees: no identifier or punct token materialises from
    /// quoted text — idents seen by the rules come only from real code.
    #[test]
    fn quoted_text_yields_no_ident_tokens(
        (t, kind, before) in (trigger(), 0usize..6, pad())
    ) {
        let text = format!("{before} {t}");
        let src = embed(kind, &text);
        let lexed = lex(&src);
        let leaked: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|tok| {
                tok.kind == TokKind::Ident
                    && ["unwrap", "expect", "partial_cmp", "panic", "max"]
                        .contains(&tok.text.as_str())
            })
            .collect();
        prop_assert!(leaked.is_empty(), "quoted idents leaked from {src:?}: {leaked:?}");
    }

    /// Sanity inversion: the same trigger written as *code* (not quoted) in
    /// the same hot file does fire — the silence above is the lexer hiding
    /// quoted text, not the rules being inert.
    #[test]
    fn unquoted_triggers_do_fire(i in 0usize..6) {
        // The first six triggers are self-contained statements.
        let t = TRIGGERS[i];
        let src = format!("pub fn f() {{\n    let _ = {t};\n}}\n");
        let (findings, _) = lint_source("crates/eval/src/backtest.rs", &src);
        prop_assert!(!findings.is_empty(), "code trigger `{t}` produced no finding");
    }
}
