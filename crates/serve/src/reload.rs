//! Checkpoint hot-reload: re-read `--ckpt` files and swap changed ones
//! into the registry.
//!
//! The original serve loop had two bugs this module fixes and pins with
//! tests:
//!
//! - with `--reload-secs 0` (reload disabled) it still woke every second
//!   just to `continue` — now the loop **parks** and never polls;
//! - with reload enabled it slept **before** the first poll, so a
//!   checkpoint staged between boot and the first wake waited a full
//!   period — now each cycle polls first, then sleeps (`park_timeout`,
//!   so a stop request interrupts the wait).

use crate::registry::Registry;
use rtgcn_core::Checkpoint;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the serve loop treats the installed checkpoint files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReloadMode {
    /// Never re-read checkpoints; the loop parks without waking.
    Disabled,
    /// Poll every period, starting immediately.
    Every(Duration),
}

impl ReloadMode {
    /// The `--reload-secs` mapping: `0` disables reload entirely.
    pub fn from_secs(secs: u64) -> ReloadMode {
        match secs {
            0 => ReloadMode::Disabled,
            s => ReloadMode::Every(Duration::from_secs(s)),
        }
    }
}

/// One reload pass over `(path, installed-version)` pairs: re-read each
/// file and hot-swap it when its content id changed, updating the stored
/// version. Best-effort per file — an unreadable or corrupt checkpoint
/// (mid-write, deleted) keeps the installed version serving. Returns the
/// number of swaps performed.
pub fn reload_tick(registry: &Registry, installed: &mut [(String, String)]) -> usize {
    poll_counter().inc(1);
    let mut swapped = 0;
    for (path, version) in installed.iter_mut() {
        let Ok(ckpt) = Checkpoint::load(path.as_str()) else { continue };
        if ckpt.content_id() == *version {
            continue;
        }
        match registry.install_checkpoint(&ckpt) {
            Ok(entry) => {
                eprintln!(
                    "[rtgcn-serve] {path}: hot-swapped market {:?} {} -> {}",
                    entry.market, version, entry.version
                );
                *version = entry.version.clone();
                swapped += 1;
            }
            Err(e) => eprintln!("[rtgcn-serve] {path}: reload failed, keeping {version}: {e}"),
        }
    }
    swapped
}

/// The serve loop: runs until `stop` is set (check happens on every
/// wake, so stop + unpark terminates promptly). `Disabled` parks without
/// ever touching the filesystem; `Every` polls first, then sleeps.
pub fn run_reload_loop(
    registry: Arc<Registry>,
    mut installed: Vec<(String, String)>,
    mode: ReloadMode,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match mode {
            ReloadMode::Disabled => std::thread::park(),
            ReloadMode::Every(period) => {
                reload_tick(&registry, &mut installed);
                std::thread::park_timeout(period);
            }
        }
    }
}

fn poll_counter() -> &'static rtgcn_telemetry::Counter {
    static C: std::sync::OnceLock<rtgcn_telemetry::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| rtgcn_telemetry::counter("serve.reload.polls"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeConfig, WindowSumProbe};
    use crate::servable::checkpoint_probe;
    use rtgcn_core::DataSpec;
    use rtgcn_market::{Market, RelationKind, Scale, UniverseSpec};
    use std::path::PathBuf;
    use std::sync::Mutex;

    /// Serialises the tests that observe the process-global poll counter.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn probe_checkpoint(scale: f32) -> rtgcn_core::Checkpoint {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 4;
        spec.train_days = 12;
        spec.test_days = 3;
        let data = DataSpec { spec, seed: 7, relation_kind: RelationKind::Both };
        let probe = WindowSumProbe::new(ProbeConfig { t_steps: 2, n_features: 2 }, scale);
        checkpoint_probe(&probe, &data).unwrap()
    }

    fn temp_ckpt_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtgcn-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.rtgckpt"))
    }

    fn polls() -> u64 {
        rtgcn_telemetry::counter_value("serve.reload.polls")
    }

    #[test]
    fn from_secs_maps_zero_to_disabled() {
        assert_eq!(ReloadMode::from_secs(0), ReloadMode::Disabled);
        assert_eq!(ReloadMode::from_secs(5), ReloadMode::Every(Duration::from_secs(5)));
    }

    #[test]
    fn reload_tick_swaps_changed_file_and_tolerates_corruption() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let path = temp_ckpt_path("tick");
        let (v1, v2) = (probe_checkpoint(0.5), probe_checkpoint(2.0));
        assert_ne!(v1.content_id(), v2.content_id());
        v1.save(&path).unwrap();

        let registry = Registry::new();
        registry.install_checkpoint(&v1).unwrap();
        let mut installed = vec![(path.to_string_lossy().into_owned(), v1.content_id())];

        // Unchanged file: no swap.
        assert_eq!(reload_tick(&registry, &mut installed), 0);
        assert_eq!(installed[0].1, v1.content_id());

        // Changed file: exactly one swap, stored version follows, and the
        // registry serves the new version.
        v2.save(&path).unwrap();
        assert_eq!(reload_tick(&registry, &mut installed), 1);
        assert_eq!(installed[0].1, v2.content_id());
        assert_eq!(registry.get("csi").unwrap().version, v2.content_id());

        // Corrupt file (mid-write torn bytes): best-effort keeps serving.
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert_eq!(reload_tick(&registry, &mut installed), 0);
        assert_eq!(installed[0].1, v2.content_id());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_loop_parks_without_polling() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let registry = Arc::new(Registry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let before = polls();
        let handle = {
            let (registry, stop) = (Arc::clone(&registry), Arc::clone(&stop));
            std::thread::spawn(move || run_reload_loop(registry, Vec::new(), ReloadMode::Disabled, stop))
        };
        // The buggy loop woke (and with reload enabled would have polled)
        // every second; the fixed one parks. Give it real time to
        // misbehave, then assert the counter never moved.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(polls(), before, "disabled reload must never poll");
        stop.store(true, Ordering::Release);
        handle.thread().unpark();
        handle.join().unwrap();
    }

    #[test]
    fn enabled_loop_polls_immediately_then_sleeps() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let path = temp_ckpt_path("loop");
        let (v1, v2) = (probe_checkpoint(0.5), probe_checkpoint(2.0));
        let registry = Arc::new(Registry::new());
        registry.install_checkpoint(&v1).unwrap();
        // Stage the changed file BEFORE the loop starts: the fixed loop
        // polls first, so the swap must land without waiting out the (here
        // deliberately enormous) sleep period.
        v2.save(&path).unwrap();
        let installed = vec![(path.to_string_lossy().into_owned(), v1.content_id())];

        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (registry, stop) = (Arc::clone(&registry), Arc::clone(&stop));
            std::thread::spawn(move || {
                run_reload_loop(registry, installed, ReloadMode::Every(Duration::from_secs(3600)), stop)
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while registry.get("csi").unwrap().version != v2.content_id() {
            assert!(
                std::time::Instant::now() < deadline,
                "first poll never happened (sleep-before-poll regression)"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Release);
        handle.thread().unpark();
        handle.join().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
