//! A deliberately trivial servable model for golden-parity tests: its
//! scores are hand-computable from the request alone, so `/rank` and
//! `/score` response bodies can be asserted byte-for-byte.

use rtgcn_core::{FitReport, StockRanker};
use rtgcn_market::StockDataset;
use rtgcn_tensor::{ParamId, ParamStore, Tensor};
use serde::{Deserialize, Serialize};

/// Window geometry of a [`WindowSumProbe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeConfig {
    pub t_steps: usize,
    pub n_features: usize,
}

/// `score_i = scale · Σ_{t,d} x[t, i, d]` — one trainable parameter
/// (`probe.scale`), zero graph state. Exists so serving tests can compute
/// expected responses by hand; not part of any paper table.
#[doc(hidden)]
pub struct WindowSumProbe {
    pub cfg: ProbeConfig,
    store: ParamStore,
    scale: ParamId,
}

impl WindowSumProbe {
    pub fn new(cfg: ProbeConfig, scale: f32) -> Self {
        let mut store = ParamStore::new();
        let scale = store.add("probe.scale", Tensor::from_vec(vec![scale]));
        WindowSumProbe { cfg, store, scale }
    }

    pub fn scale(&self) -> f32 {
        self.store.value(self.scale).data()[0]
    }
}

impl StockRanker for WindowSumProbe {
    fn name(&self) -> String {
        "WindowSumProbe".to_string()
    }

    fn fit(&mut self, _ds: &StockDataset) -> FitReport {
        FitReport::default()
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        let s = ds.sample(end_day, self.cfg.t_steps, self.cfg.n_features);
        self.score_window(&s.x).expect("probe scores any window")
    }

    fn score_window(&mut self, x: &Tensor) -> Option<Vec<f32>> {
        let (t, n, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let scale = self.scale();
        let data = x.data();
        let mut out = vec![0.0f32; n];
        for ti in 0..t {
            for (i, o) in out.iter_mut().enumerate() {
                for di in 0..d {
                    *o += data[(ti * n + i) * d + di];
                }
            }
        }
        for o in &mut out {
            *o *= scale;
        }
        Some(out)
    }

    fn param_store(&self) -> Option<&ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut ParamStore> {
        Some(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_scaled_window_sums() {
        let mut probe = WindowSumProbe::new(ProbeConfig { t_steps: 2, n_features: 2 }, 0.5);
        // (T=2, N=2, D=2), row-major.
        let x = Tensor::new([2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let scores = probe.score_window(&x).unwrap();
        // stock 0: (1 + 2 + 5 + 6) * 0.5 = 7; stock 1: (3 + 4 + 7 + 8) * 0.5 = 11.
        assert_eq!(scores, vec![7.0, 11.0]);
    }
}
