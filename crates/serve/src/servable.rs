//! Checkpoint ↔ model dispatch for every servable family. `rtgcn-core`
//! cannot depend on the baselines crate, so the family registry lives
//! here: a family tag string in the checkpoint selects the constructor,
//! the verbatim config JSON rebuilds the configuration, and
//! [`rtgcn_core::Checkpoint::apply_to`] restores the trained parameters.

use crate::probe::{ProbeConfig, WindowSumProbe};
use rtgcn_baselines::{LstmRanker, Rsr, RsrConfig, SeqConfig, Sthan, SthanConfig};
use rtgcn_core::{Checkpoint, CheckpointError, DataSpec, RtGcn, RtGcnConfig, StockRanker};
use rtgcn_graph::SharedAdjCache;
use rtgcn_market::{Market, StockDataset};
use std::fmt;

/// Family tags understood by [`build_model`].
pub const FAMILIES: [&str; 6] = ["rtgcn", "lstm", "rank_lstm", "rsr", "sthan", "probe"];

/// Registry key for a market (`/rank?market=<key>`): the lowercase market
/// name, e.g. `"nasdaq"`.
pub fn market_key(market: Market) -> String {
    market.name().to_ascii_lowercase()
}

/// Serving-layer failures (checkpoint decode errors pass through).
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    Checkpoint(CheckpointError),
    /// Checkpoint family tag not in [`FAMILIES`].
    UnknownFamily(String),
    /// Config JSON does not parse as the family's config type.
    BadConfig(String),
    /// The model exposes no parameter store (closed-form baselines).
    NotServable(String),
    /// Request-shaped failure (bad window length, empty test split, …).
    BadInput(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Checkpoint(e) => write!(f, "{e}"),
            ServeError::UnknownFamily(fam) => {
                write!(f, "unknown model family {fam:?} (expected one of {FAMILIES:?})")
            }
            ServeError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            ServeError::NotServable(name) => {
                write!(f, "{name} has no parameter store and cannot be served")
            }
            ServeError::BadInput(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Capture a trained model into a durable [`Checkpoint`]. `config_json`
/// must be the JSON of the family's config type (the per-family helpers
/// below produce it); it is stored verbatim.
pub fn checkpoint_model(
    family: &str,
    config_json: String,
    data: &DataSpec,
    model: &dyn StockRanker,
) -> Result<Checkpoint, ServeError> {
    let store = model.param_store().ok_or_else(|| ServeError::NotServable(model.name()))?;
    let data_json = serde_json::to_string(data)
        .map_err(|e| ServeError::BadConfig(format!("data spec: {e:?}")))?;
    Ok(Checkpoint::from_store(family, config_json, data_json, store))
}

fn config_json<T: serde::Serialize>(cfg: &T) -> Result<String, ServeError> {
    serde_json::to_string(cfg).map_err(|e| ServeError::BadConfig(format!("{e:?}")))
}

pub fn checkpoint_rtgcn(model: &RtGcn, data: &DataSpec) -> Result<Checkpoint, ServeError> {
    checkpoint_model("rtgcn", config_json(&model.config)?, data, model)
}

/// Works for both variants: the family tag follows the model's name.
pub fn checkpoint_lstm(model: &LstmRanker, data: &DataSpec) -> Result<Checkpoint, ServeError> {
    let family = if model.name() == "Rank_LSTM" { "rank_lstm" } else { "lstm" };
    checkpoint_model(family, config_json(&model.cfg)?, data, model)
}

pub fn checkpoint_rsr(model: &Rsr, data: &DataSpec) -> Result<Checkpoint, ServeError> {
    checkpoint_model("rsr", config_json(&model.cfg)?, data, model)
}

pub fn checkpoint_sthan(model: &Sthan, data: &DataSpec) -> Result<Checkpoint, ServeError> {
    checkpoint_model("sthan", config_json(&model.cfg)?, data, model)
}

#[doc(hidden)]
pub fn checkpoint_probe(model: &WindowSumProbe, data: &DataSpec) -> Result<Checkpoint, ServeError> {
    checkpoint_model("probe", config_json(&model.cfg)?, data, model)
}

/// A model rebuilt from a checkpoint, plus the window geometry `/score`
/// validates request bodies against.
pub struct BuiltModel {
    pub model: Box<dyn StockRanker + Send>,
    pub t_steps: usize,
    pub n_features: usize,
}

fn parse<T: serde::Deserialize>(json: &str, family: &str) -> Result<T, ServeError> {
    serde_json::from_str(json).map_err(|e| ServeError::BadConfig(format!("{family}: {e:?}")))
}

/// Rebuild the checkpointed model against `ds` (which must match the
/// checkpoint's [`DataSpec`]): construct the family from the verbatim
/// config, force lazy graph state via `prepare`, then restore the trained
/// parameters. The construction seed is irrelevant — every parameter is
/// overwritten by the checkpoint — so a fixed 0 is used. When `cache` is
/// given, RT-GCN shares its normalised-adjacency layout instead of
/// renormalising from scratch.
pub fn build_model(
    ckpt: &Checkpoint,
    ds: &StockDataset,
    cache: Option<&SharedAdjCache>,
) -> Result<BuiltModel, ServeError> {
    let data = ckpt.data_spec()?;
    let mut built = match ckpt.family.as_str() {
        "rtgcn" => {
            let cfg: RtGcnConfig = parse(&ckpt.config_json, "rtgcn")?;
            let relations = ds.relations(data.relation_kind);
            let (t, d) = (cfg.t_steps, cfg.n_features);
            let model = match cache {
                Some(c) => RtGcn::with_shared_cache(cfg, &relations, c, 0),
                None => RtGcn::new(cfg, &relations, 0),
            };
            BuiltModel { model: Box::new(model), t_steps: t, n_features: d }
        }
        "lstm" => {
            let cfg: SeqConfig = parse(&ckpt.config_json, "lstm")?;
            let (t, d) = (cfg.t_steps, cfg.n_features);
            BuiltModel { model: Box::new(LstmRanker::regression(cfg, 0)), t_steps: t, n_features: d }
        }
        "rank_lstm" => {
            let cfg: SeqConfig = parse(&ckpt.config_json, "rank_lstm")?;
            let (t, d) = (cfg.t_steps, cfg.n_features);
            BuiltModel { model: Box::new(LstmRanker::ranking(cfg, 0)), t_steps: t, n_features: d }
        }
        "rsr" => {
            let cfg: RsrConfig = parse(&ckpt.config_json, "rsr")?;
            let (t, d) = (cfg.t_steps, cfg.n_features);
            BuiltModel { model: Box::new(Rsr::new(cfg, 0)), t_steps: t, n_features: d }
        }
        "sthan" => {
            let cfg: SthanConfig = parse(&ckpt.config_json, "sthan")?;
            let (t, d) = (cfg.t_steps, cfg.n_features);
            BuiltModel { model: Box::new(Sthan::new(cfg, 0)), t_steps: t, n_features: d }
        }
        "probe" => {
            let cfg: ProbeConfig = parse(&ckpt.config_json, "probe")?;
            let (t, d) = (cfg.t_steps, cfg.n_features);
            BuiltModel { model: Box::new(WindowSumProbe::new(cfg, 1.0)), t_steps: t, n_features: d }
        }
        other => return Err(ServeError::UnknownFamily(other.to_string())),
    };
    built.model.prepare(ds);
    let store = built
        .model
        .param_store_mut()
        .ok_or_else(|| ServeError::NotServable(ckpt.family.clone()))?;
    ckpt.apply_to(store)?;
    Ok(built)
}
