//! # rtgcn-serve
//!
//! A long-lived scoring service over the models this workspace trains
//! (DESIGN.md §13):
//!
//! - [`servable`] — rebuild any checkpointable model family from a
//!   [`rtgcn_core::Checkpoint`] (RT-GCN, LSTM, Rank_LSTM, RSR, STHAN-SR);
//! - [`registry`] — versioned model registry with atomic hot-swap:
//!   in-flight requests finish on v(N)'s `Arc` while v(N+1) installs;
//! - [`api`] — the HTTP routes (`GET /rank`, `POST /score`, and the
//!   streaming `POST /advance`) plugged into the `rtgcn_telemetry::http`
//!   monitor server, next to its built-in `/healthz` and `/metrics`;
//! - [`reload`] — the checkpoint hot-reload loop (parks entirely when
//!   `--reload-secs 0`, polls first then sleeps when enabled).
//!
//! Binaries: `rtgcn-serve` (the server) and `rtgcn-serve-smoke` (the
//! `run_experiments.sh --serve-smoke` gate: boot from a checkpoint, scrape
//! every endpoint, run a short load test with a mid-load hot-swap).

pub mod api;
pub mod probe;
pub mod registry;
pub mod reload;
pub mod servable;

pub use api::install_routes;
pub use registry::{ModelEntry, Registry};
pub use reload::{reload_tick, run_reload_loop, ReloadMode};
pub use servable::{
    build_model, checkpoint_model, market_key, BuiltModel, ServeError,
};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_links() {}
}
