//! The scoring routes, plugged into the `rtgcn_telemetry::http` monitor
//! server via [`rtgcn_telemetry::http::register_route`] (so `/rank` and
//! `/score` live next to the built-in `/metrics` and `/healthz`):
//!
//! | route    | method | request | 200 body |
//! |----------|--------|---------|----------|
//! | `/rank`  | GET    | `?market=<key>&k=<n>` (`k` defaults to 10) | `{"market","version","k","end_day","ranked":[{"stock","score"},…]}` |
//! | `/score` | POST   | `{"market":<key>,"window":[f;T*N*D]}` | `{"market","version","scores":[f;N]}` |
//!
//! Responses are deterministic for a fixed model version — the golden
//! tests assert bodies byte-for-byte — so everything is rendered through
//! the vendored `serde_json` writer (stable float formatting, ordered
//! maps).

use crate::registry::Registry;
use rtgcn_telemetry::http::{register_route, Request, Response};
use serde::Value;
use std::sync::Arc;
use std::time::Instant;

/// Default `k` for `/rank` when the query string omits it (paper tables
/// report top-10 portfolios).
pub const DEFAULT_K: usize = 10;

fn err_json(status: u16, msg: &str) -> Response {
    Response::json(status, &Value::Map(vec![("error".to_string(), Value::Str(msg.to_string()))]))
}

/// Register `/rank` and `/score` against `registry`. Call before (or
/// after — the route table is live) the monitor server starts.
pub fn install_routes(registry: Arc<Registry>) {
    let rank_registry = Arc::clone(&registry);
    register_route("/rank", move |req| handle_rank(&rank_registry, req));
    register_route("/score", move |req| handle_score(&registry, req));
}

fn handle_rank(registry: &Registry, req: &Request) -> Response {
    if req.method != "GET" {
        return err_json(405, "/rank is GET-only");
    }
    let start = Instant::now();
    rtgcn_telemetry::counter("serve.rank.requests").inc(1);
    let resp = rank_response(registry, req);
    rtgcn_telemetry::record_ns("serve.rank_ns", start.elapsed().as_nanos() as u64);
    resp
}

fn rank_response(registry: &Registry, req: &Request) -> Response {
    let Some(market) = req.query_param("market") else {
        return err_json(400, "missing required query parameter: market");
    };
    let k = match req.query_param("k") {
        None => DEFAULT_K,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) => k,
            Err(_) => return err_json(400, "k must be a non-negative integer"),
        },
    };
    let Some(entry) = registry.get(market) else {
        return err_json(404, "unknown market");
    };
    let ranked: Vec<Value> = entry
        .ranked(k)
        .into_iter()
        .map(|(stock, score)| {
            Value::Map(vec![
                ("stock".to_string(), Value::U64(stock as u64)),
                ("score".to_string(), Value::F64(score as f64)),
            ])
        })
        .collect();
    Response::json(
        200,
        &Value::Map(vec![
            ("market".to_string(), Value::Str(entry.market.clone())),
            ("version".to_string(), Value::Str(entry.version.clone())),
            ("k".to_string(), Value::U64(k as u64)),
            ("end_day".to_string(), Value::U64(entry.end_day as u64)),
            ("ranked".to_string(), Value::Seq(ranked)),
        ]),
    )
}

fn handle_score(registry: &Registry, req: &Request) -> Response {
    if req.method != "POST" {
        return err_json(405, "/score is POST-only");
    }
    let start = Instant::now();
    rtgcn_telemetry::counter("serve.score.requests").inc(1);
    let resp = score_response(registry, req);
    rtgcn_telemetry::record_ns("serve.score_ns", start.elapsed().as_nanos() as u64);
    resp
}

fn score_response(registry: &Registry, req: &Request) -> Response {
    let Some(text) = req.body_str() else {
        return err_json(400, "body is not valid UTF-8");
    };
    let Ok(parsed) = serde_json::from_str::<Value>(text) else {
        return err_json(400, "body is not valid JSON");
    };
    let Some(market) = parsed.get("market").and_then(Value::as_str) else {
        return err_json(400, "body must have a string \"market\" field");
    };
    let Some(raw_window) = parsed.get("window").and_then(Value::as_seq) else {
        return err_json(400, "body must have a numeric-array \"window\" field");
    };
    let mut window = Vec::with_capacity(raw_window.len());
    for v in raw_window {
        match v.as_f64() {
            Some(f) => window.push(f as f32),
            None => return err_json(400, "window values must be numbers"),
        }
    }
    let Some(entry) = registry.get(market) else {
        return err_json(404, "unknown market");
    };
    let scores = match entry.score_window(&window) {
        Ok(s) => s,
        Err(e) => return err_json(400, &e.to_string()),
    };
    let scores: Vec<Value> = scores.into_iter().map(|s| Value::F64(s as f64)).collect();
    Response::json(
        200,
        &Value::Map(vec![
            ("market".to_string(), Value::Str(entry.market.clone())),
            ("version".to_string(), Value::Str(entry.version.clone())),
            ("scores".to_string(), Value::Seq(scores)),
        ]),
    )
}
