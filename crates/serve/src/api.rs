//! The scoring routes, plugged into the `rtgcn_telemetry::http` monitor
//! server via [`rtgcn_telemetry::http::register_route`] (so `/rank` and
//! `/score` live next to the built-in `/metrics` and `/healthz`):
//!
//! | route      | method | request | 200 body |
//! |------------|--------|---------|----------|
//! | `/rank`    | GET    | `?market=<key>&k=<n>` (`k` defaults to 10) | `{"market","version","k","end_day","ranked":[{"stock","score"},…]}` |
//! | `/score`   | POST   | `{"market":<key>,"window":[f;T*N*D]}` | `{"market","version","scores":[f;N]}` |
//! | `/advance` | POST   | `{"market":<key>,"days":<n=1>,"add":[edge…],"drop":[[a,b]…]}` | `{"market","version","end_day","days","mrr","cum_irr","refits"}` |
//!
//! `/advance` rolls the market's registry snapshot forward through the
//! streaming day-advance pipeline ([`Registry::advance_market`]): each add
//! edge is `{"leader","follower","types":[…],"strength"?,"period"?,
//! "phase"?,"duty"?}`, and the mutations land on the first advanced day.
//! After a 200, `/rank` serves the streamed ranking under version
//! `<checkpoint-id>+d<day>`.
//!
//! Responses are deterministic for a fixed model version — the golden
//! tests assert bodies byte-for-byte — so everything is rendered through
//! the vendored `serde_json` writer (stable float formatting, ordered
//! maps).

use crate::registry::Registry;
use rtgcn_market::{DayEvent, WikiEdge};
use rtgcn_telemetry::http::{register_route, Request, Response};
use serde::Value;
use std::sync::Arc;
use std::time::Instant;

/// Default `k` for `/rank` when the query string omits it (paper tables
/// report top-10 portfolios).
pub const DEFAULT_K: usize = 10;

fn err_json(status: u16, msg: &str) -> Response {
    Response::json(status, &Value::Map(vec![("error".to_string(), Value::Str(msg.to_string()))]))
}

/// Most days one `/advance` request may generate; keeps a fat-fingered
/// body from tying the server up in a year-long simulation.
pub const MAX_ADVANCE_DAYS: usize = 365;

/// Register `/rank`, `/score`, and `/advance` against `registry`. Call
/// before (or after — the route table is live) the monitor server starts.
pub fn install_routes(registry: Arc<Registry>) {
    let rank_registry = Arc::clone(&registry);
    let score_registry = Arc::clone(&registry);
    register_route("/rank", move |req| handle_rank(&rank_registry, req));
    register_route("/score", move |req| handle_score(&score_registry, req));
    register_route("/advance", move |req| handle_advance(&registry, req));
}

fn handle_rank(registry: &Registry, req: &Request) -> Response {
    if req.method != "GET" {
        return err_json(405, "/rank is GET-only");
    }
    let start = Instant::now();
    rtgcn_telemetry::counter("serve.rank.requests").inc(1);
    let resp = rank_response(registry, req);
    rtgcn_telemetry::record_ns("serve.rank_ns", start.elapsed().as_nanos() as u64);
    resp
}

fn rank_response(registry: &Registry, req: &Request) -> Response {
    let Some(market) = req.query_param("market") else {
        return err_json(400, "missing required query parameter: market");
    };
    let k = match req.query_param("k") {
        None => DEFAULT_K,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) => k,
            Err(_) => return err_json(400, "k must be a non-negative integer"),
        },
    };
    let Some(entry) = registry.get(market) else {
        return err_json(404, "unknown market");
    };
    let ranked: Vec<Value> = entry
        .ranked(k)
        .into_iter()
        .map(|(stock, score)| {
            Value::Map(vec![
                ("stock".to_string(), Value::U64(stock as u64)),
                ("score".to_string(), Value::F64(score as f64)),
            ])
        })
        .collect();
    Response::json(
        200,
        &Value::Map(vec![
            ("market".to_string(), Value::Str(entry.market.clone())),
            ("version".to_string(), Value::Str(entry.version.clone())),
            ("k".to_string(), Value::U64(k as u64)),
            ("end_day".to_string(), Value::U64(entry.end_day as u64)),
            ("ranked".to_string(), Value::Seq(ranked)),
        ]),
    )
}

fn handle_score(registry: &Registry, req: &Request) -> Response {
    if req.method != "POST" {
        return err_json(405, "/score is POST-only");
    }
    let start = Instant::now();
    rtgcn_telemetry::counter("serve.score.requests").inc(1);
    let resp = score_response(registry, req);
    rtgcn_telemetry::record_ns("serve.score_ns", start.elapsed().as_nanos() as u64);
    resp
}

fn score_response(registry: &Registry, req: &Request) -> Response {
    let Some(text) = req.body_str() else {
        return err_json(400, "body is not valid UTF-8");
    };
    let Ok(parsed) = serde_json::from_str::<Value>(text) else {
        return err_json(400, "body is not valid JSON");
    };
    let Some(market) = parsed.get("market").and_then(Value::as_str) else {
        return err_json(400, "body must have a string \"market\" field");
    };
    let Some(raw_window) = parsed.get("window").and_then(Value::as_seq) else {
        return err_json(400, "body must have a numeric-array \"window\" field");
    };
    let mut window = Vec::with_capacity(raw_window.len());
    for v in raw_window {
        match v.as_f64() {
            Some(f) => window.push(f as f32),
            None => return err_json(400, "window values must be numbers"),
        }
    }
    let Some(entry) = registry.get(market) else {
        return err_json(404, "unknown market");
    };
    let scores = match entry.score_window(&window) {
        Ok(s) => s,
        Err(e) => return err_json(400, &e.to_string()),
    };
    let scores: Vec<Value> = scores.into_iter().map(|s| Value::F64(s as f64)).collect();
    Response::json(
        200,
        &Value::Map(vec![
            ("market".to_string(), Value::Str(entry.market.clone())),
            ("version".to_string(), Value::Str(entry.version.clone())),
            ("scores".to_string(), Value::Seq(scores)),
        ]),
    )
}

fn handle_advance(registry: &Registry, req: &Request) -> Response {
    if req.method != "POST" {
        return err_json(405, "/advance is POST-only");
    }
    let start = Instant::now();
    rtgcn_telemetry::counter("serve.advance.requests").inc(1);
    let resp = advance_response(registry, req);
    rtgcn_telemetry::record_ns("serve.advance_ns", start.elapsed().as_nanos() as u64);
    resp
}

fn advance_response(registry: &Registry, req: &Request) -> Response {
    let Some(text) = req.body_str() else {
        return err_json(400, "body is not valid UTF-8");
    };
    let Ok(parsed) = serde_json::from_str::<Value>(text) else {
        return err_json(400, "body is not valid JSON");
    };
    let Some(market) = parsed.get("market").and_then(Value::as_str) else {
        return err_json(400, "body must have a string \"market\" field");
    };
    let days = match parsed.get("days") {
        None => 1,
        Some(v) => match v.as_u64() {
            Some(d) if (1..=MAX_ADVANCE_DAYS as u64).contains(&d) => d as usize,
            _ => {
                return err_json(
                    400,
                    &format!("days must be an integer in 1..={MAX_ADVANCE_DAYS}"),
                )
            }
        },
    };
    let event = match parse_event(&parsed) {
        Ok(ev) => ev,
        Err(msg) => return err_json(400, &msg),
    };
    if registry.get(market).is_none() {
        return err_json(404, "unknown market");
    }
    let (entry, outcomes) = match registry.advance_market(market, days, event) {
        Ok(ok) => ok,
        Err(e) => return err_json(400, &e.to_string()),
    };
    // Every advance settles the previous day's prediction, so the last
    // outcome's lagged MRR is present in practice; `null` covers a model
    // with nothing outstanding.
    let last = outcomes.last().expect("days >= 1 produces an outcome");
    let refits = outcomes.iter().filter(|o| o.refit.is_some()).count();
    Response::json(
        200,
        &Value::Map(vec![
            ("market".to_string(), Value::Str(entry.market.clone())),
            ("version".to_string(), Value::Str(entry.version.clone())),
            ("end_day".to_string(), Value::U64(entry.end_day as u64)),
            ("days".to_string(), Value::U64(outcomes.len() as u64)),
            ("mrr".to_string(), last.mrr.map(Value::F64).unwrap_or(Value::Null)),
            ("cum_irr".to_string(), Value::F64(last.cum_irr)),
            ("refits".to_string(), Value::U64(refits as u64)),
        ]),
    )
}

/// Parse the optional relation mutations from an `/advance` body.
/// `Ok(None)` when the body carries no mutation at all.
fn parse_event(parsed: &Value) -> Result<Option<DayEvent>, String> {
    let mut ev = DayEvent { add: Vec::new(), drop: Vec::new() };
    if let Some(adds) = parsed.get("add") {
        let Some(seq) = adds.as_seq() else {
            return Err("\"add\" must be an array of edge objects".into());
        };
        for item in seq {
            ev.add.push(parse_edge(item)?);
        }
    }
    if let Some(drops) = parsed.get("drop") {
        let Some(seq) = drops.as_seq() else {
            return Err("\"drop\" must be an array of [a,b] stock pairs".into());
        };
        for item in seq {
            let pair = item.as_seq().filter(|p| p.len() == 2);
            let Some(pair) = pair else {
                return Err("each drop must be a two-element [a,b] stock pair".into());
            };
            match (pair[0].as_u64(), pair[1].as_u64()) {
                (Some(a), Some(b)) => ev.drop.push((a as usize, b as usize)),
                _ => return Err("drop pair values must be stock indices".into()),
            }
        }
    }
    Ok((!ev.add.is_empty() || !ev.drop.is_empty()).then_some(ev))
}

fn parse_edge(v: &Value) -> Result<WikiEdge, String> {
    let int = |field: &str| v.get(field).and_then(Value::as_u64).map(|x| x as usize);
    let num = |field: &str| v.get(field).and_then(Value::as_f64).map(|x| x as f32);
    let leader = int("leader").ok_or("each add edge needs an integer \"leader\"")?;
    let follower = int("follower").ok_or("each add edge needs an integer \"follower\"")?;
    let types = v
        .get("types")
        .and_then(Value::as_seq)
        .ok_or("each add edge needs an integer-array \"types\"")?
        .iter()
        .map(|t| t.as_u64().map(|x| x as usize).ok_or("edge types must be integers"))
        .collect::<Result<Vec<usize>, _>>()?;
    // `WikiEdge::active` computes `day % period` — a zero period is a
    // divide-by-zero, screened here instead of panicking the server.
    let period = int("period").unwrap_or(1);
    if period == 0 {
        return Err("edge period must be at least 1 day".into());
    }
    let strength = num("strength").unwrap_or(0.5);
    let duty = num("duty").unwrap_or(1.0);
    if !(strength.is_finite() && duty.is_finite()) {
        return Err("edge strength and duty must be finite numbers".into());
    }
    Ok(WikiEdge {
        leader,
        follower,
        types,
        strength,
        period,
        phase: int("phase").unwrap_or(0),
        duty,
    })
}
