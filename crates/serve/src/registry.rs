//! Versioned model registry with atomic hot-swap.
//!
//! Each market maps to an `Arc<ModelEntry>`. Handlers clone the `Arc` out
//! of the table, then work on their snapshot without holding any registry
//! lock — so installing v(N+1) is a pointer swap and every in-flight
//! request finishes coherently on v(N). `/rank` never takes even the
//! model lock: the top-day scores are precomputed at install time, making
//! torn reads structurally impossible.

use crate::servable::{build_model, market_key, ServeError};
use parking_lot::Mutex;
use rtgcn_core::{Checkpoint, StockRanker};
use rtgcn_graph::{NormalizedAdjCache, SharedAdjCache};
use rtgcn_market::StockDataset;
use rtgcn_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One installed model version. Immutable after construction except for
/// the mutex-guarded model (used only by `/score`, which needs `&mut` for
/// the tape-based forward passes).
pub struct ModelEntry {
    /// Content-addressed checkpoint id ([`Checkpoint::content_id`]).
    pub version: String,
    /// Family tag (`"rtgcn"`, `"rsr"`, …).
    pub family: String,
    /// Registry key (lowercase market name).
    pub market: String,
    pub n_stocks: usize,
    pub t_steps: usize,
    pub n_features: usize,
    /// Day the precomputed ranking refers to (latest test end-day).
    pub end_day: usize,
    /// Scores for `end_day`, index-aligned with stocks; `/rank` reads
    /// these without touching the model.
    pub scores: Vec<f32>,
    model: Mutex<Box<dyn StockRanker + Send>>,
}

impl ModelEntry {
    /// Rebuild the checkpointed model against `ds` and precompute the
    /// latest-day scores. `ds` must be generated from the checkpoint's
    /// [`rtgcn_core::DataSpec`]; [`Registry::install_checkpoint`] handles
    /// that (and dataset reuse across swaps) for you.
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        ds: &StockDataset,
        cache: Option<&SharedAdjCache>,
    ) -> Result<ModelEntry, ServeError> {
        let data = ckpt.data_spec()?;
        let mut built = build_model(ckpt, ds, cache)?;
        let end_day = *ds
            .test_end_days()
            .last()
            .ok_or_else(|| ServeError::BadInput("dataset has no scorable test day".into()))?;
        let scores = built.model.scores_for_day(ds, end_day);
        Ok(ModelEntry {
            version: ckpt.content_id(),
            family: ckpt.family.clone(),
            market: market_key(data.spec.market),
            n_stocks: ds.n_stocks(),
            t_steps: built.t_steps,
            n_features: built.n_features,
            end_day,
            scores,
            model: Mutex::new(built.model),
        })
    }

    /// Top-`k` stocks by precomputed score, ties broken by stock index.
    /// `k` past the universe size clamps to every stock.
    pub fn ranked(&self, k: usize) -> Vec<(usize, f32)> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b].total_cmp(&self.scores[a]).then_with(|| a.cmp(&b))
        });
        order.truncate(k.min(self.scores.len()));
        order.into_iter().map(|i| (i, self.scores[i])).collect()
    }

    /// Score a raw `(t_steps, n_stocks, n_features)` window, supplied as
    /// a row-major flat slice. Takes the model lock (`/score` path).
    pub fn score_window(&self, flat: &[f32]) -> Result<Vec<f32>, ServeError> {
        let expect = self.t_steps * self.n_stocks * self.n_features;
        if flat.len() != expect {
            return Err(ServeError::BadInput(format!(
                "window must have t_steps*n_stocks*n_features = {expect} values, got {}",
                flat.len()
            )));
        }
        let x = Tensor::new([self.t_steps, self.n_stocks, self.n_features], flat.to_vec());
        self.model
            .lock()
            .score_window(&x)
            .ok_or_else(|| ServeError::BadInput(format!("{} cannot score raw windows", self.family)))
    }
}

/// The serving registry: market key → current [`ModelEntry`], plus
/// per-dataset caches so a hot-swap of the same market reuses the
/// generated dataset and the shared normalised-adjacency layout instead
/// of rebuilding them.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Arc<ModelEntry>>>,
    /// Keyed by the checkpoint's verbatim data JSON (a deterministic
    /// dataset descriptor).
    datasets: Mutex<BTreeMap<String, Arc<StockDataset>>>,
    adj_caches: Mutex<BTreeMap<String, SharedAdjCache>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The current entry for a market key, if any (a snapshot: the
    /// returned `Arc` stays valid across concurrent swaps).
    pub fn get(&self, market: &str) -> Option<Arc<ModelEntry>> {
        self.entries.lock().get(market).cloned()
    }

    /// Registered market keys in sorted order.
    pub fn markets(&self) -> Vec<String> {
        self.entries.lock().keys().cloned().collect()
    }

    /// Atomically install a prebuilt entry under its market key,
    /// returning the replaced version (the hot-swap primitive).
    pub fn install_entry(&self, entry: Arc<ModelEntry>) -> Option<Arc<ModelEntry>> {
        self.entries.lock().insert(entry.market.clone(), entry)
    }

    /// Decode nothing, build everything: regenerate (or reuse) the
    /// checkpoint's dataset, rebuild the model, precompute its ranking,
    /// and swap it in. Returns the installed entry.
    pub fn install_checkpoint(&self, ckpt: &Checkpoint) -> Result<Arc<ModelEntry>, ServeError> {
        let ds = self.dataset_for(ckpt)?;
        let cache = self.adj_cache_for(ckpt, &ds);
        let entry = Arc::new(ModelEntry::from_checkpoint(ckpt, &ds, Some(&cache))?);
        self.install_entry(Arc::clone(&entry));
        Ok(entry)
    }

    /// The dataset described by the checkpoint's data JSON, generated at
    /// most once per descriptor.
    fn dataset_for(&self, ckpt: &Checkpoint) -> Result<Arc<StockDataset>, ServeError> {
        if let Some(ds) = self.datasets.lock().get(&ckpt.data_json) {
            return Ok(Arc::clone(ds));
        }
        let data = ckpt.data_spec()?;
        // Generation happens outside the lock (it is the expensive part);
        // a concurrent duplicate insert is harmless — both values are
        // identical and one Arc wins.
        let ds = Arc::new(StockDataset::generate(data.spec, data.seed));
        self.datasets.lock().insert(ckpt.data_json.clone(), Arc::clone(&ds));
        Ok(ds)
    }

    /// The shared normalised-adjacency layout for the checkpoint's
    /// dataset descriptor, built at most once per descriptor.
    fn adj_cache_for(&self, ckpt: &Checkpoint, ds: &StockDataset) -> SharedAdjCache {
        if let Some(c) = self.adj_caches.lock().get(&ckpt.data_json) {
            return Arc::clone(c);
        }
        let kind = ckpt
            .data_spec()
            .map(|d| d.relation_kind)
            .unwrap_or(rtgcn_market::RelationKind::Both);
        let relations = ds.relations(kind);
        let cache = NormalizedAdjCache::new(relations.num_stocks(), &relations.directed_edges())
            .into_shared();
        self.adj_caches.lock().insert(ckpt.data_json.clone(), Arc::clone(&cache));
        cache
    }
}
