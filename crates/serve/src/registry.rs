//! Versioned model registry with atomic hot-swap.
//!
//! Each market maps to an `Arc<ModelEntry>`. Handlers clone the `Arc` out
//! of the table, then work on their snapshot without holding any registry
//! lock — so installing v(N+1) is a pointer swap and every in-flight
//! request finishes coherently on v(N). `/rank` never takes even the
//! model lock: the top-day scores are precomputed at install time, making
//! torn reads structurally impossible.
//!
//! `/advance` day-advances a market through a [`rtgcn_stream::StreamEngine`]
//! kept per market key. The engine shares the entry's model `Arc`, so a
//! walk-forward refit is immediately visible to `/score`; each advanced
//! day publishes a rolled entry (`<checkpoint-id>+d<day>`) whose `/rank`
//! snapshot is the freshly streamed ranking. Installing a checkpoint
//! drops the market's stream — the engine state belonged to the replaced
//! model.

use crate::servable::{build_model, market_key, ServeError};
use parking_lot::Mutex;
use rtgcn_core::{Checkpoint, DataSpec, RefitPolicy};
use rtgcn_graph::{NormalizedAdjCache, SharedAdjCache};
use rtgcn_market::{DayEvent, RelationKind, StockDataset};
use rtgcn_stream::{DayOutcome, SharedModel, StreamConfig, StreamEngine};
use rtgcn_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One installed model version. Immutable after construction except for
/// the mutex-guarded model (used by `/score` forward passes and by the
/// market's stream engine, which shares the same `Arc`).
pub struct ModelEntry {
    /// Content-addressed checkpoint id ([`Checkpoint::content_id`]); a
    /// streamed roll-forward appends `+d<day>`.
    pub version: String,
    /// Family tag (`"rtgcn"`, `"rsr"`, …).
    pub family: String,
    /// Registry key (lowercase market name).
    pub market: String,
    pub n_stocks: usize,
    pub t_steps: usize,
    pub n_features: usize,
    /// Day the precomputed ranking refers to (latest test end-day, or the
    /// newest streamed day after an `/advance`).
    pub end_day: usize,
    /// Scores for `end_day`, index-aligned with stocks; `/rank` reads
    /// these without touching the model.
    pub scores: Vec<f32>,
    /// The checkpoint's verbatim dataset descriptor, kept so a stream
    /// engine can regenerate the exact dataset this model was built on.
    pub data_json: String,
    pub relation_kind: RelationKind,
    model: SharedModel,
}

impl ModelEntry {
    /// Rebuild the checkpointed model against `ds` and precompute the
    /// latest-day scores. `ds` must be generated from the checkpoint's
    /// [`rtgcn_core::DataSpec`]; [`Registry::install_checkpoint`] handles
    /// that (and dataset reuse across swaps) for you.
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        ds: &StockDataset,
        cache: Option<&SharedAdjCache>,
    ) -> Result<ModelEntry, ServeError> {
        let data = ckpt.data_spec()?;
        let mut built = build_model(ckpt, ds, cache)?;
        let end_day = *ds
            .test_end_days()
            .last()
            .ok_or_else(|| ServeError::BadInput("dataset has no scorable test day".into()))?;
        let scores = built.model.scores_for_day(ds, end_day);
        Ok(ModelEntry {
            version: ckpt.content_id(),
            family: ckpt.family.clone(),
            market: market_key(data.spec.market),
            n_stocks: ds.n_stocks(),
            t_steps: built.t_steps,
            n_features: built.n_features,
            end_day,
            scores,
            data_json: ckpt.data_json.clone(),
            relation_kind: data.relation_kind,
            model: Arc::new(Mutex::new(built.model)),
        })
    }

    /// Top-`k` stocks by precomputed score, ties broken by stock index.
    /// `k` past the universe size clamps to every stock.
    pub fn ranked(&self, k: usize) -> Vec<(usize, f32)> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b].total_cmp(&self.scores[a]).then_with(|| a.cmp(&b))
        });
        order.truncate(k.min(self.scores.len()));
        order.into_iter().map(|i| (i, self.scores[i])).collect()
    }

    /// Score a raw `(t_steps, n_stocks, n_features)` window, supplied as
    /// a row-major flat slice. Takes the model lock (`/score` path).
    pub fn score_window(&self, flat: &[f32]) -> Result<Vec<f32>, ServeError> {
        let expect = self.t_steps * self.n_stocks * self.n_features;
        if flat.len() != expect {
            return Err(ServeError::BadInput(format!(
                "window must have t_steps*n_stocks*n_features = {expect} values, got {}",
                flat.len()
            )));
        }
        let x = Tensor::new([self.t_steps, self.n_stocks, self.n_features], flat.to_vec());
        self.model
            .lock()
            .score_window(&x)
            .ok_or_else(|| ServeError::BadInput(format!("{} cannot score raw windows", self.family)))
    }

    /// Shared handle to the entry's model (the stream engine drives the
    /// same instance `/score` serves).
    pub fn shared_model(&self) -> SharedModel {
        Arc::clone(&self.model)
    }

    /// A roll-forward of this entry: same model `Arc` and metadata, new
    /// version tag and `/rank` snapshot for the streamed day.
    fn rolled(&self, version: String, end_day: usize, scores: Vec<f32>) -> ModelEntry {
        ModelEntry {
            version,
            family: self.family.clone(),
            market: self.market.clone(),
            n_stocks: self.n_stocks,
            t_steps: self.t_steps,
            n_features: self.n_features,
            end_day,
            scores,
            data_json: self.data_json.clone(),
            relation_kind: self.relation_kind,
            model: Arc::clone(&self.model),
        }
    }
}

/// A market's live day-advance state: the engine plus the checkpoint id
/// it was built from, so a hot-swap to a different model invalidates it.
struct MarketStream {
    base_version: String,
    engine: StreamEngine,
}

/// The serving registry: market key → current [`ModelEntry`], plus
/// per-dataset caches so a hot-swap of the same market reuses the
/// generated dataset and the shared normalised-adjacency layout instead
/// of rebuilding them.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Arc<ModelEntry>>>,
    /// Keyed by the checkpoint's verbatim data JSON (a deterministic
    /// dataset descriptor).
    datasets: Mutex<BTreeMap<String, Arc<StockDataset>>>,
    adj_caches: Mutex<BTreeMap<String, SharedAdjCache>>,
    /// Day-advance engines by market key. Lock order: `streams` before
    /// `entries` — never the reverse.
    streams: Mutex<BTreeMap<String, MarketStream>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The current entry for a market key, if any (a snapshot: the
    /// returned `Arc` stays valid across concurrent swaps).
    pub fn get(&self, market: &str) -> Option<Arc<ModelEntry>> {
        self.entries.lock().get(market).cloned()
    }

    /// Registered market keys in sorted order.
    pub fn markets(&self) -> Vec<String> {
        self.entries.lock().keys().cloned().collect()
    }

    /// Atomically install a prebuilt entry under its market key,
    /// returning the replaced version (the hot-swap primitive). Any
    /// stream engine for the market is dropped: its incremental state
    /// belonged to the replaced model.
    pub fn install_entry(&self, entry: Arc<ModelEntry>) -> Option<Arc<ModelEntry>> {
        let mut streams = self.streams.lock();
        streams.remove(&entry.market);
        self.entries.lock().insert(entry.market.clone(), entry)
    }

    /// Decode nothing, build everything: regenerate (or reuse) the
    /// checkpoint's dataset, rebuild the model, precompute its ranking,
    /// and swap it in. Returns the installed entry.
    pub fn install_checkpoint(&self, ckpt: &Checkpoint) -> Result<Arc<ModelEntry>, ServeError> {
        let ds = self.dataset_for(ckpt)?;
        let cache = self.adj_cache_for(ckpt, &ds);
        let entry = Arc::new(ModelEntry::from_checkpoint(ckpt, &ds, Some(&cache))?);
        self.install_entry(Arc::clone(&entry));
        Ok(entry)
    }

    /// Day-advance a market's stream engine `days` times, applying
    /// `event`'s relation mutations on the first advanced day, and publish
    /// a rolled entry so `/rank` serves the newest streamed ranking.
    ///
    /// The stream is created lazily from the market's current entry (and
    /// re-created whenever the installed checkpoint changed underneath
    /// it). The registry's `streams` lock serialises advances per
    /// process; `/rank` and `/score` stay lock-free on their snapshots.
    pub fn advance_market(
        &self,
        market: &str,
        days: usize,
        event: Option<DayEvent>,
    ) -> Result<(Arc<ModelEntry>, Vec<DayOutcome>), ServeError> {
        if days == 0 {
            return Err(ServeError::BadInput("days must be a positive integer".into()));
        }
        let entry =
            self.get(market).ok_or_else(|| ServeError::BadInput("unknown market".into()))?;
        let base = base_version(&entry.version).to_string();

        let mut streams = self.streams.lock();
        let stale = streams.get(market).map(|s| s.base_version != base).unwrap_or(true);
        if stale {
            let engine = self.stream_for(&entry)?;
            streams
                .insert(market.to_string(), MarketStream { base_version: base.clone(), engine });
        }
        let stream = streams.get_mut(market).expect("stream just ensured");
        if let Some(ev) = event.as_ref() {
            // `StockDataset::apply_event` asserts validity — screen the
            // request instead of letting a bad body panic the server.
            validate_event(stream.engine.dataset(), ev)?;
        }

        let mut event = event;
        let mut outcomes = Vec::with_capacity(days);
        for _ in 0..days {
            outcomes.push(stream.engine.advance(event.take()));
        }
        let (day, scores) = stream.engine.latest_scores();
        let rolled =
            Arc::new(entry.rolled(format!("{base}+d{day}"), day, scores.to_vec()));
        // Publish directly — `install_entry` would drop the very stream
        // that produced this snapshot.
        self.entries.lock().insert(market.to_string(), Arc::clone(&rolled));
        Ok((rolled, outcomes))
    }

    /// Build a fresh stream engine for `entry`, reusing the registry's
    /// generated dataset when one is cached for the same descriptor.
    fn stream_for(&self, entry: &ModelEntry) -> Result<StreamEngine, ServeError> {
        let ds: StockDataset = match self.datasets.lock().get(&entry.data_json) {
            Some(ds) => (**ds).clone(),
            None => {
                let data: DataSpec = serde_json::from_str(&entry.data_json).map_err(|e| {
                    ServeError::BadConfig(format!("entry data spec JSON: {e:?}"))
                })?;
                StockDataset::generate(data.spec, data.seed)
            }
        };
        if ds.days_generated() < rtgcn_market::WARMUP_DAYS + entry.t_steps {
            return Err(ServeError::BadInput(format!(
                "dataset too short to stream a {}-step window",
                entry.t_steps
            )));
        }
        let mut cfg = StreamConfig::new(entry.t_steps, entry.n_features, entry.relation_kind);
        cfg.refit = refit_policy_from_env();
        Ok(StreamEngine::new(ds, entry.shared_model(), cfg))
    }

    /// The dataset described by the checkpoint's data JSON, generated at
    /// most once per descriptor.
    fn dataset_for(&self, ckpt: &Checkpoint) -> Result<Arc<StockDataset>, ServeError> {
        if let Some(ds) = self.datasets.lock().get(&ckpt.data_json) {
            return Ok(Arc::clone(ds));
        }
        let data = ckpt.data_spec()?;
        // Generation happens outside the lock (it is the expensive part);
        // a concurrent duplicate insert is harmless — both values are
        // identical and one Arc wins.
        let ds = Arc::new(StockDataset::generate(data.spec, data.seed));
        self.datasets.lock().insert(ckpt.data_json.clone(), Arc::clone(&ds));
        Ok(ds)
    }

    /// The shared normalised-adjacency layout for the checkpoint's
    /// dataset descriptor, built at most once per descriptor.
    fn adj_cache_for(&self, ckpt: &Checkpoint, ds: &StockDataset) -> SharedAdjCache {
        if let Some(c) = self.adj_caches.lock().get(&ckpt.data_json) {
            return Arc::clone(c);
        }
        let kind = ckpt
            .data_spec()
            .map(|d| d.relation_kind)
            .unwrap_or(rtgcn_market::RelationKind::Both);
        let relations = ds.relations(kind);
        let cache = NormalizedAdjCache::new(relations.num_stocks(), &relations.directed_edges())
            .into_shared();
        self.adj_caches.lock().insert(ckpt.data_json.clone(), Arc::clone(&cache));
        cache
    }
}

/// The checkpoint id a (possibly rolled) version tag started from.
fn base_version(version: &str) -> &str {
    version.split("+d").next().unwrap_or(version)
}

/// Walk-forward refit policy for server-side streams, off by default:
/// `RTGCN_STREAM_REFIT_EVERY=<days>` enables the day-count schedule,
/// `RTGCN_STREAM_DRIFT=<window>,<frac>` the MRR drift trigger.
fn refit_policy_from_env() -> RefitPolicy {
    if let Ok(v) = std::env::var("RTGCN_STREAM_REFIT_EVERY") {
        if let Ok(days) = v.trim().parse::<usize>() {
            if days > 0 {
                return RefitPolicy::every(days);
            }
        }
    }
    if let Ok(v) = std::env::var("RTGCN_STREAM_DRIFT") {
        if let Some((w, f)) = v.split_once(',') {
            if let (Ok(w), Ok(f)) = (w.trim().parse::<usize>(), f.trim().parse::<f32>()) {
                if w > 0 && f > 0.0 {
                    return RefitPolicy::on_drift(w, f);
                }
            }
        }
    }
    RefitPolicy::disabled()
}

/// Screen a [`DayEvent`] against the dataset's universe before handing it
/// to `apply_event` (which `assert!`s the same conditions).
fn validate_event(ds: &StockDataset, ev: &DayEvent) -> Result<(), ServeError> {
    let n = ds.n_stocks();
    let k = ds.wiki.relations.num_types();
    for e in &ev.add {
        if e.leader >= n || e.follower >= n {
            return Err(ServeError::BadInput(format!(
                "add edge stock out of range (universe has {n} stocks)"
            )));
        }
        if e.leader == e.follower {
            return Err(ServeError::BadInput(
                "add edge must connect two distinct stocks".into(),
            ));
        }
        if e.types.is_empty() {
            return Err(ServeError::BadInput(
                "add edge needs at least one relation type".into(),
            ));
        }
        if e.types.iter().any(|&t| t >= k) {
            return Err(ServeError::BadInput(format!(
                "add edge relation type out of range (market has {k} wiki types)"
            )));
        }
    }
    for &(a, b) in &ev.drop {
        if a >= n || b >= n {
            return Err(ServeError::BadInput(format!(
                "drop pair stock out of range (universe has {n} stocks)"
            )));
        }
    }
    Ok(())
}
