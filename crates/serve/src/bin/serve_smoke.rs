//! Serving smoke harness (`run_experiments.sh --serve-smoke`): train a
//! tiny RT-GCN for one epoch, checkpoint it to disk, reload, boot the
//! scoring routes on the monitor server, scrape every endpoint, roll the
//! registry snapshot forward through the streaming `/advance` route, then
//! run a short concurrent load test that hot-swaps a second checkpoint in
//! mid-load. Zero failed requests are tolerated, and every `/rank`
//! response must carry exactly one of the two installed version ids.
//!
//! Latencies land in the `serve.load.rank_ns` histogram, which
//! `rtgcn-report --harness serve_smoke` folds into
//! `results/BENCH_serve.json`.

rtgcn_telemetry::install_tracking_allocator!();

use rtgcn_bench::{begin_model_scope, harness_error, HarnessArgs};
use rtgcn_core::{Checkpoint, DataSpec, RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_serve::servable::checkpoint_rtgcn;
use rtgcn_serve::{install_routes, ModelEntry, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HARNESS: &str = "serve_smoke";
/// Concurrent load-test clients. Must stay below the server's in-flight
/// budget (8) so shed 503s cannot masquerade as hot-swap failures.
const CLIENT_THREADS: usize = 4;
/// Requests per client thread.
const REQUESTS_PER_CLIENT: usize = 150;

fn request(addr: SocketAddr, raw: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).map_err(|e| format!("timeout: {e}"))?;
    stream.write_all(raw.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp).map_err(|e| format!("read: {e}"))?;
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("no HTTP status line in {resp:?}"))?;
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: serve\r\n\r\n"))
        .map_err(|e| format!("GET {path}: {e}"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: serve\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
    .map_err(|e| format!("POST {path}: {e}"))
}

/// Train for `epochs` and capture a durable checkpoint.
fn train_checkpoint(
    cfg: &RtGcnConfig,
    ds: &StockDataset,
    data: &DataSpec,
    epochs: usize,
    seed: u64,
) -> Result<Checkpoint, String> {
    let mut cfg = cfg.clone();
    cfg.epochs = epochs;
    let relations = ds.relations(data.relation_kind);
    let mut model = RtGcn::new(cfg, &relations, seed);
    let report = model.fit(ds);
    if report.health == rtgcn_telemetry::health::HealthVerdict::Diverged {
        return Err(format!("training diverged: {:?}", report.epoch_health));
    }
    checkpoint_rtgcn(&model, data).map_err(|e| format!("checkpoint: {e}"))
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn main() {
    // Must be set before HarnessArgs::init (which starts the server);
    // single-threaded at this point. An explicit RTGCN_MONITOR wins.
    if std::env::var("RTGCN_MONITOR").map(|v| v.trim().is_empty()).unwrap_or(true) {
        std::env::set_var("RTGCN_MONITOR", "127.0.0.1:0");
    }
    let (args, _telemetry) = HarnessArgs::init(HARNESS);
    let Some(addr) = rtgcn_telemetry::http::monitor_addr() else {
        harness_error(HARNESS, &"monitor server did not start (bind failed?)");
    };

    // Tiny CSI universe: the gate exercises the serving transport and the
    // checkpoint plumbing, not the paper numbers.
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 8;
    spec.train_days = 40;
    spec.test_days = 8;
    let data = DataSpec { spec, seed: args.base_seed, relation_kind: RelationKind::Both };
    let ds = StockDataset::generate(data.spec.clone(), data.seed);
    let cfg = RtGcnConfig {
        t_steps: 8,
        n_features: 2,
        rel_filters: 8,
        temporal_filters: 8,
        strategy: Strategy::Uniform,
        ..RtGcnConfig::default()
    };

    begin_model_scope("serve");

    // Two checkpoint versions: 1 and 2 epochs of training. The first goes
    // through a full disk round trip (the durable path rtgcn-serve uses).
    let ckpt_v1 = train_checkpoint(&cfg, &ds, &data, 1, args.base_seed)
        .unwrap_or_else(|e| harness_error(HARNESS, &e));
    let ckpt_v2 = train_checkpoint(&cfg, &ds, &data, 2, args.base_seed)
        .unwrap_or_else(|e| harness_error(HARNESS, &e));
    let ckpt_path = args.logs_dir().join("serve-smoke.rtgckpt");
    if let Err(e) = ckpt_v1.save(&ckpt_path) {
        harness_error(HARNESS, &e);
    }
    let ckpt_v1 = match Checkpoint::load(&ckpt_path) {
        Ok(c) => c,
        Err(e) => harness_error(HARNESS, &e),
    };
    let (v1, v2) = (ckpt_v1.content_id(), ckpt_v2.content_id());
    if v1 == v2 {
        harness_error(HARNESS, &"v1 and v2 checkpoints are identical; swap test is vacuous");
    }
    println!("[{HARNESS}] checkpointed {} -> versions {v1} / {v2}", ckpt_path.display());

    let registry = Arc::new(Registry::new());
    let entry_v1 = match registry.install_checkpoint(&ckpt_v1) {
        Ok(e) => e,
        Err(e) => harness_error(HARNESS, &e),
    };
    let entry_v2 = match ModelEntry::from_checkpoint(&ckpt_v2, &ds, None) {
        Ok(e) => Arc::new(e),
        Err(e) => harness_error(HARNESS, &e),
    };
    install_routes(Arc::clone(&registry));

    // Every endpoint must answer before the load phase starts.
    for path in ["/healthz", "/metrics", "/rank?market=csi&k=5", "/rank?market=csi&k=0"] {
        match get(addr, path) {
            Ok((200, body)) => println!("[{HARNESS}] GET {path} -> 200 OK ({} bytes)", body.len()),
            Ok((status, body)) => {
                harness_error(HARNESS, &format!("GET {path}: expected 200, got {status} ({body:?})"))
            }
            Err(e) => harness_error(HARNESS, &e),
        }
    }
    match get(addr, "/rank?market=tse") {
        Ok((404, _)) => println!("[{HARNESS}] GET /rank?market=tse -> 404 as expected"),
        Ok((status, body)) => {
            harness_error(HARNESS, &format!("unknown market: expected 404, got {status} ({body:?})"))
        }
        Err(e) => harness_error(HARNESS, &e),
    }
    let window: Vec<String> = (0..cfg.t_steps * ds.n_stocks() * cfg.n_features)
        .map(|i| format!("{:.1}", (i % 7) as f32 * 0.5))
        .collect();
    let score_body = format!("{{\"market\":\"csi\",\"window\":[{}]}}", window.join(","));
    match post(addr, "/score", &score_body) {
        Ok((200, body)) => {
            let parsed: Result<serde_json::Value, _> = serde_json::from_str(&body);
            let n = parsed
                .ok()
                .and_then(|v| v.get("scores").and_then(|s| s.as_seq().map(<[_]>::len)));
            if n != Some(ds.n_stocks()) {
                harness_error(HARNESS, &format!("/score: expected {} scores in {body:?}", ds.n_stocks()));
            }
            println!("[{HARNESS}] POST /score -> 200 OK ({} bytes)", body.len());
        }
        Ok((status, body)) => {
            harness_error(HARNESS, &format!("POST /score: expected 200, got {status} ({body:?})"))
        }
        Err(e) => harness_error(HARNESS, &e),
    }
    match post(addr, "/score", "not json") {
        Ok((400, _)) => println!("[{HARNESS}] POST /score (malformed) -> 400 as expected"),
        Ok((status, body)) => {
            harness_error(HARNESS, &format!("malformed body: expected 400, got {status} ({body:?})"))
        }
        Err(e) => harness_error(HARNESS, &e),
    }

    // Streaming day-advance: two days through the stream engine must roll
    // the `/rank` snapshot forward under a `+d<day>` version tag.
    let end_before = registry.get("csi").map(|e| e.end_day).unwrap_or(0);
    match post(addr, "/advance", "{\"market\":\"csi\",\"days\":2}") {
        Ok((200, body)) => {
            if !body.contains(&format!("\"version\":\"{v1}+d")) {
                harness_error(HARNESS, &format!("/advance: expected a rolled v1 version in {body:?}"));
            }
            println!("[{HARNESS}] POST /advance -> 200 OK ({} bytes)", body.len());
        }
        Ok((status, body)) => {
            harness_error(HARNESS, &format!("POST /advance: expected 200, got {status} ({body:?})"))
        }
        Err(e) => harness_error(HARNESS, &e),
    }
    let end_after = registry.get("csi").map(|e| e.end_day).unwrap_or(0);
    // The stream seeds at the newest generated day (one past the last
    // scorable batch end-day), so two advances move end_day forward by 3.
    if end_after != end_before + 3 {
        harness_error(
            HARNESS,
            &format!("/advance: end_day {end_before} should roll to {}, got {end_after}", end_before + 3),
        );
    }
    match get(addr, "/rank?market=csi&k=3") {
        Ok((200, body)) if body.contains("+d") => {
            println!("[{HARNESS}] /rank serves streamed day {end_after} (rolled version)")
        }
        Ok((status, body)) => {
            harness_error(HARNESS, &format!("/rank after advance: {status} ({body:?})"))
        }
        Err(e) => harness_error(HARNESS, &e),
    }
    // Restore the pristine v1 entry (and drop the stream) so the load
    // phase sees exactly the two checkpointed versions.
    registry.install_entry(Arc::clone(&entry_v1));

    // Load phase: CLIENT_THREADS hammer /rank while the main thread swaps
    // v1 <-> v2 in a tight loop. Every response must be a 200 carrying one
    // of the two version ids; any connection error fails the gate.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let (v1, v2) = (v1.clone(), v2.clone());
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let t0 = Instant::now();
                    let (status, body) = get(addr, "/rank?market=csi&k=3")?;
                    lat.push(t0.elapsed().as_nanos() as u64);
                    if status != 200 {
                        return Err(format!("/rank under load: {status} ({body:?})"));
                    }
                    let tagged_v1 = body.contains(&format!("\"version\":\"{v1}\""));
                    let tagged_v2 = body.contains(&format!("\"version\":\"{v2}\""));
                    if !(tagged_v1 ^ tagged_v2) {
                        return Err(format!("response is not exactly one installed version: {body:?}"));
                    }
                }
                Ok(lat)
            })
        })
        .collect();
    let swapper = {
        let (registry, stop) = (Arc::clone(&registry), Arc::clone(&stop));
        let (entry_v1, entry_v2) = (Arc::clone(&entry_v1), Arc::clone(&entry_v2));
        std::thread::spawn(move || {
            let mut swaps: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let next =
                    if swaps.is_multiple_of(2) { Arc::clone(&entry_v2) } else { Arc::clone(&entry_v1) };
                registry.install_entry(next);
                swaps += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            swaps
        })
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for c in clients {
        match c.join() {
            Ok(Ok(lat)) => latencies.extend(lat),
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }
    stop.store(true, Ordering::Relaxed);
    let swaps = swapper.join().unwrap_or(0);
    if !failures.is_empty() {
        harness_error(
            HARNESS,
            &format!("{} of {} clients failed: {}", failures.len(), CLIENT_THREADS, failures[0]),
        );
    }
    if swaps < 2 {
        harness_error(HARNESS, &format!("only {swaps} hot-swaps happened during the load phase"));
    }
    for &ns in &latencies {
        rtgcn_telemetry::record_ns("serve.load.rank_ns", ns);
    }
    latencies.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    println!(
        "[{HARNESS}] load test: {} requests, {swaps} hot-swaps, p50={:.2}ms p95={:.2}ms p99={:.2}ms",
        latencies.len(),
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    println!("[{HARNESS}] serving endpoints healthy at http://{addr}; hot-swap clean");
}
