//! `rtgcn-serve` — long-lived checkpointed scoring service.
//!
//! ```text
//! rtgcn-serve --ckpt results/ckpt/csi.rtgckpt [--ckpt …] \
//!             [--addr 127.0.0.1:7878] [--reload-secs 5]
//! ```
//!
//! Boots the telemetry HTTP server with the serving routes installed:
//! `GET /rank?market=<m>&k=<n>`, `POST /score`, plus the built-in
//! `/healthz`, `/metrics`, and `/spans`. With `--reload-secs N > 0` each
//! checkpoint file is re-read every N seconds and hot-swapped into the
//! registry whenever its content id changes — in-flight requests finish
//! on the old version's snapshot.

use rtgcn_core::Checkpoint;
use rtgcn_serve::reload::{run_reload_loop, ReloadMode};
use rtgcn_serve::{install_routes, Registry};
use rtgcn_telemetry::http::Server;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

struct Args {
    ckpts: Vec<String>,
    addr: String,
    reload_secs: u64,
}

const USAGE: &str =
    "usage: rtgcn-serve --ckpt FILE[,FILE...] [--addr 127.0.0.1:7878] [--reload-secs N]";

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { ckpts: Vec::new(), addr: "127.0.0.1:7878".to_string(), reload_secs: 0 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--ckpt" => {
                args.ckpts.extend(value("--ckpt")?.split(',').map(str::to_string));
            }
            "--addr" => args.addr = value("--addr")?,
            "--reload-secs" => {
                args.reload_secs = value("--reload-secs")?
                    .parse()
                    .map_err(|_| "--reload-secs must be an integer".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.ckpts.is_empty() {
        return Err(format!("at least one --ckpt is required\n{USAGE}"));
    }
    Ok(args)
}

fn fatal(msg: &str) -> ! {
    eprintln!("[rtgcn-serve] error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| fatal(&e));
    // Summary level arms the serve.{rank,score}_ns histograms on /metrics.
    rtgcn_telemetry::set_level(rtgcn_telemetry::Level::Summary);

    let registry = Arc::new(Registry::new());
    // Per-file installed content id, for the reload poll.
    let mut installed: Vec<(String, String)> = Vec::new();
    for path in &args.ckpts {
        let ckpt = Checkpoint::load(path).unwrap_or_else(|e| fatal(&format!("{path}: {e}")));
        let entry = registry
            .install_checkpoint(&ckpt)
            .unwrap_or_else(|e| fatal(&format!("{path}: {e}")));
        eprintln!(
            "[rtgcn-serve] {path}: serving {} for market {:?} (version {})",
            entry.family, entry.market, entry.version
        );
        installed.push((path.clone(), entry.version.clone()));
    }
    install_routes(Arc::clone(&registry));

    let server = Server::start(&args.addr).unwrap_or_else(|e| {
        fatal(&format!("cannot bind {}: {e}", args.addr));
    });
    eprintln!(
        "[rtgcn-serve] listening on http://{} (rank, score, healthz, metrics, spans)",
        server.local_addr()
    );

    // Serve until killed: with reload disabled the main thread parks
    // (no wakeups at all); with --reload-secs N it polls immediately and
    // then every N seconds.
    run_reload_loop(
        registry,
        installed,
        ReloadMode::from_secs(args.reload_secs),
        Arc::new(AtomicBool::new(false)),
    );
}
