//! Hot-swap determinism: hammer `/rank` from several client threads while
//! the registry swaps between two model versions in a tight loop. The
//! contract under test:
//!
//! - zero connection errors and zero non-200 responses;
//! - every response body is **exactly** one of the two versions' bodies
//!   (an `Arc` snapshot per request — never a torn mix of old scores with
//!   a new version tag);
//! - both versions are actually observed (the swap really happened
//!   mid-load).
//!
//! Client count stays well under the server's in-flight budget (8) so
//! load-shedding 503s cannot contaminate the result.

use rtgcn_core::DataSpec;
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_serve::probe::{ProbeConfig, WindowSumProbe};
use rtgcn_serve::servable::checkpoint_probe;
use rtgcn_serve::{install_routes, ModelEntry, Registry};
use rtgcn_telemetry::http::Server;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 120;

fn rank_once(addr: SocketAddr) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(b"GET /rank?market=csi&k=4 HTTP/1.1\r\nHost: t\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp).map_err(|e| format!("read: {e}"))?;
    let status =
        resp.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or("no status line")?;
    Ok((status, resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()))
}

#[test]
fn concurrent_rank_requests_see_exactly_one_version_during_swaps() {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 4;
    spec.train_days = 12;
    spec.test_days = 3;
    let data = DataSpec { spec, seed: 3, relation_kind: RelationKind::Both };
    let ds = StockDataset::generate(data.spec.clone(), data.seed);
    let cfg = ProbeConfig { t_steps: 2, n_features: 2 };
    // Two versions of the same family, differing only in the trained
    // scale parameter — and therefore in every served score.
    let ckpt_v1 = checkpoint_probe(&WindowSumProbe::new(cfg, 0.5), &data).unwrap();
    let ckpt_v2 = checkpoint_probe(&WindowSumProbe::new(cfg, 2.0), &data).unwrap();
    assert_ne!(ckpt_v1.content_id(), ckpt_v2.content_id());

    let registry = Arc::new(Registry::new());
    let entry_v1 = registry.install_checkpoint(&ckpt_v1).unwrap();
    let entry_v2 = Arc::new(ModelEntry::from_checkpoint(&ckpt_v2, &ds, None).unwrap());
    install_routes(Arc::clone(&registry));
    let server = Server::start("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Reference bodies for both versions, captured single-threadedly.
    let (s1, body_v1) = rank_once(addr).unwrap();
    registry.install_entry(Arc::clone(&entry_v2));
    let (s2, body_v2) = rank_once(addr).unwrap();
    assert_eq!((s1, s2), (200, 200));
    assert_ne!(body_v1, body_v2, "versions must serve distinguishable bodies");
    registry.install_entry(Arc::clone(&entry_v1));

    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let (registry, stop) = (Arc::clone(&registry), Arc::clone(&stop));
        let (v1, v2) = (Arc::clone(&entry_v1), Arc::clone(&entry_v2));
        std::thread::spawn(move || {
            let mut swaps: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                registry.install_entry(if swaps.is_multiple_of(2) {
                    Arc::clone(&v2)
                } else {
                    Arc::clone(&v1)
                });
                swaps += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            swaps
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let (body_v1, body_v2) = (body_v1.clone(), body_v2.clone());
            std::thread::spawn(move || -> Result<HashSet<&'static str>, String> {
                let mut seen = HashSet::new();
                for _ in 0..REQUESTS_PER_CLIENT {
                    let (status, body) = rank_once(addr)?;
                    if status != 200 {
                        return Err(format!("non-200 under swap load: {status} ({body:?})"));
                    }
                    if body == body_v1 {
                        seen.insert("v1");
                    } else if body == body_v2 {
                        seen.insert("v2");
                    } else {
                        return Err(format!("torn/unknown response body: {body:?}"));
                    }
                }
                Ok(seen)
            })
        })
        .collect();

    let mut seen_all: HashSet<&'static str> = HashSet::new();
    let mut errors = Vec::new();
    for c in clients {
        match c.join().expect("client thread must not panic") {
            Ok(seen) => seen_all.extend(seen),
            Err(e) => errors.push(e),
        }
    }
    stop.store(true, Ordering::Relaxed);
    let swaps = swapper.join().unwrap();
    assert!(errors.is_empty(), "hot-swap load errors: {errors:?}");
    assert!(swaps >= 2, "swap loop barely ran ({swaps} swaps)");
    assert_eq!(
        seen_all,
        HashSet::from(["v1", "v2"]),
        "both versions must be observed across {} requests and {swaps} swaps",
        CLIENTS * REQUESTS_PER_CLIENT
    );
}
