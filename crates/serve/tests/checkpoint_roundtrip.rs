//! Serving-grade checkpoint parity: for every servable family (and every
//! RT-GCN propagation strategy) a trained model must survive
//! checkpoint → save → load → rebuild with **bit-identical** scores, both
//! on dataset days (`scores_for_day`) and on raw windows (`score_window`).

use rtgcn_baselines::{LstmRanker, Rsr, RsrConfig, SeqConfig, Sthan, SthanConfig};
use rtgcn_core::{Checkpoint, DataSpec, RtGcn, RtGcnConfig, StockRanker, Strategy};
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_serve::servable::{
    build_model, checkpoint_lstm, checkpoint_rsr, checkpoint_rtgcn, checkpoint_sthan,
};

const T_STEPS: usize = 6;
const N_FEATURES: usize = 2;
const SEED: u64 = 7;

fn tiny_data() -> (DataSpec, StockDataset) {
    let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
    spec.stocks = 6;
    spec.train_days = 30;
    spec.test_days = 4;
    let data = DataSpec { spec, seed: SEED, relation_kind: RelationKind::Both };
    let ds = StockDataset::generate(data.spec.clone(), data.seed);
    (data, ds)
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// The shared assertion: disk round trip is byte-exact, and the rebuilt
/// model scores bit-identically to the trained one everywhere.
fn assert_parity(trained: &mut dyn StockRanker, ckpt: Checkpoint, ds: &StockDataset, tag: &str) {
    let dir = std::env::temp_dir().join(format!("rtgcn-serve-rt-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.rtgckpt");
    ckpt.save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(loaded, ckpt, "{tag}: disk round trip must be lossless");
    assert_eq!(loaded.to_bytes(), ckpt.to_bytes(), "{tag}: re-encode must be byte-identical");
    assert_eq!(loaded.content_id(), ckpt.content_id(), "{tag}: version tag must be stable");

    let mut rebuilt = build_model(&loaded, ds, None).unwrap_or_else(|e| panic!("{tag}: {e}"));
    for day in ds.test_end_days() {
        assert_eq!(
            bits(&rebuilt.model.scores_for_day(ds, day)),
            bits(&trained.scores_for_day(ds, day)),
            "{tag}: scores_for_day({day}) must be bit-identical after reload"
        );
    }
    let window = ds.sample(*ds.test_end_days().last().unwrap(), T_STEPS, N_FEATURES).x;
    let a = trained.score_window(&window).unwrap_or_else(|| panic!("{tag}: no score_window"));
    let b = rebuilt.model.score_window(&window).unwrap();
    assert_eq!(bits(&a), bits(&b), "{tag}: score_window must be bit-identical after reload");
}

fn rtgcn_cfg(strategy: Strategy) -> RtGcnConfig {
    RtGcnConfig {
        t_steps: T_STEPS,
        n_features: N_FEATURES,
        rel_filters: 4,
        temporal_filters: 4,
        epochs: 1,
        strategy,
        ..RtGcnConfig::default()
    }
}

fn rtgcn_strategy_roundtrip(strategy: Strategy, tag: &str) {
    let (data, ds) = tiny_data();
    let relations = ds.relations(data.relation_kind);
    let mut model = RtGcn::new(rtgcn_cfg(strategy), &relations, SEED);
    model.fit(&ds);
    let ckpt = checkpoint_rtgcn(&model, &data).unwrap();
    assert_eq!(ckpt.family, "rtgcn");
    assert_parity(&mut model, ckpt, &ds, tag);
}

#[test]
fn rtgcn_uniform_roundtrip() {
    rtgcn_strategy_roundtrip(Strategy::Uniform, "rtgcn-uniform");
}

#[test]
fn rtgcn_weighted_roundtrip() {
    rtgcn_strategy_roundtrip(Strategy::Weighted, "rtgcn-weighted");
}

#[test]
fn rtgcn_time_sensitive_roundtrip() {
    rtgcn_strategy_roundtrip(Strategy::TimeSensitive, "rtgcn-time-sensitive");
}

fn seq_cfg() -> SeqConfig {
    SeqConfig { t_steps: T_STEPS, n_features: N_FEATURES, hidden: 4, epochs: 1, ..SeqConfig::default() }
}

#[test]
fn lstm_roundtrip() {
    let (data, ds) = tiny_data();
    let mut model = LstmRanker::regression(seq_cfg(), SEED);
    model.fit(&ds);
    let ckpt = checkpoint_lstm(&model, &data).unwrap();
    assert_eq!(ckpt.family, "lstm");
    assert_parity(&mut model, ckpt, &ds, "lstm");
}

#[test]
fn rank_lstm_roundtrip() {
    let (data, ds) = tiny_data();
    let mut model = LstmRanker::ranking(seq_cfg(), SEED);
    model.fit(&ds);
    let ckpt = checkpoint_lstm(&model, &data).unwrap();
    assert_eq!(ckpt.family, "rank_lstm");
    assert_parity(&mut model, ckpt, &ds, "rank_lstm");
}

#[test]
fn rsr_roundtrip() {
    let (data, ds) = tiny_data();
    let cfg = RsrConfig {
        t_steps: T_STEPS,
        n_features: N_FEATURES,
        hidden: 4,
        epochs: 1,
        ..RsrConfig::default()
    };
    let mut model = Rsr::new(cfg, SEED);
    model.fit(&ds);
    let ckpt = checkpoint_rsr(&model, &data).unwrap();
    assert_eq!(ckpt.family, "rsr");
    assert_parity(&mut model, ckpt, &ds, "rsr");
}

#[test]
fn sthan_roundtrip() {
    let (data, ds) = tiny_data();
    let cfg = SthanConfig {
        t_steps: T_STEPS,
        n_features: N_FEATURES,
        hidden: 4,
        epochs: 1,
        ..SthanConfig::default()
    };
    let mut model = Sthan::new(cfg, SEED);
    model.fit(&ds);
    let ckpt = checkpoint_sthan(&model, &data).unwrap();
    assert_eq!(ckpt.family, "sthan");
    assert_parity(&mut model, ckpt, &ds, "sthan");
}

/// A registry-installed RT-GCN (shared adjacency cache) must score exactly
/// like a standalone rebuild — the cache is a layout optimisation, not a
/// numerics change.
#[test]
fn shared_cache_rebuild_matches_standalone() {
    let (data, ds) = tiny_data();
    let relations = ds.relations(data.relation_kind);
    let mut model = RtGcn::new(rtgcn_cfg(Strategy::Weighted), &relations, SEED);
    model.fit(&ds);
    let ckpt = checkpoint_rtgcn(&model, &data).unwrap();

    let registry = rtgcn_serve::Registry::new();
    let entry = registry.install_checkpoint(&ckpt).unwrap();
    let day = *ds.test_end_days().last().unwrap();
    assert_eq!(
        bits(&entry.scores),
        bits(&model.scores_for_day(&ds, day)),
        "registry-precomputed ranking scores must match the trained model"
    );
    let window = ds.sample(day, T_STEPS, N_FEATURES).x;
    let via_registry = entry.score_window(window.data()).unwrap();
    let direct = model.score_window(&window).unwrap();
    assert_eq!(bits(&via_registry), bits(&direct));
}

/// Cross-family confusion must fail structurally: an RSR store cannot be
/// applied to an LSTM architecture.
#[test]
fn wrong_family_config_is_rejected() {
    let (data, ds) = tiny_data();
    let mut model = LstmRanker::regression(seq_cfg(), SEED);
    model.fit(&ds);
    let mut ckpt = checkpoint_lstm(&model, &data).unwrap();
    ckpt.family = "nonsense".to_string();
    assert!(matches!(
        build_model(&ckpt, &ds, None),
        Err(rtgcn_serve::ServeError::UnknownFamily(_))
    ));
}
