//! Golden serving fixtures: `/rank` and `/score` response bodies asserted
//! **byte-for-byte** against hand-computed expectations, using the
//! [`rtgcn_serve::probe::WindowSumProbe`] family (whose scores are plain
//! scaled window sums, reproducible with a four-line loop). Covers the
//! happy paths plus every specified edge: `k=0`, `k > N`, unknown market
//! → 404, malformed body → 400, wrong method → 405.
//!
//! The route table and monitor server are process-global, so every test
//! goes through one shared server and a serialising lock.

use rtgcn_core::{Checkpoint, DataSpec};
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_serve::probe::{ProbeConfig, WindowSumProbe};
use rtgcn_serve::servable::checkpoint_probe;
use rtgcn_serve::{install_routes, Registry};
use rtgcn_telemetry::http::Server;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

const T_STEPS: usize = 2;
const N_FEATURES: usize = 2;
const N_STOCKS: usize = 4;
const SCALE: f32 = 0.5;
const SEED: u64 = 11;

struct Fixture {
    addr: SocketAddr,
    version: String,
    end_day: usize,
    ds: StockDataset,
    /// Serialises tests: the server/route table is process-global state.
    lock: Mutex<()>,
    _server: Server,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = N_STOCKS;
        spec.train_days = 12;
        spec.test_days = 3;
        let data = DataSpec { spec, seed: SEED, relation_kind: RelationKind::Both };
        let ds = StockDataset::generate(data.spec.clone(), data.seed);
        let probe =
            WindowSumProbe::new(ProbeConfig { t_steps: T_STEPS, n_features: N_FEATURES }, SCALE);
        let ckpt = checkpoint_probe(&probe, &data).unwrap();
        // Disk round trip so the goldens cover the durable path too.
        let dir = std::env::temp_dir().join(format!("rtgcn-golden-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rtgckpt");
        ckpt.save(&path).unwrap();
        let ckpt = Checkpoint::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        let registry = std::sync::Arc::new(Registry::new());
        let entry = registry.install_checkpoint(&ckpt).unwrap();
        install_routes(std::sync::Arc::clone(&registry));
        let server = Server::start("127.0.0.1:0").unwrap();
        Fixture {
            addr: server.local_addr(),
            version: ckpt.content_id(),
            end_day: entry.end_day,
            ds,
            lock: Mutex::new(()),
            _server: server,
        }
    })
}

fn roundtrip(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    let status = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(path: &str) -> (u16, String) {
    let f = fixture();
    let _g = f.lock.lock().unwrap();
    roundtrip(f.addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(path: &str, body: &str) -> (u16, String) {
    let f = fixture();
    let _g = f.lock.lock().unwrap();
    roundtrip(
        f.addr,
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
    )
}

/// The vendored `serde_json` float rule, reproduced independently so the
/// goldens are genuinely hand-computed strings.
fn fmt_f64(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Hand-reproduction of the probe: `score_i = SCALE · Σ_{t,d} x[t,i,d]`,
/// summed in the same order as `WindowSumProbe::score_window` so the f32
/// accumulation is bit-identical.
fn expected_scores(window: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; N_STOCKS];
    for t in 0..T_STEPS {
        for (i, o) in out.iter_mut().enumerate() {
            for d in 0..N_FEATURES {
                *o += window[(t * N_STOCKS + i) * N_FEATURES + d];
            }
        }
    }
    for o in &mut out {
        *o *= SCALE;
    }
    out
}

fn expected_rank_body(k: usize) -> String {
    let f = fixture();
    let window = f.ds.sample(f.end_day, T_STEPS, N_FEATURES).x;
    let scores = expected_scores(window.data());
    let mut order: Vec<usize> = (0..N_STOCKS).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)));
    order.truncate(k.min(N_STOCKS));
    let ranked: Vec<String> = order
        .iter()
        .map(|&i| format!("{{\"stock\":{i},\"score\":{}}}", fmt_f64(scores[i] as f64)))
        .collect();
    format!(
        "{{\"market\":\"csi\",\"version\":\"{}\",\"k\":{k},\"end_day\":{},\"ranked\":[{}]}}",
        f.version,
        f.end_day,
        ranked.join(",")
    )
}

#[test]
fn rank_default_and_explicit_k_match_goldens() {
    let (status, body) = get("/rank?market=csi&k=2");
    assert_eq!((status, body), (200, expected_rank_body(2)));
    // Default k is 10, which exceeds N=4: the full ranking comes back.
    let (status, body) = get("/rank?market=csi");
    assert_eq!((status, body), (200, expected_rank_body(10)));
}

#[test]
fn rank_k_zero_is_an_empty_ranking() {
    let (status, body) = get("/rank?market=csi&k=0");
    assert_eq!((status, body), (200, expected_rank_body(0)));
    assert!(body_contains_empty_ranked(&expected_rank_body(0)));
}

fn body_contains_empty_ranked(b: &str) -> bool {
    b.ends_with("\"ranked\":[]}")
}

#[test]
fn rank_k_past_universe_clamps_to_all_stocks() {
    let (status, body) = get("/rank?market=csi&k=100");
    assert_eq!((status, body), (200, expected_rank_body(100)));
}

#[test]
fn rank_error_fixtures() {
    assert_eq!(get("/rank?market=tse"), (404, "{\"error\":\"unknown market\"}".to_string()));
    assert_eq!(
        get("/rank"),
        (400, "{\"error\":\"missing required query parameter: market\"}".to_string())
    );
    assert_eq!(
        get("/rank?market=csi&k=banana"),
        (400, "{\"error\":\"k must be a non-negative integer\"}".to_string())
    );
    assert_eq!(post("/rank?market=csi", ""), (405, "{\"error\":\"/rank is GET-only\"}".to_string()));
}

#[test]
fn score_matches_hand_computed_golden() {
    let f = fixture();
    // Window 1..=16 over (T=2, N=4, D=2): stock sums 22, 30, 38, 46 →
    // scaled by 0.5 → 11, 15, 19, 23.
    let window: Vec<String> = (1..=16).map(|v| format!("{v}")).collect();
    let body = format!("{{\"market\":\"csi\",\"window\":[{}]}}", window.join(","));
    let (status, got) = post("/score", &body);
    assert_eq!(
        (status, got),
        (
            200,
            format!(
                "{{\"market\":\"csi\",\"version\":\"{}\",\"scores\":[11.0,15.0,19.0,23.0]}}",
                f.version
            )
        )
    );
}

#[test]
fn score_error_fixtures() {
    assert_eq!(
        post("/score", "not json at all"),
        (400, "{\"error\":\"body is not valid JSON\"}".to_string())
    );
    assert_eq!(
        post("/score", "{\"window\":[1,2]}"),
        (400, "{\"error\":\"body must have a string \\\"market\\\" field\"}".to_string())
    );
    assert_eq!(
        post("/score", "{\"market\":\"csi\"}"),
        (400, "{\"error\":\"body must have a numeric-array \\\"window\\\" field\"}".to_string())
    );
    assert_eq!(
        post("/score", "{\"market\":\"csi\",\"window\":[1,\"x\"]}"),
        (400, "{\"error\":\"window values must be numbers\"}".to_string())
    );
    assert_eq!(
        post("/score", "{\"market\":\"tse\",\"window\":[1,2]}"),
        (404, "{\"error\":\"unknown market\"}".to_string())
    );
    assert_eq!(
        post("/score", "{\"market\":\"csi\",\"window\":[1,2,3]}"),
        (
            400,
            "{\"error\":\"window must have t_steps*n_stocks*n_features = 16 values, got 3\"}"
                .to_string()
        )
    );
    assert_eq!(get("/score"), (405, "{\"error\":\"/score is POST-only\"}".to_string()));
}
