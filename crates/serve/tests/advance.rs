//! `POST /advance` end-to-end: day-advance a served market through the
//! streaming pipeline over live HTTP, and check that the registry's
//! `/rank` snapshot actually rolls forward — new `+d<day>` version, new
//! end day, streamed scores. Uses the [`WindowSumProbe`] family on a
//! shrunken NASDAQ universe (the CSI fixture has zero wiki relation
//! types, so edge-add events would be unrepresentable there).

use rtgcn_core::DataSpec;
use rtgcn_market::{Market, RelationKind, Scale, StockDataset, UniverseSpec};
use rtgcn_serve::probe::{ProbeConfig, WindowSumProbe};
use rtgcn_serve::servable::checkpoint_probe;
use rtgcn_serve::{install_routes, Registry};
use rtgcn_telemetry::http::Server;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const T_STEPS: usize = 2;
const N_FEATURES: usize = 2;
const SEED: u64 = 19;

struct Fixture {
    addr: SocketAddr,
    registry: Arc<Registry>,
    ckpt: rtgcn_core::Checkpoint,
    /// Pristine copy of the served dataset, for picking valid mutations.
    ds: StockDataset,
    /// Serialises tests: routes and registry are shared.
    lock: Mutex<()>,
    _server: Server,
}

fn spec() -> UniverseSpec {
    let mut spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
    spec.stocks = 6;
    spec.train_days = 12;
    spec.test_days = 3;
    spec.sectors = 2;
    spec
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = DataSpec { spec: spec(), seed: SEED, relation_kind: RelationKind::Both };
        let ds = StockDataset::generate(data.spec.clone(), data.seed);
        let probe =
            WindowSumProbe::new(ProbeConfig { t_steps: T_STEPS, n_features: N_FEATURES }, 0.5);
        let ckpt = checkpoint_probe(&probe, &data).unwrap();
        let registry = Arc::new(Registry::new());
        registry.install_checkpoint(&ckpt).unwrap();
        install_routes(Arc::clone(&registry));
        let server = Server::start("127.0.0.1:0").unwrap();
        Fixture {
            addr: server.local_addr(),
            registry,
            ckpt,
            ds,
            lock: Mutex::new(()),
            _server: server,
        }
    })
}

fn roundtrip(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    let status = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(path: &str) -> (u16, String) {
    roundtrip(fixture().addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(path: &str, body: &str) -> (u16, String) {
    roundtrip(
        fixture().addr,
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
    )
}

fn field_u64(body: &str, key: &str) -> u64 {
    let parsed = serde_json::from_str::<serde::Value>(body).unwrap();
    parsed.get(key).and_then(serde::Value::as_u64).unwrap_or_else(|| panic!("no {key} in {body}"))
}

fn field_str(body: &str, key: &str) -> String {
    let parsed = serde_json::from_str::<serde::Value>(body).unwrap();
    parsed
        .get(key)
        .and_then(serde::Value::as_str)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        .to_string()
}

#[test]
fn advance_rolls_rank_snapshot_forward_over_http() {
    let f = fixture();
    let _g = f.lock.lock().unwrap();
    let base = f.ckpt.content_id();
    // Reset any stream state left by other tests in this binary.
    f.registry.install_checkpoint(&f.ckpt).unwrap();
    let day0 = f.ds.days_generated() - 1;

    // One plain day: the stream seeds from the full generated history, so
    // the first advanced day is `day0 + 1`.
    let (status, body) = post("/advance", "{\"market\":\"nasdaq\"}");
    assert_eq!(status, 200, "{body}");
    assert_eq!(field_str(&body, "market"), "nasdaq");
    assert_eq!(field_str(&body, "version"), format!("{base}+d{}", day0 + 1));
    assert_eq!(field_u64(&body, "end_day"), (day0 + 1) as u64);
    assert_eq!(field_u64(&body, "days"), 1);
    assert_eq!(field_u64(&body, "refits"), 0);
    let parsed = serde_json::from_str::<serde::Value>(&body).unwrap();
    assert!(parsed.get("mrr").and_then(serde::Value::as_f64).is_some(), "mrr settles: {body}");
    assert!(parsed.get("cum_irr").and_then(serde::Value::as_f64).is_some());

    // /rank now serves the rolled snapshot: streamed version + end day,
    // and scores matching a hand-run of the probe on the streamed day.
    let (status, rank) = get("/rank?market=nasdaq&k=3");
    assert_eq!(status, 200, "{rank}");
    assert_eq!(field_str(&rank, "version"), format!("{base}+d{}", day0 + 1));
    assert_eq!(field_u64(&rank, "end_day"), (day0 + 1) as u64);

    // Two more days with one add and one drop event (picked from the
    // pristine dataset: mutations to other pairs don't invalidate them).
    let n = f.ds.n_stocks();
    let (da, db, _) = f.ds.wiki.relations.pairs().next().expect("nasdaq has wiki pairs");
    let (mut aa, mut ab) = (usize::MAX, usize::MAX);
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            if !f.ds.wiki.relations.related(i, j) {
                (aa, ab) = (i, j);
                break 'outer;
            }
        }
    }
    assert_ne!(aa, usize::MAX, "no unrelated pair in the fixture universe");
    let body = format!(
        "{{\"market\":\"nasdaq\",\"days\":2,\
         \"add\":[{{\"leader\":{aa},\"follower\":{ab},\"types\":[0],\"strength\":0.4,\"period\":10}}],\
         \"drop\":[[{da},{db}]]}}"
    );
    let (status, resp) = post("/advance", &body);
    assert_eq!(status, 200, "{resp}");
    assert_eq!(field_str(&resp, "version"), format!("{base}+d{}", day0 + 3));
    assert_eq!(field_u64(&resp, "end_day"), (day0 + 3) as u64);
    assert_eq!(field_u64(&resp, "days"), 2);

    // Hot-swapping the checkpoint back drops the stream: the next advance
    // starts over from the freshly generated history.
    f.registry.install_checkpoint(&f.ckpt).unwrap();
    let (_, rank) = get("/rank?market=nasdaq&k=1");
    assert_eq!(field_str(&rank, "version"), base, "reinstall resets the served version");
    let (status, resp) = post("/advance", "{\"market\":\"nasdaq\"}");
    assert_eq!(status, 200, "{resp}");
    assert_eq!(field_str(&resp, "version"), format!("{base}+d{}", day0 + 1));
}

#[test]
fn advance_error_fixtures() {
    let f = fixture();
    let _g = f.lock.lock().unwrap();
    assert_eq!(
        post("/advance", "{\"market\":\"tse\"}"),
        (404, "{\"error\":\"unknown market\"}".to_string())
    );
    assert_eq!(
        post("/advance", "not json"),
        (400, "{\"error\":\"body is not valid JSON\"}".to_string())
    );
    assert_eq!(
        post("/advance", "{\"days\":1}"),
        (400, "{\"error\":\"body must have a string \\\"market\\\" field\"}".to_string())
    );
    assert_eq!(
        post("/advance", "{\"market\":\"nasdaq\",\"days\":0}"),
        (400, "{\"error\":\"days must be an integer in 1..=365\"}".to_string())
    );
    assert_eq!(
        post("/advance", "{\"market\":\"nasdaq\",\"drop\":[[0]]}"),
        (400, "{\"error\":\"each drop must be a two-element [a,b] stock pair\"}".to_string())
    );
    assert_eq!(
        post("/advance", "{\"market\":\"nasdaq\",\"add\":[{\"leader\":0,\"types\":[0]}]}"),
        (400, "{\"error\":\"each add edge needs an integer \\\"follower\\\"\"}".to_string())
    );
    // Screened before reaching `apply_event` (which would panic): a
    // relation type past the universe's wiki type count.
    let (status, body) = post(
        "/advance",
        "{\"market\":\"nasdaq\",\"add\":[{\"leader\":0,\"follower\":1,\"types\":[9999]}]}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("relation type out of range"), "{body}");
    // A zero period would divide-by-zero inside the simulator's activity
    // cycle; screened at parse time.
    let (status, body) = post(
        "/advance",
        "{\"market\":\"nasdaq\",\"add\":[{\"leader\":0,\"follower\":1,\"types\":[0],\"period\":0}]}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("period must be at least 1"), "{body}");
    assert_eq!(
        get("/advance"),
        (405, "{\"error\":\"/advance is POST-only\"}".to_string())
    );
}
