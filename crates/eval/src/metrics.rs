//! Ranking metrics (paper Section V-B.3): MRR and cumulative IRR.

/// Indices of the top-`k` entries of `scores`, highest first. Ties broken by
/// lower index (deterministic).
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Rank (1-based) of item `target` when items are ordered by descending
/// `scores`.
pub fn rank_of(scores: &[f32], target: usize) -> usize {
    let t = scores[target];
    1 + scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s > t || (s == t && i < target))
        .count()
}

/// Reciprocal rank of the day's true-best stock (highest realised return
/// ratio) within the predicted ranking — the paper computes MRR "of the
/// top-1 stock in a ranking list over the testing days".
pub fn reciprocal_rank(pred_scores: &[f32], true_returns: &[f32]) -> f64 {
    assert_eq!(pred_scores.len(), true_returns.len(), "length mismatch");
    assert!(!pred_scores.is_empty(), "empty ranking");
    let best = top_k_indices(true_returns, 1)[0];
    1.0 / rank_of(pred_scores, best) as f64
}

/// One day's portfolio return for the top-`k` strategy: buy the predicted
/// top-k at today's close, sell tomorrow; equal weighting, so the daily
/// return is the mean of the selected stocks' return ratios.
pub fn daily_topk_return(pred_scores: &[f32], true_returns: &[f32], k: usize) -> f64 {
    assert_eq!(pred_scores.len(), true_returns.len(), "length mismatch");
    // lint:allow(nan-discipline) usize top-k clamp on index counts, not a float metric
    let k = k.min(pred_scores.len()).max(1);
    let picks = top_k_indices(pred_scores, k);
    picks.iter().map(|&i| true_returns[i] as f64).sum::<f64>() / k as f64
}

/// Cumulative IRR series: entry `d` is the sum of daily top-k returns over
/// days `0..=d` (what Figure 6 plots; the final entry is the Table IV IRR).
pub fn cumulative_irr(daily_returns: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    daily_returns
        .iter()
        .map(|&r| {
            acc += r;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending() {
        let s = [0.1, 0.9, 0.5, 0.9];
        assert_eq!(top_k_indices(&s, 2), vec![1, 3], "ties broken by index");
        assert_eq!(top_k_indices(&s, 10), vec![1, 3, 2, 0], "k clamps to len");
    }

    #[test]
    fn rank_of_counts_strictly_better() {
        let s = [0.3, 0.8, 0.5];
        assert_eq!(rank_of(&s, 1), 1);
        assert_eq!(rank_of(&s, 2), 2);
        assert_eq!(rank_of(&s, 0), 3);
    }

    #[test]
    fn reciprocal_rank_perfect_and_worst() {
        let truth = [0.01, 0.05, -0.02];
        // Predicted ranking puts the true best (index 1) first.
        assert_eq!(reciprocal_rank(&[0.1, 0.9, 0.0], &truth), 1.0);
        // ...or last.
        assert!((reciprocal_rank(&[0.9, 0.0, 0.5], &truth) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn daily_return_is_mean_of_picks() {
        let pred = [0.9, 0.8, 0.1, 0.0];
        let truth = [0.04, -0.02, 0.10, 0.0];
        let r = daily_topk_return(&pred, &truth, 2);
        assert!((r - 0.01).abs() < 1e-9, "mean of 0.04 and −0.02");
    }

    #[test]
    fn cumulative_sums() {
        let c = cumulative_irr(&[0.01, -0.005, 0.02]);
        assert!((c[2] - 0.025).abs() < 1e-12);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn perfect_ranker_maximises_irr() {
        let truth = [0.05, -0.01, 0.02, 0.03];
        let perfect = daily_topk_return(&truth, &truth, 1);
        let bad = daily_topk_return(&[0.0, 1.0, 0.0, 0.0], &truth, 1);
        assert!(perfect > bad);
        assert!((perfect - 0.05).abs() < 1e-9);
    }
}
