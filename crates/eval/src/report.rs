//! Result-table formatting and JSON artifact output, so every harness
//! prints paper-style rows and leaves a machine-readable trace that
//! EXPERIMENTS.md numbers can be checked against.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn add_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                if cell.len() > widths[c] {
                    widths[c] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                if c == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[c]);
                } else {
                    let _ = write!(out, "{cell:>width$}", width = widths[c]);
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format an optional metric, printing the paper's `-` for `None`.
pub fn fmt_opt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "-".to_string(),
    }
}

/// Format a p-value in the paper's scientific style (e.g. `3.05e-4`).
pub fn fmt_p(p: f64) -> String {
    if p <= 0.0 {
        "0.0".to_string()
    } else if p >= 0.001 {
        format!("{p:.3}")
    } else {
        format!("{p:.2e}")
    }
}

/// Write a serialisable artifact as pretty JSON, creating parent dirs.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["Model", "MRR", "IRR-1"]);
        t.add_row(["RT-GCN (T)", "0.061", "1.25"]);
        t.add_row(["RSR_E", "0.055", "0.89"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Model") && lines[0].contains("IRR-1"));
        assert!(lines[2].starts_with("RT-GCN (T)"));
        // All data lines same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only-one"]);
    }

    #[test]
    fn opt_and_p_formatting() {
        assert_eq!(fmt_opt(Some(0.12345), 3), "0.123");
        assert_eq!(fmt_opt(None, 3), "-");
        assert_eq!(fmt_p(0.0), "0.0");
        assert_eq!(fmt_p(0.05), "0.050");
        assert!(fmt_p(3.05e-4).contains("e-4"));
    }

    #[test]
    fn json_artifact_roundtrip() {
        let dir = std::env::temp_dir().join("rtgcn_report_test");
        let path = dir.join("nested/out.json");
        write_json(&path, &vec![1.0f64, 2.0]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("1.0"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
