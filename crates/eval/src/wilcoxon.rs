//! Wilcoxon signed-rank tests — the paper's significance machinery
//! (Section V-C.1): a *paired* test between 15 runs of two models
//! (Table IV) and a *one-sample* test of 15 runs against a published
//! baseline number (Table V).
//!
//! For small samples without ties the exact null distribution of `W⁺` is
//! computed by dynamic programming; with ties or n > 25 we fall back to the
//! normal approximation with tie correction and continuity correction.

/// Alternative hypothesis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alternative {
    /// First sample tends to exceed the second (or the constant).
    Greater,
    TwoSided,
}

/// Result of a signed-rank test.
#[derive(Clone, Copy, Debug)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Effective sample size after dropping zero differences.
    pub n: usize,
    pub p_value: f64,
    /// Whether the exact distribution was used.
    pub exact: bool,
}

/// Midranks of `|d|` values (average rank for ties).
fn midranks(abs_d: &[f64]) -> Vec<f64> {
    let n = abs_d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| abs_d[a].total_cmp(&abs_d[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && abs_d[order[j + 1]] == abs_d[order[i]] {
            j += 1;
        }
        let avg = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        // lint:allow(panic-free-hot-paths) tie-group bounds i <= j < n are loop invariants
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Exact P(W⁺ ≥ w) for n untied ranks 1..=n, by DP over the distribution of
/// the sum of a random subset of ranks.
fn exact_p_ge(n: usize, w: f64) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of subsets of {1..k} with sum s.
    let mut counts = vec![0.0f64; max_sum + 1];
    counts[0] = 1.0;
    for r in 1..=n {
        for s in (r..=max_sum).rev() {
            counts[s] += counts[s - r];
        }
    }
    let total: f64 = 2f64.powi(n as i32);
    let w_ceil = w.ceil() as usize;
    let start = if w_ceil > max_sum { max_sum } else { w_ceil };
    let tail: f64 = counts.get(start..).map(|c| c.iter().sum::<f64>()).unwrap_or(0.0);
    crate::float::clamp_prob(tail / total)
}

/// Normal-approximation P(W⁺ ≥ w) with tie and continuity corrections.
fn normal_p_ge(n: usize, w: f64, ranks: &[f64]) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Variance with tie correction: n(n+1)(2n+1)/24 − Σ(t³−t)/48 over tie
    // groups; equivalently Σ r_i² / 4 over the midranks.
    let var: f64 = ranks.iter().map(|&r| r * r).sum::<f64>() / 4.0;
    if var <= 0.0 {
        return if w > mean { 0.0 } else { 1.0 };
    }
    let z = (w - mean - 0.5) / var.sqrt();
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz–Stegun 7.1.26, |ε| < 1.5e−7).
fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x_abs * x_abs).exp();
    if sign_neg {
        2.0 - e
    } else {
        e
    }
}

/// Signed-rank test on a vector of differences.
pub fn signed_rank_from_diffs(diffs: &[f64], alt: Alternative) -> WilcoxonResult {
    // lint:allow(float-literal-equality) the signed-rank test discards exact-zero diffs by definition
    let d: Vec<f64> = diffs.iter().copied().filter(|&x| x != 0.0).collect();
    let n = d.len();
    if n == 0 {
        return WilcoxonResult { w_plus: 0.0, n: 0, p_value: 1.0, exact: true };
    }
    let abs_d: Vec<f64> = d.iter().map(|x| x.abs()).collect();
    let ranks = midranks(&abs_d);
    let w_plus: f64 =
        d.iter().zip(&ranks).filter(|(&x, _)| x > 0.0).map(|(_, &r)| r).sum();
    let has_ties = {
        let mut sorted = abs_d.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted.windows(2).any(|w| w[0] == w[1])
    };
    let use_exact = !has_ties && n <= 25;
    let p_greater =
        if use_exact { exact_p_ge(n, w_plus) } else { normal_p_ge(n, w_plus, &ranks) };
    let p_value = match alt {
        Alternative::Greater => p_greater,
        Alternative::TwoSided => {
            let max_sum = n as f64 * (n as f64 + 1.0) / 2.0;
            let other = max_sum - w_plus; // W⁻
            let p_less = if use_exact {
                exact_p_ge(n, other)
            } else {
                normal_p_ge(n, other, &ranks)
            };
            crate::float::two_sided_p(p_greater, p_less)
        }
    };
    WilcoxonResult { w_plus, n, p_value, exact: use_exact }
}

/// Paired test: does `a` tend to exceed `b`? (Table IV: 15 paired runs of
/// RT-GCN (T) vs the strongest baseline.)
pub fn paired(a: &[f64], b: &[f64], alt: Alternative) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired test requires equal lengths");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    signed_rank_from_diffs(&diffs, alt)
}

/// One-sample test: do the samples tend to exceed `m0`? (Table V: 15 runs vs
/// a published baseline value.)
pub fn one_sample(xs: &[f64], m0: f64, alt: Alternative) -> WilcoxonResult {
    let diffs: Vec<f64> = xs.iter().map(|&x| x - m0).collect();
    signed_rank_from_diffs(&diffs, alt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_greater_sample_is_significant() {
        // 15 positive differences, all distinct (exact path).
        let a: Vec<f64> = (0..15).map(|i| 1.0 + 0.013 * i as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 0.5 + 0.007 * i as f64).collect();
        let r = paired(&a, &b, Alternative::Greater);
        assert!(r.exact, "15 untied diffs should use the exact distribution");
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0];
        let r = paired(&a, &a, Alternative::Greater);
        assert_eq!(r.n, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn symmetric_noise_is_insignificant() {
        let a = [1.0, -1.1, 0.9, -0.95, 1.05, -1.0, 0.97, -0.99];
        let r = signed_rank_from_diffs(&a, Alternative::Greater);
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn exact_distribution_small_case() {
        // n = 3: subsets of {1,2,3}; P(W⁺ ≥ 6) = 1/8.
        assert!((exact_p_ge(3, 6.0) - 0.125).abs() < 1e-12);
        // P(W⁺ ≥ 0) = 1.
        assert!((exact_p_ge(3, 0.0) - 1.0).abs() < 1e-12);
        // P(W⁺ ≥ 5) = 2/8 (sums 5 and 6).
        assert!((exact_p_ge(3, 5.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn one_sample_against_constant() {
        let xs = [0.48, 0.52, 0.55, 0.49, 0.53, 0.56, 0.51, 0.54, 0.57, 0.50, 0.58, 0.52, 0.55, 0.53, 0.56];
        let r = one_sample(&xs, 0.44, Alternative::Greater);
        assert!(r.p_value < 0.01, "all above the constant: p = {}", r.p_value);
        let r2 = one_sample(&xs, 0.60, Alternative::Greater);
        assert!(r2.p_value > 0.95, "all below the constant: p = {}", r2.p_value);
    }

    #[test]
    fn two_sided_at_least_one_sided() {
        let a = [1.0, 1.2, 0.9, 1.1, 1.3];
        let b = [0.5, 0.6, 0.4, 0.55, 0.7];
        let g = paired(&a, &b, Alternative::Greater);
        let t = paired(&a, &b, Alternative::TwoSided);
        assert!(t.p_value >= g.p_value);
    }

    #[test]
    fn normal_approx_used_with_ties() {
        let diffs = [1.0, 1.0, 1.0, -1.0, 2.0, 2.0, 3.0, -3.0, 4.0, 5.0];
        let r = signed_rank_from_diffs(&diffs, Alternative::Greater);
        assert!(!r.exact, "ties must trigger the normal approximation");
        assert!(r.p_value > 0.0 && r.p_value < 1.0);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 1e-10);
    }
}
