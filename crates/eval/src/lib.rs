//! # rtgcn-eval
//!
//! Evaluation substrate (paper Section V-B):
//!
//! - [`metrics`] — MRR and cumulative IRR-k;
//! - [`backtest`] — the daily top-N buy-sell evaluation protocol, with the
//!   classification-model fallback (random top-N among predicted-up) and
//!   oracle/random reference rankers;
//! - [`wilcoxon`] — paired and one-sample Wilcoxon signed-rank tests (exact
//!   small-sample distribution; normal approximation with tie correction);
//! - [`report`] — aligned text tables and JSON result artifacts.

pub mod backtest;
pub mod float;
pub mod metrics;
pub mod report;
pub mod wilcoxon;

pub use backtest::{backtest, BacktestOutcome, Oracle, RandomRanker, CLASS_UP};
pub use float::{clamp_prob, finite_bounds, floor_span, two_sided_p};
pub use metrics::{cumulative_irr, daily_topk_return, rank_of, reciprocal_rank, top_k_indices};
pub use report::{fmt_opt, fmt_p, write_json, Table};
pub use wilcoxon::{one_sample, paired, signed_rank_from_diffs, Alternative, WilcoxonResult};
