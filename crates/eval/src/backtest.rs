//! The daily buy-sell backtester (paper Section V-B.1): every test day, buy
//! the predicted top-N stocks at the close and sell them at the next close;
//! report MRR and cumulative IRR. Classification baselines (which cannot
//! rank) get the paper's fallback: a uniformly random top-N draw from their
//! predicted-up set.

use crate::metrics::{cumulative_irr, daily_topk_return, reciprocal_rank, top_k_indices};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtgcn_core::StockRanker;
use rtgcn_market::StockDataset;
use std::collections::BTreeMap;
use std::time::Instant;

/// Everything a results table needs about one model's test run.
#[derive(Clone, Debug)]
pub struct BacktestOutcome {
    pub name: String,
    /// `None` for classification models (the paper prints `-`).
    pub mrr: Option<f64>,
    /// Final cumulative IRR per top-k.
    pub irr: BTreeMap<usize, f64>,
    /// Full cumulative series per top-k (Figure 6).
    pub daily_cumulative: BTreeMap<usize, Vec<f64>>,
    /// Wall-clock seconds spent scoring the test period (Figure 5's shaded
    /// bars).
    pub test_secs: f64,
}

/// Classification label conventions for non-ranking models: `scores_for_day`
/// returns 2.0 (up), 1.0 (neutral) or 0.0 (down) per stock.
pub const CLASS_UP: f32 = 2.0;

/// Run the daily buy-sell evaluation over the dataset's test period.
pub fn backtest(
    model: &mut dyn StockRanker,
    ds: &StockDataset,
    ks: &[usize],
    seed: u64,
) -> BacktestOutcome {
    let _bt_span = rtgcn_telemetry::span("backtest");
    let days = ds.test_end_days();
    let n = ds.n_stocks();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbac6_7e57);
    let mut rr_sum = 0.0f64;
    let mut daily: BTreeMap<usize, Vec<f64>> = ks.iter().map(|&k| (k, Vec::new())).collect();
    let t0 = Instant::now();
    for &day in &days {
        // Per-day scoring latency feeds the `backtest.day_score_ns` histogram
        // (p50/p95/p99 in the summary sink and JSONL stream).
        let s0 = Instant::now();
        let scores = model.scores_for_day(ds, day);
        rtgcn_telemetry::record_ns("backtest.day_score_ns", s0.elapsed().as_nanos() as u64);
        assert_eq!(scores.len(), n, "model must score every stock");
        let truth: Vec<f32> = (0..n).map(|i| ds.realized_return(day, i)).collect();
        if model.can_rank() {
            rr_sum += reciprocal_rank(&scores, &truth);
            for &k in ks {
                daily.entry(k).or_default().push(daily_topk_return(&scores, &truth, k));
            }
        } else {
            // Paper V-C.1: classification methods output up/neutral/down and
            // cannot rank; select top-N uniformly at random, preferring
            // predicted-up stocks, then neutral, then down.
            let mut pool_up: Vec<usize> =
                (0..n).filter(|&i| scores[i] >= CLASS_UP - 0.5).collect();
            let mut pool_rest: Vec<usize> =
                (0..n).filter(|&i| scores[i] < CLASS_UP - 0.5).collect();
            pool_up.shuffle(&mut rng);
            pool_rest.shuffle(&mut rng);
            pool_up.extend(pool_rest);
            for &k in ks {
                let ret = class_day_return(&pool_up, &truth, k, &model.name());
                daily.entry(k).or_default().push(ret);
            }
        }
    }
    let test_secs = t0.elapsed().as_secs_f64();
    // An empty test split must not masquerade as a real (zero) score: follow
    // the NaN + warn-event convention degenerate fits use, so downstream
    // means/maxes can filter it rather than average in a fake 0.0.
    if days.is_empty() {
        rtgcn_telemetry::warn(
            "backtest.degenerate",
            &format!("{}: empty test split — MRR/IRR are NaN, not scores", model.name()),
        );
    }
    let mrr = if model.can_rank() {
        Some(if days.is_empty() { f64::NAN } else { rr_sum / days.len() as f64 })
    } else {
        None
    };
    let daily_cumulative: BTreeMap<usize, Vec<f64>> =
        daily.iter().map(|(&k, r)| (k, cumulative_irr(r))).collect();
    // Stream the cumulative-IRR curves (Figure 6) as gauge series so the
    // BENCH snapshot can carry per-day investment trajectories.
    for (&k, series) in &daily_cumulative {
        let name = format!("backtest.irr.k{k}");
        for (i, &v) in series.iter().enumerate() {
            rtgcn_telemetry::gauge(&name, i as u64, v);
        }
    }
    let irr: BTreeMap<usize, f64> = daily_cumulative
        .iter()
        .map(|(&k, c)| (k, c.last().copied().unwrap_or(f64::NAN)))
        .collect();
    BacktestOutcome { name: model.name(), mrr, irr, daily_cumulative, test_secs }
}

/// One classification-mode day return: mean realised return of the first
/// `k` pool entries (predicted-up stocks first). An undersized pool — only
/// possible with an empty universe — reports NaN plus a warn event instead
/// of panicking, per the degenerate-metric convention.
fn class_day_return(pool: &[usize], truth: &[f32], k: usize, model_name: &str) -> f64 {
    // lint:allow(nan-discipline) usize top-k clamp on index counts, not a float metric
    let kk = k.min(pool.len()).max(1);
    match pool.get(..kk) {
        Some(picks) => picks.iter().map(|&i| truth[i] as f64).sum::<f64>() / kk as f64,
        None => {
            rtgcn_telemetry::warn(
                "backtest.degenerate",
                &format!(
                    "{model_name}: top-{k} requested from a {}-stock pool — day return is NaN",
                    pool.len()
                ),
            );
            f64::NAN
        }
    }
}

/// A perfect-foresight oracle: scores equal tomorrow's true return ratios.
/// Upper-bounds every metric; used in tests and sanity checks.
pub struct Oracle;

impl StockRanker for Oracle {
    fn name(&self) -> String {
        "Oracle".into()
    }

    fn fit(&mut self, _ds: &StockDataset) -> rtgcn_core::FitReport {
        rtgcn_core::FitReport::default()
    }

    fn scores_for_day(&mut self, ds: &StockDataset, end_day: usize) -> Vec<f32> {
        (0..ds.n_stocks()).map(|i| ds.realized_return(end_day, i)).collect()
    }
}

/// A uniformly random ranker — the no-information floor.
pub struct RandomRanker {
    rng: StdRng,
}

impl RandomRanker {
    pub fn new(seed: u64) -> Self {
        RandomRanker { rng: StdRng::seed_from_u64(seed) }
    }
}

impl StockRanker for RandomRanker {
    fn name(&self) -> String {
        "Random".into()
    }

    fn fit(&mut self, _ds: &StockDataset) -> rtgcn_core::FitReport {
        rtgcn_core::FitReport::default()
    }

    fn scores_for_day(&mut self, ds: &StockDataset, _end_day: usize) -> Vec<f32> {
        use rand::Rng;
        (0..ds.n_stocks()).map(|_| self.rng.gen::<f32>()).collect()
    }
}

/// Convenience: picks of the oracle at a given day (for case studies).
pub fn oracle_top_k(ds: &StockDataset, day: usize, k: usize) -> Vec<usize> {
    let truth: Vec<f32> = (0..ds.n_stocks()).map(|i| ds.realized_return(day, i)).collect();
    top_k_indices(&truth, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_market::{Market, Scale, UniverseSpec};

    fn tiny() -> StockDataset {
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 10;
        spec.train_days = 40;
        spec.test_days = 30;
        StockDataset::generate(spec, 2)
    }

    #[test]
    fn class_day_return_means_first_k() {
        let truth = [0.1f32, 0.2, 0.4];
        let r = class_day_return(&[2, 0, 1], &truth, 2, "probe");
        assert!((r - 0.25).abs() < 1e-6, "mean of picks 2,0 is 0.25, got {r}");
        // k larger than the pool clamps to the pool size.
        let all = class_day_return(&[0, 1, 2], &truth, 99, "probe");
        assert!((all - (0.7 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn class_day_return_empty_pool_is_nan_with_warn_not_panic() {
        let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Summary);
        let r = class_day_return(&[], &[], 5, "probe");
        assert!(r.is_nan(), "empty pool must report NaN, not a fabricated 0.0");
        let lines = rtgcn_telemetry::drain_memory_sink();
        assert!(
            lines.iter().any(|l| l.contains("backtest.degenerate")),
            "degenerate day must emit a warn event, got {lines:?}"
        );
    }

    #[test]
    fn oracle_beats_random() {
        let ds = tiny();
        let o = backtest(&mut Oracle, &ds, &[1, 5], 1);
        let r = backtest(&mut RandomRanker::new(3), &ds, &[1, 5], 1);
        assert!(o.irr[&1] > r.irr[&1], "oracle {:?} vs random {:?}", o.irr, r.irr);
        assert!(o.mrr.unwrap() > 0.99, "oracle MRR is 1 by construction");
        assert!(r.mrr.unwrap() < 0.9);
    }

    #[test]
    fn series_lengths_match_test_days() {
        let ds = tiny();
        let o = backtest(&mut Oracle, &ds, &[1, 5, 10], 1);
        for (&k, series) in &o.daily_cumulative {
            assert_eq!(series.len(), ds.spec.test_days, "k={k}");
        }
        assert!(o.test_secs >= 0.0);
    }

    struct AlwaysUp;
    impl StockRanker for AlwaysUp {
        fn name(&self) -> String {
            "AlwaysUp".into()
        }
        fn fit(&mut self, _ds: &StockDataset) -> rtgcn_core::FitReport {
            rtgcn_core::FitReport::default()
        }
        fn scores_for_day(&mut self, ds: &StockDataset, _d: usize) -> Vec<f32> {
            vec![CLASS_UP; ds.n_stocks()]
        }
        fn can_rank(&self) -> bool {
            false
        }
    }

    #[test]
    fn classification_path_has_no_mrr_and_random_selection() {
        let ds = tiny();
        let out = backtest(&mut AlwaysUp, &ds, &[1, 5], 7);
        assert!(out.mrr.is_none(), "classification models print '-' for MRR");
        assert_eq!(out.daily_cumulative[&5].len(), ds.spec.test_days);
        // Different seeds give different random selections.
        let out2 = backtest(&mut AlwaysUp, &ds, &[1], 8);
        assert_ne!(out.irr[&1], out2.irr[&1]);
    }

    #[test]
    fn empty_test_split_yields_nan_not_zero() {
        let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Off);
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 10;
        spec.train_days = 40;
        spec.test_days = 0;
        let ds = StockDataset::generate(spec, 2);
        let out = backtest(&mut Oracle, &ds, &[1, 5], 1);
        // A 0.0 MRR here would masquerade as a real score; NaN is filterable.
        assert!(out.mrr.unwrap().is_nan(), "empty split MRR must be NaN, got {:?}", out.mrr);
        for (&k, &v) in &out.irr {
            assert!(v.is_nan(), "empty split IRR-{k} must be NaN, got {v}");
        }
        let warned = rtgcn_telemetry::drain_memory_sink()
            .iter()
            .any(|l| l.contains("backtest.degenerate"));
        assert!(warned, "expected a backtest.degenerate warn event");
    }

    #[test]
    fn irr_is_last_cumulative_entry() {
        let ds = tiny();
        let o = backtest(&mut Oracle, &ds, &[5], 1);
        assert_eq!(o.irr[&5], *o.daily_cumulative[&5].last().unwrap());
    }
}
