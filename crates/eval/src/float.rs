//! Approved NaN-aware float helpers — the one module exempt from the
//! `nan-discipline` lint rule (see DESIGN.md § "Static analysis &
//! invariants").
//!
//! Everything metric-shaped in `eval`/`bench` can be NaN by convention
//! (degenerate fits and empty splits report NaN + a warn event, never a
//! fabricated 0.0). `f64::min`/`f64::max` silently *drop* NaN, which is how
//! a diverged run once won `strongest_baseline`; these helpers make the NaN
//! policy explicit at each call site instead: bounds ignore NaN, clamps
//! propagate it.

/// Smallest and largest *finite* values, or `None` when nothing finite is
/// left. NaN and ±inf entries are skipped — the caller keeps plotting or
/// ranking the finite part instead of poisoning the whole range.
pub fn finite_bounds(vals: impl IntoIterator<Item = f64>) -> Option<(f64, f64)> {
    let mut out: Option<(f64, f64)> = None;
    for v in vals {
        if !v.is_finite() {
            continue;
        }
        out = Some(match out {
            None => (v, v),
            Some((lo, hi)) => (if v < lo { v } else { lo }, if v > hi { v } else { hi }),
        });
    }
    out
}

/// Clamp a probability into `[0, 1]`. NaN propagates (a NaN p-value must
/// stay visibly NaN rather than become a confident 0 or 1) — exactly
/// `f64::clamp`'s contract.
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// Two-sided p-value from the two one-sided tails: `min(1, 2·min(pg, pl))`,
/// NaN if either tail is NaN.
pub fn two_sided_p(p_greater: f64, p_less: f64) -> f64 {
    if p_greater.is_nan() || p_less.is_nan() {
        return f64::NAN;
    }
    clamp_prob(2.0 * if p_greater < p_less { p_greater } else { p_less })
}

/// Floor a span/denominator at `floor` (> 0). NaN and anything ≤ `floor`
/// become `floor`, so dividing by the result is always well-defined.
pub fn floor_span(x: f64, floor: f64) -> f64 {
    if x > floor {
        x
    } else {
        floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_bounds_skips_nan_and_inf() {
        let vals = [f64::NAN, 3.0, f64::INFINITY, -1.0, f64::NEG_INFINITY, 2.0];
        assert_eq!(finite_bounds(vals), Some((-1.0, 3.0)));
        assert_eq!(finite_bounds([f64::NAN]), None);
        assert_eq!(finite_bounds([]), None);
    }

    #[test]
    fn clamp_prob_propagates_nan() {
        assert_eq!(clamp_prob(0.5), 0.5);
        assert_eq!(clamp_prob(-0.1), 0.0);
        assert_eq!(clamp_prob(1.7), 1.0);
        assert!(clamp_prob(f64::NAN).is_nan());
    }

    #[test]
    fn two_sided_from_tails() {
        assert_eq!(two_sided_p(0.3, 0.8), 0.6);
        assert_eq!(two_sided_p(0.9, 0.8), 1.0);
        assert!(two_sided_p(f64::NAN, 0.5).is_nan());
        assert!(two_sided_p(0.5, f64::NAN).is_nan());
    }

    #[test]
    fn floor_span_guards_division() {
        assert_eq!(floor_span(2.0, 1e-9), 2.0);
        assert_eq!(floor_span(0.0, 1e-9), 1e-9);
        assert_eq!(floor_span(-3.0, 1e-9), 1e-9);
        assert_eq!(floor_span(f64::NAN, 1e-9), 1e-9);
    }
}
