//! Golden-fixture backtest: a 3-stock / 4-day market small enough to run by
//! hand. Every expected value below is derived in the comments from the
//! documented tie rules (ties broken by lower index, both in `top_k_indices`
//! and in `rank_of`), so a regression in either metric or tie-handling shows
//! up as an exact-number mismatch rather than a statistical drift.

use rtgcn_eval::{cumulative_irr, daily_topk_return, rank_of, reciprocal_rank, top_k_indices};

/// Predicted scores per day (3 stocks: A=0, B=1, C=2).
const PRED: [[f32; 3]; 4] = [
    [0.9, 0.5, 0.1],
    [0.7, 0.7, 0.2], // tie between A and B at the k=1 boundary
    [0.1, 0.2, 0.9],
    [0.0, 0.6, 0.3],
];

/// Realised next-day return ratios per day.
const TRUTH: [[f32; 3]; 4] = [
    [0.02, 0.04, -0.01],
    [0.01, 0.03, 0.02],
    [0.05, 0.05, -0.03], // tie for the true best
    [-0.02, 0.06, 0.01],
];

#[test]
fn mrr_hand_computed() {
    // Day 1: true best is B (0.04); pred ranks A(0.9) > B(0.5) → rank 2, RR ½.
    // Day 2: true best is B (0.03); pred has A=B=0.7 and the tie rule puts the
    //        lower index A first → B's rank is 2, RR ½.
    // Day 3: true best is a tie A=B=0.05, resolved to A (lower index); pred
    //        ranks C(0.9) > B(0.2) > A(0.1) → rank 3, RR ⅓.
    // Day 4: true best is B (0.06); pred puts B first → RR 1.
    let rrs: Vec<f64> =
        (0..4).map(|d| reciprocal_rank(&PRED[d], &TRUTH[d])).collect();
    assert_eq!(rrs, vec![0.5, 0.5, 1.0 / 3.0, 1.0]);
    let mrr = rrs.iter().sum::<f64>() / 4.0;
    assert!((mrr - 7.0 / 12.0).abs() < 1e-12, "MRR = (½+½+⅓+1)/4 = 7/12, got {mrr}");
}

#[test]
fn tie_at_topk_boundary_resolves_to_lower_index() {
    // Day 2, k=1: A and B tie at 0.7; the documented rule picks A (index 0).
    assert_eq!(top_k_indices(&PRED[1], 1), vec![0]);
    assert!((daily_topk_return(&PRED[1], &TRUTH[1], 1) - 0.01).abs() < 1e-7);
    // k=2 crosses the same tie: both tied stocks are in, C stays out.
    assert_eq!(top_k_indices(&PRED[1], 2), vec![0, 1]);
    assert!((daily_topk_return(&PRED[1], &TRUTH[1], 2) - 0.02).abs() < 1e-7);
    // rank_of uses the same convention: the tied lower index outranks.
    assert_eq!(rank_of(&PRED[1], 0), 1);
    assert_eq!(rank_of(&PRED[1], 1), 2);
}

#[test]
fn irr1_hand_computed() {
    // Top-1 picks per day: A(0.02), A-by-tie(0.01), C(−0.03), B(0.06).
    let daily: Vec<f64> =
        (0..4).map(|d| daily_topk_return(&PRED[d], &TRUTH[d], 1)).collect();
    let expect = [0.02, 0.01, -0.03, 0.06];
    for (got, want) in daily.iter().zip(expect) {
        assert!((got - want).abs() < 1e-7, "daily {got} vs {want}");
    }
    let series = cumulative_irr(&daily);
    assert_eq!(series.len(), 4);
    // Cumulative: 0.02, 0.03, 0.00, 0.06.
    assert!((series[1] - 0.03).abs() < 1e-7);
    assert!((series[2] - 0.0).abs() < 1e-7);
    assert!((series[3] - 0.06).abs() < 1e-7, "IRR-1 = 0.06, got {}", series[3]);
}

#[test]
fn irr5_and_irr10_clamp_to_whole_market() {
    // k=5 and k=10 both clamp to the 3 available stocks, so each day's
    // return is the market mean and the two series are identical:
    // (0.05 + 0.06 + 0.07 + 0.05) / 3 = 0.23/3.
    for k in [5usize, 10] {
        let daily: Vec<f64> =
            (0..4).map(|d| daily_topk_return(&PRED[d], &TRUTH[d], k)).collect();
        let irr = *cumulative_irr(&daily).last().unwrap();
        assert!((irr - 0.23 / 3.0).abs() < 1e-7, "IRR-{k} = 0.23/3, got {irr}");
    }
}
