//! Property-based tests that `top_k_indices` and `rank_of` agree on tie
//! handling: both order by descending score with ascending index as the
//! tiebreak, so the top-1 always has rank 1 and the ranks of the top-k
//! prefix are exactly 1..=k in order.

use proptest::prelude::*;
use rtgcn_eval::{rank_of, top_k_indices};

/// Score vectors engineered to contain ties: a handful of quantised levels.
fn tied_scores() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((0u32..6).prop_map(|q| q as f32 * 0.25), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The first element of any top-k listing is the rank-1 item.
    #[test]
    fn top_one_has_rank_one(scores in tied_scores()) {
        let top = top_k_indices(&scores, 1);
        prop_assert_eq!(top.len(), 1);
        prop_assert_eq!(rank_of(&scores, top[0]), 1);
    }

    /// The i-th entry of the top-k prefix has rank exactly i+1 — i.e. the
    /// two functions induce the same total order, ties included.
    #[test]
    fn topk_prefix_ranks_are_consecutive(
        (scores, k) in tied_scores().prop_flat_map(|s| {
            let n = s.len();
            (Just(s), 1usize..n + 1)
        })
    ) {
        let top = top_k_indices(&scores, k);
        prop_assert_eq!(top.len(), k.min(scores.len()));
        let ranks: Vec<usize> = top.iter().map(|&i| rank_of(&scores, i)).collect();
        let expected: Vec<usize> = (1..=ranks.len()).collect();
        prop_assert_eq!(&ranks, &expected, "scores {:?} top {:?}", scores, top);
    }

    /// Ranks over the whole vector are a permutation of 1..=n even with
    /// heavy ties (no two items share a rank).
    #[test]
    fn ranks_are_a_permutation(scores in tied_scores()) {
        let mut ranks: Vec<usize> = (0..scores.len()).map(|i| rank_of(&scores, i)).collect();
        ranks.sort_unstable();
        let expected: Vec<usize> = (1..=scores.len()).collect();
        prop_assert_eq!(ranks, expected);
    }
}
