//! The assembled dataset: simulated prices + relations + chronological
//! train/test split, with window sampling for training and backtesting
//! (paper Section V-A, Table II).

use crate::features::{return_ratios, window_features, WARMUP_DAYS};
use crate::relations::{gen_industry_relations, gen_wiki_relations, IndustryRelations, WikiRelations};
use crate::synth::{simulate, MarketSim, SynthConfig};
use crate::universe::UniverseSpec;
use rtgcn_graph::RelationTensor;
use rtgcn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which relation family feeds the graph (the Table VI ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelationKind {
    /// Wiki company relations only.
    Wiki,
    /// Sector-industry relations only.
    Industry,
    /// Union of both (the main-table configuration; types concatenated).
    Both,
}

/// One supervised sample: features for the window ending at `end_day` and
/// the next-day return-ratio targets.
#[derive(Clone, Debug)]
pub struct Sample {
    /// `X_t ∈ R^{T×N×D}`.
    pub x: Tensor,
    /// `r^{t+1} ∈ R^N` (Eq. 10).
    pub y: Tensor,
    /// Absolute day index the window ends at (the "trade at close of this
    /// day, sell next close" day).
    pub end_day: usize,
}

/// Always-on lead-lag edges from each industry's leader (first member by
/// convention) to its peers. Strengths are modest (≈ 0.1–0.2) so the sector
/// lead-lag signal is weaker per-edge but far denser than the wiki edges —
/// reproducing Table VI's finding that the denser industry relations carry
/// more total signal.
fn industry_leader_edges(industry: &IndustryRelations, seed: u64) -> Vec<crate::relations::WikiEdge> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1ead_e46e);
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (stock, &g) in industry.industry_of.iter().enumerate() {
        groups.entry(g).or_default().push(stock);
    }
    let mut edges = Vec::new();
    for members in groups.into_values() {
        if members.len() < 3 {
            continue;
        }
        let leader = members[0];
        for &follower in &members[1..] {
            edges.push(crate::relations::WikiEdge {
                leader,
                follower,
                types: Vec::new(),
                strength: rng.gen_range(0.10..0.20),
                period: 1,
                phase: 0,
                duty: 1.0,
            });
        }
    }
    edges
}

/// A complete market dataset.
#[derive(Clone, Debug)]
pub struct StockDataset {
    pub spec: UniverseSpec,
    pub sim: MarketSim,
    pub industry: IndustryRelations,
    pub wiki: WikiRelations,
}

impl StockDataset {
    /// Generate a dataset for a universe spec. The COVID-like shock lands at
    /// the first test day, as in the paper's timeline.
    ///
    /// Price spillovers come from two sources: the time-varying wiki edges
    /// (supplier-customer style, "product launch" activity windows — Figure
    /// 1(b)) and always-on *intra-industry leader* edges (the largest firm
    /// of each industry leads its peers by a day — the synchronous-sector
    /// movement of Figure 1(a) with a causal lag that makes industry
    /// relations genuinely predictive, as Table VI observes).
    pub fn generate(spec: UniverseSpec, seed: u64) -> Self {
        let industry = gen_industry_relations(&spec, seed);
        let wiki = gen_wiki_relations(&spec, seed);
        let mut cfg =
            SynthConfig::new(spec.stocks, spec.total_days(), seed, industry.industry_of.clone());
        cfg.spillover_edges = wiki.edges.clone();
        cfg.spillover_edges.extend(industry_leader_edges(&industry, seed));
        cfg.shock_day = Some(spec.test_start());
        let sim = simulate(cfg);
        StockDataset { spec, sim, industry, wiki }
    }

    pub fn n_stocks(&self) -> usize {
        self.spec.stocks
    }

    /// Relation tensor for the requested family. `Both` concatenates the
    /// type spaces (wiki types first), preserving multi-hot semantics.
    pub fn relations(&self, kind: RelationKind) -> RelationTensor {
        match kind {
            RelationKind::Wiki => self.wiki.relations.clone(),
            RelationKind::Industry => self.industry.relations.clone(),
            RelationKind::Both => {
                if self.wiki.relations.num_types() == 0 {
                    self.industry.relations.clone()
                } else {
                    self.wiki.relations.union(&self.industry.relations)
                }
            }
        }
    }

    /// End-day indices usable for training with window length `t_steps`.
    /// Both the window and its next-day target stay inside the train period.
    pub fn train_end_days(&self, t_steps: usize) -> Vec<usize> {
        let first = (WARMUP_DAYS - 1 + t_steps).max(t_steps);
        let last = WARMUP_DAYS + self.spec.train_days - 2;
        (first..=last).collect()
    }

    /// End-day indices of the test trading days (one per paper "testing
    /// day"; Table II).
    pub fn test_end_days(&self) -> Vec<usize> {
        let start = self.spec.test_start();
        (start..start + self.spec.test_days).collect()
    }

    /// Build the sample for a window ending at `end_day`.
    pub fn sample(&self, end_day: usize, t_steps: usize, n_features: usize) -> Sample {
        Sample {
            x: window_features(&self.sim.prices, end_day, t_steps, n_features),
            y: return_ratios(&self.sim.prices, end_day),
            end_day,
        }
    }

    /// Actual (realised) return ratio of stock `i` bought at the close of
    /// `end_day` and sold next close — what the backtester pays out.
    pub fn realized_return(&self, end_day: usize, stock: usize) -> f32 {
        self.sim.return_ratio(end_day, stock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Market, Scale};

    fn small() -> StockDataset {
        StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 1)
    }

    #[test]
    fn split_counts_match_spec() {
        let ds = small();
        let t = 16;
        let train = ds.train_end_days(t);
        let test = ds.test_end_days();
        assert_eq!(test.len(), ds.spec.test_days);
        // Train windows fit after warm-up and before the test period.
        assert!(train.first().copied().unwrap() >= t);
        assert!(train.last().copied().unwrap() < ds.spec.test_start());
        // No overlap.
        assert!(train.last().unwrap() < test.first().unwrap());
    }

    #[test]
    fn last_test_day_target_observable() {
        let ds = small();
        let last = *ds.test_end_days().last().unwrap();
        // Must not panic: the +1 day exists.
        let s = ds.sample(last, 8, 4);
        assert_eq!(s.y.dims(), &[ds.n_stocks()]);
    }

    #[test]
    fn sample_shapes() {
        let ds = small();
        let s = ds.sample(50, 12, 3);
        assert_eq!(s.x.dims(), &[12, ds.n_stocks(), 3]);
        assert_eq!(s.end_day, 50);
    }

    #[test]
    fn relations_union_concatenates_types() {
        let ds = StockDataset::generate(UniverseSpec::of(Market::Nasdaq, Scale::Small), 2);
        let w = ds.relations(RelationKind::Wiki);
        let i = ds.relations(RelationKind::Industry);
        let b = ds.relations(RelationKind::Both);
        assert_eq!(b.num_types(), w.num_types() + i.num_types());
        assert!(b.num_related_pairs() >= i.num_related_pairs());
    }

    #[test]
    fn csi_both_falls_back_to_industry() {
        let ds = small();
        let b = ds.relations(RelationKind::Both);
        let i = ds.relations(RelationKind::Industry);
        assert_eq!(b.num_types(), i.num_types());
        assert_eq!(b.num_related_pairs(), i.num_related_pairs());
    }

    #[test]
    fn realized_return_consistent_with_sample_target() {
        let ds = small();
        let s = ds.sample(60, 8, 2);
        for i in 0..ds.n_stocks() {
            assert!((s.y.data()[i] - ds.realized_return(60, i)).abs() < 1e-7);
        }
    }

    #[test]
    fn deterministic_generation() {
        let spec = UniverseSpec::of(Market::Csi, Scale::Small);
        let a = StockDataset::generate(spec.clone(), 5);
        let b = StockDataset::generate(spec, 5);
        assert_eq!(a.sim.prices, b.sim.prices);
    }
}
