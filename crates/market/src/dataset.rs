//! The assembled dataset: simulated prices + relations + chronological
//! train/test split, with window sampling for training and backtesting
//! (paper Section V-A, Table II).

use crate::features::{return_ratios, window_features, WARMUP_DAYS};
use crate::relations::{gen_industry_relations, gen_wiki_relations, IndustryRelations, WikiRelations};
use crate::synth::{simulate, MarketSim, SynthConfig};
use crate::universe::UniverseSpec;
use rtgcn_graph::RelationTensor;
use rtgcn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which relation family feeds the graph (the Table VI ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelationKind {
    /// Wiki company relations only.
    Wiki,
    /// Sector-industry relations only.
    Industry,
    /// Union of both (the main-table configuration; types concatenated).
    Both,
}

/// One supervised sample: features for the window ending at `end_day` and
/// the next-day return-ratio targets.
#[derive(Clone, Debug)]
pub struct Sample {
    /// `X_t ∈ R^{T×N×D}`.
    pub x: Tensor,
    /// `r^{t+1} ∈ R^N` (Eq. 10).
    pub y: Tensor,
    /// Absolute day index the window ends at (the "trade at close of this
    /// day, sell next close" day).
    pub end_day: usize,
}

/// Always-on lead-lag edges from each industry's leader (first member by
/// convention) to its peers. Strengths are modest (≈ 0.1–0.2) so the sector
/// lead-lag signal is weaker per-edge but far denser than the wiki edges —
/// reproducing Table VI's finding that the denser industry relations carry
/// more total signal.
fn industry_leader_edges(industry: &IndustryRelations, seed: u64) -> Vec<crate::relations::WikiEdge> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1ead_e46e);
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (stock, &g) in industry.industry_of.iter().enumerate() {
        groups.entry(g).or_default().push(stock);
    }
    let mut edges = Vec::new();
    for members in groups.into_values() {
        if members.len() < 3 {
            continue;
        }
        let leader = members[0];
        for &follower in &members[1..] {
            edges.push(crate::relations::WikiEdge {
                leader,
                follower,
                types: Vec::new(),
                strength: rng.gen_range(0.10..0.20),
                period: 1,
                phase: 0,
                duty: 1.0,
            });
        }
    }
    edges
}

/// Relation mutations applied between trading days on the streaming path
/// (the dynamic graphs of MDGNN that a static `𝒜` cannot express): new wiki
/// edges appear (partnership announced), pairs disappear (relation lapses).
#[derive(Clone, Debug, Default)]
pub struct DayEvent {
    /// New wiki edges. `types` index the wiki type space; the edge also
    /// becomes a price spillover from `leader` to `follower`.
    pub add: Vec<crate::relations::WikiEdge>,
    /// Unordered stock pairs whose wiki relations (and spillovers, both
    /// directions) cease.
    pub drop: Vec<(usize, usize)>,
}

/// A complete market dataset.
#[derive(Clone, Debug)]
pub struct StockDataset {
    pub spec: UniverseSpec,
    pub sim: MarketSim,
    pub industry: IndustryRelations,
    pub wiki: WikiRelations,
}

impl StockDataset {
    /// Generate a dataset for a universe spec. The COVID-like shock lands at
    /// the first test day, as in the paper's timeline.
    ///
    /// Price spillovers come from two sources: the time-varying wiki edges
    /// (supplier-customer style, "product launch" activity windows — Figure
    /// 1(b)) and always-on *intra-industry leader* edges (the largest firm
    /// of each industry leads its peers by a day — the synchronous-sector
    /// movement of Figure 1(a) with a causal lag that makes industry
    /// relations genuinely predictive, as Table VI observes).
    pub fn generate(spec: UniverseSpec, seed: u64) -> Self {
        let days = spec.total_days();
        Self::generate_through(spec, seed, days)
    }

    /// Generate the same universe as [`StockDataset::generate`] but with the
    /// price history truncated after `days` days (same relations, loadings,
    /// and shock calendar — the shock still lands at `spec.test_start()`
    /// whether or not that day has been reached yet). The result can be
    /// rolled forward one day at a time with [`StockDataset::append_day`];
    /// doing so replays the exact batch RNG/op sequence, so a streamed
    /// dataset is bit-identical to a batch one of the same length.
    pub fn generate_through(spec: UniverseSpec, seed: u64, days: usize) -> Self {
        let industry = gen_industry_relations(&spec, seed);
        let wiki = gen_wiki_relations(&spec, seed);
        let mut cfg = SynthConfig::new(spec.stocks, days, seed, industry.industry_of.clone());
        cfg.spillover_edges = wiki.edges.clone();
        cfg.spillover_edges.extend(industry_leader_edges(&industry, seed));
        cfg.shock_day = Some(spec.test_start());
        let sim = simulate(cfg);
        StockDataset { spec, sim, industry, wiki }
    }

    /// Days of price history currently generated (may be shorter than
    /// `spec.total_days()` for a streaming dataset, or longer once the walk
    /// moves past the spec's nominal test window).
    pub fn days_generated(&self) -> usize {
        self.sim.days()
    }

    /// Apply a relation mutation event, effective from the next generated
    /// day: added edges start spilling over and enter the wiki relation
    /// tensor; dropped pairs stop spilling over (both directions, leader
    /// edges included) and leave the tensor. Mutating relations mid-stream
    /// invalidates any adjacency derived from the old tensor — callers
    /// (`StreamEngine`) rebuild their caches when this returns `true`.
    pub fn apply_event(&mut self, event: &DayEvent) -> bool {
        let mut relations_changed = false;
        for e in &event.add {
            assert!(
                !e.types.is_empty() && e.types.iter().all(|&t| t < self.wiki.relations.num_types()),
                "added edge types must fit the wiki type space \
                 (K={}; CSI-style universes without wiki types cannot take adds)",
                self.wiki.relations.num_types()
            );
            for &t in &e.types {
                self.wiki.relations.connect(e.leader, e.follower, t);
            }
            self.wiki.edges.push(e.clone());
            self.sim.add_spillover_edge(e.clone());
            relations_changed = true;
        }
        for &(a, b) in &event.drop {
            let was_related = self.wiki.relations.disconnect_pair(a, b);
            self.wiki.edges.retain(|e| {
                !((e.leader == a && e.follower == b) || (e.leader == b && e.follower == a))
            });
            self.sim.remove_spillover_edges(a, b);
            relations_changed |= was_related;
        }
        relations_changed
    }

    /// Advance the market by one day, applying `event`'s relation mutations
    /// first so they take effect from the new day. Returns the new day's
    /// index. Pure append: all previously generated prices are untouched.
    pub fn append_day(&mut self, event: Option<&DayEvent>) -> usize {
        if let Some(ev) = event {
            self.apply_event(ev);
        }
        self.sim.append_day()
    }

    pub fn n_stocks(&self) -> usize {
        self.spec.stocks
    }

    /// Relation tensor for the requested family. `Both` concatenates the
    /// type spaces (wiki types first), preserving multi-hot semantics.
    pub fn relations(&self, kind: RelationKind) -> RelationTensor {
        match kind {
            RelationKind::Wiki => self.wiki.relations.clone(),
            RelationKind::Industry => self.industry.relations.clone(),
            RelationKind::Both => {
                if self.wiki.relations.num_types() == 0 {
                    self.industry.relations.clone()
                } else {
                    self.wiki.relations.union(&self.industry.relations)
                }
            }
        }
    }

    /// End-day indices usable for training with window length `t_steps`.
    /// Both the window and its next-day target stay inside the train period.
    pub fn train_end_days(&self, t_steps: usize) -> Vec<usize> {
        let first = (WARMUP_DAYS - 1 + t_steps).max(t_steps);
        let last = WARMUP_DAYS + self.spec.train_days - 2;
        (first..=last).collect()
    }

    /// End-day indices of the test trading days (one per paper "testing
    /// day"; Table II).
    pub fn test_end_days(&self) -> Vec<usize> {
        let start = self.spec.test_start();
        (start..start + self.spec.test_days).collect()
    }

    /// Build the sample for a window ending at `end_day`.
    pub fn sample(&self, end_day: usize, t_steps: usize, n_features: usize) -> Sample {
        Sample {
            x: window_features(&self.sim.prices, end_day, t_steps, n_features),
            y: return_ratios(&self.sim.prices, end_day),
            end_day,
        }
    }

    /// Actual (realised) return ratio of stock `i` bought at the close of
    /// `end_day` and sold next close — what the backtester pays out.
    pub fn realized_return(&self, end_day: usize, stock: usize) -> f32 {
        self.sim.return_ratio(end_day, stock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Market, Scale};

    fn small() -> StockDataset {
        StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 1)
    }

    #[test]
    fn split_counts_match_spec() {
        let ds = small();
        let t = 16;
        let train = ds.train_end_days(t);
        let test = ds.test_end_days();
        assert_eq!(test.len(), ds.spec.test_days);
        // Train windows fit after warm-up and before the test period.
        assert!(train.first().copied().unwrap() >= t);
        assert!(train.last().copied().unwrap() < ds.spec.test_start());
        // No overlap.
        assert!(train.last().unwrap() < test.first().unwrap());
    }

    #[test]
    fn last_test_day_target_observable() {
        let ds = small();
        let last = *ds.test_end_days().last().unwrap();
        // Must not panic: the +1 day exists.
        let s = ds.sample(last, 8, 4);
        assert_eq!(s.y.dims(), &[ds.n_stocks()]);
    }

    #[test]
    fn sample_shapes() {
        let ds = small();
        let s = ds.sample(50, 12, 3);
        assert_eq!(s.x.dims(), &[12, ds.n_stocks(), 3]);
        assert_eq!(s.end_day, 50);
    }

    #[test]
    fn relations_union_concatenates_types() {
        let ds = StockDataset::generate(UniverseSpec::of(Market::Nasdaq, Scale::Small), 2);
        let w = ds.relations(RelationKind::Wiki);
        let i = ds.relations(RelationKind::Industry);
        let b = ds.relations(RelationKind::Both);
        assert_eq!(b.num_types(), w.num_types() + i.num_types());
        assert!(b.num_related_pairs() >= i.num_related_pairs());
    }

    #[test]
    fn csi_both_falls_back_to_industry() {
        let ds = small();
        let b = ds.relations(RelationKind::Both);
        let i = ds.relations(RelationKind::Industry);
        assert_eq!(b.num_types(), i.num_types());
        assert_eq!(b.num_related_pairs(), i.num_related_pairs());
    }

    #[test]
    fn realized_return_consistent_with_sample_target() {
        let ds = small();
        let s = ds.sample(60, 8, 2);
        for i in 0..ds.n_stocks() {
            assert!((s.y.data()[i] - ds.realized_return(60, i)).abs() < 1e-7);
        }
    }

    #[test]
    fn deterministic_generation() {
        let spec = UniverseSpec::of(Market::Csi, Scale::Small);
        let a = StockDataset::generate(spec.clone(), 5);
        let b = StockDataset::generate(spec, 5);
        assert_eq!(a.sim.prices, b.sim.prices);
    }

    #[test]
    fn generate_through_plus_appends_equals_batch() {
        // Streamed dataset generation crossing the crash shock at
        // test_start() must be bit-identical to batch generation.
        let spec = UniverseSpec::of(Market::Csi, Scale::Small);
        let batch = StockDataset::generate(spec.clone(), 9);
        let t0 = spec.test_start();
        let mut streamed = StockDataset::generate_through(spec.clone(), 9, t0);
        assert_eq!(streamed.days_generated(), t0);
        while streamed.days_generated() < batch.days_generated() {
            streamed.append_day(None);
        }
        assert_eq!(streamed.sim.prices, batch.sim.prices);
        assert_eq!(streamed.sim.returns, batch.sim.returns);
    }

    #[test]
    fn day_events_mutate_relations_and_spillovers() {
        let spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
        let mut ds = StockDataset::generate_through(spec.clone(), 3, spec.test_start());
        let k = ds.wiki.relations.num_types();
        assert!(k > 0, "nasdaq universe has wiki types");
        // Pick an existing related pair to drop and an unrelated pair to add.
        let (a, b, _) = ds.wiki.relations.pairs().next().map(|(i, j, h)| (i, j, h.to_vec())).unwrap();
        let n = ds.n_stocks();
        let (mut x, mut y) = (0, 1);
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if !ds.wiki.relations.related(i, j) {
                    (x, y) = (i, j);
                    break 'outer;
                }
            }
        }
        let pairs_before = ds.wiki.relations.num_related_pairs();
        let edges_before = ds.sim.config.spillover_edges.len();
        let ev = DayEvent {
            add: vec![crate::relations::WikiEdge {
                leader: x,
                follower: y,
                types: vec![0],
                strength: 0.4,
                period: 10,
                phase: 0,
                duty: 1.0,
            }],
            drop: vec![(a, b)],
        };
        let day = ds.append_day(Some(&ev));
        assert_eq!(day + 1, ds.days_generated());
        assert_eq!(ds.wiki.relations.num_related_pairs(), pairs_before, "one in, one out");
        assert!(ds.wiki.relations.related(x, y));
        assert!(!ds.wiki.relations.related(a, b));
        // Spillover list gained the new edge and lost every (a,b) edge.
        assert!(ds.sim.config.spillover_edges.len() <= edges_before + 1);
        assert!(ds
            .sim
            .config
            .spillover_edges
            .iter()
            .all(|e| !((e.leader == a && e.follower == b) || (e.leader == b && e.follower == a))));
        assert!(ds
            .sim
            .config
            .spillover_edges
            .iter()
            .any(|e| e.leader == x && e.follower == y));
    }
}
