//! Synthetic market indices — stand-ins for DJI, S&P 500 and CSI 300 in the
//! Figure 6 comparison. Real market indices are capitalisation-weighted
//! averages over a blue-chip subset; we mirror that: the index tracks the
//! price-weighted top slice of the simulated universe.

use crate::dataset::StockDataset;

/// Cumulative return-ratio series of a synthetic index over a range of days,
/// aligned with the backtester's convention: entry `d` is the sum of daily
/// index returns from `days[0]` through `days[d]` (what Figure 6 plots).
pub fn index_cumulative_returns(ds: &StockDataset, days: &[usize]) -> Vec<f32> {
    let weights = index_weights(ds);
    let mut out = Vec::with_capacity(days.len());
    let mut acc = 0.0f32;
    for &d in days {
        let mut idx_ret = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            idx_ret += w * ds.realized_return(d, i);
        }
        acc += idx_ret;
        out.push(acc);
    }
    out
}

/// Price-weighted constituent weights over the top ~30 % of the universe by
/// price at the start of the test period (price stands in for market cap —
/// the simulator has no share counts).
fn index_weights(ds: &StockDataset) -> Vec<f32> {
    let n = ds.n_stocks();
    let anchor_day = ds.spec.test_start().saturating_sub(1);
    let mut priced: Vec<(usize, f32)> =
        (0..n).map(|i| (i, ds.sim.price(anchor_day, i))).collect();
    priced.sort_by(|a, b| b.1.total_cmp(&a.1));
    let members = (n * 3 / 10).max(5).min(n);
    let total: f32 = priced[..members].iter().map(|&(_, p)| p).sum();
    let mut weights = vec![0.0f32; n];
    for &(i, p) in &priced[..members] {
        weights[i] = p / total;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Market, Scale, UniverseSpec};

    #[test]
    fn index_tracks_crash_and_recovery() {
        let ds = StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 3);
        let days = ds.test_end_days();
        let series = index_cumulative_returns(&ds, &days);
        assert_eq!(series.len(), days.len());
        // The shock lands at test start: cumulative return dips early...
        let early_min = series[..crate::synth::CRASH_LEN.min(series.len())]
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert!(early_min < 0.0, "index should dip during the crash, min {early_min}");
        // ...and recovers off the bottom afterwards.
        let overall_min = series.iter().copied().fold(f32::INFINITY, f32::min);
        let last = *series.last().unwrap();
        assert!(last > overall_min, "index should come off the bottom");
    }

    #[test]
    fn weights_sum_to_one_over_members() {
        let ds = StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 4);
        let w = index_weights(&ds);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "weights sum {sum}");
        assert!(w.iter().filter(|&&x| x > 0.0).count() >= 5);
    }
}
