//! Synthetic market indices — stand-ins for DJI, S&P 500 and CSI 300 in the
//! Figure 6 comparison. Real market indices are capitalisation-weighted
//! averages over a blue-chip subset; we mirror that: the index tracks the
//! price-weighted top slice of the simulated universe.

use crate::dataset::StockDataset;

/// Cumulative return-ratio series of a synthetic index over a range of days,
/// aligned with the backtester's convention: entry `d` is the sum of daily
/// index returns from `days[0]` through `days[d]` (what Figure 6 plots).
pub fn index_cumulative_returns(ds: &StockDataset, days: &[usize]) -> Vec<f32> {
    if days.is_empty() {
        rtgcn_telemetry::warn(
            "index.degenerate",
            "index_cumulative_returns over an empty day range — series is empty",
        );
        return Vec::new();
    }
    let weights = index_weights(ds);
    let mut out = Vec::with_capacity(days.len());
    let mut acc = 0.0f32;
    for &d in days {
        let mut idx_ret = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            idx_ret += w * ds.realized_return(d, i);
        }
        acc += idx_ret;
        out.push(acc);
    }
    out
}

/// Price-weighted constituent weights over the top ~30 % of the universe by
/// price at the start of the test period (price stands in for market cap —
/// the simulator has no share counts).
fn index_weights(ds: &StockDataset) -> Vec<f32> {
    let n = ds.n_stocks();
    let anchor_day = ds.spec.test_start().saturating_sub(1);
    let mut priced: Vec<(usize, f32)> =
        (0..n).map(|i| (i, ds.sim.price(anchor_day, i))).collect();
    priced.sort_by(|a, b| b.1.total_cmp(&a.1));
    let members = (n * 3 / 10).max(5).min(n);
    let total: f32 = priced[..members].iter().map(|&(_, p)| p).sum();
    // An empty universe or an all-zero/non-finite price slice would turn
    // `p / total` into NaN weights that silently poison every downstream
    // index return; degrade to all-zero weights with a warn event instead.
    if members == 0 || total <= 0.0 || !total.is_finite() {
        rtgcn_telemetry::warn(
            "index.degenerate",
            &format!("index has no usable constituents ({n} stocks, member price sum {total})"),
        );
        return vec![0.0f32; n];
    }
    let mut weights = vec![0.0f32; n];
    for &(i, p) in &priced[..members] {
        weights[i] = p / total;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Market, Scale, UniverseSpec};

    #[test]
    fn index_tracks_crash_and_recovery() {
        let ds = StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 3);
        let days = ds.test_end_days();
        let series = index_cumulative_returns(&ds, &days);
        assert_eq!(series.len(), days.len());
        // The shock lands at test start: cumulative return dips early...
        let early_min = series[..crate::synth::CRASH_LEN.min(series.len())]
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        assert!(early_min < 0.0, "index should dip during the crash, min {early_min}");
        // ...and recovers off the bottom afterwards.
        let overall_min = series.iter().copied().fold(f32::INFINITY, f32::min);
        let last = *series.last().unwrap();
        assert!(last > overall_min, "index should come off the bottom");
    }

    #[test]
    fn empty_day_range_and_empty_universe_do_not_panic() {
        let _g = rtgcn_telemetry::test_scope(rtgcn_telemetry::Level::Off);
        let ds = StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 3);
        // Empty day range: empty series plus a warn event, not a panic.
        let series = index_cumulative_returns(&ds, &[]);
        assert!(series.is_empty());
        let warned = rtgcn_telemetry::drain_memory_sink()
            .iter()
            .any(|l| l.contains("index.degenerate"));
        assert!(warned, "expected an index.degenerate warn event");
        // A dataset whose test split is empty flows through the same path
        // end to end (this is the fig6 crash: index.last() on no test days).
        let mut spec = UniverseSpec::of(Market::Csi, Scale::Small);
        spec.stocks = 8;
        spec.train_days = 40;
        spec.test_days = 0;
        let tiny = StockDataset::generate(spec, 5);
        assert!(index_cumulative_returns(&tiny, &tiny.test_end_days()).is_empty());
        assert!(index_cumulative_returns(&tiny, &tiny.test_end_days()).last().is_none());
    }

    #[test]
    fn weights_sum_to_one_over_members() {
        let ds = StockDataset::generate(UniverseSpec::of(Market::Csi, Scale::Small), 4);
        let w = index_weights(&ds);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "weights sum {sum}");
        assert!(w.iter().filter(|&&x| x > 0.0).count() >= 5);
    }
}
