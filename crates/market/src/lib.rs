//! # rtgcn-market
//!
//! The market-data substrate of the RT-GCN reproduction. Substitutes the
//! paper's external data sources with calibrated synthetic equivalents
//! (DESIGN.md §4):
//!
//! - [`universe`] — NASDAQ/NYSE/CSI universe specs calibrated to Tables
//!   II–III, with `small`/`medium`/`paper` scales;
//! - [`relations`] — industry-clique and sparse wiki-style typed relation
//!   generators hitting the paper's relation ratios;
//! - [`synth`] — factor-model price simulator with sector co-movement,
//!   momentum, COVID-like crash regime, and time-varying lead-lag spillover
//!   along wiki edges (what the time-sensitive strategy exploits);
//! - [`features`] — the 4-step feature pipeline (last-close normalisation,
//!   5/10/20-day MAs, return ratios, chronological split);
//! - [`dataset`] — assembled datasets with train/test window sampling;
//! - [`index`] — synthetic DJI / S&P 500 / CSI 300 comparison indices.

pub mod dataset;
pub mod features;
pub mod index;
pub mod io;
pub mod relations;
pub mod stream;
pub mod synth;
pub mod universe;

pub use dataset::{DayEvent, RelationKind, Sample, StockDataset};
pub use features::{return_ratios, warmup_for, window_features, MAX_FEATURES, WARMUP_DAYS};
pub use index::index_cumulative_returns;
pub use io::{dataset_from_parts, load_dataset, parse_prices_csv, parse_relations_csv, prices_to_csv, PriceTable};
pub use relations::{IndustryRelations, WikiEdge, WikiRelations};
pub use stream::FeatureStream;
pub use synth::{simulate, MarketSim, SynthConfig};
pub use universe::{Market, Scale, UniverseSpec};
