//! Plain-text interchange for real market data.
//!
//! The synthetic generator stands in for Yahoo-Finance/Wikidata (DESIGN.md
//! §4), but a downstream user with genuine data can load it here and run
//! every model/harness unchanged:
//!
//! - **Prices CSV**: header `date,TICKER1,TICKER2,...`, one row per trading
//!   day (chronological), one close per stock. The `date` column is carried
//!   through but not interpreted.
//! - **Relations CSV**: rows `stock_i,stock_j,type_k` (0-based indices into
//!   the price header order and the relation-type space).

use crate::dataset::StockDataset;
use crate::relations::{IndustryRelations, WikiRelations};
use crate::synth::{MarketSim, SynthConfig};
use crate::universe::{Market, UniverseSpec};
use rtgcn_graph::RelationTensor;
use rtgcn_tensor::Tensor;
use std::path::Path;

/// Parsed price table.
#[derive(Clone, Debug)]
pub struct PriceTable {
    pub tickers: Vec<String>,
    pub dates: Vec<String>,
    /// `(days, N)` closing prices.
    pub prices: Tensor,
}

fn io_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Parse a prices CSV from a string (see module docs for the format).
pub fn parse_prices_csv(body: &str) -> std::io::Result<PriceTable> {
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| io_err("empty prices CSV".into()))?;
    let mut cols = header.split(',').map(str::trim);
    let first = cols.next().unwrap_or_default();
    if !first.eq_ignore_ascii_case("date") {
        return Err(io_err(format!("first header column must be 'date', got {first:?}")));
    }
    let tickers: Vec<String> = cols.map(String::from).collect();
    if tickers.is_empty() {
        return Err(io_err("prices CSV has no stock columns".into()));
    }
    let n = tickers.len();
    let mut dates = Vec::new();
    let mut data: Vec<f32> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let mut fields = line.split(',').map(str::trim);
        let date = fields.next().unwrap_or_default().to_string();
        let row: Vec<f32> = fields
            .map(|f| {
                f.parse::<f32>()
                    .map_err(|e| io_err(format!("row {} ({date}): bad price {f:?}: {e}", lineno + 2)))
            })
            .collect::<Result<_, _>>()?;
        if row.len() != n {
            return Err(io_err(format!(
                "row {} has {} prices, expected {n}",
                lineno + 2,
                row.len()
            )));
        }
        if row.iter().any(|&p| !p.is_finite() || p <= 0.0) {
            return Err(io_err(format!("row {} contains non-positive price", lineno + 2)));
        }
        dates.push(date);
        data.extend(row);
    }
    if dates.len() < 2 {
        return Err(io_err("need at least two days of prices".into()));
    }
    Ok(PriceTable { tickers, dates: dates.clone(), prices: Tensor::new([dates.len(), n], data) })
}

/// Parse a relations CSV (`i,j,k` rows) into a [`RelationTensor`].
pub fn parse_relations_csv(body: &str, n_stocks: usize, k_types: usize) -> std::io::Result<RelationTensor> {
    let mut rel = RelationTensor::new(n_stocks, k_types);
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(io_err(format!("relations row {}: expected i,j,k", lineno + 1)));
        }
        let parse = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|e| io_err(format!("relations row {}: bad {what} {s:?}: {e}", lineno + 1)))
        };
        let (i, j, k) = (parse(parts[0], "i")?, parse(parts[1], "j")?, parse(parts[2], "k")?);
        if i >= n_stocks || j >= n_stocks || i == j {
            return Err(io_err(format!("relations row {}: invalid pair ({i},{j})", lineno + 1)));
        }
        if k >= k_types {
            return Err(io_err(format!("relations row {}: type {k} >= K={k_types}", lineno + 1)));
        }
        rel.connect(i, j, k);
    }
    Ok(rel)
}

/// Serialise a price tensor back to the CSV format (round-trip with
/// [`parse_prices_csv`]).
pub fn prices_to_csv(table: &PriceTable) -> String {
    let mut out = String::from("date");
    for t in &table.tickers {
        out.push(',');
        out.push_str(t);
    }
    out.push('\n');
    let n = table.tickers.len();
    for (d, date) in table.dates.iter().enumerate() {
        out.push_str(date);
        for i in 0..n {
            out.push_str(&format!(",{}", table.prices.at(&[d, i])));
        }
        out.push('\n');
    }
    out
}

/// Build a [`StockDataset`] from externally supplied prices and relations.
///
/// `train_days`/`test_days` define the chronological split after the 20-day
/// feature warm-up; `warmup + train_days + test_days + 1` must not exceed
/// the number of price rows. `industry_of` may be empty if unknown (the
/// STHAN-SR baseline then builds its hypergraph from wiki pairs only).
pub fn dataset_from_parts(
    market: Market,
    prices: Tensor,
    wiki: RelationTensor,
    industry: RelationTensor,
    industry_of: Vec<usize>,
    train_days: usize,
    test_days: usize,
) -> std::io::Result<StockDataset> {
    let n = prices.dims()[1];
    let needed = crate::features::WARMUP_DAYS + train_days + test_days + 1;
    if prices.dims()[0] < needed {
        return Err(io_err(format!(
            "need {} price rows (warmup+train+test+1), got {}",
            needed,
            prices.dims()[0]
        )));
    }
    if wiki.num_stocks() != n || industry.num_stocks() != n {
        return Err(io_err("relation tensors must cover the same stock universe".into()));
    }
    let spec = UniverseSpec {
        market,
        stocks: n,
        train_days,
        test_days,
        industry_types: industry.num_types(),
        industry_ratio: industry.relation_ratio(),
        wiki_types: wiki.num_types(),
        wiki_ratio: wiki.relation_ratio(),
        sectors: industry_of.iter().copied().max().map_or(1, |m| m + 1),
    };
    let days = prices.dims()[0];
    // Returns derived from the supplied prices; config records provenance.
    let mut returns = Tensor::zeros([days, n]);
    for d in 1..days {
        for i in 0..n {
            let p0 = prices.at(&[d - 1, i]).max(1e-6);
            returns.data_mut()[d * n + i] = (prices.at(&[d, i]) / p0).ln();
        }
    }
    let industry_of =
        if industry_of.len() == n { industry_of } else { vec![0; n] };
    let sim =
        MarketSim::from_history(prices, returns, SynthConfig::new(n, days, 0, industry_of.clone()));
    Ok(StockDataset {
        spec,
        sim,
        industry: IndustryRelations { industry_of, relations: industry },
        wiki: WikiRelations { relations: wiki, edges: Vec::new() },
    })
}

/// Convenience: load a dataset from price + relation CSV files on disk.
#[allow(clippy::too_many_arguments)]
pub fn load_dataset(
    market: Market,
    prices_path: impl AsRef<Path>,
    wiki_path: Option<&Path>,
    industry_path: Option<&Path>,
    wiki_types: usize,
    industry_types: usize,
    train_days: usize,
    test_days: usize,
) -> std::io::Result<StockDataset> {
    let table = parse_prices_csv(&std::fs::read_to_string(prices_path)?)?;
    let n = table.tickers.len();
    let wiki = match wiki_path {
        Some(p) => parse_relations_csv(&std::fs::read_to_string(p)?, n, wiki_types)?,
        None => RelationTensor::new(n, 0),
    };
    let industry = match industry_path {
        Some(p) => parse_relations_csv(&std::fs::read_to_string(p)?, n, industry_types)?,
        None => RelationTensor::new(n, 0),
    };
    dataset_from_parts(market, table.prices, wiki, industry, Vec::new(), train_days, test_days)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_csv(days: usize) -> String {
        let mut s = String::from("date,AAA,BBB\n");
        for d in 0..days {
            s.push_str(&format!("2020-01-{:02},{},{}\n", d + 1, 100.0 + d as f32, 50.0 + 2.0 * d as f32));
        }
        s
    }

    #[test]
    fn prices_roundtrip() {
        let body = toy_csv(5);
        let table = parse_prices_csv(&body).unwrap();
        assert_eq!(table.tickers, vec!["AAA", "BBB"]);
        assert_eq!(table.prices.dims(), &[5, 2]);
        assert_eq!(table.prices.at(&[3, 1]), 56.0);
        let back = prices_to_csv(&table);
        let table2 = parse_prices_csv(&back).unwrap();
        assert_eq!(table.prices, table2.prices);
    }

    #[test]
    fn prices_rejects_malformed() {
        assert!(parse_prices_csv("").is_err());
        assert!(parse_prices_csv("notdate,A\n1,2\n").is_err());
        assert!(parse_prices_csv("date,A\n2020-01-01,abc\n2020-01-02,1\n").is_err());
        assert!(parse_prices_csv("date,A,B\n2020-01-01,1\n2020-01-02,1,2\n").is_err());
        assert!(parse_prices_csv("date,A\n2020-01-01,-5\n2020-01-02,1\n").is_err());
        assert!(parse_prices_csv("date,A\n2020-01-01,1\n").is_err(), "one day insufficient");
    }

    #[test]
    fn relations_csv_parses_and_validates() {
        let rel = parse_relations_csv("0,1,0\n# comment\n1,2,1\n", 3, 2).unwrap();
        assert!(rel.related(0, 1) && rel.related(1, 2));
        assert_eq!(rel.multi_hot_f32(1, 2), vec![0.0, 1.0]);
        assert!(parse_relations_csv("0,0,0\n", 2, 1).is_err(), "self pair");
        assert!(parse_relations_csv("0,5,0\n", 2, 1).is_err(), "stock oob");
        assert!(parse_relations_csv("0,1,7\n", 2, 1).is_err(), "type oob");
        assert!(parse_relations_csv("0,1\n", 2, 1).is_err(), "arity");
    }

    #[test]
    fn dataset_from_external_prices_runs_models() {
        use rtgcn_graph::RelationTensor;
        // 20 warmup + 30 train + 5 test + 1 = 56 days.
        let days = 56;
        let n = 4;
        let mut prices = Tensor::zeros([days, n]);
        for d in 0..days {
            for i in 0..n {
                let base = 50.0 + 25.0 * i as f32;
                prices.data_mut()[d * n + i] =
                    base * (1.0 + 0.01 * ((d * (i + 1)) as f32).sin());
            }
        }
        let mut wiki = RelationTensor::new(n, 1);
        wiki.connect(0, 1, 0);
        let mut ind = RelationTensor::new(n, 2);
        ind.connect(2, 3, 1);
        let ds = dataset_from_parts(Market::Nasdaq, prices, wiki, ind, vec![0, 0, 1, 1], 30, 5)
            .unwrap();
        assert_eq!(ds.n_stocks(), 4);
        assert_eq!(ds.test_end_days().len(), 5);
        let s = ds.sample(ds.test_end_days()[0], 8, 4);
        assert_eq!(s.x.dims(), &[8, 4, 4]);
        assert!(!s.x.has_non_finite());
    }

    #[test]
    fn dataset_from_parts_rejects_short_series() {
        let prices = Tensor::ones([30, 2]);
        let r = RelationTensor::new(2, 0);
        assert!(dataset_from_parts(Market::Csi, prices, r.clone(), r, vec![], 30, 5).is_err());
    }
}
