//! Relation generators — the substitution for the paper's Wikidata company
//! relations and NASDAQ sector-industry lists (DESIGN.md §4.2).
//!
//! Both generators are calibrated against Table III: they hit a target
//! *relation ratio* (fraction of stock pairs with ≥ 1 relation) and type
//! count per market, with industry groups following a skewed (Zipf-like)
//! size distribution as real sector data does.

use crate::universe::UniverseSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rtgcn_graph::RelationTensor;

/// Industry assignment: one industry id per stock plus the derived relation
/// tensor (one relation type per industry, as in the paper's
/// `(Facebook; Technology Services…; Twitter)` triples).
#[derive(Clone, Debug)]
pub struct IndustryRelations {
    pub industry_of: Vec<usize>,
    pub relations: RelationTensor,
}

/// Zipf-like group sizes: size of group `g` ∝ `1 / (g+1)^s`, scaled so sizes
/// sum to `n` and every group has ≥ 1 member.
fn zipf_sizes(n: usize, groups: usize, s: f64) -> Vec<usize> {
    assert!(groups >= 1 && groups <= n, "need 1 ≤ groups ≤ n");
    let weights: Vec<f64> = (0..groups).map(|g| 1.0 / ((g + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| ((w / total) * n as f64).floor() as usize).collect();
    for sz in sizes.iter_mut() {
        if *sz == 0 {
            *sz = 1;
        }
    }
    // Adjust group sizes round-robin to hit the exact total, under an
    // explicit termination bound instead of the old unbounded spin. Growing
    // shrinks |diff| on every step; shrinking skips size-1 groups, but any
    // full pass over the groups must find at least one shrinkable group
    // (sizes sum to > n ≥ groups, so some size exceeds 1). Hence
    // `groups × (|diff| + 1)` steps always suffice; exhausting the bound
    // means that invariant broke, so warn and return the best effort
    // (callers tolerate an off-by-few total far better than a hang).
    let mut diff = n as i64 - sizes.iter().sum::<usize>() as i64;
    let bound = groups * (diff.unsigned_abs() as usize + 1);
    let mut g = 0;
    let mut steps = 0;
    while diff != 0 && steps < bound {
        steps += 1;
        if diff > 0 {
            sizes[g % groups] += 1;
            diff -= 1;
        } else if sizes[g % groups] > 1 {
            sizes[g % groups] -= 1;
            diff += 1;
        }
        g += 1;
    }
    if diff != 0 {
        rtgcn_telemetry::warn(
            "relations.zipf_rebalance",
            &format!(
                "rebalance bound exhausted with residual {diff} (n={n}, groups={groups}, s={s})"
            ),
        );
    }
    sizes
}

/// Relation ratio implied by a group-size vector (one industry per stock).
fn ratio_of_sizes(n: usize, sizes: &[usize]) -> f64 {
    let pairs: usize = sizes.iter().map(|&m| m * (m - 1) / 2).sum();
    let total = n * (n - 1) / 2;
    pairs as f64 / total.max(1) as f64
}

/// Generate industry relations hitting `spec.industry_ratio` within ±20 %
/// (relative) by binary-searching the Zipf skew exponent.
pub fn gen_industry_relations(spec: &UniverseSpec, seed: u64) -> IndustryRelations {
    let n = spec.stocks;
    // With g equal groups of size m = n/g the ratio is ≈ (m−1)/(n−1), the
    // minimum achievable for that group count; raise g beyond the spec's
    // nominal type count when even equal groups would overshoot the target
    // (happens at reduced scales, where type counts shrink faster than the
    // pair ratio).
    let max_equal_size = 1.0 + spec.industry_ratio * (n.saturating_sub(1)) as f64;
    let min_groups = (n as f64 / max_equal_size).ceil() as usize;
    let groups = spec.industry_types.max(min_groups).min(n / 2).max(1);
    // Skewer size distributions concentrate more stocks in few industries,
    // raising the pair ratio; binary-search s ∈ [0, 3].
    let (mut lo, mut hi) = (0.0f64, 3.0f64);
    let mut best = zipf_sizes(n, groups, 1.0);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let sizes = zipf_sizes(n, groups, mid);
        let r = ratio_of_sizes(n, &sizes);
        best = sizes;
        if r < spec.industry_ratio {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Greedy refinement: move one stock at a time between the largest and
    // smallest groups while it brings the ratio closer to target (the Zipf
    // family is too coarse for small universes).
    for _ in 0..n {
        let cur = ratio_of_sizes(n, &best);
        let mut trial = best.clone();
        let hi_g = (0..groups).max_by_key(|&g| trial[g]).expect("groups >= 1");
        if cur > spec.industry_ratio {
            // Shrink the dominant group.
            let lo_g = (0..groups).min_by_key(|&g| trial[g]).expect("groups >= 1");
            if trial[hi_g] <= trial[lo_g] + 1 {
                break;
            }
            trial[hi_g] -= 1;
            trial[lo_g] += 1;
        } else {
            // Grow the dominant group from the smallest shrinkable one.
            let Some(lo_g) =
                (0..groups).filter(|&g| trial[g] > 1 && g != hi_g).min_by_key(|&g| trial[g])
            else {
                break;
            };
            trial[hi_g] += 1;
            trial[lo_g] -= 1;
        }
        let next = ratio_of_sizes(n, &trial);
        if (next - spec.industry_ratio).abs() < (cur - spec.industry_ratio).abs() {
            best = trial;
        } else {
            break;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1d05_7ee1);
    let mut stock_ids: Vec<usize> = (0..n).collect();
    stock_ids.shuffle(&mut rng);
    let mut industry_of = vec![0usize; n];
    let mut relations = RelationTensor::new(n, groups);
    let mut cursor = 0;
    for (g, &sz) in best.iter().enumerate() {
        let members = &stock_ids[cursor..cursor + sz];
        for (a_idx, &a) in members.iter().enumerate() {
            industry_of[a] = g;
            for &b in &members[a_idx + 1..] {
                relations.connect(a, b, g);
            }
        }
        cursor += sz;
    }
    IndustryRelations { industry_of, relations }
}

/// One wiki-style relation edge, carrying the simulator's ground-truth
/// lead-lag spillover parameters (invisible to models; used by the price
/// generator and the Figure 8 case study).
#[derive(Clone, Debug)]
pub struct WikiEdge {
    /// The stock whose move leads.
    pub leader: usize,
    /// The stock that follows one day later.
    pub follower: usize,
    /// Relation types on this edge (indices into the wiki type space).
    pub types: Vec<usize>,
    /// Spillover coefficient γ when the edge is active.
    pub strength: f32,
    /// Activity cycle: period in days.
    pub period: usize,
    /// Phase offset of the activity window.
    pub phase: usize,
    /// Fraction of the period the edge is active ("product launch windows",
    /// paper Figure 1(b)).
    pub duty: f32,
}

impl WikiEdge {
    /// Whether the time-varying spillover component is switched on at `day`.
    pub fn active(&self, day: usize) -> bool {
        (((day + self.phase) % self.period) as f32) < self.duty * self.period as f32
    }
}

/// Wiki-relation generation output.
#[derive(Clone, Debug, Default)]
pub struct WikiRelations {
    pub relations: RelationTensor,
    pub edges: Vec<WikiEdge>,
}

/// Generate sparse wiki-style typed relations hitting `spec.wiki_ratio`.
/// Pairs are drawn uniformly (wiki relations such as supplier-customer and
/// owned-by cut across industries); ~30 % of pairs receive a second type,
/// matching the paper's multi-hot GOOGLE/ALPHABET example.
pub fn gen_wiki_relations(spec: &UniverseSpec, seed: u64) -> WikiRelations {
    let n = spec.stocks;
    if spec.wiki_types == 0 || spec.wiki_ratio <= 0.0 {
        return WikiRelations { relations: RelationTensor::new(n, 0), edges: Vec::new() };
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x771c_1e77);
    let total_pairs = n * (n - 1) / 2;
    let target = ((total_pairs as f64) * spec.wiki_ratio).round().max(1.0) as usize;
    let mut relations = RelationTensor::new(n, spec.wiki_types);
    let mut edges = Vec::with_capacity(target);
    let mut placed = 0;
    let mut guard = 0;
    while placed < target && guard < target * 50 {
        guard += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j || relations.related(i, j) {
            continue;
        }
        let t1 = rng.gen_range(0..spec.wiki_types);
        relations.connect(i, j, t1);
        let mut types = vec![t1];
        if spec.wiki_types > 1 && rng.gen::<f32>() < 0.3 {
            let t2 = rng.gen_range(0..spec.wiki_types);
            if t2 != t1 {
                relations.connect(i, j, t2);
                types.push(t2);
            }
        }
        let (leader, follower) = if rng.gen::<bool>() { (i, j) } else { (j, i) };
        edges.push(WikiEdge {
            leader,
            follower,
            types,
            strength: rng.gen_range(0.25..0.55),
            period: rng.gen_range(40..90),
            phase: rng.gen_range(0..90),
            duty: rng.gen_range(0.3..0.6),
        });
        placed += 1;
    }
    WikiRelations { relations, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Market, Scale};

    #[test]
    fn industry_ratio_calibrated() {
        for market in Market::ALL {
            let spec = UniverseSpec::of(market, Scale::Small);
            let ind = gen_industry_relations(&spec, 1);
            let r = ind.relations.relation_ratio();
            assert!(
                (r - spec.industry_ratio).abs() / spec.industry_ratio < 0.35,
                "{}: generated ratio {r:.4} vs target {:.4}",
                market.name(),
                spec.industry_ratio
            );
        }
    }

    #[test]
    fn industry_same_group_related() {
        let spec = UniverseSpec::of(Market::Csi, Scale::Small);
        let ind = gen_industry_relations(&spec, 3);
        let n = spec.stocks;
        for i in 0..n {
            for j in (i + 1)..n {
                let same = ind.industry_of[i] == ind.industry_of[j];
                assert_eq!(ind.relations.related(i, j), same, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn wiki_ratio_calibrated_and_sparse() {
        let spec = UniverseSpec::of(Market::Nasdaq, Scale::Small);
        let wiki = gen_wiki_relations(&spec, 9);
        let r = wiki.relations.relation_ratio();
        assert!(r > 0.0 && (r - spec.wiki_ratio).abs() / spec.wiki_ratio < 0.5, "ratio {r}");
        assert!(r < 0.02, "wiki relations must be sparse");
        assert_eq!(wiki.edges.len(), wiki.relations.num_related_pairs());
    }

    #[test]
    fn csi_has_no_wiki_edges() {
        let spec = UniverseSpec::of(Market::Csi, Scale::Small);
        let wiki = gen_wiki_relations(&spec, 9);
        assert!(wiki.edges.is_empty());
        assert_eq!(wiki.relations.num_types(), 0);
    }

    #[test]
    fn wiki_edges_deterministic_per_seed() {
        let spec = UniverseSpec::of(Market::Nyse, Scale::Small);
        let a = gen_wiki_relations(&spec, 42);
        let b = gen_wiki_relations(&spec, 42);
        assert_eq!(a.edges.len(), b.edges.len());
        for (x, y) in a.edges.iter().zip(&b.edges) {
            assert_eq!((x.leader, x.follower, x.period), (y.leader, y.follower, y.period));
        }
    }

    #[test]
    fn activity_windows_toggle() {
        let e = WikiEdge {
            leader: 0,
            follower: 1,
            types: vec![0],
            strength: 0.4,
            period: 10,
            phase: 0,
            duty: 0.5,
        };
        let active: Vec<bool> = (0..10).map(|d| e.active(d)).collect();
        assert_eq!(active.iter().filter(|&&b| b).count(), 5, "50% duty over one period");
        assert!(e.active(0) && !e.active(9));
    }

    #[test]
    fn zipf_sizes_sum_to_n() {
        for s in [0.0, 0.8, 2.5] {
            let sizes = zipf_sizes(100, 13, s);
            assert_eq!(sizes.iter().sum::<usize>(), 100);
            assert!(sizes.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn skew_increases_ratio() {
        let flat = ratio_of_sizes(100, &zipf_sizes(100, 10, 0.0));
        let skewed = ratio_of_sizes(100, &zipf_sizes(100, 10, 2.0));
        assert!(skewed > flat, "skew {skewed} should exceed flat {flat}");
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any valid `(n, groups, s)` must yield sizes that sum exactly to
        /// `n` with every group non-empty — i.e. the bounded rebalance loop
        /// always converges, including degenerate all-size-1 partitions and
        /// extreme skews where the head group swallows nearly everything.
        #[test]
        fn zipf_sizes_always_partition_n(
            (n, groups) in (1usize..250).prop_flat_map(|n| (Just(n), 1usize..n + 1)),
            s in 0.0f64..4.0,
        ) {
            let sizes = zipf_sizes(n, groups, s);
            prop_assert_eq!(sizes.len(), groups);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n, "sizes {:?}", &sizes);
            prop_assert!(sizes.iter().all(|&x| x >= 1), "sizes {:?}", &sizes);
        }
    }
}
