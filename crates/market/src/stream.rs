//! Incremental feature maintenance for the streaming day-advance pipeline
//! (DESIGN.md §14).
//!
//! [`window_features`](crate::features::window_features) recomputes every
//! moving average from scratch — O(w) per (day, stock, window) — which is
//! fine for batch training but wasteful when a live system appends one day
//! at a time. [`FeatureStream`] maintains rolling 5/10/20-day sums so each
//! appended day costs O(1) per (stock, window), and keeps the full raw-MA
//! history so any feature window over past days can be assembled without
//! touching the price series more than once per day.
//!
//! ## Parity contract
//!
//! The stream's state after day `D` is a pure function of `prices[0..=D]`
//! with a fixed op order: pushing days one at a time and rebuilding from
//! scratch with [`FeatureStream::from_prices`] execute the *same* code path
//! and are therefore bit-identical — the guarantee the streaming parity
//! suite enforces. Rolling sums accumulate in `f64`, so against the
//! independent f32 scan in `window_features` the assembled windows agree to
//! float tolerance (≲ 1e-5 relative), not bitwise; the streaming scorer
//! always compares streamed state against a streamed rebuild.

use crate::features::{warmup_for, MAX_FEATURES, MA_WINDOWS};
use rtgcn_tensor::Tensor;

/// Rolling moving-average state over a growing price history.
#[derive(Clone, Debug)]
pub struct FeatureStream {
    n: usize,
    /// Days ingested so far (the next `push_day` fills day index `days`).
    days: usize,
    /// Rolling close sums, `(stock, window)` row-major — f64 so the
    /// subtract-the-departing-day update stays well-conditioned over long
    /// streams.
    sums: Vec<f64>,
    /// Raw (pre-anchor-normalisation) moving averages, `(day, stock,
    /// window)` row-major; NaN before a window's warm-up is reached (never
    /// read: `window` gates on [`warmup_for`]).
    ma_hist: Vec<f32>,
}

const N_WINDOWS: usize = MA_WINDOWS.len();

impl FeatureStream {
    /// Empty stream over `n` stocks.
    pub fn new(n: usize) -> Self {
        FeatureStream { n, days: 0, sums: vec![0.0; n * N_WINDOWS], ma_hist: Vec::new() }
    }

    /// Batch rebuild: ingest every day of `prices` in order. This is the
    /// reference the parity suite compares incremental streams against —
    /// same code path, so equality is bitwise.
    pub fn from_prices(prices: &Tensor) -> Self {
        assert_eq!(prices.rank(), 2, "prices must be (days, N)");
        let mut s = FeatureStream::new(prices.dims()[1]);
        for _ in 0..prices.dims()[0] {
            s.push_day(prices);
        }
        s
    }

    /// Days ingested so far.
    pub fn days(&self) -> usize {
        self.days
    }

    pub fn n_stocks(&self) -> usize {
        self.n
    }

    /// Ingest the next day (index `self.days()`) from `prices`, which must
    /// already contain that row. O(1) per (stock, window): add the new
    /// close, subtract the one leaving the window.
    pub fn push_day(&mut self, prices: &Tensor) {
        let day = self.days;
        assert_eq!(prices.dims()[1], self.n, "stock count changed mid-stream");
        assert!(prices.dims()[0] > day, "prices have no row for day {day}");
        let data = prices.data();
        for i in 0..self.n {
            let close = data[day * self.n + i] as f64;
            for (k, &w) in MA_WINDOWS.iter().enumerate() {
                let s = &mut self.sums[i * N_WINDOWS + k];
                *s += close;
                if day >= w {
                    *s -= data[(day - w) * self.n + i] as f64;
                }
                let ma = if day + 1 >= w { (*s / w as f64) as f32 } else { f32::NAN };
                self.ma_hist.push(ma);
            }
        }
        self.days += 1;
    }

    /// Raw (pre-anchor) moving average of window index `k` (0 → 5-day, 1 →
    /// 10-day, 2 → 20-day) for `stock` at `day`.
    pub fn raw_ma(&self, day: usize, stock: usize, k: usize) -> f32 {
        assert!(day < self.days && stock < self.n && k < N_WINDOWS);
        self.ma_hist[(day * self.n + stock) * N_WINDOWS + k]
    }

    /// Assemble the `X_t ∈ R^{T×N×D}` window ending at `end_day`, matching
    /// [`window_features`](crate::features::window_features)' layout, gates,
    /// and anchor normalisation, but reading moving averages from the rolling
    /// state instead of rescanning the price history.
    pub fn window(
        &self,
        prices: &Tensor,
        end_day: usize,
        t_steps: usize,
        n_features: usize,
    ) -> Tensor {
        assert!((1..=MAX_FEATURES).contains(&n_features), "n_features must be 1..=4");
        assert!(end_day < self.days, "day {end_day} not ingested yet (have {})", self.days);
        assert!(end_day + 1 >= t_steps, "window of {t_steps} steps cannot end at day {end_day}");
        let start = end_day + 1 - t_steps;
        assert!(
            start + 1 >= warmup_for(n_features),
            "window starting at day {start} lacks warm-up history \
             (n_features = {n_features} needs {} prior days)",
            warmup_for(n_features)
        );
        let n = self.n;
        let data = prices.data();
        let mut x = Tensor::zeros([t_steps, n, n_features]);
        for i in 0..n {
            let anchor = data[end_day * n + i].max(1e-6);
            for (w_idx, day) in (start..=end_day).enumerate() {
                let base = (w_idx * n + i) * n_features;
                x.data_mut()[base] = data[day * n + i] / anchor;
                for f in 0..n_features.saturating_sub(1) {
                    x.data_mut()[base + 1 + f] =
                        self.ma_hist[(day * n + i) * N_WINDOWS + f] / anchor;
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::window_features;

    fn toy_prices(days: usize, n: usize) -> Tensor {
        let mut p = Tensor::zeros([days, n]);
        for d in 0..days {
            for i in 0..n {
                // Mildly oscillating so rolling sums actually vary.
                p.data_mut()[d * n + i] =
                    100.0 + d as f32 + 10.0 * i as f32 + ((d * 7 + i) % 5) as f32 * 0.3;
            }
        }
        p
    }

    #[test]
    fn incremental_matches_batch_rebuild_bitwise() {
        let p = toy_prices(80, 3);
        let batch = FeatureStream::from_prices(&p);
        // Incremental path as the day loop drives it: the price history
        // grows one row at a time and each push sees only the prefix.
        let mut grow = Tensor::new([0, 3], Vec::new());
        let mut inc = FeatureStream::new(3);
        for d in 0..80 {
            grow.push_row(&p.data()[d * 3..(d + 1) * 3]);
            inc.push_day(&grow);
        }
        assert_eq!(inc.days(), batch.days());
        assert_eq!(inc.sums, batch.sums, "rolling sums diverge");
        // NaN-aware bitwise comparison of the MA history.
        let a: Vec<u32> = inc.ma_hist.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = batch.ma_hist.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "ma history diverges");
    }

    #[test]
    fn window_agrees_with_direct_features_to_tolerance() {
        let p = toy_prices(80, 4);
        let s = FeatureStream::from_prices(&p);
        for nf in 1..=4 {
            let a = s.window(&p, 60, 12, nf);
            let b = window_features(&p, 60, 12, nf);
            assert_eq!(a.dims(), b.dims());
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!(
                    (x - y).abs() <= 1e-5 * y.abs().max(1.0),
                    "nf={nf}: streamed {x} vs direct {y}"
                );
            }
        }
    }

    #[test]
    fn close_feature_is_bitwise_identical_to_direct() {
        // Feature 0 (normalised close) involves no rolling state at all —
        // it must match `window_features` exactly, not just to tolerance.
        let p = toy_prices(60, 2);
        let s = FeatureStream::from_prices(&p);
        let a = s.window(&p, 40, 8, 1);
        let b = window_features(&p, 40, 8, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn per_combination_gate_matches_features_module() {
        let p = toy_prices(60, 2);
        let s = FeatureStream::from_prices(&p);
        // nf=3 needs the 10-day MA: start day 9 is the earliest legal one.
        let x = s.window(&p, 12, 4, 3);
        assert!(x.data().iter().all(|v| v.is_finite()));
        let early = std::panic::catch_unwind(|| s.window(&p, 11, 4, 3));
        assert!(early.is_err(), "window before warm-up must be rejected");
    }

    #[test]
    #[should_panic(expected = "not ingested")]
    fn window_beyond_stream_rejected() {
        let p = toy_prices(30, 2);
        let s = FeatureStream::from_prices(&p);
        let _ = s.window(&p, 30, 4, 2);
    }
}
