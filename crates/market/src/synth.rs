//! Synthetic market price generator — the substitution for Yahoo-Finance
//! historical closing prices (DESIGN.md §4.1).
//!
//! Daily log-returns follow a factor model:
//!
//! ```text
//! r_i(t) = μ + β_m,i · m(t) + β_s,i · f_{sector(i)}(t)
//!        + φ · r_i(t−1)                       (momentum)
//!        + Σ_{e: follower=i} γ_e(t) · r_{leader(e)}(t−1)   (lead-lag)
//!        + σ_i · ε_i(t)                       (idiosyncratic noise)
//! ```
//!
//! with AR(1) market and sector factors, a COVID-like crash-and-recovery
//! regime at the train/test boundary (the paper's test period starts
//! 2020-03-02, right at the crash — see Figure 1(a)), and *time-varying*
//! spillover along wiki edges: `γ_e(t) = γ_e·(0.25 + 0.75·active_e(t))`, the
//! structure the time-sensitive strategy (Eq. 5) is designed to capture and
//! static adjacencies cannot.

use crate::relations::WikiEdge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtgcn_tensor::Tensor;

/// Price-dynamics configuration. Defaults give ~2 % daily idiosyncratic
/// volatility with a meaningful (but not dominant) predictable component.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    pub n_stocks: usize,
    pub days: usize,
    pub seed: u64,
    /// Sector id per stock.
    pub sector_of: Vec<usize>,
    /// Lead-lag spillover edges: the sparse wiki relations (time-varying
    /// activity windows) plus intra-industry leader edges (always on).
    pub spillover_edges: Vec<WikiEdge>,
    /// Day at which the crash regime begins, if any.
    pub shock_day: Option<usize>,
    /// Daily idiosyncratic volatility.
    pub idio_vol: f32,
    /// Market factor volatility and AR(1) persistence.
    pub market_vol: f32,
    pub market_ar: f32,
    /// Sector factor volatility and AR(1) persistence.
    pub sector_vol: f32,
    pub sector_ar: f32,
    /// Own-stock momentum coefficient φ.
    pub momentum: f32,
    /// Small positive drift (annualised ≈ 5 %).
    pub drift: f32,
}

impl SynthConfig {
    pub fn new(n_stocks: usize, days: usize, seed: u64, sector_of: Vec<usize>) -> Self {
        assert_eq!(sector_of.len(), n_stocks, "one sector per stock");
        SynthConfig {
            n_stocks,
            days,
            seed,
            sector_of,
            spillover_edges: Vec::new(),
            shock_day: None,
            idio_vol: 0.02,
            market_vol: 0.008,
            market_ar: 0.35,
            sector_vol: 0.007,
            sector_ar: 0.55,
            momentum: 0.08,
            drift: 0.0002,
        }
    }
}

/// The crash-and-recovery regime: [`CRASH_LEN`] days of strong negative
/// market drift followed by [`RECOVERY_LEN`] days of positive drift
/// (≈ March–May 2020).
pub const CRASH_LEN: usize = 18;
pub const RECOVERY_LEN: usize = 45;
const CRASH_DRIFT: f32 = -0.018;
const RECOVERY_DRIFT: f32 = 0.009;

/// Generated market: closing prices and the underlying ground truth.
#[derive(Clone, Debug)]
pub struct MarketSim {
    /// Closing prices, shape `(days, N)`.
    pub prices: Tensor,
    /// Daily log-returns actually realised, shape `(days, N)` (`r(0) = 0`).
    pub returns: Tensor,
    /// Config used (kept for introspection / case studies).
    pub config: SynthConfig,
    /// Resumable generator state after the last filled day. `None` for
    /// datasets loaded from CSV, which cannot be advanced.
    state: Option<SimState>,
}

/// Everything the day loop carries between iterations. Keeping it owned (the
/// spillover edges are cloned into per-follower lists, not borrowed) lets a
/// [`MarketSim`] suspend after any day and resume later — the streaming
/// day-advance path — while replaying the exact f32 op and RNG call order of
/// a batch run.
#[derive(Clone, Debug)]
struct SimState {
    rng: StdRng,
    beta_market: Vec<f32>,
    beta_sector: Vec<f32>,
    sigma: Vec<f32>,
    market_f: f32,
    sector_f: Vec<f32>,
    prev_ret: Vec<f32>,
    /// Spillover edges grouped by follower, in `config.spillover_edges`
    /// order. The per-follower order fixes the f32 summation order of the
    /// lead-lag term, so mutations must preserve it (append on add, `retain`
    /// on drop) for streaming/batch bit-parity.
    incoming: Vec<Vec<WikiEdge>>,
}

/// Shock drift adjustment for the market factor at `day`.
fn shock_drift(day: usize, shock_day: Option<usize>) -> f32 {
    match shock_day {
        Some(s) if day >= s && day < s + CRASH_LEN => CRASH_DRIFT,
        Some(s) if day >= s + CRASH_LEN && day < s + CRASH_LEN + RECOVERY_LEN => RECOVERY_DRIFT,
        _ => 0.0,
    }
}

/// Standard normal via Box–Muller.
fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Simulate the market: seed day 0, then run the day loop to `config.days`.
pub fn simulate(config: SynthConfig) -> MarketSim {
    assert!(config.days >= 2, "need at least two days of prices");
    let mut sim = MarketSim::start(config);
    while sim.prices.dims()[0] < sim.config.days {
        sim.fill_next_day();
    }
    sim
}

impl MarketSim {
    /// Day-0 snapshot: per-stock loadings, start prices, and zeroed factor
    /// state, drawn in the exact RNG order of the original batch generator.
    /// `fill_next_day` then advances one day at a time.
    pub fn start(config: SynthConfig) -> MarketSim {
        let n = config.n_stocks;
        let n_sectors = config.sector_of.iter().copied().max().map_or(1, |m| m + 1);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_a11c);

        // Per-stock loadings and volatilities.
        let beta_market: Vec<f32> = (0..n).map(|_| 0.7 + 0.6 * rng.gen::<f32>()).collect();
        let beta_sector: Vec<f32> = (0..n).map(|_| 0.6 + 0.8 * rng.gen::<f32>()).collect();
        let sigma: Vec<f32> =
            (0..n).map(|_| config.idio_vol * (0.7 + 0.6 * rng.gen::<f32>())).collect();
        let start_price: Vec<f32> = (0..n).map(|_| 10.0 + 290.0 * rng.gen::<f32>()).collect();

        // Group spillover edges by follower for O(E) per day.
        let mut incoming: Vec<Vec<WikiEdge>> = vec![Vec::new(); n];
        for e in &config.spillover_edges {
            incoming[e.follower].push(e.clone());
        }

        let prices = Tensor::new([1, n], start_price);
        let returns = Tensor::zeros([1, n]);
        let state = SimState {
            rng,
            beta_market,
            beta_sector,
            sigma,
            market_f: 0.0,
            sector_f: vec![0.0; n_sectors],
            prev_ret: vec![0.0; n],
            incoming,
        };
        MarketSim { prices, returns, config, state: Some(state) }
    }

    /// Generate the next day's prices/returns and append them. This is the
    /// single day-loop body shared by batch `simulate` and the streaming
    /// append path — one code path, so the two are bit-identical by
    /// construction.
    fn fill_next_day(&mut self) {
        let n = self.config.n_stocks;
        let day = self.prices.dims()[0];
        let cfg = &self.config;
        let st = self.state.as_mut().expect("cannot advance a CSV-loaded market");
        // Factor updates.
        st.market_f = cfg.market_ar * st.market_f
            + cfg.market_vol * randn(&mut st.rng)
            + shock_drift(day, cfg.shock_day);
        for f in st.sector_f.iter_mut() {
            *f = cfg.sector_ar * *f + cfg.sector_vol * randn(&mut st.rng);
        }
        let mut today = vec![0.0f32; n];
        for (i, out) in today.iter_mut().enumerate() {
            let mut r = cfg.drift
                + st.beta_market[i] * st.market_f
                + st.beta_sector[i] * st.sector_f[cfg.sector_of[i]]
                + cfg.momentum * st.prev_ret[i]
                + st.sigma[i] * randn(&mut st.rng);
            for e in &st.incoming[i] {
                // High active/inactive contrast: the time-varying component
                // is the structure only the time-sensitive strategy can
                // track (Figure 1(b)'s product-launch periods).
                let gamma = e.strength * (0.15 + if e.active(day) { 0.85 } else { 0.0 });
                r += gamma * st.prev_ret[e.leader];
            }
            // Clamp daily log-return to ±25 % — circuit-breaker realism and
            // numerical safety.
            *out = r.clamp(-0.25, 0.25);
        }
        let mut price_row = vec![0.0f32; n];
        for (i, &t) in today.iter().enumerate() {
            let prev_p = self.prices.data()[(day - 1) * n + i];
            price_row[i] = (prev_p * t.exp()).max(0.01);
        }
        self.prices.push_row(&price_row);
        self.returns.push_row(&today);
        st.prev_ret = today;
    }

    /// Advance the market by one day past the current history and return the
    /// new day's index. O(N + E) — this is the streaming day-advance entry
    /// point; shock timing, RNG draws, and spillover evaluation are exactly
    /// those a batch run of the extended length would have made.
    pub fn append_day(&mut self) -> usize {
        assert!(self.state.is_some(), "cannot advance a CSV-loaded market");
        self.config.days += 1;
        self.fill_next_day();
        self.config.days - 1
    }

    /// Register a new spillover edge, effective from the next generated day.
    /// Appends to both the config list and the follower's incoming list so
    /// the f32 summation order matches a from-scratch rebuild.
    pub fn add_spillover_edge(&mut self, e: WikiEdge) {
        let st = self.state.as_mut().expect("cannot mutate a CSV-loaded market");
        st.incoming[e.follower].push(e.clone());
        self.config.spillover_edges.push(e);
    }

    /// Drop every spillover edge between `a` and `b` (either direction),
    /// returning how many were removed. Uses order-preserving `retain` so
    /// the remaining summation order still matches a rebuild.
    pub fn remove_spillover_edges(&mut self, a: usize, b: usize) -> usize {
        let hit = |e: &WikiEdge| {
            (e.leader == a && e.follower == b) || (e.leader == b && e.follower == a)
        };
        let before = self.config.spillover_edges.len();
        self.config.spillover_edges.retain(|e| !hit(e));
        if let Some(st) = self.state.as_mut() {
            st.incoming[a].retain(|e| !hit(e));
            if b != a {
                st.incoming[b].retain(|e| !hit(e));
            }
        }
        before - self.config.spillover_edges.len()
    }

    /// Build a `MarketSim` from externally supplied prices/returns (CSV
    /// loading). The result cannot be advanced day-by-day.
    pub fn from_history(prices: Tensor, returns: Tensor, config: SynthConfig) -> MarketSim {
        MarketSim { prices, returns, config, state: None }
    }

    pub fn n_stocks(&self) -> usize {
        self.config.n_stocks
    }

    pub fn days(&self) -> usize {
        self.config.days
    }

    /// Closing price of stock `i` at `day`.
    pub fn price(&self, day: usize, i: usize) -> f32 {
        self.prices.at(&[day, i])
    }

    /// Next-day return ratio `r_i^{t+1} = (p^{t+1} − p^t)/p^t` (paper Eq. 10).
    pub fn return_ratio(&self, day: usize, i: usize) -> f32 {
        let p0 = self.price(day, i);
        let p1 = self.price(day + 1, i);
        (p1 - p0) / p0
    }

    /// All next-day return ratios at `day` as a vector of length `N`.
    pub fn return_ratios(&self, day: usize) -> Vec<f32> {
        (0..self.n_stocks()).map(|i| self.return_ratio(day, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> SynthConfig {
        SynthConfig::new(6, 300, seed, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn prices_positive_and_deterministic() {
        let a = simulate(tiny_config(7));
        let b = simulate(tiny_config(7));
        assert_eq!(a.prices, b.prices);
        assert!(a.prices.data().iter().all(|&p| p > 0.0));
        let c = simulate(tiny_config(8));
        assert_ne!(a.prices, c.prices);
    }

    #[test]
    fn volatility_in_realistic_range() {
        let sim = simulate(tiny_config(3));
        let n = sim.n_stocks();
        let mut sq = 0.0f64;
        let mut count = 0usize;
        for day in 1..sim.days() {
            for i in 0..n {
                let r = sim.returns.at(&[day, i]) as f64;
                sq += r * r;
                count += 1;
            }
        }
        let vol = (sq / count as f64).sqrt();
        assert!((0.01..0.06).contains(&vol), "daily vol {vol}");
    }

    #[test]
    fn shock_crashes_then_recovers() {
        let mut cfg = tiny_config(5);
        cfg.shock_day = Some(150);
        let sim = simulate(cfg);
        let n = sim.n_stocks();
        let avg_price =
            |d: usize| (0..n).map(|i| sim.price(d, i)).sum::<f32>() / n as f32;
        let before = avg_price(149);
        let bottom = avg_price(150 + CRASH_LEN);
        let after = avg_price(150 + CRASH_LEN + RECOVERY_LEN);
        assert!(bottom < before * 0.92, "crash should depress prices: {before} -> {bottom}");
        assert!(after > bottom * 1.05, "recovery should lift prices: {bottom} -> {after}");
    }

    #[test]
    fn lead_lag_spillover_is_detectable() {
        // With one strong always-on edge, follower returns should correlate
        // with lagged leader returns much more than reverse.
        let mut cfg = SynthConfig::new(2, 2000, 11, vec![0, 1]);
        cfg.spillover_edges.push(WikiEdge {
            leader: 0,
            follower: 1,
            types: vec![0],
            strength: 0.6,
            period: 10,
            phase: 0,
            duty: 1.0,
        });
        let sim = simulate(cfg);
        let corr = |lag_series: &dyn Fn(usize) -> (f32, f32)| {
            let mut sxy = 0.0f64;
            let mut sxx = 0.0f64;
            let mut syy = 0.0f64;
            for d in 2..sim.days() {
                let (x, y) = lag_series(d);
                sxy += (x * y) as f64;
                sxx += (x * x) as f64;
                syy += (y * y) as f64;
            }
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        let forward =
            corr(&|d| (sim.returns.at(&[d - 1, 0]), sim.returns.at(&[d, 1])));
        let backward =
            corr(&|d| (sim.returns.at(&[d - 1, 1]), sim.returns.at(&[d, 0])));
        assert!(forward > 0.25, "leader should predict follower, corr {forward}");
        assert!(forward > backward + 0.15, "direction matters: fwd {forward} vs bwd {backward}");
    }

    #[test]
    fn sector_comovement_exceeds_cross_sector() {
        let sim = simulate(tiny_config(21));
        let corr = |a: usize, b: usize| {
            let mut sxy = 0.0f64;
            let mut sxx = 0.0f64;
            let mut syy = 0.0f64;
            for d in 1..sim.days() {
                let x = sim.returns.at(&[d, a]) as f64;
                let y = sim.returns.at(&[d, b]) as f64;
                sxy += x * y;
                sxx += x * x;
                syy += y * y;
            }
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        // Average same-sector vs cross-sector correlation.
        let same = (corr(0, 1) + corr(1, 2) + corr(3, 4) + corr(4, 5)) / 4.0;
        let cross = (corr(0, 3) + corr(1, 4) + corr(2, 5)) / 3.0;
        assert!(same > cross, "same-sector corr {same} should exceed cross {cross}");
    }

    #[test]
    fn appended_days_bit_identical_to_batch() {
        // A truncated sim advanced day-by-day must reproduce the full batch
        // run bit-for-bit: same RNG call order, same f32 op order — the
        // foundation of the streaming parity guarantee. Includes a crash
        // shock inside the appended range and spillover edges.
        let mut cfg = tiny_config(13);
        cfg.shock_day = Some(250);
        cfg.spillover_edges.push(WikiEdge {
            leader: 2,
            follower: 4,
            types: vec![0],
            strength: 0.4,
            period: 7,
            phase: 3,
            duty: 0.5,
        });
        let full = simulate(cfg.clone());
        let mut short_cfg = cfg;
        short_cfg.days = 240;
        let mut streamed = simulate(short_cfg);
        while streamed.days() < full.days() {
            let d = streamed.append_day();
            assert_eq!(d + 1, streamed.prices.dims()[0]);
        }
        assert_eq!(streamed.prices, full.prices, "prices diverge");
        assert_eq!(streamed.returns, full.returns, "returns diverge");
    }

    #[test]
    fn spillover_edge_mutations_match_rebuild() {
        // Add an edge mid-stream, drop another, keep advancing — the result
        // must equal a batch run whose config carries the final edge list for
        // the whole horizon *only if* activity windows agree; here we check
        // the cheaper invariant directly: incoming-list order equals the
        // grouped order of `config.spillover_edges` after every mutation.
        let mut cfg = tiny_config(17);
        for (l, f, p) in [(0usize, 3usize, 9usize), (1, 3, 11), (2, 5, 13)] {
            cfg.spillover_edges.push(WikiEdge {
                leader: l,
                follower: f,
                types: vec![0],
                strength: 0.3,
                period: p,
                phase: 0,
                duty: 0.6,
            });
        }
        cfg.days = 60;
        let mut sim = simulate(cfg);
        sim.append_day();
        sim.add_spillover_edge(WikiEdge {
            leader: 4,
            follower: 3,
            types: vec![0],
            strength: 0.5,
            period: 5,
            phase: 1,
            duty: 0.4,
        });
        assert_eq!(sim.remove_spillover_edges(1, 3), 1);
        assert_eq!(sim.remove_spillover_edges(1, 3), 0, "already gone");
        sim.append_day();
        // Rebuild the per-follower grouping from the final config list and
        // compare with the live state ordering.
        let st = sim.state.as_ref().expect("synthetic sims keep state");
        let mut expect: Vec<Vec<(usize, usize)>> = vec![Vec::new(); sim.n_stocks()];
        for e in &sim.config.spillover_edges {
            expect[e.follower].push((e.leader, e.period));
        }
        for (f, exp) in expect.iter().enumerate() {
            let got: Vec<(usize, usize)> =
                st.incoming[f].iter().map(|e| (e.leader, e.period)).collect();
            assert_eq!(&got, exp, "follower {f} incoming order");
        }
    }

    #[test]
    fn return_ratio_matches_prices() {
        let sim = simulate(tiny_config(2));
        let r = sim.return_ratio(10, 3);
        let manual = (sim.price(11, 3) - sim.price(10, 3)) / sim.price(10, 3);
        assert!((r - manual).abs() < 1e-7);
        assert_eq!(sim.return_ratios(10).len(), 6);
    }
}
