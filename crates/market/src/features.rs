//! The paper's 4-step feature pipeline (Section V-A.1):
//!
//! 1. Normalise closing prices by the price at the **last period of the input
//!    window** (`p^t / p^T`) — no future leakage.
//! 2. Compute 5/10/20-day moving averages (weekly / half-month trends).
//! 3. Compute next-day return ratios (Eq. 10) as ground truth.
//! 4. Split chronologically into train / test.
//!
//! Feature combinations follow Table VIII: 1 = close, 2 = +5d MA,
//! 3 = +10d MA, 4 = +20d MA.

use rtgcn_tensor::Tensor;

/// Days of history needed before the first usable window element (the 20-day
/// moving average's reach).
pub const WARMUP_DAYS: usize = 20;

/// Moving-average windows in feature order (after the raw close).
pub const MA_WINDOWS: [usize; 3] = [5, 10, 20];

/// Maximum feature count (close + three MAs — Table VIII row 4).
pub const MAX_FEATURES: usize = 4;

/// Days of history required before a window may start for a given feature
/// combination: the reach of the longest moving average it uses. `n_features
/// == 1` is the raw close (no history beyond the day itself); 2–4 add the
/// 5/10/20-day MAs in Table VIII order.
pub fn warmup_for(n_features: usize) -> usize {
    assert!((1..=MAX_FEATURES).contains(&n_features), "n_features must be 1..=4");
    match n_features {
        1 => 1,
        nf => MA_WINDOWS[nf - 2],
    }
}

/// Moving average of the `w` prices ending at `day` (inclusive) for a price
/// series laid out `(days, n)` row-major.
fn moving_average(prices: &Tensor, day: usize, stock: usize, w: usize) -> f32 {
    let n = prices.dims()[1];
    // A real assert: in release builds the old debug_assert! compiled away
    // and `day + 1 - w` underflowed with a raw panic-on-overflow (or silent
    // wraparound index) instead of a message.
    assert!(day + 1 >= w, "moving average needs {w} days of history, day {day} has {}", day + 1);
    let mut acc = 0.0;
    for d in (day + 1 - w)..=day {
        acc += prices.data()[d * n + stock];
    }
    acc / w as f32
}

/// Build the feature tensor `X_t ∈ R^{T×N×D}` for the window of `t_steps`
/// days **ending at** `end_day` (inclusive). `n_features ∈ 1..=4` selects the
/// Table VIII combination. Every feature is divided by each stock's closing
/// price at `end_day` (step 1 normalisation).
pub fn window_features(
    prices: &Tensor,
    end_day: usize,
    t_steps: usize,
    n_features: usize,
) -> Tensor {
    assert!(prices.rank() == 2, "prices must be (days, N)");
    assert!((1..=MAX_FEATURES).contains(&n_features), "n_features must be 1..=4");
    let n = prices.dims()[1];
    assert!(end_day + 1 >= t_steps, "window of {t_steps} steps cannot end at day {end_day}");
    let start = end_day + 1 - t_steps;
    // Gate per feature combination: n_features 2 and 3 only reach back
    // through the 5/10-day MAs, so demanding the full 20-day warm-up (as
    // the old unparenthesized `||`/`&&` condition effectively did for
    // every n_features > 1) rejected perfectly computable windows.
    assert!(
        start + 1 >= warmup_for(n_features),
        "window starting at day {start} lacks warm-up history \
         (n_features = {n_features} needs {} prior days)",
        warmup_for(n_features)
    );
    assert!(end_day < prices.dims()[0], "end_day out of range");

    let mut x = Tensor::zeros([t_steps, n, n_features]);
    for i in 0..n {
        let anchor = prices.data()[end_day * n + i].max(1e-6);
        for (w_idx, day) in (start..=end_day).enumerate() {
            let base = (w_idx * n + i) * n_features;
            x.data_mut()[base] = prices.data()[day * n + i] / anchor;
            for (f, &ma) in MA_WINDOWS.iter().enumerate().take(n_features.saturating_sub(1)) {
                x.data_mut()[base + 1 + f] = moving_average(prices, day, i, ma) / anchor;
            }
        }
    }
    x
}

/// Next-day return ratios `r^{t+1}_i = (p^{t+1}_i − p^t_i)/p^t_i` for every
/// stock at `day` (Eq. 10).
pub fn return_ratios(prices: &Tensor, day: usize) -> Tensor {
    let n = prices.dims()[1];
    assert!(day + 1 < prices.dims()[0], "need day+1 prices for the return ratio");
    let mut r = Tensor::zeros([n]);
    for i in 0..n {
        let p0 = prices.data()[day * n + i].max(1e-6);
        let p1 = prices.data()[(day + 1) * n + i];
        r.data_mut()[i] = (p1 - p0) / p0;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic toy price series: p(d, i) = 100 + d + 10·i.
    fn toy_prices(days: usize, n: usize) -> Tensor {
        let mut p = Tensor::zeros([days, n]);
        for d in 0..days {
            for i in 0..n {
                p.data_mut()[d * n + i] = 100.0 + d as f32 + 10.0 * i as f32;
            }
        }
        p
    }

    #[test]
    fn close_normalised_to_one_at_window_end() {
        let p = toy_prices(60, 3);
        let x = window_features(&p, 40, 8, 4);
        assert_eq!(x.dims(), &[8, 3, 4]);
        for i in 0..3 {
            // Last step's raw close / anchor = 1.
            assert!((x.at(&[7, i, 0]) - 1.0).abs() < 1e-6, "stock {i}");
        }
    }

    #[test]
    fn moving_averages_of_linear_prices() {
        // For p(d) = 100 + d, the w-day MA ending at d is 100 + d − (w−1)/2.
        let p = toy_prices(60, 1);
        let x = window_features(&p, 50, 4, 4);
        let anchor = 150.0;
        let close_49 = x.at(&[2, 0, 0]) * anchor;
        assert!((close_49 - 149.0).abs() < 1e-3);
        let ma5_50 = x.at(&[3, 0, 1]) * anchor;
        assert!((ma5_50 - 148.0).abs() < 1e-3, "5-day MA at d=50 is {ma5_50}");
        let ma20_50 = x.at(&[3, 0, 3]) * anchor;
        assert!((ma20_50 - 140.5).abs() < 1e-3, "20-day MA at d=50 is {ma20_50}");
    }

    #[test]
    fn no_future_leakage_in_features() {
        // Changing prices after end_day must not change the features.
        let mut p1 = toy_prices(60, 2);
        let x1 = window_features(&p1, 40, 8, 4);
        for d in 41..60 {
            for i in 0..2 {
                p1.data_mut()[d * 2 + i] = 9999.0;
            }
        }
        let x2 = window_features(&p1, 40, 8, 4);
        assert_eq!(x1, x2, "features must depend only on days ≤ end_day");
    }

    #[test]
    fn feature_count_selects_combination() {
        let p = toy_prices(60, 2);
        for nf in 1..=4 {
            let x = window_features(&p, 40, 4, nf);
            assert_eq!(x.dims(), &[4, 2, nf]);
        }
    }

    #[test]
    fn return_ratio_eq10() {
        let p = toy_prices(60, 2);
        let r = return_ratios(&p, 30);
        // p(31)/p(30) − 1 = 131/130 − 1 for stock 0.
        assert!((r.data()[0] - 1.0 / 130.0).abs() < 1e-6);
        assert!((r.data()[1] - 1.0 / 140.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "warm-up")]
    fn early_window_rejected() {
        let p = toy_prices(60, 2);
        let _ = window_features(&p, 10, 8, 4);
    }

    /// Per-combination warm-up gate: a window starting exactly at the
    /// minimum history for its feature count must work, and one day earlier
    /// must panic. n_features 2 and 3 only need the 5/10-day MAs.
    #[test]
    fn warmup_gate_is_per_feature_combination() {
        let p = toy_prices(60, 2);
        for nf in 1..=4 {
            let need = warmup_for(nf);
            let min_start = need - 1;
            let t_steps = 4;
            let end_ok = min_start + t_steps - 1;
            let x = window_features(&p, end_ok, t_steps, nf);
            assert_eq!(x.dims(), &[t_steps, 2, nf], "nf={nf} at minimal warm-up");
            assert!(x.data().iter().all(|v| v.is_finite()), "nf={nf}");
            if end_ok > 0 {
                let early = std::panic::catch_unwind(|| window_features(&p, end_ok - 1, t_steps, nf));
                assert!(early.is_err(), "nf={nf}: one day before warm-up must be rejected");
            }
        }
    }

    /// The gate must reflect the MA reach, not the full 20-day warm-up.
    #[test]
    fn warmup_for_matches_ma_windows() {
        assert_eq!(warmup_for(1), 1);
        assert_eq!(warmup_for(2), 5);
        assert_eq!(warmup_for(3), 10);
        assert_eq!(warmup_for(4), 20);
    }

    /// A 3-feature window needing only the 10-day MA computes fine at day
    /// 10 — the old gate demanded day ≥ 19 regardless of combination.
    #[test]
    fn shorter_combinations_accept_earlier_windows() {
        let p = toy_prices(60, 1);
        let x = window_features(&p, 10, 2, 3);
        // 10-day MA ending at day 10 of p(d) = 100 + d is 100 + 10 − 4.5.
        let anchor = 110.0;
        let ma10 = x.at(&[1, 0, 2]) * anchor;
        assert!((ma10 - 105.5).abs() < 1e-3, "10-day MA at d=10 is {ma10}");
    }

    /// `moving_average`'s history guard must fire in release builds too
    /// (it was a `debug_assert!` over an underflowing usize subtraction).
    #[test]
    #[should_panic(expected = "days of history")]
    fn moving_average_guard_is_a_real_assert() {
        let p = toy_prices(60, 1);
        // end_day = 4, t_steps = 1, nf = 2 passes the window gate (needs 5
        // days, has 5) — but calling the helper directly below warm-up must
        // panic with the message, not underflow.
        let _ = moving_average(&p, 3, 0, 5);
    }
}
