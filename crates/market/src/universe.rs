//! Stock universes calibrated to the paper's three markets (Tables II–III)
//! plus reduced-scale variants for laptop-budget runs.

use serde::{Deserialize, Serialize};

/// The three markets evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Market {
    Nasdaq,
    Nyse,
    Csi,
}

impl Market {
    pub const ALL: [Market; 3] = [Market::Nasdaq, Market::Nyse, Market::Csi];

    pub fn name(&self) -> &'static str {
        match self {
            Market::Nasdaq => "NASDAQ",
            Market::Nyse => "NYSE",
            Market::Csi => "CSI",
        }
    }

    /// The comparison index plotted in Figure 6 for this market.
    pub fn index_name(&self) -> &'static str {
        match self {
            Market::Nasdaq => "DJI",
            Market::Nyse => "S&P 500",
            Market::Csi => "CSI 300",
        }
    }
}

/// Dataset scale. Paper scale (854/1405/242 stocks × 1295 train days × 15
/// seeds) exceeds a CPU laptop budget; `Small` preserves relation ratios and
/// the train/test structure at ~1/8 of the stock count (DESIGN.md §4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    Small,
    Medium,
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Full specification of one market dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UniverseSpec {
    pub market: Market,
    /// Number of stocks `N`.
    pub stocks: usize,
    /// Trading days in the training period (paper: 1295 = 2015-01 → 2020-02).
    pub train_days: usize,
    /// Trading days in the test period (paper: 207 / 207 / 139).
    pub test_days: usize,
    /// Number of industry relation types (Table III).
    pub industry_types: usize,
    /// Target industry relation ratio (Table III).
    pub industry_ratio: f64,
    /// Number of wiki relation types; 0 for CSI (Table III).
    pub wiki_types: usize,
    /// Target wiki relation ratio.
    pub wiki_ratio: f64,
    /// Number of latent sectors in the price factor model.
    pub sectors: usize,
}

impl UniverseSpec {
    /// Paper-calibrated spec for a market at a given scale.
    pub fn of(market: Market, scale: Scale) -> Self {
        let full = match market {
            Market::Nasdaq => UniverseSpec {
                market,
                stocks: 854,
                train_days: 1295,
                test_days: 207,
                industry_types: 97,
                industry_ratio: 0.054,
                wiki_types: 41,
                wiki_ratio: 0.003,
                sectors: 12,
            },
            Market::Nyse => UniverseSpec {
                market,
                stocks: 1405,
                train_days: 1295,
                test_days: 207,
                industry_types: 108,
                industry_ratio: 0.069,
                wiki_types: 28,
                wiki_ratio: 0.004,
                sectors: 12,
            },
            Market::Csi => UniverseSpec {
                market,
                stocks: 242,
                train_days: 1295,
                test_days: 139,
                industry_types: 24,
                industry_ratio: 0.067,
                wiki_types: 0,
                wiki_ratio: 0.0,
                sectors: 8,
            },
        };
        match scale {
            Scale::Paper => full,
            Scale::Medium => full.shrink(0.3, 0.5),
            Scale::Small => full.shrink(0.12, 0.33),
        }
    }

    /// Scale stock count and day count while preserving relation ratios.
    fn shrink(mut self, stock_frac: f64, day_frac: f64) -> Self {
        self.stocks = ((self.stocks as f64 * stock_frac).round() as usize).max(24);
        self.train_days = ((self.train_days as f64 * day_frac).round() as usize).max(120);
        self.test_days = ((self.test_days as f64 * day_frac).round() as usize).max(40);
        // Type counts shrink with the stock count but stay ≥ a handful so the
        // multi-hot structure remains non-trivial.
        self.industry_types = ((self.industry_types as f64 * stock_frac).round() as usize).max(6);
        if self.wiki_types > 0 {
            self.wiki_types = ((self.wiki_types as f64 * stock_frac).round() as usize).max(4);
        }
        self.sectors = self.sectors.min(self.stocks / 4).max(2);
        self
    }

    /// Total simulated days: feature warm-up + training + test, plus one
    /// extra day so the last test day's next-day return ratio is observable.
    pub fn total_days(&self) -> usize {
        crate::features::WARMUP_DAYS + self.train_days + self.test_days + 1
    }

    /// First day index of the test period (also where the COVID-like shock
    /// is injected; the paper's test period starts 2020-03-02, right at the
    /// crash).
    pub fn test_start(&self) -> usize {
        crate::features::WARMUP_DAYS + self.train_days
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table_ii_and_iii() {
        let n = UniverseSpec::of(Market::Nasdaq, Scale::Paper);
        assert_eq!((n.stocks, n.train_days, n.test_days), (854, 1295, 207));
        assert_eq!((n.industry_types, n.wiki_types), (97, 41));
        let y = UniverseSpec::of(Market::Nyse, Scale::Paper);
        assert_eq!((y.stocks, y.test_days), (1405, 207));
        let c = UniverseSpec::of(Market::Csi, Scale::Paper);
        assert_eq!((c.stocks, c.test_days, c.wiki_types), (242, 139, 0));
    }

    #[test]
    fn small_scale_preserves_ratios() {
        let full = UniverseSpec::of(Market::Nyse, Scale::Paper);
        let small = UniverseSpec::of(Market::Nyse, Scale::Small);
        assert!(small.stocks < full.stocks / 4);
        assert_eq!(small.industry_ratio, full.industry_ratio);
        assert_eq!(small.wiki_ratio, full.wiki_ratio);
        assert!(small.stocks >= 24 && small.test_days >= 40);
    }

    #[test]
    fn csi_has_no_wiki_relations_at_any_scale() {
        for scale in [Scale::Small, Scale::Medium, Scale::Paper] {
            let c = UniverseSpec::of(Market::Csi, scale);
            assert_eq!(c.wiki_types, 0);
            assert_eq!(c.wiki_ratio, 0.0);
        }
    }

    #[test]
    fn index_names() {
        assert_eq!(Market::Nasdaq.index_name(), "DJI");
        assert_eq!(Market::Csi.index_name(), "CSI 300");
    }
}
