//! Hypergraph incidence substrate for the STHAN-SR baseline (Sawhney et al.,
//! AAAI 2021), which models stock relations as hyperedges (one hyperedge per
//! industry group / per wiki-relation cluster) instead of pairwise edges.
//!
//! Provides the incidence structure `H ∈ {0,1}^{N×M}` and the spectral
//! hypergraph convolution operator
//! `Ĥ = D_v^{-1/2} H W D_e^{-1} Hᵀ D_v^{-1/2}` (HGNN, Feng et al. 2019)
//! materialised as a pairwise edge list so it can run through the same
//! sparse kernels as everything else.

use rtgcn_tensor::Edges;

/// A hypergraph over `n` vertices: each hyperedge is a vertex subset.
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    n: usize,
    hyperedges: Vec<Vec<usize>>,
}

impl Hypergraph {
    pub fn new(n: usize) -> Self {
        Hypergraph { n, hyperedges: Vec::new() }
    }

    /// Add a hyperedge over the given (deduplicated, sorted) member set.
    /// Hyperedges with fewer than 2 members carry no information and are
    /// rejected.
    pub fn add_hyperedge(&mut self, mut members: Vec<usize>) {
        members.sort_unstable();
        members.dedup();
        assert!(members.len() >= 2, "hyperedge needs at least 2 members");
        for &m in &members {
            assert!(m < self.n, "member {m} out of range for {} vertices", self.n);
        }
        self.hyperedges.push(members);
    }

    pub fn num_vertices(&self) -> usize {
        self.n
    }

    pub fn num_hyperedges(&self) -> usize {
        self.hyperedges.len()
    }

    pub fn hyperedges(&self) -> &[Vec<usize>] {
        &self.hyperedges
    }

    /// Vertex degrees `D_v` (number of incident hyperedges).
    pub fn vertex_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.n];
        for he in &self.hyperedges {
            for &v in he {
                d[v] += 1;
            }
        }
        d
    }

    /// Hyperedge degrees `D_e` (cardinalities).
    pub fn edge_degrees(&self) -> Vec<usize> {
        self.hyperedges.iter().map(|h| h.len()).collect()
    }

    /// Materialise the HGNN propagation operator
    /// `D_v^{-1/2} H W D_e^{-1} Hᵀ D_v^{-1/2}` (uniform hyperedge weights
    /// `W = I`) as pairwise edges + weights, including the implied
    /// self-connections. Isolated vertices receive a unit self-loop so
    /// propagation is well-defined for every stock.
    pub fn propagation_edges(&self) -> (Edges, Vec<f32>) {
        let dv = self.vertex_degrees();
        let dv_inv_sqrt: Vec<f32> =
            dv.iter().map(|&d| if d > 0 { 1.0 / (d as f32).sqrt() } else { 0.0 }).collect();
        // Accumulate pairwise weights: for each hyperedge e and vertices
        // (u, v) ∈ e², weight += dv^{-1/2}[u] · (1/|e|) · dv^{-1/2}[v].
        let mut acc: std::collections::BTreeMap<(usize, usize), f32> = Default::default();
        for he in &self.hyperedges {
            let inv_card = 1.0 / he.len() as f32;
            for &u in he {
                for &v in he {
                    *acc.entry((u, v)).or_insert(0.0) +=
                        dv_inv_sqrt[u] * inv_card * dv_inv_sqrt[v];
                }
            }
        }
        for (v, &d) in dv.iter().enumerate() {
            if d == 0 {
                acc.insert((v, v), 1.0);
            }
        }
        let mut pairs = Vec::with_capacity(acc.len());
        let mut weights = Vec::with_capacity(acc.len());
        for ((u, v), w) in acc {
            pairs.push([u, v]);
            weights.push(w);
        }
        (Edges::new(self.n, pairs), weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgcn_tensor::{Tape, Tensor};

    #[test]
    fn degrees() {
        let mut h = Hypergraph::new(4);
        h.add_hyperedge(vec![0, 1, 2]);
        h.add_hyperedge(vec![2, 3]);
        assert_eq!(h.vertex_degrees(), vec![1, 1, 2, 1]);
        assert_eq!(h.edge_degrees(), vec![3, 2]);
    }

    #[test]
    fn propagation_operator_preserves_constants_on_connected_component() {
        // On a single hyperedge covering all vertices, D_v = 1 for all,
        // |e| = n, so the operator is the all-(1/n) matrix: constants map to
        // themselves.
        let mut h = Hypergraph::new(3);
        h.add_hyperedge(vec![0, 1, 2]);
        let (edges, weights) = h.propagation_edges();
        let mut tape = Tape::new();
        let w = tape.constant(Tensor::from_vec(weights));
        let x = tape.constant(Tensor::new([3, 1], vec![5.0, 5.0, 5.0]));
        let y = tape.spmm(&edges, w, x);
        assert!(tape.value(y).allclose(&Tensor::new([3, 1], vec![5.0, 5.0, 5.0]), 1e-5));
    }

    #[test]
    fn isolated_vertex_passthrough() {
        let mut h = Hypergraph::new(3);
        h.add_hyperedge(vec![0, 1]);
        let (edges, weights) = h.propagation_edges();
        let mut tape = Tape::new();
        let w = tape.constant(Tensor::from_vec(weights));
        let x = tape.constant(Tensor::new([3, 1], vec![1.0, 2.0, 7.0]));
        let y = tape.spmm(&edges, w, x);
        assert!((tape.value(y).at(&[2, 0]) - 7.0).abs() < 1e-6, "isolated vertex keeps value");
    }

    #[test]
    fn dedup_members() {
        let mut h = Hypergraph::new(3);
        h.add_hyperedge(vec![1, 0, 1, 2, 0]);
        assert_eq!(h.hyperedges()[0], vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn singleton_hyperedge_rejected() {
        let mut h = Hypergraph::new(3);
        h.add_hyperedge(vec![1, 1]);
    }
}
